// mclg_serve — resident legalization daemon (legalization-as-a-service).
//
//   mclg_serve --stdio [options]            serve one client on stdin/stdout
//   mclg_serve --socket PATH [options]      listen on a Unix domain socket
//   mclg_serve --status --socket PATH       print the daemon's status table
//
// Designs load once (LoadDesign) into resident in-memory databases; after
// that, clients stream EcoDelta / Commit / Rollback / Query frames and the
// daemon re-legalizes incrementally instead of paying a full process spawn
// plus full legalization per request. The wire protocol is the supervisor
// frame envelope (flow/worker_protocol.hpp) with the serving payloads of
// flow/serve/serve_protocol.hpp — documented normatively in
// docs/PROTOCOL.md, with a quickstart in docs/SERVE.md.
//
// options:
//   --max-inflight N     expensive requests executing at once (default 4)
//   --queue-depth N      waiting requests beyond which clients get Busy
//                        (default 16)
//   --request-budget S   wall-clock budget per request in seconds; the
//                        clock starts at admission, exhaustion answers
//                        Rejected with the tenant rolled back (default
//                        unlimited)
//   --max-threads N      cap on the per-request `threads` ask (default 4)
//   --allow-remote-shutdown
//                        honor Shutdown scope=daemon on socket
//                        connections (always honored on --stdio)
//   --telemetry-ms N     print a one-line service rollup to stderr every
//                        N milliseconds (default off)
//
// Exit status: 0 after a clean shutdown (daemon Shutdown frame or
// SIGINT/SIGTERM), 1 on usage or transport errors.

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "flow/serve/serve_protocol.hpp"
#include "flow/serve/serve_server.hpp"
#include "obs/obs.hpp"
#include "obs/sampler.hpp"

namespace {

using namespace mclg;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;

const char kHelp[] =
    "usage: mclg_serve --stdio | --socket PATH [options]\n"
    "       mclg_serve --status --socket PATH\n"
    "\n"
    "Resident legalization daemon: designs load once into in-memory\n"
    "databases, then clients stream ECO requests over length-prefixed\n"
    "frames (docs/PROTOCOL.md) instead of spawning a process per request.\n"
    "\n"
    "transport:\n"
    "  --stdio              serve exactly one client on stdin/stdout\n"
    "                       (daemon-scope Shutdown is always honored)\n"
    "  --socket PATH        listen on a Unix domain socket; one thread per\n"
    "                       accepted connection (PATH is unlinked first)\n"
    "  --status             client mode: connect to --socket PATH, print\n"
    "                       the per-tenant status table, exit\n"
    "\n"
    "options:\n"
    "  --max-inflight N     expensive requests (LoadDesign/EcoDelta)\n"
    "                       executing at once (default 4)\n"
    "  --queue-depth N      admitted-but-waiting requests beyond which the\n"
    "                       daemon answers Busy (default 16)\n"
    "  --request-budget S   per-request wall-clock budget in seconds,\n"
    "                       started at admission; exhaustion answers\n"
    "                       Rejected with the tenant rolled back\n"
    "                       (default 0 = unlimited)\n"
    "  --max-threads N      cap on a request's `threads` ask (default 4)\n"
    "  --allow-remote-shutdown\n"
    "                       honor Shutdown scope=daemon over the socket\n"
    "  --telemetry-ms N     one-line service rollup to stderr every N ms\n"
    "\n"
    "exit status:\n"
    "  0  clean shutdown (daemon Shutdown frame, or SIGINT/SIGTERM)\n"
    "  1  usage or transport error\n";

// Flag parser for a subcommand-free tool (mclg_cli's Args starts at the
// subcommand; this one starts at argv[1]).
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  const char* get(const char* name) const {
    for (int i = 1; i + 1 < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return argv_[i + 1];
    }
    return nullptr;
  }
  bool has(const char* name) const {
    for (int i = 1; i < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return true;
    }
    return false;
  }
  long getInt(const char* name, long fallback) const {
    const char* v = get(name);
    return v ? std::atol(v) : fallback;
  }
  double getDouble(const char* name, double fallback) const {
    const char* v = get(name);
    return v ? std::atof(v) : fallback;
  }

 private:
  int argc_;
  char** argv_;
};

volatile std::sig_atomic_t gSignaled = 0;
void onSignal(int) { gSignaled = 1; }

ServeConfig configFromArgs(const Args& args) {
  ServeConfig config;
  config.maxInFlight = static_cast<int>(args.getInt("--max-inflight", 4));
  config.queueDepth = static_cast<int>(args.getInt("--queue-depth", 16));
  config.requestBudgetSeconds = args.getDouble("--request-budget", 0.0);
  config.maxThreadsPerRequest =
      static_cast<int>(args.getInt("--max-threads", 4));
  config.allowRemoteShutdown = args.has("--allow-remote-shutdown");
  return config;
}

int connectUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int listenUnix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket from a dead daemon
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Read Response frames off `fd` until one full frame (or EOF/corruption).
bool readOneResponse(int fd, ServeResponse* out) {
  FrameReader reader;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    reader.feed(buffer, static_cast<std::size_t>(n));
    if (reader.corrupted()) return false;
    for (FrameReader::Frame& frame : reader.take()) {
      if (frame.type != FrameType::Response) return false;
      return parseServeResponse(frame.payload, out);
    }
  }
}

// --status: one Query{key=status} round trip against a running daemon.
int runStatusClient(const std::string& path) {
  const int fd = connectUnix(path);
  if (fd < 0) {
    std::fprintf(stderr, "mclg_serve: cannot connect to %s: %s\n",
                 path.c_str(), std::strerror(errno));
    return kExitUsage;
  }
  QueryRequest query;
  query.key = "status";
  ServeResponse response;
  const bool ok = writeFrame(fd, FrameType::Query, serializeQuery(query)) &&
                  readOneResponse(fd, &response) &&
                  response.status == ServeStatus::Ok;
  ::close(fd);
  if (!ok) {
    std::fprintf(stderr, "mclg_serve: status query failed%s%s\n",
                 response.error.empty() ? "" : ": ",
                 response.error.c_str());
    return kExitUsage;
  }
  std::fputs(response.body.c_str(), stdout);
  return kExitOk;
}

/// Socket connections a daemon is currently serving; shutdown() on each
/// wakes their blocking reads so the accept loop can join cleanly.
class ConnectionTable {
 public:
  void add(int fd) {
    std::lock_guard<std::mutex> lock(mutex_);
    fds_.push_back(fd);
  }
  void remove(int fd) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      if (fds_[i] == fd) {
        fds_[i] = fds_.back();
        fds_.pop_back();
        break;
      }
    }
  }
  void shutdownAll() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (int fd : fds_) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  std::mutex mutex_;
  std::vector<int> fds_;
};

int runSocketDaemon(const std::string& path, ServeServer& server,
                    long telemetryMs) {
  const int listenFd = listenUnix(path);
  if (listenFd < 0) {
    std::fprintf(stderr, "mclg_serve: cannot listen on %s: %s\n",
                 path.c_str(), std::strerror(errno));
    return kExitUsage;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::signal(SIGPIPE, SIG_IGN);  // write failures surface as EPIPE returns

  obs::MetricsSampler sampler;
  if (telemetryMs > 0) {
    obs::SamplerConfig samplerConfig;
    samplerConfig.intervalMs = static_cast<int>(telemetryMs);
    samplerConfig.emit = [&server](const obs::TelemetrySample& sample) {
      if (sample.last) return;  // final beat can outlive useful output
      std::fprintf(stderr, "%s\n", server.statusLine().c_str());
    };
    sampler.start(samplerConfig);
    sampler.setPhase("serve");
  }

  std::fprintf(stderr, "[serve] listening on %s\n", path.c_str());
  ConnectionTable connections;
  std::vector<std::thread> threads;
  while (gSignaled == 0 && !server.shutdownRequested()) {
    pollfd pfd{listenFd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int clientFd = ::accept(listenFd, nullptr, nullptr);
    if (clientFd < 0) continue;
    connections.add(clientFd);
    threads.emplace_back([&server, &connections, clientFd] {
      server.serveConnection(clientFd, clientFd);
      connections.remove(clientFd);
      ::close(clientFd);
    });
  }

  connections.shutdownAll();
  for (std::thread& thread : threads) thread.join();
  sampler.stop();
  ::close(listenFd);
  ::unlink(path.c_str());
  std::fprintf(stderr, "[serve] %s\n",
               server.shutdownRequested() ? "shutdown requested, bye"
                                          : "signal received, bye");
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  if (args.has("--help") || args.has("-h")) {
    std::fputs(kHelp, stdout);
    return kExitOk;
  }

  const char* socketPath = args.get("--socket");
  if (args.has("--status")) {
    if (socketPath == nullptr) {
      std::fprintf(stderr, "mclg_serve: --status needs --socket PATH\n");
      return kExitUsage;
    }
    return runStatusClient(socketPath);
  }

  const bool stdio = args.has("--stdio");
  if (stdio == (socketPath != nullptr)) {
    std::fprintf(stderr,
                 "mclg_serve: pick exactly one transport, --stdio or "
                 "--socket PATH (try --help)\n");
    return kExitUsage;
  }

  ServeConfig config = configFromArgs(args);
  if (stdio) {
    // The stdio client owns this process; daemon shutdown is its call.
    config.allowRemoteShutdown = true;
    ServeServer server(config);
    server.serveConnection(/*inFd=*/0, /*outFd=*/1);
    return kExitOk;
  }

  ServeServer server(config);
  return runSocketDaemon(socketPath, server, args.getInt("--telemetry-ms", 0));
}
