// mclg_batch — multi-design throughput driver on the shared executor.
//
//   mclg_batch --manifest batch.txt [--jobs N] [--threads-per-design N]
//              [--preset contest|totaldisp] [--executor-threads N]
//              [--scores] [--report-out batch.json]
//
// The manifest lists one design per line: `input.mclg [output.mclg]`
// (whitespace-separated, `#` comments). Designs legalize concurrently —
// up to --jobs in flight — on the process executor (or a private one of
// --executor-threads workers), each with --threads-per-design stage lanes.
// Per-design results are byte-identical to solo `mclg_cli legalize` runs
// at the same thread count.
//
// Exit status:
//   0  every design legalized
//   1  usage / IO error (bad flags, unreadable manifest or outputs)
//   3  at least one design failed or is infeasible
//   4  structured parse error in the manifest or an input design

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "flow/batch_runner.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "util/executor/executor.hpp"
#include "util/timer.hpp"

namespace {

using namespace mclg;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitFailedDesigns = 3;
constexpr int kExitParseError = 4;

const char kHelp[] =
    "usage: mclg_batch --manifest batch.txt [options]\n"
    "\n"
    "  --manifest FILE        one design per line: input.mclg [output.mclg]\n"
    "  --jobs N               designs in flight at once (default: executor\n"
    "                         width)\n"
    "  --threads-per-design N stage-parallel lanes inside each design\n"
    "                         (default 1 — best aggregate throughput for\n"
    "                         small designs)\n"
    "  --preset NAME          contest (default) or totaldisp\n"
    "  --executor-threads N   run on a private executor of N workers\n"
    "                         (default: the shared process executor)\n"
    "  --scores               evaluate the contest score per design\n"
    "  --report-out FILE      batch run report (JSON, kind \"bench\",\n"
    "                         executor.* metrics included)\n";

std::optional<std::string> argValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

bool argFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Strict integer flag: absent -> fallback; non-numeric, trailing junk, or
/// a value below minValue (or beyond int range) -> usage error (false).
bool argInt(int argc, char** argv, const char* name, int fallback,
            int minValue, int* out) {
  const auto v = argValue(argc, argv, name);
  if (!v) {
    *out = fallback;
    return true;
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0' || errno == ERANGE ||
      parsed < minValue || parsed > INT_MAX) {
    std::fprintf(stderr, "mclg_batch: invalid value '%s' for %s (want integer >= %d)\n",
                 v->c_str(), name, minValue);
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argFlag(argc, argv, "--help") || argFlag(argc, argv, "-h")) {
    std::fputs(kHelp, stdout);
    return kExitOk;
  }
  const auto manifestPath = argValue(argc, argv, "--manifest");
  if (!manifestPath) {
    std::fputs(kHelp, stderr);
    return kExitUsage;
  }

  // Validate every flag before touching the filesystem, so a bad flag is
  // always a usage error (exit 1) and never races the manifest check.
  const std::string presetName =
      argValue(argc, argv, "--preset").value_or("contest");
  BatchRunConfig config;
  if (presetName == "contest") {
    config.pipeline = PipelineConfig::contest();
  } else if (presetName == "totaldisp") {
    config.pipeline = PipelineConfig::totalDisplacement();
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", presetName.c_str());
    return kExitUsage;
  }
  int executorThreads = 0;
  if (!argInt(argc, argv, "--threads-per-design", 1, 1,
              &config.threadsPerDesign) ||
      !argInt(argc, argv, "--jobs", 0, 0, &config.maxInFlight) ||
      !argInt(argc, argv, "--executor-threads", 0, 0, &executorThreads)) {
    return kExitUsage;
  }
  config.evaluateScores = argFlag(argc, argv, "--scores");

  const auto reportOut = argValue(argc, argv, "--report-out");
  if (reportOut) {
    obs::setMetricsEnabled(true);
    obs::metricsReset();
  }

  std::vector<BatchManifestItem> items;
  std::string manifestError;
  if (!loadBatchManifest(*manifestPath, &items, &manifestError)) {
    std::fprintf(stderr, "%s\n", manifestError.c_str());
    return kExitParseError;
  }
  if (items.empty()) {
    std::fprintf(stderr, "manifest '%s' lists no designs\n",
                 manifestPath->c_str());
    return kExitUsage;
  }

  std::unique_ptr<Executor> privateExecutor;
  if (executorThreads > 0) {
    privateExecutor = std::make_unique<Executor>(executorThreads);
    config.executor = ExecutorRef(privateExecutor.get());
  }

  Timer timer;
  const std::vector<BatchDesignResult> results =
      runBatchManifest(items, config);
  const double seconds = timer.seconds();

  int okCount = 0;
  for (const auto& result : results) {
    if (result.ok) {
      ++okCount;
      std::printf("%-24s ok    %7.3fs  hash %016llx\n", result.name.c_str(),
                  result.seconds,
                  static_cast<unsigned long long>(result.placementHash));
    } else {
      std::printf("%-24s FAIL  %s\n", result.name.c_str(),
                  result.error.c_str());
    }
  }
  const int total = static_cast<int>(results.size());
  const double throughput = seconds > 0.0 ? total / seconds : 0.0;
  std::printf("%d/%d designs legalized in %.3fs (%.2f designs/s)\n", okCount,
              total, seconds, throughput);

  if (reportOut) {
    std::vector<std::pair<std::string, double>> values;
    values.emplace_back("designs", static_cast<double>(total));
    values.emplace_back("designs_ok", static_cast<double>(okCount));
    values.emplace_back("batch_seconds", seconds);
    values.emplace_back("designs_per_sec", throughput);
    values.emplace_back("jobs", static_cast<double>(config.maxInFlight));
    values.emplace_back("threads_per_design",
                        static_cast<double>(config.threadsPerDesign));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const std::string prefix = "design." + std::to_string(i) + ".";
      values.emplace_back(prefix + "hash_lo",
                          static_cast<double>(results[i].placementHash &
                                              0xffffffffULL));
      values.emplace_back(prefix + "hash_hi",
                          static_cast<double>(results[i].placementHash >> 32));
      if (config.evaluateScores) {
        values.emplace_back(prefix + "score", results[i].score);
      }
    }
    if (!obs::writeBenchReport(*reportOut, "mclg_batch", values)) {
      std::fprintf(stderr, "cannot write %s\n", reportOut->c_str());
      return kExitUsage;
    }
    std::printf("wrote %s\n", reportOut->c_str());
  }

  return okCount == total ? kExitOk : kExitFailedDesigns;
}
