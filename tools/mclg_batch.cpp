// mclg_batch — multi-design throughput driver on the shared executor.
//
//   mclg_batch --manifest batch.txt [--jobs N] [--threads-per-design N]
//              [--preset contest|totaldisp] [--executor-threads N]
//              [--scores] [--report-out batch.json] [--shard i/N]
//              [--live-status] [--telemetry-ms MS] [--trace-out FILE]
//              [--process-isolation [--design-timeout SECS]
//               [--max-retries N] [--backoff-ms MS]]
//
// The manifest lists one design per line: `input.mclg [output.mclg]`
// (whitespace-separated, `#` comments). Designs legalize concurrently —
// up to --jobs in flight — on the process executor (or a private one of
// --executor-threads workers), each with --threads-per-design stage lanes.
// Per-design results are byte-identical to solo `mclg_cli legalize` runs
// at the same thread count.
//
// --process-isolation runs each design in its own supervised worker
// process instead (flow/supervisor.hpp): a crash, OS kill, or timeout in
// one design cannot take down the batch, the victim is retried up to
// --max-retries times with exponential backoff, and its signal/status is
// recorded in the batch result. --shard i/N deterministically keeps every
// N-th manifest line starting at i, so N hosts can split one manifest
// with no coordination (the shard union is exactly the manifest).
//
// Live telemetry (docs/OBSERVABILITY.md "Live telemetry"): workers stream
// Heartbeat/MetricsDelta frames every --telemetry-ms, folded into a
// BatchLedger that drives the --live-status progress line, heartbeat-based
// stall detection, and the schema-v6 `batch` aggregate block of
// --report-out. --trace-out merges every worker's spans into one Perfetto
// timeline with a process lane per worker pid (in-process mode traces the
// single batch process instead).
//
// Exit status:
//   0  every design legalized (possibly after worker retries)
//   1  usage / IO error (bad flags, unreadable manifest or outputs)
//   3  at least one design failed, crashed past retries, or is infeasible
//   4  structured parse error in the manifest or an input design
//
// Internal: `mclg_batch --worker ...` is the supervisor's fork/exec target
// (see supervisorWorkerMain); not part of the public CLI surface.

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include <unistd.h>

#include "flow/batch_runner.hpp"
#include "flow/supervisor.hpp"
#include "obs/batch_ledger.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "util/executor/executor.hpp"
#include "util/timer.hpp"

namespace {

using namespace mclg;

constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitFailedDesigns = 3;
constexpr int kExitParseError = 4;

const char kHelp[] =
    "usage: mclg_batch --manifest batch.txt [options]\n"
    "\n"
    "  --manifest FILE        one design per line: input.mclg [output.mclg]\n"
    "  --jobs N               designs in flight at once (default: executor\n"
    "                         width; with --process-isolation: concurrent\n"
    "                         worker processes, default hardware threads)\n"
    "  --threads-per-design N stage-parallel lanes inside each design\n"
    "                         (default 1 — best aggregate throughput for\n"
    "                         small designs)\n"
    "  --preset NAME          contest (default) or totaldisp\n"
    "  --executor-threads N   run on a private executor of N workers\n"
    "                         (default: the shared process executor)\n"
    "  --scores               evaluate the contest score per design\n"
    "  --shard i/N            process only manifest lines j with j%%N == i\n"
    "                         (deterministic: the union over i=0..N-1 is\n"
    "                         exactly the manifest)\n"
    "  --report-out FILE      batch run report (JSON, kind \"bench\",\n"
    "                         executor.*/supervisor.* metrics and the\n"
    "                         schema-v6 batch.* aggregate block included)\n"
    "\n"
    "live telemetry (docs/OBSERVABILITY.md):\n"
    "  --live-status          single-line progress on stderr: done/running/\n"
    "                         retrying, slowest design + phase, cells/s,\n"
    "                         stalls detected\n"
    "  --telemetry-ms MS      worker sampler beat interval (default 100;\n"
    "                         0 disables heartbeats, metric deltas, and\n"
    "                         stall detection)\n"
    "  --trace-out FILE       merged Perfetto trace: one process lane per\n"
    "                         worker pid (chrome://tracing / ui.perfetto.dev)\n"
    "\n"
    "process isolation (crash-isolated fan-out, docs/ROBUSTNESS.md):\n"
    "  --process-isolation    run each design in its own supervised worker\n"
    "                         process; crashes/timeouts hit one design only\n"
    "  --design-timeout SECS  per-worker wall-clock budget (SIGTERM, then\n"
    "                         SIGKILL after a grace period; default: none)\n"
    "  --max-retries N        re-runs after a crash/timeout (default 2)\n"
    "  --backoff-ms MS        base retry backoff, doubled per retry\n"
    "                         (default 100)\n"
    "  --inject-fault SPEC    deterministic worker fault for stress tests:\n"
    "                         <design>:<segv|abort|kill|hang|degrade>:<n>\n"
    "                         fails attempts 0..n-1 of the named design\n";

std::optional<std::string> argValue(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

bool argFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// Strict integer flag: absent -> fallback; non-numeric, trailing junk, or
/// a value below minValue (or beyond int range) -> usage error (false).
bool argInt(int argc, char** argv, const char* name, int fallback,
            int minValue, int* out) {
  const auto v = argValue(argc, argv, name);
  if (!v) {
    *out = fallback;
    return true;
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0' || errno == ERANGE ||
      parsed < minValue || parsed > INT_MAX) {
    std::fprintf(stderr, "mclg_batch: invalid value '%s' for %s (want integer >= %d)\n",
                 v->c_str(), name, minValue);
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

/// Strict non-negative double flag, same contract as argInt.
bool argSeconds(int argc, char** argv, const char* name, double fallback,
                double* out) {
  const auto v = argValue(argc, argv, name);
  if (!v) {
    *out = fallback;
    return true;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0' || errno == ERANGE || parsed < 0.0 ||
      !(parsed <= 1e9)) {
    std::fprintf(stderr,
                 "mclg_batch: invalid value '%s' for %s (want seconds >= 0)\n",
                 v->c_str(), name);
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Supervisor fork/exec target: one design per process, frames over
  // --worker-fd. Dispatched before any other flag handling.
  if (argc > 1 && std::strcmp(argv[1], "--worker") == 0) {
    return supervisorWorkerMain(argc, argv);
  }
  if (argFlag(argc, argv, "--help") || argFlag(argc, argv, "-h")) {
    std::fputs(kHelp, stdout);
    return kExitOk;
  }
  const auto manifestPath = argValue(argc, argv, "--manifest");
  if (!manifestPath) {
    std::fputs(kHelp, stderr);
    return kExitUsage;
  }

  // Validate every flag before touching the filesystem or forking, so a
  // bad flag is always a usage error (exit 1) and never a partial batch.
  const std::string presetName =
      argValue(argc, argv, "--preset").value_or("contest");
  BatchRunConfig config;
  if (presetName == "contest") {
    config.pipeline = PipelineConfig::contest();
  } else if (presetName == "totaldisp") {
    config.pipeline = PipelineConfig::totalDisplacement();
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", presetName.c_str());
    return kExitUsage;
  }
  int executorThreads = 0;
  int telemetryMs = 100;
  SupervisorConfig supervisor;
  if (!argInt(argc, argv, "--threads-per-design", 1, 1,
              &config.threadsPerDesign) ||
      !argInt(argc, argv, "--jobs", 0, 0, &config.maxInFlight) ||
      !argInt(argc, argv, "--executor-threads", 0, 0, &executorThreads) ||
      !argInt(argc, argv, "--telemetry-ms", telemetryMs, 0, &telemetryMs) ||
      !argInt(argc, argv, "--max-retries", supervisor.maxRetries, 0,
              &supervisor.maxRetries) ||
      !argInt(argc, argv, "--backoff-ms", supervisor.backoffMs, 0,
              &supervisor.backoffMs) ||
      !argSeconds(argc, argv, "--design-timeout", 0.0,
                  &supervisor.designTimeoutSeconds)) {
    return kExitUsage;
  }
  config.evaluateScores = argFlag(argc, argv, "--scores");
  const bool liveStatus = argFlag(argc, argv, "--live-status");
  const auto traceOut = argValue(argc, argv, "--trace-out");
  const bool processIsolation = argFlag(argc, argv, "--process-isolation");
  if (!processIsolation &&
      (argValue(argc, argv, "--design-timeout") ||
       argValue(argc, argv, "--max-retries") ||
       argValue(argc, argv, "--backoff-ms") ||
       argValue(argc, argv, "--inject-fault"))) {
    std::fprintf(stderr,
                 "mclg_batch: --design-timeout/--max-retries/--backoff-ms/"
                 "--inject-fault require --process-isolation\n");
    return kExitUsage;
  }
  ShardSpec shard;
  if (const auto shardText = argValue(argc, argv, "--shard")) {
    std::string shardError;
    if (!parseShardSpec(*shardText, &shard, &shardError)) {
      std::fprintf(stderr, "mclg_batch: %s\n", shardError.c_str());
      return kExitUsage;
    }
  }
  // Fault specs are strict too: a typo'd mode must be a usage error, not
  // a fault that silently never fires.
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--inject-fault") != 0) continue;
    const std::string spec = argv[i + 1];
    const auto firstColon = spec.find(':');
    const auto lastColon = spec.rfind(':');
    bool valid = firstColon != std::string::npos && lastColon > firstColon &&
                 firstColon > 0;
    if (valid) {
      const std::string mode =
          spec.substr(firstColon + 1, lastColon - firstColon - 1);
      valid = mode == "segv" || mode == "abort" || mode == "kill" ||
              mode == "hang" || mode == "degrade";
      const std::string count = spec.substr(lastColon + 1);
      valid = valid && !count.empty() && count.size() <= 9;
      for (const char c : count) valid = valid && c >= '0' && c <= '9';
    }
    if (!valid) {
      std::fprintf(stderr,
                   "mclg_batch: invalid fault spec '%s' (want "
                   "<design>:<segv|abort|kill|hang|degrade>:<n>)\n",
                   spec.c_str());
      return kExitUsage;
    }
  }

  const auto reportOut = argValue(argc, argv, "--report-out");
  if (reportOut) {
    obs::setMetricsEnabled(true);
    obs::metricsReset();
  }

  std::vector<BatchManifestItem> items;
  std::string manifestError;
  if (!loadBatchManifest(*manifestPath, &items, &manifestError)) {
    std::fprintf(stderr, "%s\n", manifestError.c_str());
    return kExitParseError;
  }
  if (items.empty()) {
    std::fprintf(stderr, "manifest '%s' lists no designs\n",
                 manifestPath->c_str());
    return kExitUsage;
  }
  const std::size_t manifestTotal = items.size();
  items = shardManifest(items, shard);
  if (items.empty()) {
    std::printf("shard %d/%d of %zu designs is empty; nothing to do\n",
                shard.index, shard.count, manifestTotal);
    return kExitOk;
  }

  // Live telemetry fold shared by both modes: the supervisor feeds worker
  // frames into it, the in-process runner feeds design events directly.
  obs::BatchLedger ledger(static_cast<int>(items.size()));
  obs::TraceMerger traceMerger;
  const auto statusLine = [](const std::string& line) {
    std::fprintf(stderr, "\r\33[2K%s", line.c_str());
    std::fflush(stderr);
  };
  const auto steadySeconds = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };

  Timer timer;
  std::vector<BatchDesignResult> results;
  if (processIsolation) {
    supervisor.workerCommand = {selfExecutablePath(argv[0]), "--worker"};
    supervisor.maxConcurrent = config.maxInFlight;
    supervisor.preset = presetName;
    supervisor.threadsPerDesign = config.threadsPerDesign;
    supervisor.evaluateScores = config.evaluateScores;
    supervisor.telemetrySampleMs = telemetryMs;
    supervisor.ledger = &ledger;
    if (traceOut) {
      supervisor.streamTrace = true;
      supervisor.traceMerger = &traceMerger;
    }
    if (liveStatus) supervisor.onStatusLine = statusLine;
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::strcmp(argv[i], "--inject-fault") == 0) {
        supervisor.extraWorkerArgs.push_back("--worker-fault");
        supervisor.extraWorkerArgs.emplace_back(argv[i + 1]);
      }
    }
    results = runSupervisedManifest(items, supervisor);
  } else {
    std::unique_ptr<Executor> privateExecutor;
    if (executorThreads > 0) {
      privateExecutor = std::make_unique<Executor>(executorThreads);
      config.executor = ExecutorRef(privateExecutor.get());
    }
    config.ledger = &ledger;
    if (liveStatus) config.onStatusLine = statusLine;
    if (traceOut) {
      obs::setTracingEnabled(true);
      obs::traceReset();
    }
    // Periodic executor gauge sampling (queue depth, parked workers) —
    // the in-process analog of the worker-side sampler.
    obs::MetricsSampler sampler;
    if (telemetryMs > 0 && (reportOut || liveStatus)) {
      obs::SamplerConfig samplerConfig;
      samplerConfig.intervalMs = telemetryMs;
      Executor* const target = privateExecutor.get();
      samplerConfig.preSample = [target] {
        Executor* executor = target ? target : Executor::globalIfCreated();
        if (executor != nullptr) executor->sampleGauges();
      };
      samplerConfig.emit = [](const obs::TelemetrySample&) {};
      sampler.start(std::move(samplerConfig));
    }
    results = runBatchManifest(items, config);
    sampler.stop();
    if (liveStatus) statusLine(ledger.renderStatusLine(steadySeconds()));
    if (traceOut) {
      const int pid = static_cast<int>(::getpid());
      traceMerger.addWorker(pid, "mclg_batch");
      traceMerger.addSpans(pid, obs::traceSnapshot());
    }
  }
  const double seconds = timer.seconds();
  if (liveStatus) std::fputc('\n', stderr);

  int okCount = 0;
  for (const auto& result : results) {
    if (result.ok) {
      ++okCount;
      if (result.attempts > 1) {
        std::printf("%-24s ok    %7.3fs  hash %016llx  (%d attempts)\n",
                    result.name.c_str(), result.seconds,
                    static_cast<unsigned long long>(result.placementHash),
                    result.attempts);
      } else {
        std::printf("%-24s ok    %7.3fs  hash %016llx\n", result.name.c_str(),
                    result.seconds,
                    static_cast<unsigned long long>(result.placementHash));
      }
    } else {
      std::printf("%-24s FAIL  [%s] %s\n", result.name.c_str(),
                  workerStatusName(result.status), result.error.c_str());
    }
  }
  const int total = static_cast<int>(results.size());
  const double throughput = seconds > 0.0 ? total / seconds : 0.0;
  std::string shardNote;
  if (shard.count > 1) {
    shardNote = " [shard " + std::to_string(shard.index) + "/" +
                std::to_string(shard.count) + "]";
  }
  std::printf("%d/%d designs legalized in %.3fs (%.2f designs/s)%s\n", okCount,
              total, seconds, throughput, shardNote.c_str());

  if (reportOut) {
    std::vector<std::pair<std::string, double>> values;
    values.emplace_back("designs", static_cast<double>(total));
    values.emplace_back("designs_ok", static_cast<double>(okCount));
    values.emplace_back("batch_seconds", seconds);
    values.emplace_back("designs_per_sec", throughput);
    values.emplace_back("jobs", static_cast<double>(config.maxInFlight));
    values.emplace_back("threads_per_design",
                        static_cast<double>(config.threadsPerDesign));
    values.emplace_back("process_isolation", processIsolation ? 1.0 : 0.0);
    values.emplace_back("shard_index", static_cast<double>(shard.index));
    values.emplace_back("shard_count", static_cast<double>(shard.count));
    for (std::size_t i = 0; i < results.size(); ++i) {
      const std::string prefix = "design." + std::to_string(i) + ".";
      values.emplace_back(prefix + "hash_lo",
                          static_cast<double>(results[i].placementHash &
                                              0xffffffffULL));
      values.emplace_back(prefix + "hash_hi",
                          static_cast<double>(results[i].placementHash >> 32));
      values.emplace_back(prefix + "status",
                          static_cast<double>(static_cast<int>(
                              results[i].status)));
      if (processIsolation) {
        values.emplace_back(prefix + "attempts",
                            static_cast<double>(results[i].attempts));
      }
      if (config.evaluateScores) {
        values.emplace_back(prefix + "score", results[i].score);
      }
    }
    if (!obs::writeBatchReport(*reportOut, "mclg_batch", values, ledger)) {
      std::fprintf(stderr, "cannot write %s\n", reportOut->c_str());
      return kExitUsage;
    }
    std::printf("wrote %s\n", reportOut->c_str());
  }
  if (traceOut) {
    if (!traceMerger.write(*traceOut)) {
      std::fprintf(stderr, "cannot write %s\n", traceOut->c_str());
      return kExitUsage;
    }
    std::printf("wrote %s (%zu lanes, %zu spans)\n", traceOut->c_str(),
                traceMerger.workerLanes(), traceMerger.spanCount());
  }

  return okCount == total ? kExitOk : kExitFailedDesigns;
}
