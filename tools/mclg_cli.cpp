// mclg_cli — command-line driver for the legalization flow.
//
//   mclg_cli generate --cells 20000 --density 0.6 --fences 2 --seed 7
//            [--gp quadratic] --out design.mclg
//   mclg_cli legalize --in design.mclg [--preset contest|totaldisp]
//            [--threads 4] [--no-maxdisp] [--no-mcf] [--delta0 10]
//            [--n0 4] [--ripup [--ripup-threshold 5]]
//            [--recover-hpwl [--hpwl-budget 2]] [--fillers]
//            [--config pipeline.conf]
//            --out legal.mclg
//   mclg_cli evaluate --in legal.mclg
//   mclg_cli violations --in legal.mclg [--limit 100]
//   mclg_cli stats --in design.mclg
//   mclg_cli convert --in design.mclg --lef out.lef --def out.def
//   mclg_cli convert --in design.mclg --bookshelf out        (out.aux + 4)
//   mclg_cli convert --in-lef lib.lef --in-def chip.def --out design.mclg
//   mclg_cli convert --in-aux chip.aux --out design.mclg
//   mclg_cli svg --in legal.mclg --out disp.svg [--type 3 | --density]
//
// Exit status (see `mclg_cli --help`):
//   0  success; for legalize/evaluate the placement is fully legal
//   1  usage / IO error (bad flags, unreadable or unwritable files)
//   2  legalized, but only after guard degradation (retry/skip/fallback)
//   3  infeasible cells remain or the placement is not legal
//   4  structured parse error in an input file
//   5  internal error (unrecoverable stage failure or unexpected exception)

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "flow/worker_protocol.hpp"
#include "eval/report.hpp"
#include "eval/design_stats.hpp"
#include "eval/metrics.hpp"
#include "eval/violations.hpp"
#include "eval/score.hpp"
#include "gen/benchmark_gen.hpp"
#include "gen/global_placer.hpp"
#include "gen/fillers.hpp"
#include "legal/eco/eco_driver.hpp"
#include "legal/guard/guard.hpp"
#include "legal/pipeline.hpp"
#include "legal/pipeline_config.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "parsers/parse_error.hpp"
#include "legal/refine/ripup_refine.hpp"
#include "legal/refine/wirelength_recovery.hpp"
#include "util/timer.hpp"
#include "parsers/bookshelf.hpp"
#include "parsers/def_parser.hpp"
#include "parsers/lef_parser.hpp"
#include "parsers/simple_format.hpp"
#include "util/logging.hpp"

namespace {

using namespace mclg;

class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  std::optional<std::string> get(const char* name) const {
    for (int i = 2; i + 1 < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return std::string(argv_[i + 1]);
    }
    return std::nullopt;
  }
  bool has(const char* name) const {
    for (int i = 2; i < argc_; ++i) {
      if (std::strcmp(argv_[i], name) == 0) return true;
    }
    return false;
  }
  double getDouble(const char* name, double fallback) const {
    const auto v = get(name);
    return v ? std::atof(v->c_str()) : fallback;
  }
  long getInt(const char* name, long fallback) const {
    const auto v = get(name);
    return v ? std::atol(v->c_str()) : fallback;
  }

 private:
  int argc_;
  char** argv_;
};

// Exit codes (documented in --help and the file header).
constexpr int kExitLegal = 0;
constexpr int kExitUsage = 1;
constexpr int kExitDegraded = 2;
constexpr int kExitInfeasible = 3;
constexpr int kExitParseError = 4;
constexpr int kExitInternal = 5;

const char kHelp[] =
    "usage: mclg_cli <command> [options]\n"
    "\n"
    "commands:\n"
    "  generate    --cells N --density D --fences F --seed S [--gp quadratic]\n"
    "              [--blockages B] [--no-routability] --out design.mclg\n"
    "  legalize    --in design.mclg [--preset contest|totaldisp] [--threads N]\n"
    "              [--no-maxdisp] [--no-mcf] [--delta0 D] [--n0 N]\n"
    "              [--ripup [--ripup-threshold T]]\n"
    "              [--recover-hpwl [--hpwl-budget B]] [--fillers]\n"
    "              [--config pipeline.conf] [--out legal.mclg]\n"
    "              guard options (pipeline guard is ON by default):\n"
    "              [--no-guard]           run stages without transactions\n"
    "              [--guard-budget SECS]  wall-clock budget per stage attempt\n"
    "              [--guard-attempts N]   attempts per stage (default 2)\n"
    "              [--fault-seed S]       inject one deterministic fault\n"
    "              observability (see docs/OBSERVABILITY.md):\n"
    "              [--trace-out t.json]   Chrome trace-event spans of the\n"
    "                                     run (load in Perfetto or\n"
    "                                     chrome://tracing)\n"
    "              [--report-out r.json]  versioned machine-readable run\n"
    "                                     report (stats + metrics + quality\n"
    "                                     + provenance)\n"
    "              [--report-fd N]        stream the result + run report as\n"
    "                                     length-prefixed frames over the\n"
    "                                     inherited fd N (supervisor worker\n"
    "                                     protocol, docs/ROBUSTNESS.md)\n"
    "              incremental ECO mode (see docs/ECO.md):\n"
    "              [--eco-from legal.mclg] re-legalize only the cells that\n"
    "                                     changed vs. this legal snapshot\n"
    "              [--eco-exact]          shadow full run + adopt its result\n"
    "                                     (byte-identical to a full re-run)\n"
    "              [--eco-validate]       shadow full run, check the\n"
    "                                     EcoEquivalence invariant only\n"
    "              [--eco-halo SITES]     spill halo around dirty windows\n"
    "              [--eco-tolerance T]    allowed relative score regression\n"
    "              [--eco-ripup-threshold D] rip up touched cells displaced\n"
    "                                     more than D row heights\n"
    "  evaluate    --in legal.mclg\n"
    "  violations  --in legal.mclg [--limit N]\n"
    "  stats       --in design.mclg\n"
    "  convert     --in x.mclg --lef out.lef --def out.def | --bookshelf base\n"
    "              --in-lef lib.lef --in-def chip.def --out design.mclg\n"
    "              --in-aux chip.aux --out design.mclg\n"
    "  svg         --in legal.mclg --out out.svg [--type T | --density]\n"
    "\n"
    "global options:\n"
    "  --log-json  emit one JSON object per log line on stderr\n"
    "              ({\"ts\",\"ts_ms\",\"level\",\"tid\",\"msg\"}) instead of\n"
    "              text; ts_ms is the same instant as integer milliseconds,\n"
    "              so interleaved multi-process logs sort with an integer\n"
    "              compare\n"
    "\n"
    "exit codes:\n"
    "  0  success; for legalize/evaluate the placement is fully legal\n"
    "  1  usage / IO error\n"
    "  2  legalized, but only after guard degradation (retry/skip/fallback)\n"
    "  3  infeasible cells remain or the placement is not legal\n"
    "  4  structured parse error in an input file\n"
    "  5  internal error (unrecoverable stage failure / unexpected "
    "exception)\n";

int usage() {
  std::fputs(kHelp, stderr);
  return kExitUsage;
}

std::optional<Design> loadInput(const Args& args, int* exitCode) {
  const auto inPath = args.get("--in");
  if (!inPath) {
    std::fprintf(stderr, "missing --in\n");
    *exitCode = kExitUsage;
    return std::nullopt;
  }
  ParseError error;
  auto design = loadDesign(*inPath, &error);
  if (!design) {
    std::fprintf(stderr, "parse error: %s\n", error.str().c_str());
    *exitCode = kExitParseError;
  }
  return design;
}

std::string readFile(const std::string& path, bool* ok) {
  std::ifstream in(path);
  *ok = static_cast<bool>(in);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmdGenerate(const Args& args) {
  GenSpec spec;
  const int cells = static_cast<int>(args.getInt("--cells", 10000));
  spec.name = args.get("--name").value_or("generated");
  spec.cellsPerHeight = {cells * 8 / 10, cells * 12 / 100, cells * 5 / 100,
                         cells * 3 / 100};
  spec.density = args.getDouble("--density", 0.6);
  spec.numFences = static_cast<int>(args.getInt("--fences", 2));
  spec.numBlockages = static_cast<int>(args.getInt("--blockages", 1));
  spec.seed = static_cast<std::uint64_t>(args.getInt("--seed", 1));
  spec.withRoutability = !args.has("--no-routability");
  Design design = generate(spec);

  if (args.get("--gp").value_or("clustered") == "quadratic") {
    GlobalPlaceConfig gpConfig;
    gpConfig.seed = spec.seed;
    const auto stats = globalPlace(design, gpConfig);
    std::printf("GP-lite: HPWL %.0f -> %.0f, peak bin util %.2f -> %.2f\n",
                stats.hpwlBefore, stats.hpwlAfter, stats.maxBinUtilBefore,
                stats.maxBinUtilAfter);
  }

  const auto outPath = args.get("--out");
  if (!outPath || !saveDesign(design, *outPath)) {
    std::fprintf(stderr, "cannot write output (--out)\n");
    return 1;
  }
  std::printf("wrote %s: %d cells, %lld x %lld sites, %d fences\n",
              outPath->c_str(), design.numCells(),
              static_cast<long long>(design.numSitesX),
              static_cast<long long>(design.numRows), design.numFences() - 1);
  return 0;
}

int cmdLegalize(const Args& args) {
  int exitCode = kExitUsage;
  auto design = loadInput(args, &exitCode);
  if (!design) return exitCode;

  // Observability switches: each is a file path; enabling them turns on the
  // corresponding collection before the pipeline runs.
  const auto traceOut = args.get("--trace-out");
  const auto reportOut = args.get("--report-out");
  // --report-fd: stream the result + run report over an inherited pipe fd
  // using the supervisor worker protocol (flow/worker_protocol.hpp), which
  // makes any `mclg_cli legalize` invocation usable as a supervised worker.
  int reportFd = -1;
  if (const auto fdText = args.get("--report-fd")) {
    errno = 0;
    char* end = nullptr;
    const long parsed = std::strtol(fdText->c_str(), &end, 10);
    if (end == fdText->c_str() || *end != '\0' || errno == ERANGE ||
        parsed < 3 || parsed > 4096) {
      std::fprintf(stderr,
                   "invalid --report-fd '%s' (want an inherited fd >= 3)\n",
                   fdText->c_str());
      return kExitUsage;
    }
    reportFd = static_cast<int>(parsed);
  }
  if (traceOut) {
    obs::setTracingEnabled(true);
    obs::traceReset();
  }
  if (reportOut || reportFd >= 0) {
    obs::setMetricsEnabled(true);
    obs::metricsReset();
  }

  const std::string presetName =
      args.get("--preset").value_or("contest");
  PipelineConfig config = presetName == "totaldisp"
                              ? PipelineConfig::totalDisplacement()
                              : PipelineConfig::contest();
  // The CLI runs guarded by default: every stage is a transaction with
  // rollback + degradation, and the run ends with a GuardReport summary.
  config.guard.enabled = true;
  if (const auto configPath = args.get("--config")) {
    bool ok = false;
    const std::string text = readFile(*configPath, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read %s\n", configPath->c_str());
      return kExitUsage;
    }
    std::string error;
    if (!applyConfigText(text, &config, &error)) {
      std::fprintf(stderr, "config error in %s: %s\n", configPath->c_str(),
                   error.c_str());
      return kExitParseError;
    }
  }
  if (args.has("--no-guard")) config.guard.enabled = false;
  config.guard.stageBudgetSeconds =
      args.getDouble("--guard-budget", config.guard.stageBudgetSeconds);
  config.guard.maxAttempts = static_cast<int>(
      args.getInt("--guard-attempts", config.guard.maxAttempts));
  if (const auto seed = args.get("--fault-seed")) {
    config.guard.faults = FaultPlan::fromSeed(
        static_cast<std::uint64_t>(std::atoll(seed->c_str())));
  }
  // setThreads must precede --n0: it only parallelizes the MCF while the
  // coupling term is still off (same semantics as the old inline block).
  config.setThreads(static_cast<int>(args.getInt("--threads", 1)));
  if (args.has("--no-maxdisp")) config.runMaxDisp = false;
  if (args.has("--no-mcf")) config.runFixedRowOrder = false;
  config.maxDisp.delta0 = args.getDouble("--delta0", config.maxDisp.delta0);
  config.fixedRowOrder.maxDispWeight =
      args.getDouble("--n0", config.fixedRowOrder.maxDispWeight);

  SegmentMap segments(*design);
  PlacementState state(*design);
  PipelineStats stats;
  std::optional<EcoStats> ecoStats;
  if (const auto ecoFrom = args.get("--eco-from")) {
    ParseError error;
    const auto snapshot = loadDesign(*ecoFrom, &error);
    if (!snapshot) {
      std::fprintf(stderr, "parse error in --eco-from: %s\n",
                   error.str().c_str());
      return kExitParseError;
    }
    EcoConfig eco;
    eco.pipeline = config;
    eco.exact = args.has("--eco-exact");
    eco.validate = args.has("--eco-validate");
    eco.haloSites = static_cast<int>(args.getInt("--eco-halo", eco.haloSites));
    eco.haloRows = std::max(2, eco.haloSites / 4);
    eco.scoreTolerance =
        args.getDouble("--eco-tolerance", eco.scoreTolerance);
    eco.ripupThreshold =
        args.getDouble("--eco-ripup-threshold", eco.ripupThreshold);
    ecoStats = ecoRelegalize(state, segments, *snapshot, eco);
    stats.mgl = ecoStats->mgl;
    std::printf(
        "ECO %.2fs (dirty %d, spilled %d, windows %d dirty / %lld reused, "
        "segments %d, warm %lld, cold-fallback %lld)%s\n",
        ecoStats->secondsIncremental, ecoStats->dirtyCells,
        ecoStats->spilledCells, ecoStats->dirtyWindows,
        static_cast<long long>(ecoStats->reusedWindows),
        ecoStats->dirtySegments,
        static_cast<long long>(ecoStats->warmRestarts),
        static_cast<long long>(ecoStats->coldFallbacks),
        ecoStats->usedFullRun ? " [fell back to a full run]" : "");
    if (eco.exact || eco.validate) {
      std::printf("ECO shadow run %.2fs (scores: eco %.4f, full %.4f)%s\n",
                  ecoStats->secondsShadow, ecoStats->scoreIncremental,
                  ecoStats->scoreFull,
                  eco.exact ? " [adopted the full result]" : "");
    }
  } else {
    stats = legalize(state, segments, config);
    std::printf(
        "MGL %.2fs (placed %d, fallback %d, failed %d) | matching %.2fs "
        "(moved %d) | MCF %.2fs (moved %d)\n",
        stats.secondsMgl, stats.mgl.placed, stats.mgl.fallbackPlaced,
        stats.mgl.failed, stats.secondsMaxDisp, stats.maxDisp.cellsMoved,
        stats.secondsFixedRowOrder, stats.fixedRowOrder.cellsMoved);
  }

  if (args.has("--ripup")) {
    RipupConfig ripup;
    ripup.displacementThreshold = args.getDouble("--ripup-threshold", 5.0);
    ripup.insertion = config.mgl.insertion;
    Timer timer;
    const auto ripupStats = ripupRefine(state, segments, ripup);
    std::printf("ripup %.2fs (attempted %d, improved %d, gain %.3f)\n",
                timer.seconds(), ripupStats.attempted, ripupStats.improved,
                ripupStats.gain);
  }
  if (args.has("--recover-hpwl")) {
    WirelengthRecoveryConfig recovery;
    recovery.maxAddedDisplacement = args.getDouble("--hpwl-budget", 2.0);
    Timer timer;
    const auto recoveryStats = recoverWirelength(state, segments, recovery);
    std::printf("hpwl recovery %.2fs (moved %d, HPWL %.0f -> %.0f)\n",
                timer.seconds(), recoveryStats.cellsMoved,
                recoveryStats.hpwlBefore, recoveryStats.hpwlAfter);
  }
  if (args.has("--fillers")) {
    const auto fillerStats = insertFillers(state, segments);
    std::printf("fillers: %d cells covering %lld sites\n",
                fillerStats.fillersAdded,
                static_cast<long long>(fillerStats.sitesFilled));
  }

  const GuardReport& guard = stats.guard;
  if (config.guard.enabled && !ecoStats) {
    std::printf("pipeline guard:\n%s", guard.summary().c_str());
    if (guard.degraded) {
      std::printf("guard: degraded run (see the table above)\n");
    }
    if (guard.infeasibleCells > 0) {
      std::printf("guard: %d infeasible cells remain unplaced\n",
                  guard.infeasibleCells);
    }
  }

  const auto score = evaluateScore(*design, segments);
  std::printf("%s\n", summarize(*design, score).c_str());

  // Flush observability outputs at this quiescent point: every stage thread
  // pool has been joined, so no spans are in flight.
  if (traceOut) {
    if (!obs::writeChromeTrace(*traceOut)) {
      std::fprintf(stderr, "cannot write %s\n", traceOut->c_str());
      return kExitUsage;
    }
    std::printf("wrote %s (%zu trace events)\n", traceOut->c_str(),
                obs::traceEventCount());
  }
  if (reportOut) {
    obs::RunProvenance provenance;
    provenance.design = design->name;
    provenance.numCells = design->numCells();
    provenance.preset = presetName;
    provenance.threads = config.mgl.numThreads;
    provenance.guardEnabled = config.guard.enabled;
    provenance.configText = configToText(config);
    if (!obs::writeRunReport(*reportOut, provenance, stats, &score,
                             /*includeMetrics=*/true,
                             ecoStats ? &*ecoStats : nullptr)) {
      std::fprintf(stderr, "cannot write %s\n", reportOut->c_str());
      return kExitUsage;
    }
    std::printf("wrote %s\n", reportOut->c_str());
  }

  if (const auto outPath = args.get("--out")) {
    if (!saveDesign(*design, *outPath)) {
      std::fprintf(stderr, "cannot write %s\n", outPath->c_str());
      return kExitUsage;
    }
    std::printf("wrote %s\n", outPath->c_str());
  }
  exitCode = kExitLegal;
  if (guard.failed) {
    exitCode = kExitInternal;
  } else if (guard.infeasibleCells > 0 || !score.legality.legal()) {
    exitCode = kExitInfeasible;
  } else if (ecoStats && ecoStats->usedFullRun) {
    // An ECO run that had to fall back to the full pipeline is the
    // incremental mode's form of degradation.
    exitCode = kExitDegraded;
  } else if (guard.degraded) {
    exitCode = kExitDegraded;
  }

  if (reportFd >= 0) {
    WorkerResult wire;
    wire.status = workerStatusFromExit(exitCode);
    wire.seconds = stats.secondsTotal();
    wire.placementHash = placementHash(*design);
    wire.score = score.score;
    wire.numCells = design->numCells();
    if (exitCode == kExitInfeasible) {
      wire.error = std::to_string(std::max(guard.infeasibleCells,
                                           score.legality.unplacedCells)) +
                   " cells unplaced or placement not legal";
    } else if (exitCode == kExitInternal) {
      wire.error = "guard: unrecoverable stage failure";
    }
    obs::RunProvenance provenance;
    provenance.design = design->name;
    provenance.numCells = design->numCells();
    provenance.preset = presetName;
    provenance.threads = config.mgl.numThreads;
    provenance.guardEnabled = config.guard.enabled;
    if (!writeFrame(reportFd, FrameType::Result,
                    serializeWorkerResult(wire)) ||
        !writeFrame(reportFd, FrameType::Report,
                    obs::renderRunReport(provenance, stats, &score,
                                         /*includeMetrics=*/true,
                                         ecoStats ? &*ecoStats : nullptr))) {
      std::fprintf(stderr, "cannot write frames to --report-fd %d\n",
                   reportFd);
    }
  }
  return exitCode;
}

int cmdEvaluate(const Args& args) {
  int exitCode = kExitUsage;
  const auto design = loadInput(args, &exitCode);
  if (!design) return exitCode;
  SegmentMap segments(*design);
  const auto score = evaluateScore(*design, segments);
  std::printf("%s\n", summarize(*design, score).c_str());
  return score.legality.legal() ? kExitLegal : kExitInfeasible;
}

int cmdStats(const Args& args) {
  int exitCode = kExitUsage;
  auto design = loadInput(args, &exitCode);
  if (!design) return exitCode;
  SegmentMap segments(*design);
  PlacementState state(*design);
  const auto stats = computeDesignStats(state, segments);
  std::printf("%s", stats.toString().c_str());
  return 0;
}

int cmdViolations(const Args& args) {
  int exitCode = kExitUsage;
  const auto design = loadInput(args, &exitCode);
  if (!design) return exitCode;
  SegmentMap segments(*design);
  const auto limit =
      static_cast<std::size_t>(args.getInt("--limit", 100));
  const auto violations = collectViolations(*design, segments, limit);
  if (violations.empty()) {
    std::printf("no violations\n");
    return 0;
  }
  std::printf("%s", formatViolations(*design, violations).c_str());
  if (violations.size() == limit) {
    std::printf("... (truncated at %zu; raise --limit)\n", limit);
  }
  return 1;
}

int cmdConvert(const Args& args) {
  // Bookshelf -> native.
  if (const auto auxPath = args.get("--in-aux")) {
    const auto outPath = args.get("--out");
    if (!outPath) {
      std::fprintf(stderr, "convert needs --out\n");
      return 1;
    }
    ParseError error;
    const auto design = loadBookshelf(*auxPath, &error);
    if (!design) {
      std::fprintf(stderr, "Bookshelf error: %s\n", error.str().c_str());
      return kExitParseError;
    }
    if (!saveDesign(*design, *outPath)) {
      std::fprintf(stderr, "cannot write %s\n", outPath->c_str());
      return 1;
    }
    std::printf("wrote %s (%d cells)\n", outPath->c_str(),
                design->numCells());
    return 0;
  }
  // Native -> Bookshelf.
  if (const auto bookshelfBase = args.get("--bookshelf")) {
    int exitCode = kExitUsage;
    const auto design = loadInput(args, &exitCode);
    if (!design) return exitCode;
    if (!saveBookshelf(*design, *bookshelfBase)) {
      std::fprintf(stderr, "cannot write %s.*\n", bookshelfBase->c_str());
      return 1;
    }
    std::printf("wrote %s.{aux,nodes,nets,pl,scl}\n",
                bookshelfBase->c_str());
    return 0;
  }
  // Direction 1: LEF+DEF -> native.
  if (const auto lefPath = args.get("--in-lef")) {
    const auto defPath = args.get("--in-def");
    const auto outPath = args.get("--out");
    if (!defPath || !outPath) {
      std::fprintf(stderr, "convert needs --in-def and --out\n");
      return 1;
    }
    bool ok = false;
    const std::string lefText = readFile(*lefPath, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read %s\n", lefPath->c_str());
      return 1;
    }
    const std::string defText = readFile(*defPath, &ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read %s\n", defPath->c_str());
      return 1;
    }
    ParseError error;
    const auto lib = readLef(lefText, &error);
    if (!lib) {
      std::fprintf(stderr, "LEF error: %s\n", error.str().c_str());
      return kExitParseError;
    }
    const auto design = readDef(defText, *lib, &error);
    if (!design) {
      std::fprintf(stderr, "DEF error: %s\n", error.str().c_str());
      return kExitParseError;
    }
    if (!saveDesign(*design, *outPath)) {
      std::fprintf(stderr, "cannot write %s\n", outPath->c_str());
      return 1;
    }
    std::printf("wrote %s (%d cells)\n", outPath->c_str(), design->numCells());
    return 0;
  }
  // Direction 2: native -> LEF+DEF.
  int exitCode = kExitUsage;
  const auto design = loadInput(args, &exitCode);
  if (!design) return exitCode;
  const auto lefPath = args.get("--lef");
  const auto defPath = args.get("--def");
  if (!lefPath || !defPath) {
    std::fprintf(stderr, "convert needs --lef and --def (or --in-lef)\n");
    return 1;
  }
  std::ofstream lefOut(*lefPath);
  lefOut << writeLef(*design);
  std::ofstream defOut(*defPath);
  defOut << writeDef(*design);
  if (!lefOut || !defOut) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  std::printf("wrote %s and %s\n", lefPath->c_str(), defPath->c_str());
  return 0;
}

int cmdSvg(const Args& args) {
  int exitCode = kExitUsage;
  const auto design = loadInput(args, &exitCode);
  if (!design) return exitCode;
  const auto outPath = args.get("--out");
  if (!outPath) {
    std::fprintf(stderr, "missing --out\n");
    return 1;
  }
  if (args.has("--density")) {
    if (!writeDensityMapSvg(*design, *outPath,
                            static_cast<int>(args.getInt("--bin-rows", 8)))) {
      std::fprintf(stderr, "cannot write %s\n", outPath->c_str());
      return 1;
    }
    std::printf("wrote %s\n", outPath->c_str());
    return 0;
  }
  const auto type = static_cast<TypeId>(args.getInt("--type", -1));
  if (!writeDisplacementSvg(*design, type, *outPath)) {
    std::fprintf(stderr, "cannot write %s\n", outPath->c_str());
    return 1;
  }
  std::printf("wrote %s\n", outPath->c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  mclg::setLogLevel(mclg::LogLevel::Info);
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::fputs(kHelp, stdout);
    return kExitLegal;
  }
  const Args args(argc, argv);
  if (args.has("--log-json")) mclg::setLogFormat(mclg::LogFormat::Json);
  try {
    if (command == "generate") return cmdGenerate(args);
    if (command == "legalize") return cmdLegalize(args);
    if (command == "evaluate") return cmdEvaluate(args);
    if (command == "violations") return cmdViolations(args);
    if (command == "stats") return cmdStats(args);
    if (command == "convert") return cmdConvert(args);
    if (command == "svg") return cmdSvg(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "internal error: %s\n", e.what());
    return kExitInternal;
  }
  return usage();
}
