// The displacement-vs-HPWL trade-off (paper §1's argument against
// HPWL-objective legalization): sweep the wirelength-recovery displacement
// budget and print HPWL gain vs average-displacement loss after the
// displacement-driven pipeline.

#include <cstdio>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/checkers.hpp"
#include "gen/iccad17_suite.hpp"
#include "legal/pipeline.hpp"
#include "legal/refine/wirelength_recovery.hpp"
#include "parsers/simple_format.hpp"
#include "util/table.hpp"

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.03);
  std::printf(
      "=== Ablation: HPWL recovery budget vs displacement (scale %.3f) "
      "===\n",
      scale);

  const GenSpec spec = iccad17Suite(scale)[6].spec;  // edit_dist_a_md2 style
  Design base = generate(spec);
  {
    SegmentMap segments(base);
    PlacementState state(base);
    legalize(state, segments, PipelineConfig::contest());
  }
  const std::string snapshot = writeSimpleFormat(base);

  Table table({"budget(rows)", "hpwl.gain", "avgDisp.before", "avgDisp.after",
               "cellsMoved", "legal"});
  for (const double budget : {0.5, 1.0, 2.0, 5.0, 10.0, 1e9}) {
    auto design = readSimpleFormat(snapshot);
    SegmentMap segments(*design);
    PlacementState state(*design);
    WirelengthRecoveryConfig config;
    config.maxAddedDisplacement = budget;
    config.passes = 3;
    const auto stats = recoverWirelength(state, segments, config);
    const bool legal = checkLegality(*design, segments).legal();
    table.addRow(
        {budget >= 1e9 ? "inf" : Table::fmt(budget, 1),
         Table::pct(1.0 - stats.hpwlAfter / stats.hpwlBefore, 2),
         Table::fmt(stats.avgDispBefore, 4), Table::fmt(stats.avgDispAfter, 4),
         Table::fmt(static_cast<long long>(stats.cellsMoved)),
         legal ? "yes" : "NO"});
  }
  std::printf("%s", table.toString().c_str());
  std::printf(
      "expected shape: HPWL gain grows with the budget while the average\n"
      "displacement regresses — the paper's rationale for a displacement\n"
      "objective during legalization (cf. its MrDP discussion).\n");
  return 0;
}
