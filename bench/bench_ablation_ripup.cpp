// Ablation of the rip-up & re-insert extension: displacement threshold vs
// average/max displacement and runtime after the full pipeline.

#include <cstdio>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "gen/iccad17_suite.hpp"
#include "legal/pipeline.hpp"
#include "legal/refine/ripup_refine.hpp"
#include "parsers/simple_format.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.03);
  std::printf("=== Ablation: rip-up threshold (scale %.3f) ===\n", scale);

  const GenSpec spec = iccad17Suite(scale)[4].spec;  // des_perf_b_md2 style
  Design base = generate(spec);
  {
    SegmentMap segments(base);
    PlacementState state(base);
    legalize(state, segments, PipelineConfig::contest());
  }
  const std::string snapshot = writeSimpleFormat(base);
  const auto statsBase = displacementStats(base);
  std::printf("after pipeline: avg %.4f, max %.1f\n", statsBase.average,
              statsBase.maximum);

  Table table({"threshold", "avgDisp", "maxDisp", "attempted", "improved",
               "gain", "seconds"});
  for (const double threshold : {20.0, 10.0, 5.0, 2.0, 1.0}) {
    auto design = readSimpleFormat(snapshot);
    SegmentMap segments(*design);
    PlacementState state(*design);
    RipupConfig config;
    config.displacementThreshold = threshold;
    Timer timer;
    const auto stats = ripupRefine(state, segments, config);
    const double seconds = timer.seconds();
    const auto disp = displacementStats(*design);
    table.addRow({Table::fmt(threshold, 1), Table::fmt(disp.average, 4),
                  Table::fmt(disp.maximum, 1),
                  Table::fmt(static_cast<long long>(stats.attempted)),
                  Table::fmt(static_cast<long long>(stats.improved)),
                  Table::fmt(stats.gain, 3), Table::fmt(seconds, 2)});
  }
  std::printf("%s", table.toString().c_str());
  return 0;
}
