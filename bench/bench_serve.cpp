// Resident-daemon vs process-per-request serving gate (docs/SERVE.md).
//
// The point of mclg_serve is that a design loads (and fully legalizes)
// once, then every ECO request reuses the resident DB — no process spawn,
// no 16k-cell design parse, no output re-write per request. This bench
// quantifies that claim on one design and asserts the two modes agree
// byte-for-byte:
//
//  * `serve_request_seconds`  — mean wall clock per EcoDelta request
//    through a real ServeServer connection (length-prefixed frames over a
//    socketpair, the exact code path `mclg_serve --stdio` runs);
//  * `spawn_request_seconds`  — mean wall clock per request for the
//    process-per-request equivalent: write the edited design, fork/exec
//    `mclg_cli legalize --eco-from <snapshot>`, reload the output;
//  * `resident_speedup`       — spawn / serve, gated >= 5x by
//    scripts/perf_regression.sh via perf_gate.py --ratio;
//  * `serve.identical`        — every request's placement hash matches
//    between the two modes (auto-gated to 1 by perf_gate.py).
//
// The mclg_cli binary is found next to this bench's own build tree
// (<build>/tools/mclg_cli); set MCLG_CLI to override. Timings are
// best-of-MCLG_BENCH_REPS (default 3); MCLG_BENCH_SCALE scales the cell
// count (default 16000 cells).

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "flow/serve/serve_protocol.hpp"
#include "flow/serve/serve_server.hpp"
#include "gen/benchmark_gen.hpp"
#include "parsers/simple_format.hpp"
#include "util/timer.hpp"

namespace {

using namespace mclg;

constexpr int kRequests = 10;
constexpr int kOpsPerRequest = 3;

int repsFromEnv() {
  if (const char* env = std::getenv("MCLG_BENCH_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

std::string cliPath(const char* argv0) {
  if (const char* env = std::getenv("MCLG_CLI")) return env;
  const std::filesystem::path self(argv0);
  return (self.parent_path().parent_path() / "tools" / "mclg_cli").string();
}

/// 0/2 (legal / legal-after-degradation) both count as success — the same
/// outcomes serveStatusOk() accepts on the resident side.
bool runCli(const std::string& command) {
  const int rc = std::system(command.c_str());
  if (rc == -1 || !WIFEXITED(rc)) return false;
  const int code = WEXITSTATUS(rc);
  return code == 0 || code == 2;
}

std::vector<CellId> movableCells(const Design& design) {
  std::vector<CellId> out;
  for (CellId c = 0; c < design.numCells(); ++c) {
    if (!design.cells[c].fixed) out.push_back(c);
  }
  return out;
}

/// The fixed request schedule, kRequests x kOpsPerRequest moves. Each op
/// nudges a cell a few sites away from its legalized position — the ECO
/// shape (timing fix, local resize ripple) the incremental driver is built
/// for; `legal` is the shared post-legalization placement both modes start
/// from. Both modes replay exactly this, committing after every request.
std::vector<std::vector<EcoOp>> buildSchedule(const Design& legal) {
  const std::vector<CellId> movable = movableCells(legal);
  std::vector<std::vector<EcoOp>> out;
  for (int k = 0; k < kRequests; ++k) {
    std::vector<EcoOp> ops;
    for (int i = 0; i < kOpsPerRequest; ++i) {
      const CellId c = movable[static_cast<std::size_t>(k * 131 + i * 17) %
                               movable.size()];
      const Cell& cell = legal.cells[c];
      const double dx = static_cast<double>((k * 37 + i * 101) % 13 - 6);
      EcoOp op;
      op.kind = EcoOp::Kind::Move;
      op.cell = c;
      op.gpX = std::clamp(static_cast<double>(cell.x) + dx, 0.0,
                          static_cast<double>(legal.numSitesX - 1));
      op.gpY = static_cast<double>(cell.y);
      ops.push_back(op);
    }
    out.push_back(std::move(ops));
  }
  return out;
}

void applyMoves(Design& design, const std::vector<EcoOp>& ops) {
  for (const EcoOp& op : ops) {
    design.cells[op.cell].gpX = op.gpX;
    design.cells[op.cell].gpY = op.gpY;
  }
  design.invalidateCaches();
}

/// Minimal frame client over a socketpair served by a real ServeServer
/// connection loop — the identical code path `mclg_serve --stdio` runs.
class ResidentClient {
 public:
  explicit ResidentClient(ServeServer& server) {
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      std::perror("bench_serve: socketpair");
      std::exit(1);
    }
    fd_ = fds[0];
    const int serverFd = fds[1];
    thread_ = std::thread([&server, serverFd] {
      server.serveConnection(serverFd, serverFd);
      ::close(serverFd);
    });
  }
  ~ResidentClient() {
    if (fd_ >= 0) ::close(fd_);
    if (thread_.joinable()) thread_.join();
  }

  ServeResponse roundTrip(FrameType type, const std::string& payload) {
    ServeResponse response;
    if (!writeFrame(fd_, type, payload)) {
      std::fprintf(stderr, "bench_serve: writeFrame failed\n");
      std::exit(1);
    }
    char buffer[1 << 16];
    while (true) {
      for (FrameReader::Frame& frame : reader_.take()) {
        if (frame.type != FrameType::Response ||
            !parseServeResponse(frame.payload, &response)) {
          std::fprintf(stderr, "bench_serve: bad response frame\n");
          std::exit(1);
        }
        return response;
      }
      const ssize_t n = ::read(fd_, buffer, sizeof buffer);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0 || reader_.corrupted()) {
        std::fprintf(stderr, "bench_serve: connection lost\n");
        std::exit(1);
      }
      reader_.feed(buffer, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::thread thread_;
  FrameReader reader_;
};

}  // namespace

int main(int argc, char** argv) {
  (void)argc;
  const int cells = static_cast<int>(16000 * bench::scaleFromEnv(1.0));
  const int reps = repsFromEnv();
  const std::string cli = cliPath(argv[0]);
  if (!std::filesystem::exists(cli)) {
    std::fprintf(stderr, "bench_serve: mclg_cli not found at %s "
                 "(set MCLG_CLI)\n", cli.c_str());
    return 1;
  }

  char dirTemplate[] = "/tmp/mclg_bench_serve.XXXXXX";
  const char* dir = mkdtemp(dirTemplate);
  if (dir == nullptr) {
    std::fprintf(stderr, "bench_serve: mkdtemp failed\n");
    return 1;
  }
  const std::filesystem::path work(dir);

  GenSpec spec;
  spec.name = "serve_bench";
  spec.cellsPerHeight = {cells * 85 / 100, cells * 9 / 100, cells * 4 / 100,
                         cells * 2 / 100};
  spec.density = 0.55;
  spec.numFences = 2;
  spec.seed = 9100;
  const Design base = generate(spec);
  const std::string baseText = writeSimpleFormat(base);
  const std::string basePath = (work / "base.mclg").string();
  {
    std::ofstream out(basePath);
    out << baseText;
  }

  std::printf("=== resident daemon vs process-per-request ===\n");
  std::printf("cells=%d requests=%d reps=%d cli=%s\n", base.numCells(),
              kRequests, reps, cli.c_str());

  // --- Process-per-request reference ---------------------------------------
  // One full legalize up front (both modes pay it once), then per request:
  // apply the GP edits, write the edited design, spawn
  // `mclg_cli legalize --eco-from <snapshot>`, reload the output. Every
  // request commits — the output becomes the next request's snapshot, the
  // same session shape the resident side runs with EcoDelta + Commit.
  const std::string legalPath = (work / "legal.mclg").string();
  Timer spawnLegalizeTimer;
  if (!runCli(cli + " legalize --in '" + basePath + "' --out '" + legalPath +
              "' > /dev/null 2>&1")) {
    std::fprintf(stderr, "bench_serve: initial CLI legalize failed\n");
    return 1;
  }
  const double spawnLegalizeSeconds = spawnLegalizeTimer.seconds();
  auto legal = loadDesign(legalPath);
  if (!legal) {
    std::fprintf(stderr, "bench_serve: cannot reload %s\n", legalPath.c_str());
    return 1;
  }
  const auto schedule = buildSchedule(*legal);

  std::vector<std::uint64_t> spawnHashes;
  double spawnSeconds = 1e18;
  for (int rep = 0; rep < reps; ++rep) {
    Design current = *legal;
    std::string snapPath = legalPath;
    Timer timer;
    for (std::size_t k = 0; k < schedule.size(); ++k) {
      applyMoves(current, schedule[k]);
      const std::string editedPath =
          (work / ("edited" + std::to_string(k) + ".mclg")).string();
      const std::string outPath =
          (work / ("out" + std::to_string(k) + ".mclg")).string();
      if (!saveDesign(current, editedPath) ||
          !runCli(cli + " legalize --in '" + editedPath + "' --eco-from '" +
                  snapPath + "' --out '" + outPath + "' > /dev/null 2>&1")) {
        std::fprintf(stderr, "bench_serve: CLI eco request %zu failed\n", k);
        return 1;
      }
      auto out = loadDesign(outPath);
      if (!out) {
        std::fprintf(stderr, "bench_serve: cannot reload %s\n",
                     outPath.c_str());
        return 1;
      }
      current = std::move(*out);
      snapPath = outPath;  // commit: this output is the next snapshot
      if (rep == 0) spawnHashes.push_back(placementHash(current));
    }
    spawnSeconds = std::min(spawnSeconds, timer.seconds());
  }
  std::printf("process-per-request %.3fs (%.3fs/request; initial legalize "
              "%.3fs)\n", spawnSeconds, spawnSeconds / kRequests,
              spawnLegalizeSeconds);

  // --- Resident daemon ------------------------------------------------------
  // Load once through a real server connection, then stream the same
  // requests as frames, committing after each one. Each rep loads a fresh
  // tenant (the initial legalize is not part of the per-request timing), so
  // every rep replays the identical request stream against identical state.
  ServeServer server{ServeConfig{}};
  ResidentClient client(server);

  std::vector<std::uint64_t> serveHashes;
  double serveSeconds = 1e18;
  double residentLoadSeconds = 0.0;
  std::uint64_t id = 1;
  for (int rep = 0; rep < reps; ++rep) {
    const std::string tenant = "bench" + std::to_string(rep);
    LoadDesignRequest load;
    load.id = id++;
    load.tenant = tenant;
    load.designText = baseText;
    Timer residentLoadTimer;
    const ServeResponse loaded =
        client.roundTrip(FrameType::LoadDesign, serializeLoadDesign(load));
    if (rep == 0) residentLoadSeconds = residentLoadTimer.seconds();
    if (!serveStatusOk(loaded.status)) {
      std::fprintf(stderr, "bench_serve: LoadDesign failed: %s\n",
                   loaded.error.c_str());
      return 1;
    }
    Timer timer;
    for (std::size_t k = 0; k < schedule.size(); ++k) {
      EcoDeltaRequest eco;
      eco.id = id++;
      eco.tenant = tenant;
      eco.ops = schedule[k];
      const ServeResponse response =
          client.roundTrip(FrameType::EcoDelta, serializeEcoDelta(eco));
      if (!serveStatusOk(response.status)) {
        std::fprintf(stderr, "bench_serve: EcoDelta %zu failed: %s\n", k,
                     response.error.c_str());
        return 1;
      }
      TenantRequest commit;
      commit.id = id++;
      commit.tenant = tenant;
      const ServeResponse committed = client.roundTrip(
          FrameType::Commit, serializeTenantRequest(commit));
      if (!serveStatusOk(committed.status)) {
        std::fprintf(stderr, "bench_serve: Commit %zu failed\n", k);
        return 1;
      }
      if (rep == 0) serveHashes.push_back(response.hash);
    }
    serveSeconds = std::min(serveSeconds, timer.seconds());
  }
  std::printf("resident            %.3fs (%.3fs/request; load %.3fs)\n",
              serveSeconds, serveSeconds / kRequests, residentLoadSeconds);

  const double speedup = serveSeconds > 0 ? spawnSeconds / serveSeconds : 0.0;
  const bool identical = serveHashes == spawnHashes;
  std::printf("resident speedup: %.2fx; identical to CLI runs: %d\n", speedup,
              identical);

  std::vector<std::pair<std::string, double>> values;
  values.emplace_back("cells", static_cast<double>(base.numCells()));
  values.emplace_back("requests", static_cast<double>(kRequests));
  values.emplace_back("reps", static_cast<double>(reps));
  values.emplace_back("serve_seconds", serveSeconds);
  values.emplace_back("spawn_seconds", spawnSeconds);
  values.emplace_back("serve_request_seconds", serveSeconds / kRequests);
  values.emplace_back("spawn_request_seconds", spawnSeconds / kRequests);
  values.emplace_back("resident_load_seconds", residentLoadSeconds);
  values.emplace_back("spawn_legalize_seconds", spawnLegalizeSeconds);
  values.emplace_back("resident_speedup", speedup);
  values.emplace_back("serve.identical", identical ? 1.0 : 0.0);
  bench::maybeWriteBenchReport("bench_serve", values);

  std::error_code ec;
  std::filesystem::remove_all(work, ec);
  return identical ? 0 : 1;
}
