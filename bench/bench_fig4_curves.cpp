// Fig. 4 reproduction: the four displacement-curve types, printed as ASCII
// plots plus their breakpoints, and the curve-sum minimization on a worked
// example (the MGL inner loop of Algorithm 1).

#include <cstdio>

#include "geometry/disp_curve.hpp"

namespace {

void plot(const char* title, const mclg::DispCurve& curve, double lo,
          double hi) {
  std::printf("%s\n", title);
  std::printf("  breakpoints:");
  for (int i = 0; i < curve.numBreakpoints(); ++i) {
    std::printf(" %.1f", curve.breakpoint(i));
  }
  std::printf("\n");
  // 13 sample rows, 48-column ASCII plot (x: target position, #: value).
  double maxVal = 0.0;
  for (double x = lo; x <= hi; x += (hi - lo) / 48.0) {
    maxVal = std::max(maxVal, curve.value(x));
  }
  for (int step = 0; step <= 12; ++step) {
    const double x = lo + (hi - lo) * step / 12.0;
    const double v = curve.value(x);
    const int bars =
        maxVal > 0 ? static_cast<int>(v / maxVal * 40.0 + 0.5) : 0;
    std::printf("  x=%6.1f |", x);
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf(" %.2f\n", v);
  }
}

}  // namespace

int main() {
  using mclg::CurveSum;
  using mclg::DispCurve;
  std::printf("=== Fig. 4: the four displacement curve types ===\n");
  // Right-side cell at cur=20, off=4.
  plot("Type A (right cell, GP <= current: flat then rising)",
       DispCurve::rightPush(20, 14, 4), 0, 40);
  plot("Type C (right cell, GP > current: flat, falling, rising)",
       DispCurve::rightPush(20, 28, 4), 0, 40);
  // Left-side cell at cur=20, off=4.
  plot("Type B (left cell, GP >= current: falling then flat)",
       DispCurve::leftPush(20, 26, 4), 0, 40);
  plot("Type D (left cell, GP < current: V then flat)",
       DispCurve::leftPush(20, 14, 4), 0, 40);

  // Worked Algorithm-1 example: target V at 18 plus two locals.
  CurveSum sum;
  sum.add(DispCurve::targetV(18));
  sum.add(DispCurve::rightPush(22, 30, 3));  // type C: pushable toward GP
  sum.add(DispCurve::leftPush(12, 13, 3));   // type B
  const auto best = sum.minimizeOnSites(0, 40);
  std::printf("sum minimization: best x=%lld, total displacement %.2f\n",
              static_cast<long long>(best.x), best.value);
  return best.feasible ? 0 : 1;
}
