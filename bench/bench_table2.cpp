// Table 2 reproduction: total displacement (sites) of MLL [12], the ordered
// Abacus-style legalizer [7], the ordered+MCF proxy for [9], and our flow,
// on the 20-design modified-ISPD-2015 suite (10% double-height cells, no
// fences/routability). Paper normalized averages: [12] 1.20, [7] 1.17,
// [9] 1.09, ours 1.00 — with ours also fastest.

#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "gen/ispd15_suite.hpp"
#include "legal/pipeline.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

struct RunResult {
  double totalDisp = 0.0;
  double seconds = 0.0;
  bool failed = false;
};

template <typename Fn>
RunResult runOn(const mclg::GenSpec& spec, Fn legalizer) {
  mclg::Design design = mclg::generate(spec);
  mclg::SegmentMap segments(design);
  mclg::PlacementState state(design);
  mclg::Timer timer;
  const int failed = legalizer(state, segments);
  RunResult result;
  result.seconds = timer.seconds();
  result.failed = failed != 0;
  result.totalDisp = mclg::displacementStats(design).totalSites;
  return result;
}

}  // namespace

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.01);
  const int limit = bench::designLimitFromEnv(20);
  std::printf(
      "=== Table 2: total displacement vs state-of-the-art (scale %.3f) "
      "===\n",
      scale);

  Table table({"benchmark", "#cells", "dens", "MLL[12]", "Abacus[7]",
               "Ordered[9]", "Ours", "t.MLL", "t.[7]", "t.[9]", "t.Ours"});
  std::vector<double> mll, abacus, ordered, ours;

  auto suite = ispd15Suite(scale);
  if (static_cast<int>(suite.size()) > limit) suite.resize(limit);
  for (const auto& entry : suite) {
    const auto rMll = runOn(entry.spec, [](PlacementState& s, const SegmentMap& m) {
      return legalizeMll(s, m, false).failed;
    });
    const auto rAbacus =
        runOn(entry.spec, [](PlacementState& s, const SegmentMap& m) {
          return legalizeAbacusMulti(s, m).failed;
        });
    const auto rOrdered =
        runOn(entry.spec, [](PlacementState& s, const SegmentMap& m) {
          return legalizeOrderedQp(s, m).failed;  // [9]: quadratic objective
        });
    const auto rOurs =
        runOn(entry.spec, [](PlacementState& s, const SegmentMap& m) {
          return legalize(s, m, PipelineConfig::totalDisplacement()).mgl.failed;
        });

    const int total =
        entry.spec.cellsPerHeight[0] + entry.spec.cellsPerHeight[1];
    table.addRow({entry.spec.name, Table::fmt(static_cast<long long>(total)),
                  Table::pct(entry.spec.density, 0),
                  Table::fmt(rMll.totalDisp, 0), Table::fmt(rAbacus.totalDisp, 0),
                  Table::fmt(rOrdered.totalDisp, 0),
                  Table::fmt(rOurs.totalDisp, 0), Table::fmt(rMll.seconds, 2),
                  Table::fmt(rAbacus.seconds, 2),
                  Table::fmt(rOrdered.seconds, 2),
                  Table::fmt(rOurs.seconds, 2)});
    mll.push_back(rMll.totalDisp);
    abacus.push_back(rAbacus.totalDisp);
    ordered.push_back(rOrdered.totalDisp);
    ours.push_back(rOurs.totalDisp);
    std::fprintf(stderr, "[table2] %s done\n", entry.spec.name.c_str());
  }
  std::printf("%s", table.toString().c_str());
  std::printf(
      "Norm. avg (vs ours): MLL %.2f, Abacus %.2f, Ordered %.2f, Ours 1.00\n",
      bench::normAvg(mll, ours), bench::normAvg(abacus, ours),
      bench::normAvg(ordered, ours));
  std::printf(
      "Paper reference    : [12] 1.20, [7] 1.17, [9] 1.09, Ours 1.00 "
      "(Table 2)\n");
  bench::maybeWriteBenchReport(
      "table2", {{"norm_mll", bench::normAvg(mll, ours)},
                 {"norm_abacus", bench::normAvg(abacus, ours)},
                 {"norm_ordered", bench::normAvg(ordered, ours)}});
  return 0;
}
