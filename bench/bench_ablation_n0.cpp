// Ablation: the n0 weight of the §3.3.1 max-displacement extension in the
// fixed-row-&-order MCF — trading average displacement against the maximum.

#include <cstdio>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "gen/iccad17_suite.hpp"
#include "legal/maxdisp/matching_opt.hpp"
#include "legal/mcfopt/fixed_row_order.hpp"
#include "legal/mgl/mgl_legalizer.hpp"
#include "parsers/simple_format.hpp"
#include "util/table.hpp"

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.03);
  std::printf("=== Ablation: max-disp weight n0 in the MCF (scale %.3f) ===\n",
              scale);

  const GenSpec spec = iccad17Suite(scale)[5].spec;  // mixed heights, no fences
  Design base = generate(spec);
  {
    SegmentMap segments(base);
    PlacementState state(base);
    MglLegalizer legalizer(state, segments, {});
    legalizer.run();
    // Run stage 2 first (as the pipeline does): the matching removes the
    // y-displacement tail that no x-only refinement could touch, leaving
    // the n0 term a movable maximum to optimize.
    MaxDispConfig matchConfig;
    matchConfig.delta0 = 5.0;
    optimizeMaxDisplacement(state, matchConfig);
  }
  const std::string snapshot = writeSimpleFormat(base);
  const auto statsBase = displacementStats(base);
  std::printf("after MGL + matching: avg %.3f, max %.1f\n", statsBase.average,
              statsBase.maximum);
  // Decompose the argmax cell: the §3.3.1 term can only act on the |dx|
  // part, so when dy dominates (or the cell is wall-pinned) a flat sweep is
  // the *expected* result — the paper's extension is a tie-breaker, not a
  // row changer.
  {
    CellId argmax = kInvalidCell;
    double best = -1.0;
    for (CellId c = 0; c < base.numCells(); ++c) {
      if (base.cells[c].fixed || !base.cells[c].placed) continue;
      if (base.displacement(c) > best) {
        best = base.displacement(c);
        argmax = c;
      }
    }
    const auto& cell = base.cells[argmax];
    std::printf(
        "argmax cell %d: dx %.1f rows, dy %.1f rows (x-part is what n0 can "
        "reduce)\n",
        argmax,
        base.siteWidthFactor * std::abs(static_cast<double>(cell.x) - cell.gpX),
        std::abs(static_cast<double>(cell.y) - cell.gpY));
  }

  // maxDisp can be dominated by (fixed) y displacement that no x-only step
  // can touch; maxXDisp isolates the part the extension can act on.
  Table table({"n0", "avgDisp", "maxDisp", "maxXDisp", "cellsMoved"});
  for (const double n0 : {0.0, 1.0, 4.0, 16.0, 64.0, 256.0}) {
    auto design = readSimpleFormat(snapshot);
    SegmentMap segments(*design);
    PlacementState state(*design);
    FixedRowOrderConfig config;
    config.contestWeights = true;
    // Wide ranges (no rail pinning) so the n0 term has room to act; the
    // extension only matters when the most-displaced cells can still move.
    config.routability = false;
    config.maxDispWeight = n0;
    const auto stats = optimizeFixedRowOrder(state, segments, config);
    const auto disp = displacementStats(*design);
    double maxX = 0.0;
    for (CellId c = 0; c < design->numCells(); ++c) {
      const auto& cell = design->cells[c];
      if (cell.fixed || !cell.placed) continue;
      maxX = std::max(maxX, design->siteWidthFactor *
                                std::abs(static_cast<double>(cell.x) -
                                         cell.gpX));
    }
    table.addRow({Table::fmt(n0, 0), Table::fmt(disp.average, 4),
                  Table::fmt(disp.maximum, 1), Table::fmt(maxX, 1),
                  Table::fmt(static_cast<long long>(stats.cellsMoved))});
  }
  std::printf("%s", table.toString().c_str());
  return 0;
}
