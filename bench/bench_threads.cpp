// §3.5 scaling study: MGL runtime vs thread count, with the determinism
// check the paper claims (results identical across thread counts for a
// fixed scheduler batch capacity).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "gen/iccad17_suite.hpp"
#include "legal/mgl/mgl_legalizer.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.05);
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("=== MGL thread scaling (scale %.3f, %u hardware threads) ===\n",
              scale, cores);
  if (cores <= 1) {
    std::printf(
        "note: single-core machine — speedups cannot manifest; this bench "
        "then only demonstrates the thread-count determinism of §3.5\n");
  }

  const GenSpec spec = iccad17Suite(scale)[4].spec;  // des_perf_b_md2 style
  Table table({"threads", "seconds", "speedup", "avgDisp", "identical"});
  std::vector<std::pair<std::string, double>> values;
  double baseSeconds = 0.0;
  // Determinism is claimed within the scheduler (threads >= 2, fixed batch
  // capacity); the sequential path visits cells in a different order, so it
  // serves as the timing baseline only.
  std::vector<std::int64_t> refX, refY;
  for (const int threads : {1, 2, 4, 8}) {
    Design design = generate(spec);
    SegmentMap segments(design);
    PlacementState state(design);
    MglConfig config;
    config.numThreads = threads;
    config.batchCap = 16;  // fixed so all runs are comparable (§3.5)
    Timer timer;
    MglLegalizer legalizer(state, segments, config);
    legalizer.run();
    const double seconds = timer.seconds();
    if (threads == 1) baseSeconds = seconds;

    bool identical = true;
    if (threads == 1) {
      // baseline timing row; not part of the determinism check
    } else if (refX.empty()) {
      for (const auto& cell : design.cells) {
        refX.push_back(cell.x);
        refY.push_back(cell.y);
      }
    } else {
      for (CellId c = 0; c < design.numCells(); ++c) {
        if (design.cells[c].x != refX[static_cast<std::size_t>(c)] ||
            design.cells[c].y != refY[static_cast<std::size_t>(c)]) {
          identical = false;
          break;
        }
      }
    }
    const auto disp = displacementStats(design);
    table.addRow({Table::fmt(static_cast<long long>(threads)),
                  Table::fmt(seconds, 2), Table::fmt(baseSeconds / seconds, 2),
                  Table::fmt(disp.average, 3),
                  threads == 1 ? "n/a" : (identical ? "yes" : "NO")});
    const std::string p = "t" + std::to_string(threads) + ".";
    values.emplace_back(p + "seconds", seconds);
    values.emplace_back(p + "avg_disp", disp.average);
    if (threads > 1) values.emplace_back(p + "identical", identical ? 1 : 0);
  }
  std::printf("%s", table.toString().c_str());
  std::printf("note: threads=1 runs the sequential path; >=2 runs the "
              "batch scheduler, so compare speedups within the >=2 rows\n");
  bench::maybeWriteBenchReport("bench_threads", values);
  return 0;
}
