// Incremental ECO re-legalization speedup (docs/ECO.md): on the
// bench_scaling design, perturb <= 5% of the movable cells' GP targets and
// compare a full pipeline re-run against `ecoRelegalize` from the legal
// snapshot. The PR 4 acceptance floor is a 3x speedup at this dirty
// fraction, gated by scripts/perf_gate.py on the committed BENCH_PR4.json
// (`--ratio bench_eco.full_seconds/eco_seconds>=3`).
//
// With MCLG_BENCH_REPORT set, emits bench_eco.json with: the full-run and
// incremental timings (best of MCLG_BENCH_REPS runs, default 3), the delta
// / warm-restart counters, and `exact.identical` — 1 iff `--eco-exact`
// semantics (adopting the shadow full run) produced a placement
// byte-identical to legalizing the perturbed design from scratch. Keys
// ending ".identical" are auto-gated to 1 by perf_gate.py.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "gen/benchmark_gen.hpp"
#include "legal/eco/eco_driver.hpp"
#include "legal/pipeline.hpp"
#include "util/timer.hpp"

namespace {

int repsFromEnv() {
  if (const char* env = std::getenv("MCLG_BENCH_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

void unplaceMovable(mclg::PlacementState& state) {
  const mclg::Design& design = state.design();
  for (mclg::CellId c = 0; c < design.numCells(); ++c) {
    if (!design.cells[c].fixed && design.cells[c].placed) state.remove(c);
  }
}

}  // namespace

int main() {
  using namespace mclg;
  const int base = static_cast<int>(2000 * bench::scaleFromEnv(1.0));
  const int cells = base * 8;  // bench_scaling's largest config
  GenSpec spec;
  spec.name = "eco_scale_" + std::to_string(cells);
  spec.cellsPerHeight = {cells * 85 / 100, cells * 9 / 100, cells * 4 / 100,
                         cells * 2 / 100};
  spec.density = 0.55;
  spec.numFences = 2;
  spec.seed = 1000 + static_cast<std::uint64_t>(cells);

  // Legal snapshot: the "before ECO" placement every run diffs against.
  Design snapshot = generate(spec);
  {
    SegmentMap segments(snapshot);
    PlacementState state(snapshot);
    legalize(state, segments, PipelineConfig::contest());
  }

  // The ECO edit burst: jitter the GP target of ~5% of the movable cells,
  // clustered around three hotspots (the shape of a real ECO loop — timing
  // fixes concentrate in a few regions; a uniformly scattered burst would
  // dirty every window and is exactly what the planner's coversCore
  // bailout hands to the full pipeline). Deterministic RNG so the
  // committed report is reproducible.
  Design edited = snapshot;
  std::vector<CellId> movable;
  for (CellId c = 0; c < edited.numCells(); ++c) {
    if (!edited.cells[c].fixed) movable.push_back(c);
  }
  const double hotspots[3][2] = {
      {0.20 * edited.numSitesX, 0.25 * edited.numRows},
      {0.50 * edited.numSitesX, 0.70 * edited.numRows},
      {0.80 * edited.numSitesX, 0.35 * edited.numRows}};
  const auto hotspotDistance = [&](CellId c) {
    const Cell& cell = edited.cells[c];
    double best = 1e18;
    for (const auto& h : hotspots) {
      const double dx = (cell.gpX - h[0]) * edited.siteWidthFactor;
      const double dy = cell.gpY - h[1];
      best = std::min(best, dx * dx + dy * dy);
    }
    return best;
  };
  std::sort(movable.begin(), movable.end(), [&](CellId a, CellId b) {
    const double da = hotspotDistance(a), db = hotspotDistance(b);
    if (da != db) return da < db;
    return a < b;
  });
  std::mt19937_64 rng(edited.cells.size() * 7919ULL + 17);
  const int perturbed = static_cast<int>(movable.size()) * 5 / 100;
  std::uniform_int_distribution<int> dx(-24, 24), dy(-6, 6);
  for (int i = 0; i < perturbed; ++i) {
    Cell& cell = edited.cells[movable[i]];
    cell.gpX = std::clamp(cell.gpX + dx(rng), 0.0,
                          static_cast<double>(edited.numSitesX - 1));
    cell.gpY = std::clamp(cell.gpY + dy(rng), 0.0,
                          static_cast<double>(edited.numRows - 1));
  }
  edited.invalidateCaches();

  const int reps = repsFromEnv();
  std::printf("=== ECO incremental vs full re-legalization ===\n");
  std::printf("cells=%d perturbed=%d reps=%d\n", cells, perturbed, reps);

  // Full reference: re-legalize the perturbed design from scratch.
  double fullSeconds = 0.0;
  std::uint64_t fullHash = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Design design = edited;
    SegmentMap segments(design);
    PlacementState state(design);
    unplaceMovable(state);
    Timer timer;
    legalize(state, segments, PipelineConfig::contest());
    const double seconds = timer.seconds();
    fullSeconds = rep == 0 ? seconds : std::min(fullSeconds, seconds);
    if (rep == 0) fullHash = placementHash(design);
    std::fprintf(stderr, "[full] rep=%d %.3fs\n", rep, seconds);
  }

  // Incremental path (no shadow run: what --eco-from costs by default).
  double ecoSeconds = 0.0;
  EcoStats ecoStats;
  for (int rep = 0; rep < reps; ++rep) {
    Design design = edited;
    SegmentMap segments(design);
    PlacementState state(design);
    EcoConfig config;
    config.pipeline = PipelineConfig::contest();
    Timer timer;
    const EcoStats stats = ecoRelegalize(state, segments, snapshot, config);
    const double seconds = timer.seconds();
    ecoSeconds = rep == 0 ? seconds : std::min(ecoSeconds, seconds);
    if (rep == 0) ecoStats = stats;
    std::fprintf(stderr, "[eco] rep=%d %.3fs\n", rep, seconds);
  }

  // Exact mode must be byte-identical to the from-scratch reference.
  std::uint64_t exactHash = 0;
  {
    Design design = edited;
    SegmentMap segments(design);
    PlacementState state(design);
    EcoConfig config;
    config.pipeline = PipelineConfig::contest();
    config.exact = true;
    ecoRelegalize(state, segments, snapshot, config);
    exactHash = placementHash(design);
  }
  const bool exactIdentical = exactHash == fullHash;

  const double speedup = ecoSeconds > 0.0 ? fullSeconds / ecoSeconds : 0.0;
  std::printf("full    %.3fs (hash %016llx)\n", fullSeconds,
              static_cast<unsigned long long>(fullHash));
  std::printf("eco     %.3fs (speedup %.2fx, dirty=%d spilled=%d "
              "windows=%d segments=%d warm=%lld cold=%lld fullFallback=%d)\n",
              ecoSeconds, speedup, ecoStats.dirtyCells, ecoStats.spilledCells,
              ecoStats.dirtyWindows, ecoStats.dirtySegments,
              ecoStats.warmRestarts, ecoStats.coldFallbacks,
              ecoStats.usedFullRun ? 1 : 0);
  std::printf("exact   hash %016llx -> identical=%d\n",
              static_cast<unsigned long long>(exactHash),
              exactIdentical ? 1 : 0);

  std::vector<std::pair<std::string, double>> values;
  values.emplace_back("cells", static_cast<double>(cells));
  values.emplace_back("perturbed_cells", static_cast<double>(perturbed));
  values.emplace_back("reps", static_cast<double>(reps));
  values.emplace_back("full_seconds", fullSeconds);
  values.emplace_back("eco_seconds", ecoSeconds);
  values.emplace_back("dirty_cells", static_cast<double>(ecoStats.dirtyCells));
  values.emplace_back("spilled_cells",
                      static_cast<double>(ecoStats.spilledCells));
  values.emplace_back("dirty_windows",
                      static_cast<double>(ecoStats.dirtyWindows));
  values.emplace_back("dirty_segments",
                      static_cast<double>(ecoStats.dirtySegments));
  values.emplace_back("matched_cells_moved",
                      static_cast<double>(ecoStats.matchedCellsMoved));
  values.emplace_back("ripup_improved",
                      static_cast<double>(ecoStats.ripupImproved));
  values.emplace_back("warm_restarts",
                      static_cast<double>(ecoStats.warmRestarts));
  values.emplace_back("cold_fallbacks",
                      static_cast<double>(ecoStats.coldFallbacks));
  values.emplace_back("used_full_run",
                      ecoStats.usedFullRun ? 1.0 : 0.0);
  values.emplace_back("exact.identical", exactIdentical ? 1.0 : 0.0);
  bench::maybeWriteBenchReport("bench_eco", values);
  return exactIdentical && !ecoStats.usedFullRun ? 0 : 1;
}
