// Shared helpers for the table-reproduction benches.
//
// All suite benches run on *scaled-down* regenerations of the published
// benchmarks by default so the full harness finishes in minutes; set
// MCLG_BENCH_SCALE (e.g. 1.0) to run the published sizes, and
// MCLG_BENCH_DESIGNS to limit the number of designs.
// Set MCLG_BENCH_REPORT to a directory to drop a machine-readable
// "kind":"bench" JSON report per table bench (see docs/OBSERVABILITY.md).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/run_report.hpp"

namespace mclg::bench {

inline double scaleFromEnv(double defaultScale) {
  if (const char* env = std::getenv("MCLG_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return defaultScale;
}

inline int designLimitFromEnv(int defaultLimit) {
  if (const char* env = std::getenv("MCLG_BENCH_DESIGNS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return defaultLimit;
}

/// Geometric-mean style "Norm. Avg." used by the paper's tables: mean of
/// per-design ratios value[i]/reference[i].
inline double normAvg(const std::vector<double>& value,
                      const std::vector<double>& reference) {
  if (value.empty()) return 0.0;
  double sum = 0.0;
  int counted = 0;
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (reference[i] > 0.0) {
      sum += value[i] / reference[i];
      ++counted;
    }
  }
  return counted > 0 ? sum / counted : 0.0;
}

/// When MCLG_BENCH_REPORT names a directory, write the bench's summary
/// values there as <dir>/<benchName>.json (run-report envelope,
/// "kind":"bench"). No-op otherwise.
inline void maybeWriteBenchReport(
    const std::string& benchName,
    const std::vector<std::pair<std::string, double>>& values) {
  const char* dir = std::getenv("MCLG_BENCH_REPORT");
  if (dir == nullptr || *dir == '\0') return;
  const std::string path = std::string(dir) + "/" + benchName + ".json";
  if (obs::writeBenchReport(path, benchName, values)) {
    std::fprintf(stderr, "bench report: wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "bench report: cannot write %s\n", path.c_str());
  }
}

}  // namespace mclg::bench
