// Google-benchmark microbenchmarks for the performance-critical kernels:
// the two MCF solvers, the curve-sum minimization, sparse assignment, and
// the fixed-row-&-order network build+solve.

#include <benchmark/benchmark.h>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "flow/bipartite_matching.hpp"
#include "flow/hungarian.hpp"
#include "flow/mcf.hpp"
#include "gen/benchmark_gen.hpp"
#include "geometry/disp_curve.hpp"
#include "legal/mcfopt/fixed_row_order.hpp"
#include "legal/mgl/mgl_legalizer.hpp"
#include "util/random.hpp"

namespace {

mclg::McfProblem randomTransportProblem(int producers, int consumers,
                                        std::uint64_t seed) {
  mclg::Rng rng(seed);
  mclg::McfProblem p;
  p.addNodes(producers + consumers);
  for (int i = 0; i < producers; ++i) {
    const auto supply = rng.uniformInt(1, 10);
    p.addSupply(i, supply);
    p.addSupply(producers + static_cast<int>(rng.uniformInt(0, consumers - 1)),
                -supply);
  }
  for (int i = 0; i < producers; ++i) {
    for (int j = 0; j < consumers; ++j) {
      if (rng.chance(0.3)) {
        p.addArc(i, producers + j, rng.uniformInt(5, 30),
                 rng.uniformInt(1, 100));
      }
    }
    p.addArc(i, producers + static_cast<int>(rng.uniformInt(0, consumers - 1)),
             mclg::kInfiniteCap, 500);  // feasibility backstop
  }
  return p;
}

void BM_NetworkSimplex(benchmark::State& state) {
  const auto p = randomTransportProblem(static_cast<int>(state.range(0)),
                                        static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mclg::NetworkSimplex::solve(p));
  }
}
BENCHMARK(BM_NetworkSimplex)->Arg(50)->Arg(200)->Arg(800);

// Warm restart on the same topology with perturbed costs (the ablation-sweep
// pattern): one cold solve outside the loop primes the basis, then every
// iteration re-solves a cost-jittered copy warm. Compare per-iteration time
// against BM_NetworkSimplex at the same Arg for the warm-start savings.
void BM_NetworkSimplexWarm(benchmark::State& state) {
  const auto base = randomTransportProblem(static_cast<int>(state.range(0)),
                                           static_cast<int>(state.range(0)), 7);
  mclg::NetworkSimplexSolver solver;
  benchmark::DoNotOptimize(solver.solve(base));
  mclg::Rng rng(11);
  std::uint64_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    mclg::McfProblem q;
    q.addNodes(base.numNodes());
    for (int i = 0; i < base.numNodes(); ++i) q.addSupply(i, base.supply(i));
    for (int a = 0; a < base.numArcs(); ++a) {
      const auto& arc = base.arc(a);
      q.addArc(arc.src, arc.dst, arc.cap, arc.cost + rng.uniformInt(-2, 2));
    }
    ++round;
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.solveWarm(q));
  }
  state.counters["warm_pivots_per_solve"] =
      round ? static_cast<double>(solver.stats().warmPivots) /
                  static_cast<double>(round)
            : 0.0;
  state.counters["warm_rejected"] =
      static_cast<double>(solver.stats().warmRejected);
}
BENCHMARK(BM_NetworkSimplexWarm)->Arg(50)->Arg(200)->Arg(800);

void BM_SspSolver(benchmark::State& state) {
  const auto p = randomTransportProblem(static_cast<int>(state.range(0)),
                                        static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mclg::SspSolver::solve(p));
  }
}
BENCHMARK(BM_SspSolver)->Arg(50)->Arg(200);

// The network-simplex-vs-cost-scaling comparison of Király & Kovács (the
// paper's MCF solver reference), on our instances.
void BM_CostScaling(benchmark::State& state) {
  const auto p = randomTransportProblem(static_cast<int>(state.range(0)),
                                        static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mclg::CostScalingSolver::solve(p));
  }
}
BENCHMARK(BM_CostScaling)->Arg(50)->Arg(200);

void BM_CurveSumMinimize(benchmark::State& state) {
  mclg::Rng rng(11);
  mclg::CurveSum sum;
  for (int i = 0; i < state.range(0); ++i) {
    sum.add(mclg::DispCurve::rightPush(rng.uniformReal(0, 100),
                                       rng.uniformReal(0, 100),
                                       rng.uniformReal(1, 10)));
    sum.add(mclg::DispCurve::leftPush(rng.uniformReal(0, 100),
                                      rng.uniformReal(0, 100),
                                      rng.uniformReal(1, 10)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sum.minimizeOnSites(0, 100));
  }
}
BENCHMARK(BM_CurveSumMinimize)->Arg(8)->Arg(32)->Arg(128);

void BM_DenseAssignmentHungarian(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mclg::Rng rng(13);
  std::vector<mclg::CostValue> cost(static_cast<std::size_t>(n) * n);
  for (auto& c : cost) c = rng.uniformInt(0, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mclg::solveAssignmentDense(n, n, cost));
  }
}
BENCHMARK(BM_DenseAssignmentHungarian)->Arg(100)->Arg(400);

void BM_DenseAssignmentViaMcf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mclg::Rng rng(13);
  std::vector<mclg::AssignmentEdge> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      edges.push_back({i, j, rng.uniformInt(0, 1000)});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mclg::solveAssignment(n, n, edges));
  }
}
BENCHMARK(BM_DenseAssignmentViaMcf)->Arg(100)->Arg(400);

void BM_SparseAssignment(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  mclg::Rng rng(13);
  std::vector<mclg::AssignmentEdge> edges;
  for (int i = 0; i < n; ++i) {
    edges.push_back({i, i, rng.uniformInt(0, 100)});  // identity backstop
    for (int k = 0; k < 8; ++k) {
      edges.push_back({i, static_cast<int>(rng.uniformInt(0, n - 1)),
                       rng.uniformInt(0, 1000)});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mclg::solveAssignment(n, n, edges));
  }
}
BENCHMARK(BM_SparseAssignment)->Arg(100)->Arg(400);

void BM_MglLegalize(benchmark::State& state) {
  mclg::GenSpec spec;
  const int cells = static_cast<int>(state.range(0));
  spec.cellsPerHeight = {cells * 8 / 10, cells / 10, cells / 20, cells / 20};
  spec.density = 0.6;
  spec.seed = 17;
  for (auto _ : state) {
    state.PauseTiming();
    mclg::Design design = mclg::generate(spec);
    mclg::SegmentMap segments(design);
    mclg::PlacementState placement(design);
    state.ResumeTiming();
    mclg::MglLegalizer legalizer(placement, segments, {});
    benchmark::DoNotOptimize(legalizer.run());
  }
}
BENCHMARK(BM_MglLegalize)->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_FixedRowOrder(benchmark::State& state) {
  mclg::GenSpec spec;
  const int cells = static_cast<int>(state.range(0));
  spec.cellsPerHeight = {cells * 9 / 10, cells / 10, 0, 0};
  spec.density = 0.6;
  spec.seed = 19;
  mclg::Design design = mclg::generate(spec);
  mclg::SegmentMap segments(design);
  mclg::PlacementState placement(design);
  mclg::MglLegalizer legalizer(placement, segments, {});
  legalizer.run();
  const std::string snapshot = [&] {
    // capture positions to restore between iterations
    std::string s;
    for (const auto& cell : design.cells) {
      s += std::to_string(cell.x) + "," + std::to_string(cell.y) + ";";
    }
    return s;
  }();
  (void)snapshot;
  mclg::FixedRowOrderConfig config;
  config.contestWeights = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mclg::optimizeFixedRowOrder(placement, segments, config));
  }
}
BENCHMARK(BM_FixedRowOrder)->Arg(2000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
