// Ablation: MGL initial window size vs displacement quality and runtime.
// Small windows are fast but miss good insertion points (more expansions);
// large windows search more candidates per cell.

#include <cstdio>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "gen/iccad17_suite.hpp"
#include "legal/mgl/mgl_legalizer.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.03);
  std::printf("=== Ablation: MGL window size (scale %.3f) ===\n", scale);

  const GenSpec spec = iccad17Suite(scale)[1].spec;  // des_perf_a_md1 style
  Table table({"window(WxH)", "avgDisp", "maxDisp", "expansions", "seconds"});
  const std::pair<int, int> sizes[] = {{8, 4}, {16, 6}, {24, 8}, {48, 16},
                                       {96, 32}};
  for (const auto& [w, h] : sizes) {
    Design design = generate(spec);
    SegmentMap segments(design);
    PlacementState state(design);
    MglConfig config;
    config.window.initialW = w;
    config.window.initialH = h;
    Timer timer;
    MglLegalizer legalizer(state, segments, config);
    const auto stats = legalizer.run();
    const double seconds = timer.seconds();
    const auto disp = displacementStats(design);
    table.addRow({std::to_string(w) + "x" + std::to_string(h),
                  Table::fmt(disp.average, 3), Table::fmt(disp.maximum, 1),
                  Table::fmt(static_cast<long long>(stats.windowExpansions)),
                  Table::fmt(seconds, 2)});
  }
  std::printf("%s", table.toString().c_str());
  return 0;
}
