// Ablation: the φ threshold δ0 (Eq. 3) of the max-displacement matching.
// Small δ0 attacks the tail aggressively (max drops, average may rise);
// large δ0 degenerates toward a plain min-total-displacement matching.

#include <cstdio>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "gen/iccad17_suite.hpp"
#include "legal/maxdisp/matching_opt.hpp"
#include "legal/mgl/mgl_legalizer.hpp"
#include "parsers/simple_format.hpp"
#include "util/table.hpp"

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.03);
  std::printf("=== Ablation: phi threshold delta0 (scale %.3f) ===\n", scale);

  GenSpec spec = iccad17Suite(scale)[8].spec;
  spec.typesPerHeight = 2;
  Design base = generate(spec);
  {
    SegmentMap segments(base);
    PlacementState state(base);
    MglLegalizer legalizer(state, segments, {});
    legalizer.run();
  }
  const std::string snapshot = writeSimpleFormat(base);
  const auto statsBase = displacementStats(base);
  std::printf("after MGL: avg %.3f, max %.1f\n", statsBase.average,
              statsBase.maximum);

  Table table({"delta0", "avgDisp", "maxDisp", "cellsMoved"});
  for (const double delta0 : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    auto design = readSimpleFormat(snapshot);
    PlacementState state(*design);
    MaxDispConfig config;
    config.delta0 = delta0;
    const auto stats = optimizeMaxDisplacement(state, config);
    const auto disp = displacementStats(*design);
    table.addRow({Table::fmt(delta0, 1), Table::fmt(disp.average, 4),
                  Table::fmt(disp.maximum, 1),
                  Table::fmt(static_cast<long long>(stats.cellsMoved))});
  }
  std::printf("%s", table.toString().c_str());
  return 0;
}
