// Runtime scaling of the full pipeline with design size (the paper reports
// near-linear runtimes up to 1.3M cells on the Table 2 suite), plus the
// perf-regression sweep over thread counts on the largest config.
//
// With MCLG_BENCH_REPORT set, emits bench_scaling.json containing, for the
// largest config at 1/4/8 threads: per-stage seconds (best of
// MCLG_BENCH_REPS runs, default 3), the Eq. 10 score, and the placement
// hash split into two 32-bit halves (so each value is exactly
// representable as a JSON double). scripts/perf_gate.py compares these
// against the committed baseline: hashes and scores must match exactly,
// stage times gate the speedup claims.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "eval/score.hpp"
#include "gen/benchmark_gen.hpp"
#include "legal/pipeline.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

int repsFromEnv() {
  if (const char* env = std::getenv("MCLG_BENCH_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

}  // namespace

int main() {
  using namespace mclg;
  std::printf("=== Pipeline runtime scaling ===\n");
  Table table({"#cells", "t.mgl", "t.matching", "t.mcf", "t.total",
               "us/cell", "avgDisp"});
  const int base = static_cast<int>(
      2000 * bench::scaleFromEnv(1.0));
  GenSpec largest;
  for (const int cells : {base, base * 2, base * 4, base * 8}) {
    GenSpec spec;
    spec.name = "scale_" + std::to_string(cells);
    spec.cellsPerHeight = {cells * 85 / 100, cells * 9 / 100, cells * 4 / 100,
                           cells * 2 / 100};
    spec.density = 0.55;
    spec.numFences = 2;
    spec.seed = 1000 + static_cast<std::uint64_t>(cells);
    largest = spec;
    Design design = generate(spec);
    SegmentMap segments(design);
    PlacementState state(design);
    Timer timer;
    const auto stats = legalize(state, segments, PipelineConfig::contest());
    const double seconds = timer.seconds();
    const auto disp = displacementStats(design);
    table.addRow({Table::fmt(static_cast<long long>(cells)),
                  Table::fmt(stats.secondsMgl, 2),
                  Table::fmt(stats.secondsMaxDisp, 2),
                  Table::fmt(stats.secondsFixedRowOrder, 2),
                  Table::fmt(seconds, 2),
                  Table::fmt(seconds * 1e6 / cells, 1),
                  Table::fmt(disp.average, 3)});
    std::fprintf(stderr, "[scaling] %d cells done\n", cells);
  }
  std::printf("%s", table.toString().c_str());

  // Perf-regression sweep: largest config at 1/4/8 threads. Quality values
  // come from the first run (all runs of a thread count are identical by the
  // determinism guarantee); timings are the best of `reps` runs so the gate
  // is robust to scheduler noise on loaded machines.
  const int reps = repsFromEnv();
  std::vector<std::pair<std::string, double>> values;
  values.emplace_back("cells", static_cast<double>(base * 8));
  values.emplace_back("reps", static_cast<double>(reps));
  Table sweep({"threads", "t.mgl", "t.matching", "t.mcf", "score", "hash"});
  for (const int threads : {1, 4, 8}) {
    double bestMgl = 0.0, bestMaxDisp = 0.0, bestFro = 0.0;
    double score = 0.0;
    std::uint64_t hash = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Design design = generate(largest);
      SegmentMap segments(design);
      PlacementState state(design);
      PipelineConfig config = PipelineConfig::contest();
      config.mgl.numThreads = threads;
      config.maxDisp.numThreads = threads;
      config.fixedRowOrder.numThreads = threads;
      const auto stats = legalize(state, segments, config);
      if (rep == 0) {
        score = evaluateScore(design, segments).score;
        hash = placementHash(design);
        bestMgl = stats.secondsMgl;
        bestMaxDisp = stats.secondsMaxDisp;
        bestFro = stats.secondsFixedRowOrder;
      } else {
        bestMgl = std::min(bestMgl, stats.secondsMgl);
        bestMaxDisp = std::min(bestMaxDisp, stats.secondsMaxDisp);
        bestFro = std::min(bestFro, stats.secondsFixedRowOrder);
      }
      std::fprintf(stderr, "[sweep] threads=%d rep=%d done\n", threads, rep);
    }
    const std::string p = "t" + std::to_string(threads) + ".";
    values.emplace_back(p + "mgl_seconds", bestMgl);
    values.emplace_back(p + "maxdisp_seconds", bestMaxDisp);
    values.emplace_back(p + "mcf_seconds", bestFro);
    values.emplace_back(p + "stages_seconds", bestMaxDisp + bestFro);
    values.emplace_back(p + "score", score);
    values.emplace_back(p + "hash_lo",
                        static_cast<double>(hash & 0xFFFFFFFFULL));
    values.emplace_back(p + "hash_hi", static_cast<double>(hash >> 32));
    char hashText[24];
    std::snprintf(hashText, sizeof hashText, "%016llx",
                  static_cast<unsigned long long>(hash));
    sweep.addRow({Table::fmt(static_cast<long long>(threads)),
                  Table::fmt(bestMgl, 3), Table::fmt(bestMaxDisp, 3),
                  Table::fmt(bestFro, 3), Table::fmt(score, 4), hashText});
  }
  std::printf("=== Largest config, thread sweep (best of %d) ===\n", reps);
  std::printf("%s", sweep.toString().c_str());
  bench::maybeWriteBenchReport("bench_scaling", values);
  return 0;
}
