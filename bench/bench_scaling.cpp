// Runtime scaling of the full pipeline with design size (the paper reports
// near-linear runtimes up to 1.3M cells on the Table 2 suite).

#include <cstdio>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "gen/benchmark_gen.hpp"
#include "legal/pipeline.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace mclg;
  std::printf("=== Pipeline runtime scaling ===\n");
  Table table({"#cells", "t.mgl", "t.matching", "t.mcf", "t.total",
               "us/cell", "avgDisp"});
  const int base = static_cast<int>(
      2000 * bench::scaleFromEnv(1.0));
  for (const int cells : {base, base * 2, base * 4, base * 8}) {
    GenSpec spec;
    spec.name = "scale_" + std::to_string(cells);
    spec.cellsPerHeight = {cells * 85 / 100, cells * 9 / 100, cells * 4 / 100,
                           cells * 2 / 100};
    spec.density = 0.55;
    spec.numFences = 2;
    spec.seed = 1000 + static_cast<std::uint64_t>(cells);
    Design design = generate(spec);
    SegmentMap segments(design);
    PlacementState state(design);
    Timer timer;
    const auto stats = legalize(state, segments, PipelineConfig::contest());
    const double seconds = timer.seconds();
    const auto disp = displacementStats(design);
    table.addRow({Table::fmt(static_cast<long long>(cells)),
                  Table::fmt(stats.secondsMgl, 2),
                  Table::fmt(stats.secondsMaxDisp, 2),
                  Table::fmt(stats.secondsFixedRowOrder, 2),
                  Table::fmt(seconds, 2),
                  Table::fmt(seconds * 1e6 / cells, 1),
                  Table::fmt(disp.average, 3)});
    std::fprintf(stderr, "[scaling] %d cells done\n", cells);
  }
  std::printf("%s", table.toString().c_str());
  return 0;
}
