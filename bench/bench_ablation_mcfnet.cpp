// §3.3 formulation-size comparison: the paper argues its m+1-node /
// 2m+|C_L|+|C_R|+|E|-arc network solves faster than MrDP's 3m+2-node /
// 6m+|E|-arc formulation of the same LP. Reproduce by building and solving
// both on the same legalized designs.

#include <cstdio>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "gen/iccad17_suite.hpp"
#include "legal/mcfopt/fixed_row_order.hpp"
#include "legal/mgl/mgl_legalizer.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.05);
  std::printf(
      "=== Ablation: compact vs MrDP-style MCF network (scale %.3f) ===\n",
      scale);

  Table table({"benchmark", "nodes.c", "arcs.c", "t.compact", "nodes.m",
               "arcs.m", "t.mrdp", "speedup", "same.obj"});
  double totalCompact = 0.0, totalMrdp = 0.0;
  auto suite = iccad17Suite(scale);
  suite.resize(static_cast<std::size_t>(bench::designLimitFromEnv(6)));
  for (const auto& entry : suite) {
    Design design = generate(entry.spec);
    SegmentMap segments(design);
    PlacementState state(design);
    MglLegalizer legalizer(state, segments, {});
    legalizer.run();

    double seconds[2] = {0, 0};
    long double cost[2] = {0, 0};
    int nodes[2] = {0, 0}, arcs[2] = {0, 0};
    for (int variant = 0; variant < 2; ++variant) {
      FixedRowOrderConfig config;
      config.contestWeights = true;
      config.routability = true;
      config.mrdpStyleNetwork = variant == 1;
      Timer timer;
      const auto net = buildFixedRowOrderNetwork(state, segments, config);
      const auto sol = NetworkSimplex::solve(net.problem);
      seconds[variant] = timer.seconds();
      nodes[variant] = net.problem.numNodes();
      arcs[variant] = net.problem.numArcs();
      cost[variant] = sol.totalCost;
    }
    totalCompact += seconds[0];
    totalMrdp += seconds[1];
    table.addRow({entry.spec.name,
                  Table::fmt(static_cast<long long>(nodes[0])),
                  Table::fmt(static_cast<long long>(arcs[0])),
                  Table::fmt(seconds[0], 3),
                  Table::fmt(static_cast<long long>(nodes[1])),
                  Table::fmt(static_cast<long long>(arcs[1])),
                  Table::fmt(seconds[1], 3),
                  Table::fmt(seconds[1] / std::max(1e-9, seconds[0]), 2),
                  std::abs(static_cast<double>(cost[0] - cost[1])) < 1e-3
                      ? "yes"
                      : "NO"});
    std::fprintf(stderr, "[mcfnet] %s done\n", entry.spec.name.c_str());
  }
  std::printf("%s", table.toString().c_str());
  std::printf(
      "total solve time: compact %.2fs vs MrDP-style %.2fs (paper claims "
      "the compact network is faster; same optimum by construction)\n",
      totalCompact, totalMrdp);
  return 0;
}
