// Executor + batch-driver throughput gate (docs/PERFORMANCE.md).
//
// Two claims from the PR 5 acceptance criteria, measured on 8 small designs
// with a private 8-worker executor:
//
//  * Batch throughput: running all 8 designs concurrently (8 in flight,
//    1 stage lane each) must beat the better of the two sequential
//    references (solo runs one after another, at 1 and at 8 threads per
//    design) by the machine's `throughput_target`: 2.0x — the PR
//    acceptance floor, written for >= 4 hardware threads — or, on serial
//    hardware where wall-clock parallel speedup is physically impossible,
//    parity within noise (the machinery must at least not cost
//    throughput). Gated as
//    `--ratio bench_executor.throughput_ratio/throughput_target>=1.0`;
//    the committed report records `hardware_threads` so the target used is
//    auditable.
//  * Determinism: every batch design's placement hash equals the solo run
//    at the same per-design thread count (`batch.identical` for 1 lane,
//    `batch_t8.identical` for 8 lanes, both auto-gated to 1 by
//    perf_gate.py).
//
// Also records the executor's steal / chunk-grab / park counters so the
// committed BENCH_PR5.json documents the work-stealing activity behind the
// numbers. Timings are best-of-MCLG_BENCH_REPS (default 3);
// MCLG_BENCH_SCALE scales the per-design cell count.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "flow/batch_runner.hpp"
#include "gen/benchmark_gen.hpp"
#include "legal/pipeline.hpp"
#include "util/executor/executor.hpp"
#include "util/timer.hpp"

namespace {

int repsFromEnv() {
  if (const char* env = std::getenv("MCLG_BENCH_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

constexpr int kDesigns = 8;
constexpr int kWorkers = 8;

// The throughput floor scales with what the hardware can physically show:
// concurrency cannot beat sequential wall clock without cores to run on.
double throughputTarget(unsigned hardwareThreads) {
  if (hardwareThreads >= 4) return 2.0;  // the PR acceptance criterion
  if (hardwareThreads >= 2) return 1.2;
  return 0.85;  // 1 core: batch must stay within noise of sequential
}

}  // namespace

int main() {
  using namespace mclg;
  const int cells = static_cast<int>(2000 * bench::scaleFromEnv(1.0));
  const int reps = repsFromEnv();

  std::vector<Design> originals;
  originals.reserve(kDesigns);
  for (int d = 0; d < kDesigns; ++d) {
    GenSpec spec;
    spec.name = "exec_d" + std::to_string(d);
    spec.cellsPerHeight = {cells * 85 / 100, cells * 9 / 100,
                           cells * 4 / 100, cells * 2 / 100};
    spec.density = 0.55;
    spec.numFences = 2;
    spec.seed = 5000 + static_cast<std::uint64_t>(d);
    originals.push_back(generate(spec));
  }

  Executor executor(kWorkers);
  const ExecutorRef executorRef(&executor);

  // Sequential references: solo runs back to back, at 1 and at 8 stage
  // lanes per design. The throughput gate compares batch mode against the
  // *faster* of the two, so the claim holds against the best sequential
  // setting a solo user could pick.
  const auto runSequential = [&](int threads, std::vector<std::uint64_t>* out) {
    PipelineConfig config = PipelineConfig::contest();
    config.setThreads(threads);
    config.executor = executorRef;
    double best = 1e18;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<Design> designs = originals;  // fresh, unplaced copies
      Timer timer;
      for (auto& design : designs) {
        SegmentMap segments(design);
        PlacementState state(design);
        legalize(state, segments, config);
      }
      best = std::min(best, timer.seconds());
      if (rep == 0 && out != nullptr) {
        for (const auto& design : designs) {
          out->push_back(placementHash(design));
        }
      }
    }
    return best;
  };

  const auto runBatched = [&](int threadsPerDesign,
                              std::vector<std::uint64_t>* out) {
    BatchRunConfig config;
    config.pipeline = PipelineConfig::contest();
    config.threadsPerDesign = threadsPerDesign;
    config.maxInFlight = kDesigns;
    config.executor = executorRef;
    double best = 1e18;
    for (int rep = 0; rep < reps; ++rep) {
      std::vector<Design> designs = originals;
      std::vector<std::pair<std::string, Design*>> refs;
      for (auto& design : designs) refs.emplace_back(design.name, &design);
      Timer timer;
      const auto results = runBatch(refs, config);
      best = std::min(best, timer.seconds());
      if (rep == 0 && out != nullptr) {
        for (const auto& result : results) {
          out->push_back(result.ok ? result.placementHash : 0);
        }
      }
    }
    return best;
  };

  std::printf("=== executor batch throughput vs sequential solo runs ===\n");
  std::printf("designs=%d cells=%d workers=%d reps=%d\n", kDesigns, cells,
              kWorkers, reps);

  std::vector<std::uint64_t> solo1Hashes, solo8Hashes;
  const double solo1Seconds = runSequential(1, &solo1Hashes);
  std::printf("sequential t1  %.3fs\n", solo1Seconds);
  const double solo8Seconds = runSequential(8, &solo8Hashes);
  std::printf("sequential t8  %.3fs\n", solo8Seconds);
  const double sequentialSeconds = std::min(solo1Seconds, solo8Seconds);

  std::vector<std::uint64_t> batch1Hashes, batch8Hashes;
  const double batchSeconds = runBatched(1, &batch1Hashes);
  std::printf("batch    8x1t  %.3fs (%.2fx)\n", batchSeconds,
              sequentialSeconds / batchSeconds);
  const double batch8Seconds = runBatched(8, &batch8Hashes);
  std::printf("batch    8x8t  %.3fs\n", batch8Seconds);

  bool batchIdentical = batch1Hashes == solo1Hashes;
  bool batch8Identical = batch8Hashes == solo8Hashes;
  std::printf("batch(1 lane) identical to solo t1: %d\n", batchIdentical);
  std::printf("batch(8 lane) identical to solo t8: %d\n", batch8Identical);

  const Executor::Stats stats = executor.stats();
  std::printf("executor: steals=%lld chunk_grabs=%lld parks=%lld "
              "batches=%lld submitted=%lld\n",
              stats.steals, stats.chunkGrabs, stats.parks, stats.batches,
              stats.submitted);

  const unsigned hardwareThreads =
      std::thread::hardware_concurrency() ? std::thread::hardware_concurrency()
                                          : 1;
  const double ratio =
      batchSeconds > 0 ? sequentialSeconds / batchSeconds : 0.0;
  const double target = throughputTarget(hardwareThreads);
  std::printf("throughput ratio %.2fx (target %.2fx on %u hardware "
              "threads)\n",
              ratio, target, hardwareThreads);

  std::vector<std::pair<std::string, double>> values;
  values.emplace_back("designs", static_cast<double>(kDesigns));
  values.emplace_back("cells_per_design", static_cast<double>(cells));
  values.emplace_back("reps", static_cast<double>(reps));
  values.emplace_back("solo_t1_seconds", solo1Seconds);
  values.emplace_back("solo_t8_seconds", solo8Seconds);
  values.emplace_back("sequential_seconds", sequentialSeconds);
  values.emplace_back("batch_seconds", batchSeconds);
  values.emplace_back("batch_t8_seconds", batch8Seconds);
  values.emplace_back("designs_per_sec",
                      batchSeconds > 0 ? kDesigns / batchSeconds : 0.0);
  values.emplace_back("hardware_threads",
                      static_cast<double>(hardwareThreads));
  values.emplace_back("throughput_ratio", ratio);
  values.emplace_back("throughput_target", target);
  values.emplace_back("batch.identical", batchIdentical ? 1.0 : 0.0);
  values.emplace_back("batch_t8.identical", batch8Identical ? 1.0 : 0.0);
  values.emplace_back("steals", static_cast<double>(stats.steals));
  values.emplace_back("chunk_grabs", static_cast<double>(stats.chunkGrabs));
  values.emplace_back("parks", static_cast<double>(stats.parks));
  bench::maybeWriteBenchReport("bench_executor", values);

  return batchIdentical && batch8Identical ? 0 : 1;
}
