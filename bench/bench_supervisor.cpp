// Process-isolation overhead gate (docs/ROBUSTNESS.md).
//
// The supervised fan-out (flow/supervisor.hpp) buys crash isolation with a
// fork/exec + pipe + reload per design; this bench quantifies that price
// against the in-process batch runner on the same manifest and asserts the
// two modes agree byte-for-byte:
//
//  * `isolation_overhead` = supervised_seconds / inprocess_seconds — the
//    end-to-end cost multiplier of process isolation for small designs
//    (worst case: the fixed per-worker cost is least amortized there);
//  * `telemetry_overhead` = supervised_seconds / telemetry-off supervised
//    seconds — the cost of live telemetry (heartbeats + metrics deltas at
//    the default 100 ms sampling), gated to <= 2% by perf_gate.py;
//  * `supervised.identical` — every design's placement hash matches the
//    in-process batch run (which PR 5 already gates as identical to solo
//    runs), auto-gated to 1 by perf_gate.py.
//
// The binary is its own worker: main() dispatches `--worker` argv to
// supervisorWorkerMain, so the supervisor self-execs this bench the same
// way mclg_batch and the supervisor tests do. Timings are
// best-of-MCLG_BENCH_REPS (default 3); MCLG_BENCH_SCALE scales the
// per-design cell count.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "eval/metrics.hpp"
#include "flow/batch_runner.hpp"
#include "flow/supervisor.hpp"
#include "gen/benchmark_gen.hpp"
#include "legal/pipeline.hpp"
#include "parsers/simple_format.hpp"
#include "util/executor/executor.hpp"
#include "util/timer.hpp"

namespace {

int repsFromEnv() {
  if (const char* env = std::getenv("MCLG_BENCH_REPS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

constexpr int kDesigns = 8;

}  // namespace

int main(int argc, char** argv) {
  using namespace mclg;
  if (argc > 1 && std::strcmp(argv[1], "--worker") == 0) {
    return supervisorWorkerMain(argc, argv);
  }

  const int cells = static_cast<int>(1200 * bench::scaleFromEnv(1.0));
  const int reps = repsFromEnv();

  char dirTemplate[] = "/tmp/mclg_bench_supervisor.XXXXXX";
  const char* dir = mkdtemp(dirTemplate);
  if (dir == nullptr) {
    std::fprintf(stderr, "bench_supervisor: mkdtemp failed\n");
    return 1;
  }

  std::vector<BatchManifestItem> items;
  for (int d = 0; d < kDesigns; ++d) {
    GenSpec spec;
    spec.name = "sup_d" + std::to_string(d);
    spec.cellsPerHeight = {cells * 85 / 100, cells * 9 / 100,
                           cells * 4 / 100, cells * 2 / 100};
    spec.density = 0.55;
    spec.numFences = 2;
    spec.seed = 7000 + static_cast<std::uint64_t>(d);
    Design design = generate(spec);
    const std::string input =
        std::string(dir) + "/" + spec.name + ".mclg";
    if (!saveDesign(design, input)) {
      std::fprintf(stderr, "bench_supervisor: cannot write %s\n",
                   input.c_str());
      return 1;
    }
    items.push_back({spec.name, input, ""});
  }

  const int workers = static_cast<int>(
      std::thread::hardware_concurrency() ? std::thread::hardware_concurrency()
                                          : 1);

  std::printf("=== supervised (process-per-design) vs in-process batch ===\n");
  std::printf("designs=%d cells=%d workers=%d reps=%d\n", kDesigns, cells,
              workers, reps);

  // In-process reference: the PR 5 batch runner on a private executor.
  std::vector<std::uint64_t> inprocHashes;
  double inprocSeconds = 1e18;
  {
    Executor executor(workers);
    BatchRunConfig config;
    config.pipeline = PipelineConfig::contest();
    config.pipeline.setThreads(1);
    config.maxInFlight = kDesigns;
    config.executor = ExecutorRef(&executor);
    for (int rep = 0; rep < reps; ++rep) {
      Timer timer;
      const auto results = runBatchManifest(items, config);
      inprocSeconds = std::min(inprocSeconds, timer.seconds());
      if (rep == 0) {
        for (const auto& result : results) {
          inprocHashes.push_back(result.ok ? result.placementHash : 0);
        }
      }
    }
  }
  std::printf("in-process    %.3fs (%.1f designs/s)\n", inprocSeconds,
              kDesigns / inprocSeconds);

  // Supervised mode, live telemetry off (telemetrySampleMs = 0: no sampler
  // thread, no Heartbeat/MetricsDelta frames) — the baseline for the
  // telemetry-overhead gate.
  double supervisedOffSeconds = 1e18;
  {
    SupervisorConfig config;
    config.workerCommand = {selfExecutablePath(argv[0]), "--worker"};
    config.maxConcurrent = workers;
    config.telemetrySampleMs = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Timer timer;
      runSupervisedManifest(items, config);
      supervisedOffSeconds = std::min(supervisedOffSeconds, timer.seconds());
    }
  }
  std::printf("supervised (telemetry off) %.3fs (%.1f designs/s)\n",
              supervisedOffSeconds, kDesigns / supervisedOffSeconds);

  // Supervised mode with live telemetry at the default 100 ms sampling —
  // the configuration mclg_batch --process-isolation actually ships.
  std::vector<std::uint64_t> supervisedHashes;
  double supervisedSeconds = 1e18;
  {
    SupervisorConfig config;
    config.workerCommand = {selfExecutablePath(argv[0]), "--worker"};
    config.maxConcurrent = workers;
    config.telemetrySampleMs = 100;
    for (int rep = 0; rep < reps; ++rep) {
      Timer timer;
      const auto results = runSupervisedManifest(items, config);
      supervisedSeconds = std::min(supervisedSeconds, timer.seconds());
      if (rep == 0) {
        for (const auto& result : results) {
          supervisedHashes.push_back(result.ok ? result.placementHash : 0);
        }
      }
    }
  }
  const double overhead =
      inprocSeconds > 0 ? supervisedSeconds / inprocSeconds : 0.0;
  const double telemetryOverhead =
      supervisedOffSeconds > 0 ? supervisedSeconds / supervisedOffSeconds
                               : 0.0;
  std::printf(
      "supervised    %.3fs (%.1f designs/s, %.2fx in-process, "
      "%.3fx telemetry-off)\n",
      supervisedSeconds, kDesigns / supervisedSeconds, overhead,
      telemetryOverhead);

  const bool identical = supervisedHashes == inprocHashes;
  std::printf("supervised identical to in-process: %d\n", identical);

  std::vector<std::pair<std::string, double>> values;
  values.emplace_back("designs", static_cast<double>(kDesigns));
  values.emplace_back("cells_per_design", static_cast<double>(cells));
  values.emplace_back("reps", static_cast<double>(reps));
  values.emplace_back("workers", static_cast<double>(workers));
  values.emplace_back("inprocess_seconds", inprocSeconds);
  values.emplace_back("supervised_seconds", supervisedSeconds);
  values.emplace_back("supervised_telemetry_off_seconds", supervisedOffSeconds);
  values.emplace_back("isolation_overhead", overhead);
  values.emplace_back("telemetry_overhead", telemetryOverhead);
  values.emplace_back("supervised_designs_per_sec",
                      supervisedSeconds > 0 ? kDesigns / supervisedSeconds
                                            : 0.0);
  values.emplace_back("supervised.identical", identical ? 1.0 : 0.0);
  bench::maybeWriteBenchReport("bench_supervisor", values);

  return identical ? 0 : 1;
}
