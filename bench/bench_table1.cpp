// Table 1 reproduction: our full flow vs the ICCAD-2017-champion proxy on
// the 16-design contest-style suite. Columns mirror the paper: average and
// maximum displacement, HPWL increase, pin violations, edge-spacing
// violations, score S (Eq. 10), runtime. Expected shape: ours wins avg/max
// displacement, has zero edge violations and far fewer pin violations;
// paper-normalized averages were 1st/ours = 1.18 (avg), 1.12 (max),
// 8.25 (pin), 1.26 (score).

#include <cstdio>

#include "baselines/baselines.hpp"
#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/score.hpp"
#include "gen/iccad17_suite.hpp"
#include "legal/pipeline.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.02);
  const int limit = bench::designLimitFromEnv(16);
  std::printf("=== Table 1: ours vs ICCAD17-champion proxy (scale %.3f) ===\n",
              scale);

  Table table({"benchmark", "#cells", "dens", "avg.1st", "avg.ours",
               "max.1st", "max.ours", "hpwl.1st", "hpwl.ours", "pin.1st",
               "pin.ours", "edge.1st", "edge.ours", "S.1st", "S.ours",
               "t.1st", "t.ours"});
  std::vector<double> avg1, avgO, max1, maxO, pin1, pinO, s1, sO;

  auto suite = iccad17Suite(scale);
  if (static_cast<int>(suite.size()) > limit) suite.resize(limit);
  for (const auto& entry : suite) {
    // Champion proxy.
    Design champ = generate(entry.spec);
    double champSeconds = 0.0;
    ScoreBreakdown champScore;
    {
      SegmentMap segments(champ);
      PlacementState state(champ);
      Timer timer;
      legalizeChampionProxy(state, segments);
      champSeconds = timer.seconds();
      champScore = evaluateScore(champ, segments);
    }
    // Ours.
    Design ours = generate(entry.spec);
    double oursSeconds = 0.0;
    ScoreBreakdown oursScore;
    {
      SegmentMap segments(ours);
      PlacementState state(ours);
      Timer timer;
      legalize(state, segments, PipelineConfig::contest());
      oursSeconds = timer.seconds();
      oursScore = evaluateScore(ours, segments);
    }

    int movable = 0;
    for (const auto& cell : ours.cells) {
      if (!cell.fixed) ++movable;
    }
    table.addRow({entry.spec.name, Table::fmt(static_cast<long long>(movable)),
                  Table::pct(entry.spec.density, 0),
                  Table::fmt(champScore.displacement.average, 3),
                  Table::fmt(oursScore.displacement.average, 3),
                  Table::fmt(champScore.displacement.maximum, 1),
                  Table::fmt(oursScore.displacement.maximum, 1),
                  Table::pct(champScore.hpwlRatio, 2),
                  Table::pct(oursScore.hpwlRatio, 2),
                  Table::fmt(static_cast<long long>(champScore.pins.total())),
                  Table::fmt(static_cast<long long>(oursScore.pins.total())),
                  Table::fmt(static_cast<long long>(champScore.edgeSpacing)),
                  Table::fmt(static_cast<long long>(oursScore.edgeSpacing)),
                  Table::fmt(champScore.score, 3),
                  Table::fmt(oursScore.score, 3),
                  Table::fmt(champSeconds, 2), Table::fmt(oursSeconds, 2)});
    avg1.push_back(champScore.displacement.average);
    avgO.push_back(oursScore.displacement.average);
    max1.push_back(champScore.displacement.maximum);
    maxO.push_back(oursScore.displacement.maximum);
    pin1.push_back(champScore.pins.total());
    pinO.push_back(std::max(1, oursScore.pins.total()));
    s1.push_back(champScore.score);
    sO.push_back(oursScore.score);
    std::fprintf(stderr, "[table1] %s done\n", entry.spec.name.c_str());
  }
  std::printf("%s", table.toString().c_str());
  std::printf(
      "Norm. avg (1st/ours): avgDisp %.2f, maxDisp %.2f, pin %.2f, "
      "score %.2f\n",
      bench::normAvg(avg1, avgO), bench::normAvg(max1, maxO),
      bench::normAvg(pin1, pinO), bench::normAvg(s1, sO));
  std::printf(
      "Paper reference       : avgDisp 1.18, maxDisp 1.12, pin 8.25, "
      "score 1.26 (Table 1, champion normalized to ours)\n");
  bench::maybeWriteBenchReport(
      "table1", {{"norm_avg_disp", bench::normAvg(avg1, avgO)},
                 {"norm_max_disp", bench::normAvg(max1, maxO)},
                 {"norm_pin", bench::normAvg(pin1, pinO)},
                 {"norm_score", bench::normAvg(s1, sO)}});
  return 0;
}
