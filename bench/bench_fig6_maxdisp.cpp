// Fig. 6 reproduction: the maximum-displacement matching's effect on one
// cell type's displacement field. Emits before/after SVGs (red displacement
// vectors, as in the paper) plus a displacement histogram per stage.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/report.hpp"
#include "gen/iccad17_suite.hpp"
#include "legal/maxdisp/matching_opt.hpp"
#include "legal/mgl/mgl_legalizer.hpp"

namespace {

void histogram(const char* title, const mclg::Design& design,
               mclg::TypeId type) {
  std::vector<double> disps;
  double maxDisp = 0.0;
  for (mclg::CellId c = 0; c < design.numCells(); ++c) {
    if (design.cells[c].fixed || design.cells[c].type != type) continue;
    const double d = design.displacement(c);
    disps.push_back(d);
    maxDisp = std::max(maxDisp, d);
  }
  const double buckets[] = {1, 2, 5, 10, 20, 50, 1e9};
  int counts[7] = {};
  for (const double d : disps) {
    for (int b = 0; b < 7; ++b) {
      if (d <= buckets[b]) {
        ++counts[b];
        break;
      }
    }
  }
  std::printf("%s: %zu cells, max disp %.1f rows\n", title, disps.size(),
              maxDisp);
  const char* labels[] = {"<=1", "<=2", "<=5", "<=10", "<=20", "<=50", ">50"};
  for (int b = 0; b < 7; ++b) {
    std::printf("  %5s rows: %5d ", labels[b], counts[b]);
    for (int i = 0; i < counts[b] && i < 60; i += 3) std::printf("#");
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.03);
  std::printf("=== Fig. 6: max-displacement matching, before/after ===\n");

  // A dense contest-style design so the tail is visible.
  GenSpec spec = iccad17Suite(scale)[8].spec;  // fft_2_md2: densest suite entry
  spec.typesPerHeight = 2;                      // larger same-type groups
  Design design = generate(spec);
  SegmentMap segments(design);
  PlacementState state(design);
  MglLegalizer legalizer(state, segments, {});
  legalizer.run();

  // Pick the most displaced type group.
  std::vector<double> worst(static_cast<std::size_t>(design.numTypes()), 0.0);
  for (CellId c = 0; c < design.numCells(); ++c) {
    if (design.cells[c].fixed) continue;
    auto& w = worst[static_cast<std::size_t>(design.cells[c].type)];
    w = std::max(w, design.displacement(c));
  }
  TypeId type = 0;
  for (TypeId t = 1; t < design.numTypes(); ++t) {
    if (worst[static_cast<std::size_t>(t)] > worst[static_cast<std::size_t>(type)]) {
      type = t;
    }
  }

  histogram("before matching", design, type);
  writeDisplacementSvg(design, type, "fig6_before.svg");

  MaxDispConfig config;
  config.delta0 = 5.0;
  const auto stats = optimizeMaxDisplacement(state, config);
  std::printf("matching: %d groups, %d cells moved\n", stats.groups,
              stats.cellsMoved);

  histogram("after matching", design, type);
  writeDisplacementSvg(design, type, "fig6_after.svg");
  std::printf("wrote fig6_before.svg / fig6_after.svg (type %s)\n",
              design.types[static_cast<std::size_t>(type)].name.c_str());
  return 0;
}
