// Table 3 reproduction: effect of the two post-processing stages (the §3.2
// matching and the §3.3 fixed-row-&-order MCF) on average and maximum
// displacement across the contest-style suite. Paper normalized result:
// post-processing cuts max displacement by ~23% and average by ~1%.

#include <cstdio>

#include "bench_common.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "gen/iccad17_suite.hpp"
#include "legal/pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace mclg;
  const double scale = bench::scaleFromEnv(0.02);
  const int limit = bench::designLimitFromEnv(16);
  std::printf("=== Table 3: post-processing ablation (scale %.3f) ===\n",
              scale);

  Table table({"benchmark", "avg.before", "avg.after", "max.before",
               "max.after", "paper.avg.b", "paper.avg.a", "paper.max.b",
               "paper.max.a"});
  std::vector<double> avgBefore, avgAfter, maxBefore, maxAfter;

  auto suite = iccad17Suite(scale);
  if (static_cast<int>(suite.size()) > limit) suite.resize(limit);
  for (const auto& entry : suite) {
    Design before = generate(entry.spec);
    {
      SegmentMap segments(before);
      PlacementState state(before);
      PipelineConfig config = PipelineConfig::contest();
      config.runMaxDisp = false;
      config.runFixedRowOrder = false;
      legalize(state, segments, config);
    }
    Design after = generate(entry.spec);
    {
      SegmentMap segments(after);
      PlacementState state(after);
      legalize(state, segments, PipelineConfig::contest());
    }
    const auto statsBefore = displacementStats(before);
    const auto statsAfter = displacementStats(after);
    table.addRow({entry.spec.name, Table::fmt(statsBefore.average, 3),
                  Table::fmt(statsAfter.average, 3),
                  Table::fmt(statsBefore.maximum, 1),
                  Table::fmt(statsAfter.maximum, 1),
                  Table::fmt(entry.paperAvgDispBefore, 3),
                  Table::fmt(entry.paperAvgDispAfter, 3),
                  Table::fmt(entry.paperMaxDispBefore, 1),
                  Table::fmt(entry.paperMaxDispAfter, 1)});
    avgBefore.push_back(statsBefore.average);
    avgAfter.push_back(statsAfter.average);
    maxBefore.push_back(statsBefore.maximum);
    maxAfter.push_back(statsAfter.maximum);
    std::fprintf(stderr, "[table3] %s done\n", entry.spec.name.c_str());
  }
  std::printf("%s", table.toString().c_str());
  std::printf("Norm. avg (before/after): avgDisp %.2f, maxDisp %.2f\n",
              bench::normAvg(avgBefore, avgAfter),
              bench::normAvg(maxBefore, maxAfter));
  std::printf(
      "Paper reference         : avgDisp 1.01, maxDisp 1.23 (Table 3)\n");
  bench::maybeWriteBenchReport(
      "table3", {{"norm_avg_disp", bench::normAvg(avgBefore, avgAfter)},
                 {"norm_max_disp", bench::normAvg(maxBefore, maxAfter)}});
  return 0;
}
