file(REMOVE_RECURSE
  "CMakeFiles/mclg_cli.dir/mclg_cli.cpp.o"
  "CMakeFiles/mclg_cli.dir/mclg_cli.cpp.o.d"
  "mclg_cli"
  "mclg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
