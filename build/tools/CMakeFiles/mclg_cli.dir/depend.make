# Empty dependencies file for mclg_cli.
# This may be replaced when dependencies are built.
