# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mclg_tests[1]_include.cmake")
include("/root/repo/build/tests/mclg_guard_tests[1]_include.cmake")
add_test(cli_end_to_end "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/mclg_cli" "-DWORKDIR=/root/repo/build/tests/cli_e2e" "-P" "/root/repo/tests/cli_end_to_end.cmake")
set_tests_properties(cli_end_to_end PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;56;add_test;/root/repo/tests/CMakeLists.txt;0;")
