file(REMOVE_RECURSE
  "CMakeFiles/mclg_guard_tests.dir/test_guard.cpp.o"
  "CMakeFiles/mclg_guard_tests.dir/test_guard.cpp.o.d"
  "mclg_guard_tests"
  "mclg_guard_tests.pdb"
  "mclg_guard_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mclg_guard_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
