# Empty dependencies file for mclg_guard_tests.
# This may be replaced when dependencies are built.
