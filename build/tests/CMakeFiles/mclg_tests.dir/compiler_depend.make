# Empty compiler generated dependencies file for mclg_tests.
# This may be replaced when dependencies are built.
