
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_abacus_row.cpp" "tests/CMakeFiles/mclg_tests.dir/test_abacus_row.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_abacus_row.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/mclg_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bipartite.cpp" "tests/CMakeFiles/mclg_tests.dir/test_bipartite.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_bipartite.cpp.o.d"
  "/root/repo/tests/test_bookshelf.cpp" "tests/CMakeFiles/mclg_tests.dir/test_bookshelf.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_bookshelf.cpp.o.d"
  "/root/repo/tests/test_checkers.cpp" "tests/CMakeFiles/mclg_tests.dir/test_checkers.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_checkers.cpp.o.d"
  "/root/repo/tests/test_design.cpp" "tests/CMakeFiles/mclg_tests.dir/test_design.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_design.cpp.o.d"
  "/root/repo/tests/test_design_stats.cpp" "tests/CMakeFiles/mclg_tests.dir/test_design_stats.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_design_stats.cpp.o.d"
  "/root/repo/tests/test_disp_curve.cpp" "tests/CMakeFiles/mclg_tests.dir/test_disp_curve.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_disp_curve.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/mclg_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_fixed_row_order.cpp" "tests/CMakeFiles/mclg_tests.dir/test_fixed_row_order.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_fixed_row_order.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/mclg_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_geometry.cpp" "tests/CMakeFiles/mclg_tests.dir/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_geometry.cpp.o.d"
  "/root/repo/tests/test_global_placer.cpp" "tests/CMakeFiles/mclg_tests.dir/test_global_placer.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_global_placer.cpp.o.d"
  "/root/repo/tests/test_hungarian.cpp" "tests/CMakeFiles/mclg_tests.dir/test_hungarian.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_hungarian.cpp.o.d"
  "/root/repo/tests/test_insertion.cpp" "tests/CMakeFiles/mclg_tests.dir/test_insertion.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_insertion.cpp.o.d"
  "/root/repo/tests/test_maxdisp.cpp" "tests/CMakeFiles/mclg_tests.dir/test_maxdisp.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_maxdisp.cpp.o.d"
  "/root/repo/tests/test_mcf.cpp" "tests/CMakeFiles/mclg_tests.dir/test_mcf.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_mcf.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/mclg_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_mgl.cpp" "tests/CMakeFiles/mclg_tests.dir/test_mgl.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_mgl.cpp.o.d"
  "/root/repo/tests/test_misc_eval.cpp" "tests/CMakeFiles/mclg_tests.dir/test_misc_eval.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_misc_eval.cpp.o.d"
  "/root/repo/tests/test_orientation.cpp" "tests/CMakeFiles/mclg_tests.dir/test_orientation.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_orientation.cpp.o.d"
  "/root/repo/tests/test_parsers.cpp" "tests/CMakeFiles/mclg_tests.dir/test_parsers.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_parsers.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/mclg_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_pipeline_config.cpp" "tests/CMakeFiles/mclg_tests.dir/test_pipeline_config.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_pipeline_config.cpp.o.d"
  "/root/repo/tests/test_placement_state.cpp" "tests/CMakeFiles/mclg_tests.dir/test_placement_state.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_placement_state.cpp.o.d"
  "/root/repo/tests/test_property_sweeps.cpp" "tests/CMakeFiles/mclg_tests.dir/test_property_sweeps.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_property_sweeps.cpp.o.d"
  "/root/repo/tests/test_qp_legalizer.cpp" "tests/CMakeFiles/mclg_tests.dir/test_qp_legalizer.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_qp_legalizer.cpp.o.d"
  "/root/repo/tests/test_ripup.cpp" "tests/CMakeFiles/mclg_tests.dir/test_ripup.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_ripup.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/mclg_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_segment_map.cpp" "tests/CMakeFiles/mclg_tests.dir/test_segment_map.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_segment_map.cpp.o.d"
  "/root/repo/tests/test_state_fuzz.cpp" "tests/CMakeFiles/mclg_tests.dir/test_state_fuzz.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_state_fuzz.cpp.o.d"
  "/root/repo/tests/test_stress.cpp" "tests/CMakeFiles/mclg_tests.dir/test_stress.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_stress.cpp.o.d"
  "/root/repo/tests/test_theorem1.cpp" "tests/CMakeFiles/mclg_tests.dir/test_theorem1.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_theorem1.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/mclg_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_violations_fillers.cpp" "tests/CMakeFiles/mclg_tests.dir/test_violations_fillers.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_violations_fillers.cpp.o.d"
  "/root/repo/tests/test_wirelength_recovery.cpp" "tests/CMakeFiles/mclg_tests.dir/test_wirelength_recovery.cpp.o" "gcc" "tests/CMakeFiles/mclg_tests.dir/test_wirelength_recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mclg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
