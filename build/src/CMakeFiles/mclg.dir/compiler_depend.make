# Empty compiler generated dependencies file for mclg.
# This may be replaced when dependencies are built.
