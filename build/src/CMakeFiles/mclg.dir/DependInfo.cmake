
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/abacus_multi.cpp" "src/CMakeFiles/mclg.dir/baselines/abacus_multi.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/baselines/abacus_multi.cpp.o.d"
  "/root/repo/src/baselines/abacus_row.cpp" "src/CMakeFiles/mclg.dir/baselines/abacus_row.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/baselines/abacus_row.cpp.o.d"
  "/root/repo/src/baselines/champion_proxy.cpp" "src/CMakeFiles/mclg.dir/baselines/champion_proxy.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/baselines/champion_proxy.cpp.o.d"
  "/root/repo/src/baselines/mll.cpp" "src/CMakeFiles/mclg.dir/baselines/mll.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/baselines/mll.cpp.o.d"
  "/root/repo/src/baselines/ordered_mcf.cpp" "src/CMakeFiles/mclg.dir/baselines/ordered_mcf.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/baselines/ordered_mcf.cpp.o.d"
  "/root/repo/src/baselines/qp_legalizer.cpp" "src/CMakeFiles/mclg.dir/baselines/qp_legalizer.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/baselines/qp_legalizer.cpp.o.d"
  "/root/repo/src/baselines/tetris.cpp" "src/CMakeFiles/mclg.dir/baselines/tetris.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/baselines/tetris.cpp.o.d"
  "/root/repo/src/db/design.cpp" "src/CMakeFiles/mclg.dir/db/design.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/db/design.cpp.o.d"
  "/root/repo/src/db/free_span.cpp" "src/CMakeFiles/mclg.dir/db/free_span.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/db/free_span.cpp.o.d"
  "/root/repo/src/db/placement_state.cpp" "src/CMakeFiles/mclg.dir/db/placement_state.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/db/placement_state.cpp.o.d"
  "/root/repo/src/db/segment_map.cpp" "src/CMakeFiles/mclg.dir/db/segment_map.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/db/segment_map.cpp.o.d"
  "/root/repo/src/eval/checkers.cpp" "src/CMakeFiles/mclg.dir/eval/checkers.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/eval/checkers.cpp.o.d"
  "/root/repo/src/eval/design_stats.cpp" "src/CMakeFiles/mclg.dir/eval/design_stats.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/eval/design_stats.cpp.o.d"
  "/root/repo/src/eval/histogram.cpp" "src/CMakeFiles/mclg.dir/eval/histogram.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/eval/histogram.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/CMakeFiles/mclg.dir/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/eval/metrics.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/CMakeFiles/mclg.dir/eval/report.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/eval/report.cpp.o.d"
  "/root/repo/src/eval/score.cpp" "src/CMakeFiles/mclg.dir/eval/score.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/eval/score.cpp.o.d"
  "/root/repo/src/eval/violations.cpp" "src/CMakeFiles/mclg.dir/eval/violations.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/eval/violations.cpp.o.d"
  "/root/repo/src/flow/bipartite_matching.cpp" "src/CMakeFiles/mclg.dir/flow/bipartite_matching.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/flow/bipartite_matching.cpp.o.d"
  "/root/repo/src/flow/cost_scaling.cpp" "src/CMakeFiles/mclg.dir/flow/cost_scaling.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/flow/cost_scaling.cpp.o.d"
  "/root/repo/src/flow/hungarian.cpp" "src/CMakeFiles/mclg.dir/flow/hungarian.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/flow/hungarian.cpp.o.d"
  "/root/repo/src/flow/network_simplex.cpp" "src/CMakeFiles/mclg.dir/flow/network_simplex.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/flow/network_simplex.cpp.o.d"
  "/root/repo/src/flow/ssp.cpp" "src/CMakeFiles/mclg.dir/flow/ssp.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/flow/ssp.cpp.o.d"
  "/root/repo/src/gen/benchmark_gen.cpp" "src/CMakeFiles/mclg.dir/gen/benchmark_gen.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/gen/benchmark_gen.cpp.o.d"
  "/root/repo/src/gen/fillers.cpp" "src/CMakeFiles/mclg.dir/gen/fillers.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/gen/fillers.cpp.o.d"
  "/root/repo/src/gen/global_placer.cpp" "src/CMakeFiles/mclg.dir/gen/global_placer.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/gen/global_placer.cpp.o.d"
  "/root/repo/src/gen/iccad17_suite.cpp" "src/CMakeFiles/mclg.dir/gen/iccad17_suite.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/gen/iccad17_suite.cpp.o.d"
  "/root/repo/src/gen/ispd15_suite.cpp" "src/CMakeFiles/mclg.dir/gen/ispd15_suite.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/gen/ispd15_suite.cpp.o.d"
  "/root/repo/src/geometry/disp_curve.cpp" "src/CMakeFiles/mclg.dir/geometry/disp_curve.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/geometry/disp_curve.cpp.o.d"
  "/root/repo/src/legal/guard/guard.cpp" "src/CMakeFiles/mclg.dir/legal/guard/guard.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/guard/guard.cpp.o.d"
  "/root/repo/src/legal/guard/invariants.cpp" "src/CMakeFiles/mclg.dir/legal/guard/invariants.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/guard/invariants.cpp.o.d"
  "/root/repo/src/legal/guard/transaction.cpp" "src/CMakeFiles/mclg.dir/legal/guard/transaction.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/guard/transaction.cpp.o.d"
  "/root/repo/src/legal/maxdisp/matching_opt.cpp" "src/CMakeFiles/mclg.dir/legal/maxdisp/matching_opt.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/maxdisp/matching_opt.cpp.o.d"
  "/root/repo/src/legal/mcfopt/fixed_row_order.cpp" "src/CMakeFiles/mclg.dir/legal/mcfopt/fixed_row_order.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/mcfopt/fixed_row_order.cpp.o.d"
  "/root/repo/src/legal/mgl/insertion.cpp" "src/CMakeFiles/mclg.dir/legal/mgl/insertion.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/mgl/insertion.cpp.o.d"
  "/root/repo/src/legal/mgl/mgl_legalizer.cpp" "src/CMakeFiles/mclg.dir/legal/mgl/mgl_legalizer.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/mgl/mgl_legalizer.cpp.o.d"
  "/root/repo/src/legal/mgl/scheduler.cpp" "src/CMakeFiles/mclg.dir/legal/mgl/scheduler.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/mgl/scheduler.cpp.o.d"
  "/root/repo/src/legal/mgl/window.cpp" "src/CMakeFiles/mclg.dir/legal/mgl/window.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/mgl/window.cpp.o.d"
  "/root/repo/src/legal/pipeline.cpp" "src/CMakeFiles/mclg.dir/legal/pipeline.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/pipeline.cpp.o.d"
  "/root/repo/src/legal/pipeline_config.cpp" "src/CMakeFiles/mclg.dir/legal/pipeline_config.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/pipeline_config.cpp.o.d"
  "/root/repo/src/legal/refine/feasible_range.cpp" "src/CMakeFiles/mclg.dir/legal/refine/feasible_range.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/refine/feasible_range.cpp.o.d"
  "/root/repo/src/legal/refine/ripup_refine.cpp" "src/CMakeFiles/mclg.dir/legal/refine/ripup_refine.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/refine/ripup_refine.cpp.o.d"
  "/root/repo/src/legal/refine/wirelength_recovery.cpp" "src/CMakeFiles/mclg.dir/legal/refine/wirelength_recovery.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/legal/refine/wirelength_recovery.cpp.o.d"
  "/root/repo/src/parsers/bookshelf.cpp" "src/CMakeFiles/mclg.dir/parsers/bookshelf.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/parsers/bookshelf.cpp.o.d"
  "/root/repo/src/parsers/def_parser.cpp" "src/CMakeFiles/mclg.dir/parsers/def_parser.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/parsers/def_parser.cpp.o.d"
  "/root/repo/src/parsers/lef_parser.cpp" "src/CMakeFiles/mclg.dir/parsers/lef_parser.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/parsers/lef_parser.cpp.o.d"
  "/root/repo/src/parsers/simple_format.cpp" "src/CMakeFiles/mclg.dir/parsers/simple_format.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/parsers/simple_format.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/mclg.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/random.cpp" "src/CMakeFiles/mclg.dir/util/random.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/util/random.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/mclg.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/mclg.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/mclg.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
