file(REMOVE_RECURSE
  "libmclg.a"
)
