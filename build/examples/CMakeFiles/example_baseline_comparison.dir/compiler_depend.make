# Empty compiler generated dependencies file for example_baseline_comparison.
# This may be replaced when dependencies are built.
