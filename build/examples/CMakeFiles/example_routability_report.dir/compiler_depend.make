# Empty compiler generated dependencies file for example_routability_report.
# This may be replaced when dependencies are built.
