file(REMOVE_RECURSE
  "CMakeFiles/example_routability_report.dir/routability_report.cpp.o"
  "CMakeFiles/example_routability_report.dir/routability_report.cpp.o.d"
  "example_routability_report"
  "example_routability_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_routability_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
