# Empty dependencies file for example_gp_flow.
# This may be replaced when dependencies are built.
