file(REMOVE_RECURSE
  "CMakeFiles/example_gp_flow.dir/gp_flow.cpp.o"
  "CMakeFiles/example_gp_flow.dir/gp_flow.cpp.o.d"
  "example_gp_flow"
  "example_gp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
