file(REMOVE_RECURSE
  "CMakeFiles/example_fence_design.dir/fence_design.cpp.o"
  "CMakeFiles/example_fence_design.dir/fence_design.cpp.o.d"
  "example_fence_design"
  "example_fence_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fence_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
