# Empty compiler generated dependencies file for example_fence_design.
# This may be replaced when dependencies are built.
