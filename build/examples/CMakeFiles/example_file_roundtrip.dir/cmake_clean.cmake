file(REMOVE_RECURSE
  "CMakeFiles/example_file_roundtrip.dir/file_roundtrip.cpp.o"
  "CMakeFiles/example_file_roundtrip.dir/file_roundtrip.cpp.o.d"
  "example_file_roundtrip"
  "example_file_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_file_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
