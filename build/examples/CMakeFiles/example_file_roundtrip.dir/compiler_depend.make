# Empty compiler generated dependencies file for example_file_roundtrip.
# This may be replaced when dependencies are built.
