# Empty compiler generated dependencies file for bench_ablation_hpwl.
# This may be replaced when dependencies are built.
