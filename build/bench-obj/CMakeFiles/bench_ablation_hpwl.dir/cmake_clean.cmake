file(REMOVE_RECURSE
  "../bench/bench_ablation_hpwl"
  "../bench/bench_ablation_hpwl.pdb"
  "CMakeFiles/bench_ablation_hpwl.dir/bench_ablation_hpwl.cpp.o"
  "CMakeFiles/bench_ablation_hpwl.dir/bench_ablation_hpwl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hpwl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
