file(REMOVE_RECURSE
  "../bench/bench_ablation_n0"
  "../bench/bench_ablation_n0.pdb"
  "CMakeFiles/bench_ablation_n0.dir/bench_ablation_n0.cpp.o"
  "CMakeFiles/bench_ablation_n0.dir/bench_ablation_n0.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_n0.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
