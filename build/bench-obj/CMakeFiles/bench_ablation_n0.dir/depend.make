# Empty dependencies file for bench_ablation_n0.
# This may be replaced when dependencies are built.
