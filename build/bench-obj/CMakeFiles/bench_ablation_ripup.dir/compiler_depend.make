# Empty compiler generated dependencies file for bench_ablation_ripup.
# This may be replaced when dependencies are built.
