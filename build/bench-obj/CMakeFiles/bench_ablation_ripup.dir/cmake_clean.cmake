file(REMOVE_RECURSE
  "../bench/bench_ablation_ripup"
  "../bench/bench_ablation_ripup.pdb"
  "CMakeFiles/bench_ablation_ripup.dir/bench_ablation_ripup.cpp.o"
  "CMakeFiles/bench_ablation_ripup.dir/bench_ablation_ripup.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ripup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
