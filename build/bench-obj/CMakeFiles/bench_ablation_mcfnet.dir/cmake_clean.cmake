file(REMOVE_RECURSE
  "../bench/bench_ablation_mcfnet"
  "../bench/bench_ablation_mcfnet.pdb"
  "CMakeFiles/bench_ablation_mcfnet.dir/bench_ablation_mcfnet.cpp.o"
  "CMakeFiles/bench_ablation_mcfnet.dir/bench_ablation_mcfnet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mcfnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
