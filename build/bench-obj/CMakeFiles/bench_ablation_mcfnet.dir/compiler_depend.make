# Empty compiler generated dependencies file for bench_ablation_mcfnet.
# This may be replaced when dependencies are built.
