file(REMOVE_RECURSE
  "../bench/bench_ablation_phi"
  "../bench/bench_ablation_phi.pdb"
  "CMakeFiles/bench_ablation_phi.dir/bench_ablation_phi.cpp.o"
  "CMakeFiles/bench_ablation_phi.dir/bench_ablation_phi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
