# Empty dependencies file for bench_ablation_phi.
# This may be replaced when dependencies are built.
