file(REMOVE_RECURSE
  "../bench/bench_fig6_maxdisp"
  "../bench/bench_fig6_maxdisp.pdb"
  "CMakeFiles/bench_fig6_maxdisp.dir/bench_fig6_maxdisp.cpp.o"
  "CMakeFiles/bench_fig6_maxdisp.dir/bench_fig6_maxdisp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_maxdisp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
