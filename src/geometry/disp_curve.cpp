#include "geometry/disp_curve.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace mclg {

DispCurve DispCurve::constant(double value) {
  DispCurve c;
  c.kind_ = Kind::Constant;
  c.nb_ = 0;
  c.v0_ = value;
  return c;
}

DispCurve DispCurve::targetV(double gpX) {
  DispCurve c;
  c.kind_ = Kind::TargetV;
  c.nb_ = 1;
  c.b_[0] = gpX;
  c.s_[0] = -1.0;
  c.s_[1] = 1.0;
  c.v0_ = 0.0;
  return c;
}

DispCurve DispCurve::rightPush(double cur, double gp, double off) {
  DispCurve c;
  c.kind_ = Kind::RightPush;
  const double pushStart = cur - off;  // for x > pushStart the cell moves
  if (gp <= cur) {
    // Type A: flat at (cur - gp), then rising with slope 1.
    c.nb_ = 1;
    c.b_[0] = pushStart;
    c.s_[0] = 0.0;
    c.s_[1] = 1.0;
    c.v0_ = cur - gp;
  } else {
    // Type C: flat at (gp - cur), falls while the push moves the cell toward
    // its GP, then rises once pushed past it.
    c.nb_ = 2;
    c.b_[0] = pushStart;
    c.b_[1] = gp - off;
    c.s_[0] = 0.0;
    c.s_[1] = -1.0;
    c.s_[2] = 1.0;
    c.v0_ = gp - cur;
  }
  return c;
}

DispCurve DispCurve::leftPush(double cur, double gp, double off) {
  DispCurve c;
  c.kind_ = Kind::LeftPush;
  const double pushStart = cur + off;  // for x < pushStart the cell moves
  if (gp >= cur) {
    // Type B: falling with slope -1 while pushed (pos = x - off < cur <= gp),
    // then flat at (gp - cur).
    c.nb_ = 1;
    c.b_[0] = pushStart;
    c.s_[0] = -1.0;
    c.s_[1] = 0.0;
    c.v0_ = gp - cur;
  } else {
    // Type D: V while pushed (bottom where pos == gp), flat once unpushed.
    c.nb_ = 2;
    c.b_[0] = gp + off;
    c.b_[1] = pushStart;
    c.s_[0] = -1.0;
    c.s_[1] = 1.0;
    c.s_[2] = 0.0;
    c.v0_ = 0.0;
  }
  return c;
}

DispCurve DispCurve::scaled(double w) const {
  MCLG_ASSERT(w >= 0.0, "curve scale must be non-negative");
  DispCurve c = *this;
  c.v0_ *= w;
  for (double& s : c.s_) s *= w;
  return c;
}

double DispCurve::value(double x) const {
  if (nb_ == 0) return v0_;
  if (x <= b_[0]) return v0_ + s_[0] * (x - b_[0]);
  if (nb_ == 1 || x <= b_[1]) return v0_ + s_[1] * (x - b_[0]);
  const double v1 = v0_ + s_[1] * (b_[1] - b_[0]);
  return v1 + s_[2] * (x - b_[1]);
}

double CurveSum::value(double x) const {
  double total = 0.0;
  for (const auto& curve : curves_) total += curve.value(x);
  return total;
}

CurveSum::Result CurveSum::minimizeOnSites(std::int64_t loSite,
                                           std::int64_t hiSite) const {
  Result result;
  if (loSite > hiSite) return result;
  const double startX = static_cast<double>(loSite);

  // Candidate integer positions: interval ends plus floor/ceil of every
  // breakpoint inside the interval (the minimum of a piecewise-linear sum on
  // the integer lattice is at a snapped breakpoint or an end).
  auto& candidates = candidateScratch_;
  candidates.clear();
  candidates.push_back(loSite);
  candidates.push_back(hiSite);

  // Slope-change events strictly right of startX, for the incremental sweep.
  auto& events = eventScratch_;
  events.clear();

  double slope = 0.0;   // total slope immediately right of startX
  double value0 = 0.0;  // total value at startX
  for (const auto& curve : curves_) {
    value0 += curve.value(startX);
    const int nb = curve.numBreakpoints();
    int seg = 0;  // segment containing (startX, startX + eps)
    for (int i = 0; i < nb; ++i) {
      const double b = curve.breakpoint(i);
      if (b <= startX) {
        ++seg;
      } else {
        events.push_back({b, curve.segmentSlope(i + 1) - curve.segmentSlope(i)});
        const auto fl = static_cast<std::int64_t>(std::floor(b));
        const auto ce = static_cast<std::int64_t>(std::ceil(b));
        if (fl >= loSite && fl <= hiSite) candidates.push_back(fl);
        if (ce >= loSite && ce <= hiSite) candidates.push_back(ce);
      }
    }
    slope += curve.segmentSlope(seg);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.x < b.x; });

  // Merged sweep left to right; the running value is exact because the total
  // is linear between consecutive events.
  result.feasible = true;
  result.value = std::numeric_limits<double>::infinity();
  std::size_t nextEvent = 0;
  double curX = startX;
  double curValue = value0;
  for (const auto cand : candidates) {
    const double cx = static_cast<double>(cand);
    while (nextEvent < events.size() && events[nextEvent].x <= cx) {
      curValue += slope * (events[nextEvent].x - curX);
      curX = events[nextEvent].x;
      slope += events[nextEvent].dslope;
      ++nextEvent;
    }
    curValue += slope * (cx - curX);
    curX = cx;
    if (curValue < result.value - 1e-12) {
      result.value = curValue;
      result.x = cand;
    }
  }
  return result;
}

void IncrementalCurveSum::add(std::int64_t id, const DispCurve& curve) {
  const auto [it, inserted] = members_.emplace(id, curve);
  MCLG_ASSERT(inserted, "IncrementalCurveSum: duplicate member id");
  (void)it;
  for (int i = 0; i < curve.numBreakpoints(); ++i) {
    events_.emplace(curve.breakpoint(i),
                    curve.segmentSlope(i + 1) - curve.segmentSlope(i));
  }
}

bool IncrementalCurveSum::remove(std::int64_t id) {
  const auto it = members_.find(id);
  if (it == members_.end()) return false;
  const DispCurve& curve = it->second;
  for (int i = 0; i < curve.numBreakpoints(); ++i) {
    // The event is re-derived from the stored copy, so an exactly matching
    // entry is guaranteed to exist.
    const auto ev = events_.find(
        {curve.breakpoint(i),
         curve.segmentSlope(i + 1) - curve.segmentSlope(i)});
    MCLG_ASSERT(ev != events_.end(), "IncrementalCurveSum: event desync");
    events_.erase(ev);
  }
  members_.erase(it);
  return true;
}

void IncrementalCurveSum::clear() {
  members_.clear();
  events_.clear();
}

double IncrementalCurveSum::value(double x) const {
  double total = 0.0;
  for (const auto& [id, curve] : members_) {
    (void)id;
    total += curve.value(x);
  }
  return total;
}

CurveSum::Result IncrementalCurveSum::minimizeOnSites(
    std::int64_t loSite, std::int64_t hiSite) const {
  CurveSum::Result result;
  if (loSite > hiSite) return result;
  const double startX = static_cast<double>(loSite);

  double slope = 0.0;   // total slope immediately right of startX
  double value0 = 0.0;  // total value at startX
  for (const auto& [id, curve] : members_) {
    (void)id;
    value0 += curve.value(startX);
    int seg = 0;
    const int nb = curve.numBreakpoints();
    for (int i = 0; i < nb && curve.breakpoint(i) <= startX; ++i) ++seg;
    slope += curve.segmentSlope(seg);
  }

  // Candidates: interval ends plus snapped breakpoints inside the interval.
  // events_ is already sorted, so no per-query sort is needed.
  auto& candidates = candidateScratch_;
  candidates.clear();
  candidates.push_back(loSite);
  candidates.push_back(hiSite);
  const auto firstEvent = events_.upper_bound({startX, std::numeric_limits<double>::infinity()});
  for (auto it = firstEvent; it != events_.end(); ++it) {
    const auto fl = static_cast<std::int64_t>(std::floor(it->first));
    const auto ce = static_cast<std::int64_t>(std::ceil(it->first));
    if (fl >= loSite && fl <= hiSite) candidates.push_back(fl);
    if (ce >= loSite && ce <= hiSite) candidates.push_back(ce);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  result.feasible = true;
  result.value = std::numeric_limits<double>::infinity();
  auto nextEvent = firstEvent;
  double curX = startX;
  double curValue = value0;
  for (const auto cand : candidates) {
    const double cx = static_cast<double>(cand);
    while (nextEvent != events_.end() && nextEvent->first <= cx) {
      curValue += slope * (nextEvent->first - curX);
      curX = nextEvent->first;
      slope += nextEvent->second;
      ++nextEvent;
    }
    curValue += slope * (cx - curX);
    curX = cx;
    if (curValue < result.value - 1e-12) {
      result.value = curValue;
      result.x = cand;
    }
  }
  return result;
}

IncrementalCurveSum::Piecewise IncrementalCurveSum::piecewise() const {
  Piecewise pw;
  double slope = 0.0;  // leftmost segment: sum of members in id order
  for (const auto& [id, curve] : members_) {
    (void)id;
    slope += curve.segmentSlope(0);
  }
  pw.slopes.push_back(slope);
  for (const auto& [x, dslope] : events_) {
    if (!pw.breakpoints.empty() && pw.breakpoints.back() == x) {
      pw.slopes.back() += dslope;
    } else {
      pw.breakpoints.push_back(x);
      pw.slopes.push_back(pw.slopes.back() + dslope);
    }
  }
  pw.anchorValue = value(pw.breakpoints.empty() ? 0.0 : pw.breakpoints.front());
  return pw;
}

}  // namespace mclg
