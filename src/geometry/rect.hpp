// Axis-aligned integer rectangle, closed-open on both axes.
//
// Used for fence regions, pin shapes, IO pins, and rail geometry. The unit
// depends on context (sites×rows for placement objects, fine pin-grid units
// for pin shapes) — see db/design.hpp.
#pragma once

#include <algorithm>
#include <cstdint>

#include "geometry/interval.hpp"

namespace mclg {

struct Rect {
  std::int64_t xlo = 0;
  std::int64_t ylo = 0;
  std::int64_t xhi = 0;  // exclusive
  std::int64_t yhi = 0;  // exclusive

  Rect() = default;
  Rect(std::int64_t xl, std::int64_t yl, std::int64_t xh, std::int64_t yh)
      : xlo(xl), ylo(yl), xhi(xh), yhi(yh) {}

  std::int64_t width() const { return xhi - xlo; }
  std::int64_t height() const { return yhi - ylo; }
  std::int64_t area() const { return width() * height(); }
  bool empty() const { return xhi <= xlo || yhi <= ylo; }

  Interval xSpan() const { return {xlo, xhi}; }
  Interval ySpan() const { return {ylo, yhi}; }

  bool contains(std::int64_t x, std::int64_t y) const {
    return x >= xlo && x < xhi && y >= ylo && y < yhi;
  }
  bool containsRect(const Rect& other) const {
    return other.xlo >= xlo && other.xhi <= xhi && other.ylo >= ylo &&
           other.yhi <= yhi;
  }
  bool overlaps(const Rect& other) const {
    return xlo < other.xhi && other.xlo < xhi && ylo < other.yhi &&
           other.ylo < yhi;
  }

  Rect intersect(const Rect& other) const {
    return {std::max(xlo, other.xlo), std::max(ylo, other.ylo),
            std::min(xhi, other.xhi), std::min(yhi, other.yhi)};
  }

  Rect shifted(std::int64_t dx, std::int64_t dy) const {
    return {xlo + dx, ylo + dy, xhi + dx, yhi + dy};
  }

  bool operator==(const Rect& other) const = default;
};

}  // namespace mclg
