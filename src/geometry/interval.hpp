// Closed-open integer interval [lo, hi) used for site spans and segments.
#pragma once

#include <algorithm>
#include <cstdint>

namespace mclg {

struct Interval {
  std::int64_t lo = 0;
  std::int64_t hi = 0;  // exclusive

  Interval() = default;
  Interval(std::int64_t l, std::int64_t h) : lo(l), hi(h) {}

  std::int64_t length() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
  bool contains(std::int64_t x) const { return x >= lo && x < hi; }
  bool containsInterval(const Interval& other) const {
    return other.lo >= lo && other.hi <= hi;
  }
  bool overlaps(const Interval& other) const {
    return lo < other.hi && other.lo < hi;
  }

  Interval intersect(const Interval& other) const {
    return {std::max(lo, other.lo), std::min(hi, other.hi)};
  }

  bool operator==(const Interval& other) const = default;
};

}  // namespace mclg
