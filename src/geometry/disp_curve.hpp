// Displacement curves (paper §3.1, Fig. 4) and their summation.
//
// When the MGL legalizer evaluates an insertion point, every local cell
// contributes a piecewise-linear curve mapping the target cell's
// x-coordinate to that cell's displacement from its GP position:
//
//   type A — right-side cell whose GP is at/left of its current x:
//            flat, then rising once the target starts pushing it.
//   type B — mirror of A on the left side.
//   type C — right-side cell whose GP is right of its current x:
//            flat, falling (push moves it *toward* GP), then rising.
//   type D — mirror of C on the left side.
//
// The target cell itself contributes a V curve centered at its GP x.
// MLL's curves (displacement w.r.t. *current* positions) are the special
// case gp == cur, which collapses C/D back into A/B — the library exposes
// that via the same constructors, which is how the MLL baseline reuses
// this machinery.
//
// CurveSum adds elementary curves and minimizes the total over integer site
// positions in a feasible interval. The minimum of a sum of piecewise-linear
// functions is attained at a breakpoint or an interval end (Theorem 1 gives
// convexity only under a precondition the paper deliberately does not
// enforce, so we evaluate every breakpoint — exactly as §3.1 describes).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

namespace mclg {

/// One elementary piecewise-linear displacement contribution with at most
/// two breakpoints (three slope segments).
class DispCurve {
 public:
  enum class Kind { Constant, TargetV, RightPush, LeftPush };

  /// f(x) = value (no breakpoints).
  static DispCurve constant(double value);

  /// f(x) = |x - gpX| : the target cell's own x-displacement.
  static DispCurve targetV(double gpX);

  /// Cell to the RIGHT of the insertion point.
  /// Its position as a function of the target x is pos(x) = max(cur, x + off),
  /// where `off` is the target width plus everything packed between them.
  /// f(x) = |pos(x) - gp|; yields type A (gp <= cur) or type C (gp > cur).
  static DispCurve rightPush(double cur, double gp, double off);

  /// Cell to the LEFT of the insertion point: pos(x) = min(cur, x - off).
  /// Yields type B (gp >= cur) or type D (gp < cur).
  static DispCurve leftPush(double cur, double gp, double off);

  /// Multiply the whole curve by w (used for per-height metric weights and
  /// the site-width-to-row-height displacement conversion).
  DispCurve scaled(double w) const;

  double value(double x) const;

  int numBreakpoints() const { return nb_; }
  double breakpoint(int i) const { return b_[i]; }
  /// Slope of segment i: 0 = left of the first breakpoint, nb_ = rightmost.
  double segmentSlope(int i) const { return s_[i]; }
  Kind kind() const { return kind_; }

 private:
  DispCurve() = default;

  Kind kind_ = Kind::Constant;
  int nb_ = 0;          // number of breakpoints (0..2)
  double b_[2] = {};    // breakpoints, b_[0] <= b_[1]
  double s_[3] = {};    // slopes: before b0, between b0/b1, after b1
  double v0_ = 0.0;     // value at b_[0] (or the constant value when nb_==0)
};

/// Accumulates elementary curves and minimizes their sum over the integer
/// lattice inside [loSite, hiSite] (inclusive).
class CurveSum {
 public:
  struct Result {
    std::int64_t x = 0;    // best integer position
    double value = 0.0;    // total displacement there
    bool feasible = false; // false iff the interval was empty
  };

  void add(const DispCurve& curve) { curves_.push_back(curve); }
  void clear() { curves_.clear(); }
  std::size_t size() const { return curves_.size(); }

  /// Sum of breakpoints over all accumulated curves (0–2 each); this is the
  /// B that drives the minimizeOnSites sweep cost.
  int totalBreakpoints() const {
    int total = 0;
    for (const auto& curve : curves_) total += curve.numBreakpoints();
    return total;
  }

  /// Total curve value at an arbitrary x (linear in #curves).
  double value(double x) const;

  /// Minimize over integer x in [loSite, hiSite]. Candidates are the snapped
  /// breakpoints of every summand plus the interval ends; evaluation is a
  /// single merged sweep, O((B + C) log(B + C)) with B breakpoints and C
  /// candidates. Scratch buffers are reused across calls (this sits in
  /// MGL's innermost loop), hence not thread-safe per CurveSum instance.
  Result minimizeOnSites(std::int64_t loSite, std::int64_t hiSite) const;

 private:
  struct Event {
    double x;
    double dslope;
  };

  std::vector<DispCurve> curves_;
  mutable std::vector<std::int64_t> candidateScratch_;
  mutable std::vector<Event> eventScratch_;
};

/// A curve aggregate supporting exact incremental membership updates.
///
/// Curves are added and removed under a caller-chosen key (MGL uses the
/// local cell id). The slope-change events of every member are maintained in
/// a sorted multiset, so a minimization after a membership delta skips the
/// per-query event sort that dominates CurveSum::minimizeOnSites; removal
/// erases the exact events the add inserted (re-derived from the stored
/// member copy), and every query walks the member map in key order. State
/// and results are therefore pure functions of the surviving member set:
/// any add/remove sequence leaves the aggregate bit-identical — breakpoints,
/// slopes, values — to one rebuilt from scratch from the same members.
class IncrementalCurveSum {
 public:
  /// Register `curve` under `id`. At most one curve per id.
  void add(std::int64_t id, const DispCurve& curve);
  /// Remove the curve registered under `id`; returns false if absent.
  bool remove(std::int64_t id);
  void clear();
  std::size_t size() const { return members_.size(); }

  /// Total value at x, summed over members in id order (linear in #curves).
  double value(double x) const;

  /// Same contract as CurveSum::minimizeOnSites, without the event sort.
  CurveSum::Result minimizeOnSites(std::int64_t loSite,
                                   std::int64_t hiSite) const;

  /// The merged piecewise-linear form: ascending unique breakpoints, the
  /// slope of each of the breakpoints.size()+1 segments, and the total value
  /// at the first breakpoint (at x=0 when there are no breakpoints). Used by
  /// the equivalence tests to compare aggregates structurally.
  struct Piecewise {
    std::vector<double> breakpoints;
    std::vector<double> slopes;
    double anchorValue = 0.0;
  };
  Piecewise piecewise() const;

 private:
  std::map<std::int64_t, DispCurve> members_;
  /// (x, dslope) of every member breakpoint, sorted; exact-duplicate events
  /// from different members each get their own entry.
  std::multiset<std::pair<double, double>> events_;
  mutable std::vector<std::int64_t> candidateScratch_;
};

}  // namespace mclg
