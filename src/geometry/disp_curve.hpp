// Displacement curves (paper §3.1, Fig. 4) and their summation.
//
// When the MGL legalizer evaluates an insertion point, every local cell
// contributes a piecewise-linear curve mapping the target cell's
// x-coordinate to that cell's displacement from its GP position:
//
//   type A — right-side cell whose GP is at/left of its current x:
//            flat, then rising once the target starts pushing it.
//   type B — mirror of A on the left side.
//   type C — right-side cell whose GP is right of its current x:
//            flat, falling (push moves it *toward* GP), then rising.
//   type D — mirror of C on the left side.
//
// The target cell itself contributes a V curve centered at its GP x.
// MLL's curves (displacement w.r.t. *current* positions) are the special
// case gp == cur, which collapses C/D back into A/B — the library exposes
// that via the same constructors, which is how the MLL baseline reuses
// this machinery.
//
// CurveSum adds elementary curves and minimizes the total over integer site
// positions in a feasible interval. The minimum of a sum of piecewise-linear
// functions is attained at a breakpoint or an interval end (Theorem 1 gives
// convexity only under a precondition the paper deliberately does not
// enforce, so we evaluate every breakpoint — exactly as §3.1 describes).
#pragma once

#include <cstdint>
#include <vector>

namespace mclg {

/// One elementary piecewise-linear displacement contribution with at most
/// two breakpoints (three slope segments).
class DispCurve {
 public:
  enum class Kind { Constant, TargetV, RightPush, LeftPush };

  /// f(x) = value (no breakpoints).
  static DispCurve constant(double value);

  /// f(x) = |x - gpX| : the target cell's own x-displacement.
  static DispCurve targetV(double gpX);

  /// Cell to the RIGHT of the insertion point.
  /// Its position as a function of the target x is pos(x) = max(cur, x + off),
  /// where `off` is the target width plus everything packed between them.
  /// f(x) = |pos(x) - gp|; yields type A (gp <= cur) or type C (gp > cur).
  static DispCurve rightPush(double cur, double gp, double off);

  /// Cell to the LEFT of the insertion point: pos(x) = min(cur, x - off).
  /// Yields type B (gp >= cur) or type D (gp < cur).
  static DispCurve leftPush(double cur, double gp, double off);

  /// Multiply the whole curve by w (used for per-height metric weights and
  /// the site-width-to-row-height displacement conversion).
  DispCurve scaled(double w) const;

  double value(double x) const;

  int numBreakpoints() const { return nb_; }
  double breakpoint(int i) const { return b_[i]; }
  /// Slope of segment i: 0 = left of the first breakpoint, nb_ = rightmost.
  double segmentSlope(int i) const { return s_[i]; }
  Kind kind() const { return kind_; }

 private:
  DispCurve() = default;

  Kind kind_ = Kind::Constant;
  int nb_ = 0;          // number of breakpoints (0..2)
  double b_[2] = {};    // breakpoints, b_[0] <= b_[1]
  double s_[3] = {};    // slopes: before b0, between b0/b1, after b1
  double v0_ = 0.0;     // value at b_[0] (or the constant value when nb_==0)
};

/// Accumulates elementary curves and minimizes their sum over the integer
/// lattice inside [loSite, hiSite] (inclusive).
class CurveSum {
 public:
  struct Result {
    std::int64_t x = 0;    // best integer position
    double value = 0.0;    // total displacement there
    bool feasible = false; // false iff the interval was empty
  };

  void add(const DispCurve& curve) { curves_.push_back(curve); }
  void clear() { curves_.clear(); }
  std::size_t size() const { return curves_.size(); }

  /// Sum of breakpoints over all accumulated curves (0–2 each); this is the
  /// B that drives the minimizeOnSites sweep cost.
  int totalBreakpoints() const {
    int total = 0;
    for (const auto& curve : curves_) total += curve.numBreakpoints();
    return total;
  }

  /// Total curve value at an arbitrary x (linear in #curves).
  double value(double x) const;

  /// Minimize over integer x in [loSite, hiSite]. Candidates are the snapped
  /// breakpoints of every summand plus the interval ends; evaluation is a
  /// single merged sweep, O((B + C) log(B + C)) with B breakpoints and C
  /// candidates. Scratch buffers are reused across calls (this sits in
  /// MGL's innermost loop), hence not thread-safe per CurveSum instance.
  Result minimizeOnSites(std::int64_t loSite, std::int64_t hiSite) const;

 private:
  struct Event {
    double x;
    double dslope;
  };

  std::vector<DispCurve> curves_;
  mutable std::vector<std::int64_t> candidateScratch_;
  mutable std::vector<Event> eventScratch_;
};

}  // namespace mclg
