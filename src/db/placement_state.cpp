#include "db/placement_state.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mclg {

PlacementState::PlacementState(Design& design) : design_(&design) {
  rows_.resize(static_cast<std::size_t>(design.numRows));
  for (CellId c = 0; c < design.numCells(); ++c) {
    auto& cell = design.cells[c];
    if (cell.fixed) continue;
    if (cell.placed) {
      // Re-index an already-placed design (e.g. loaded from a file).
      const int h = design.heightOf(c);
      for (std::int64_t y = cell.y; y < cell.y + h; ++y) {
        rows_[static_cast<std::size_t>(y)].emplace(cell.x, c);
      }
      ++numPlaced_;
    }
  }
}

void PlacementState::place(CellId c, std::int64_t x, std::int64_t y) {
  auto& cell = design_->cells[c];
  MCLG_ASSERT(!cell.fixed, "cannot place a fixed cell");
  MCLG_ASSERT(!cell.placed, "cell is already placed");
  const int h = design_->heightOf(c);
  const int w = design_->widthOf(c);
  MCLG_ASSERT(y >= 0 && y + h <= design_->numRows, "row span outside core");
  MCLG_ASSERT(x >= 0 && x + w <= design_->numSitesX, "site span outside core");
  MCLG_ASSERT(spanEmpty(y, h, x, w), "placement overlaps an existing cell");
  for (std::int64_t row = y; row < y + h; ++row) {
    rows_[static_cast<std::size_t>(row)].emplace(x, c);
  }
  cell.x = x;
  cell.y = y;
  cell.placed = true;
  ++numPlaced_;
  if (listener_ != nullptr) listener_->onPlace(c);
}

void PlacementState::remove(CellId c) {
  auto& cell = design_->cells[c];
  MCLG_ASSERT(cell.placed, "removing a cell that is not placed");
  const int h = design_->heightOf(c);
  for (std::int64_t row = cell.y; row < cell.y + h; ++row) {
    auto& rowMap = rows_[static_cast<std::size_t>(row)];
    auto it = rowMap.find(cell.x);
    MCLG_ASSERT(it != rowMap.end() && it->second == c,
                "occupancy index out of sync");
    rowMap.erase(it);
  }
  cell.placed = false;
  --numPlaced_;
  if (listener_ != nullptr) listener_->onRemove(c);
}

void PlacementState::shiftX(CellId c, std::int64_t newX) {
  auto& cell = design_->cells[c];
  MCLG_ASSERT(cell.placed, "shifting a cell that is not placed");
  if (newX == cell.x) return;
  const int h = design_->heightOf(c);
  const int w = design_->widthOf(c);
  MCLG_ASSERT(newX >= 0 && newX + w <= design_->numSitesX,
              "shift outside core");
  for (std::int64_t row = cell.y; row < cell.y + h; ++row) {
    auto& rowMap = rows_[static_cast<std::size_t>(row)];
    auto it = rowMap.find(cell.x);
    MCLG_ASSERT(it != rowMap.end() && it->second == c,
                "occupancy index out of sync");
    rowMap.erase(it);
    rowMap.emplace(newX, c);
  }
  cell.x = newX;
  if (listener_ != nullptr) listener_->onShift(c);
}

PlacementSnapshot PlacementState::snapshot() const {
  PlacementSnapshot snap;
  snap.cells.resize(design_->cells.size());
  for (std::size_t c = 0; c < design_->cells.size(); ++c) {
    const auto& cell = design_->cells[c];
    snap.cells[c] = {cell.x, cell.y, cell.placed};
  }
  snap.rows = rows_;
  snap.numPlaced = numPlaced_.load(std::memory_order_relaxed);
  return snap;
}

void PlacementState::restore(const PlacementSnapshot& snap) {
  MCLG_ASSERT(snap.cells.size() == design_->cells.size(),
              "snapshot is from a different design");
  for (std::size_t c = 0; c < design_->cells.size(); ++c) {
    auto& cell = design_->cells[c];
    if (cell.fixed) continue;
    cell.x = snap.cells[c].x;
    cell.y = snap.cells[c].y;
    cell.placed = snap.cells[c].placed;
  }
  rows_ = snap.rows;
  numPlaced_.store(snap.numPlaced, std::memory_order_relaxed);
}

CellId PlacementState::cellAt(std::int64_t y, std::int64_t x) const {
  if (y < 0 || y >= design_->numRows) return kInvalidCell;
  const auto& rowMap = rows_[static_cast<std::size_t>(y)];
  auto it = rowMap.upper_bound(x);
  if (it == rowMap.begin()) return kInvalidCell;
  --it;
  const CellId c = it->second;
  return it->first + design_->widthOf(c) > x ? c : kInvalidCell;
}

bool PlacementState::spanEmpty(std::int64_t y, int h, std::int64_t x, int w,
                               CellId ignore) const {
  for (std::int64_t row = y; row < y + h; ++row) {
    if (row < 0 || row >= design_->numRows) return false;
    const auto& rowMap = rows_[static_cast<std::size_t>(row)];
    // First cell whose left edge is < x+w; walk left while overlapping.
    auto it = rowMap.lower_bound(x + w);
    while (it != rowMap.begin()) {
      --it;
      const CellId c = it->second;
      if (it->first + design_->widthOf(c) <= x) break;
      if (c != ignore) return false;
    }
  }
  return true;
}

void PlacementState::collectInRect(const Rect& rect,
                                   std::vector<CellId>& out) const {
  out.clear();
  const std::int64_t yLo = std::max<std::int64_t>(0, rect.ylo);
  const std::int64_t yHi = std::min(design_->numRows, rect.yhi);
  for (std::int64_t y = yLo; y < yHi; ++y) {
    const auto& rowMap = rows_[static_cast<std::size_t>(y)];
    auto it = rowMap.lower_bound(rect.xlo);
    // Step back once: a cell starting left of xlo may still overlap.
    if (it != rowMap.begin()) {
      auto prev = std::prev(it);
      if (prev->first + design_->widthOf(prev->second) > rect.xlo) it = prev;
    }
    for (; it != rowMap.end() && it->first < rect.xhi; ++it) {
      const CellId c = it->second;
      // Report each multi-row cell once, at its bottom row inside the rect.
      const std::int64_t bottomVisible =
          std::max<std::int64_t>(design_->cells[c].y, yLo);
      if (bottomVisible == y) out.push_back(c);
    }
  }
}

}  // namespace mclg
