#include "db/free_span.hpp"

#include <algorithm>

namespace mclg {

std::vector<Interval> freeIntervalsForSpan(const PlacementState& state,
                                           const SegmentMap& segments,
                                           std::int64_t y, int h,
                                           FenceId fence,
                                           const Interval& xWindow) {
  const auto& design = state.design();
  std::vector<Interval> result;
  bool first = true;
  std::vector<Interval> rowFree;
  for (std::int64_t r = y; r < y + h; ++r) {
    rowFree.clear();
    for (const auto& seg : segments.row(r)) {
      if (seg.fence != fence) continue;
      Interval iv = seg.x.intersect(xWindow);
      if (iv.empty()) continue;
      // Subtract occupied cells.
      const auto& rowMap = state.rowCells(r);
      std::int64_t cursor = iv.lo;
      auto it = rowMap.lower_bound(iv.lo);
      if (it != rowMap.begin()) {
        auto prev = std::prev(it);
        const std::int64_t prevEnd =
            prev->first + design.widthOf(prev->second);
        if (prevEnd > cursor) cursor = prevEnd;
      }
      for (; it != rowMap.end() && it->first < iv.hi; ++it) {
        if (it->first > cursor) rowFree.push_back({cursor, it->first});
        cursor = std::max(cursor, it->first + design.widthOf(it->second));
      }
      if (cursor < iv.hi) rowFree.push_back({cursor, iv.hi});
    }
    if (first) {
      result = rowFree;
      first = false;
    } else {
      // Intersect the accumulated intervals with this row's free intervals.
      std::vector<Interval> merged;
      std::size_t a = 0, b = 0;
      while (a < result.size() && b < rowFree.size()) {
        const Interval iv = result[a].intersect(rowFree[b]);
        if (!iv.empty()) merged.push_back(iv);
        if (result[a].hi < rowFree[b].hi) {
          ++a;
        } else {
          ++b;
        }
      }
      result = std::move(merged);
    }
    if (result.empty()) return result;
  }
  return result;
}

}  // namespace mclg
