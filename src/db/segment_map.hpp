// Row segmentation: each row is cut into maximal free intervals, each owned
// by exactly one fence region (the default fence where no explicit fence
// rect covers it), with fixed cells/blockages removed.
//
// Legalizers place movable cells only inside segments whose fence matches
// the cell's fence assignment; a multi-row cell needs a matching segment
// span in every row it crosses.
#pragma once

#include <vector>

#include "db/design.hpp"
#include "geometry/interval.hpp"

namespace mclg {

struct Segment {
  Interval x;
  FenceId fence = kDefaultFence;
};

class SegmentMap {
 public:
  explicit SegmentMap(const Design& design);

  const std::vector<Segment>& row(std::int64_t y) const {
    return rows_[static_cast<std::size_t>(y)];
  }

  /// Segment of row y containing site x, or nullptr if x is blocked/outside.
  const Segment* find(std::int64_t y, std::int64_t x) const;

  /// True iff [x, x+w) lies inside a segment of fence `fence` in every row
  /// of [y, y+h).
  bool spanInFence(std::int64_t y, int h, std::int64_t x, int w,
                   FenceId fence) const;

  /// The x-interval that a cell of fence `fence` occupying [x, x+w) in rows
  /// [y, y+h) may slide within: the intersection over rows of the containing
  /// segments (empty interval if the span is not legal to begin with).
  Interval slideRange(std::int64_t y, int h, std::int64_t x, int w,
                      FenceId fence) const;

  std::int64_t numRows() const { return static_cast<std::int64_t>(rows_.size()); }

 private:
  std::vector<std::vector<Segment>> rows_;
};

}  // namespace mclg
