#include "db/design.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mclg {

Rect PinShape::rectInOrient(Orient orient, int heightRows) const {
  if (orient == Orient::N) return rect;
  const std::int64_t fh = heightRows * Design::kFine;
  return {rect.xlo, fh - rect.yhi, rect.xhi, fh - rect.ylo};
}

int Design::maxCellHeight() const {
  if (cachedMaxHeight_ < 0) {
    int h = 1;
    for (const auto& cell : cells) {
      if (!cell.fixed) h = std::max(h, types[cell.type].height);
    }
    cachedMaxHeight_ = h;
  }
  return cachedMaxHeight_;
}

const std::vector<int>& Design::cellsPerHeight() const {
  if (cachedPerHeight_.empty()) {
    cachedPerHeight_.assign(static_cast<std::size_t>(maxCellHeight()) + 1, 0);
    for (const auto& cell : cells) {
      if (!cell.fixed) ++cachedPerHeight_[types[cell.type].height];
    }
  }
  return cachedPerHeight_;
}

double Design::metricWeight(CellId c) const {
  if (cells[c].fixed) return 0.0;
  const auto& perHeight = cellsPerHeight();
  const int h = types[cells[c].type].height;
  const int count = perHeight[static_cast<std::size_t>(h)];
  if (count == 0) return 0.0;
  return 1.0 / (static_cast<double>(maxCellHeight()) * count);
}

std::int64_t Design::maxIoPinWidthFine() const {
  if (cachedMaxIoWidth_ < 0) {
    std::int64_t w = 0;
    for (const auto& pin : ioPins) w = std::max(w, pin.rect.width());
    cachedMaxIoWidth_ = w;
  }
  return cachedMaxIoWidth_;
}

std::int64_t Design::maxCellWidth() const {
  if (cachedMaxCellWidth_ < 0) {
    std::int64_t w = 1;
    for (const auto& type : types) w = std::max<std::int64_t>(w, type.width);
    cachedMaxCellWidth_ = w;
  }
  return cachedMaxCellWidth_;
}

bool Design::check(std::string* whatOut) const {
  const auto fail = [&](const char* what) {
    if (whatOut != nullptr) *whatOut = what;
    return false;
  };
#define MCLG_CHECK_DESIGN(cond, msg) \
  do {                               \
    if (!(cond)) return fail(msg);   \
  } while (0)

  MCLG_CHECK_DESIGN(numSitesX > 0 && numRows > 0, "empty core area");
  MCLG_CHECK_DESIGN(!fences.empty() && fences[0].rects.empty(),
              "fence 0 must be the implicit default fence");
  MCLG_CHECK_DESIGN(siteWidthFactor > 0.0, "siteWidthFactor must be positive");
  for (const auto& type : types) {
    MCLG_CHECK_DESIGN(type.width > 0 && type.height > 0, "degenerate cell type");
    if (type.height % 2 == 0) {
      MCLG_CHECK_DESIGN(type.parity == 0 || type.parity == 1,
                  "even-height type needs a P/G parity");
    }
    MCLG_CHECK_DESIGN(type.leftEdge >= 0 && type.leftEdge < numEdgeClasses &&
                    type.rightEdge >= 0 && type.rightEdge < numEdgeClasses,
                "edge class out of range");
  }
  if (!edgeSpacingTable.empty()) {
    MCLG_CHECK_DESIGN(static_cast<int>(edgeSpacingTable.size()) ==
                    numEdgeClasses * numEdgeClasses,
                "edge spacing table size mismatch");
  }
  const Rect core(0, 0, numSitesX, numRows);
  for (std::size_t f = 1; f < fences.size(); ++f) {
    for (const auto& rect : fences[f].rects) {
      MCLG_CHECK_DESIGN(core.containsRect(rect), "fence rect outside core");
    }
  }
  for (const auto& cell : cells) {
    MCLG_CHECK_DESIGN(cell.type >= 0 && cell.type < numTypes(), "bad cell type id");
    MCLG_CHECK_DESIGN(cell.fence >= 0 && cell.fence < numFences(), "bad fence id");
    if (cell.fixed) {
      MCLG_CHECK_DESIGN(cell.x >= 0 && cell.y >= 0, "fixed cell without position");
    }
    if (!cell.fixed && cell.placed) {
      // PlacementState indexes placed movable cells by row, so an
      // out-of-core span in a loaded file would be a heap overrun.
      MCLG_CHECK_DESIGN(cell.x >= 0 && cell.y >= 0 &&
                            cell.x + types[cell.type].width <= numSitesX &&
                            cell.y + types[cell.type].height <= numRows,
                        "placed movable cell outside core");
    }
  }
  for (std::size_t i = 1; i < hRails.size(); ++i) {
    MCLG_CHECK_DESIGN(hRails[i - 1].yFineLo <= hRails[i].yFineLo,
                "hRails must be sorted by yFineLo");
  }
  for (std::size_t i = 1; i < vRails.size(); ++i) {
    MCLG_CHECK_DESIGN(vRails[i - 1].xFineLo <= vRails[i].xFineLo,
                "vRails must be sorted by xFineLo");
  }
  for (std::size_t i = 1; i < ioPins.size(); ++i) {
    MCLG_CHECK_DESIGN(ioPins[i - 1].rect.xlo <= ioPins[i].rect.xlo,
                "ioPins must be sorted by rect.xlo");
  }
  for (const auto& net : nets) {
    for (const auto& conn : net.conns) {
      MCLG_CHECK_DESIGN(conn.cell >= 0 && conn.cell < numCells(), "bad net conn");
      MCLG_CHECK_DESIGN(conn.pin >= 0 &&
                      conn.pin < static_cast<int>(typeOf(conn.cell).pins.size()),
                  "net pin index out of range");
    }
  }

#undef MCLG_CHECK_DESIGN
  return true;
}

void Design::validate() const {
  std::string what;
  MCLG_ASSERT(check(&what), what.c_str());
}

}  // namespace mclg
