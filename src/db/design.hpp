// Design database: cell library, cells, fences, P/G rails, IO pins, nets.
//
// Unit conventions (see DESIGN.md §5):
//  - x is measured in placement *sites* (int when legal, double for GP);
//  - y is measured in *rows*;
//  - displacement is reported in row-height units, so horizontal distances
//    are scaled by siteWidthFactor() (= site width / row height, 0.5 in the
//    ICCAD-2017-style technology we generate);
//  - pin shapes, rails and IO pins live on a *fine grid* with kFine units
//    per site horizontally and per row vertically, which lets signal-pin /
//    rail overlap tests stay in integer arithmetic.
//
// Fence id 0 is the implicit default fence (everything outside explicit
// fence rects); explicit fences are 1..numFences()-1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/rect.hpp"

namespace mclg {

using CellId = std::int32_t;
using TypeId = std::int32_t;
using FenceId = std::int32_t;
using NetId = std::int32_t;

inline constexpr CellId kInvalidCell = -1;
inline constexpr FenceId kDefaultFence = 0;

/// Placement orientation. Odd-height cells flip vertically (FS) in
/// alternate rows to keep their power pins on the correct rail — the
/// paper's reason why odd heights carry no parity constraint. Even-height
/// cells cannot fix alignment by flipping and always place N (their parity
/// constraint does the aligning).
enum class Orient : std::uint8_t { N = 0, FS = 1 };

/// A signal-pin shape, in fine-grid units relative to the cell's lower-left
/// corner (N orientation; flip with flippedVertically() for FS).
struct PinShape {
  int layer = 1;
  Rect rect;  // fine units

  /// The shape after a vertical mirror within a cell of `heightRows` rows
  /// (x extent unchanged, y extent mirrored about the cell's mid-height).
  Rect rectInOrient(Orient orient, int heightRows) const;
};

struct CellType {
  std::string name;
  int width = 1;   // sites
  int height = 1;  // rows
  /// Required parity of the bottom row (P/G alignment). Even-height cells
  /// cannot fix their rail alignment by flipping, so they carry 0 or 1;
  /// odd-height cells are free (-1).
  int parity = -1;
  int leftEdge = 0;   // edge-spacing class of the left boundary
  int rightEdge = 0;  // edge-spacing class of the right boundary
  std::vector<PinShape> pins;
};

struct Cell {
  TypeId type = 0;
  double gpX = 0.0;  // global-placement x, in sites
  double gpY = 0.0;  // global-placement y, in rows
  std::int64_t x = -1;  // legal site (valid when placed)
  std::int64_t y = -1;  // legal bottom row (valid when placed)
  FenceId fence = kDefaultFence;
  bool fixed = false;   // fixed macro/blockage: never moves, x/y always valid
  bool placed = false;
};

struct Fence {
  std::string name;
  std::vector<Rect> rects;  // site×row units; disjoint
};

/// Horizontal P/G rail: spans the full chip width on `layer`, covering
/// fine-grid y in [yFineLo, yFineHi).
struct HRail {
  int layer = 2;
  std::int64_t yFineLo = 0;
  std::int64_t yFineHi = 0;
};

/// Vertical P/G stripe: spans the full chip height on `layer`, covering
/// fine-grid x in [xFineLo, xFineHi).
struct VRail {
  int layer = 3;
  std::int64_t xFineLo = 0;
  std::int64_t xFineHi = 0;
};

struct IoPin {
  int layer = 1;
  Rect rect;  // fine units, absolute chip coordinates
};

/// A net connects pins of cells; pin index refers to the cell type's pin
/// list. Used only for the HPWL terms of the contest score.
struct Net {
  struct Conn {
    CellId cell = kInvalidCell;
    int pin = 0;
  };
  std::vector<Conn> conns;
};

class Design {
 public:
  /// Fine-grid resolution (units per site in x, per row in y).
  static constexpr std::int64_t kFine = 8;

  std::string name;
  std::int64_t numSitesX = 0;
  std::int64_t numRows = 0;
  /// site width / row height; multiplies x-distances when computing
  /// displacement in row-height units.
  double siteWidthFactor = 0.5;

  std::vector<CellType> types;
  std::vector<Cell> cells;
  std::vector<Fence> fences;  // fences[0] = default fence, rects empty
  std::vector<HRail> hRails;
  std::vector<VRail> vRails;
  std::vector<IoPin> ioPins;
  std::vector<Net> nets;

  int numEdgeClasses = 1;
  /// Flattened numEdgeClasses × numEdgeClasses table, in sites.
  std::vector<int> edgeSpacingTable;

  Design() { fences.push_back({"<default>", {}}); }

  int numCells() const { return static_cast<int>(cells.size()); }
  int numTypes() const { return static_cast<int>(types.size()); }
  int numFences() const { return static_cast<int>(fences.size()); }

  const CellType& typeOf(CellId c) const { return types[cells[c].type]; }
  int widthOf(CellId c) const { return typeOf(c).width; }
  int heightOf(CellId c) const { return typeOf(c).height; }

  /// Required spacing (sites) between a cell whose right edge has class e1
  /// and the next cell whose left edge has class e2.
  int edgeSpacing(int e1, int e2) const {
    return edgeSpacingTable.empty()
               ? 0
               : edgeSpacingTable[e1 * numEdgeClasses + e2];
  }

  /// Spacing required between cell `left` placed immediately before cell
  /// `right` in the same row(s).
  int spacingBetween(CellId left, CellId right) const {
    return edgeSpacing(typeOf(left).rightEdge, typeOf(right).leftEdge);
  }

  /// Displacement of cell c from its GP position, in row heights (Eq. 1
  /// with the paper's row-height normalization).
  double displacement(CellId c) const {
    const Cell& cell = cells[c];
    if (!cell.placed) return 0.0;
    return siteWidthFactor *
               std::abs(static_cast<double>(cell.x) - cell.gpX) +
           std::abs(static_cast<double>(cell.y) - cell.gpY);
  }

  /// Largest cell height H in the design (used by the Eq. 2 weights).
  int maxCellHeight() const;

  /// Count of movable cells of each height 1..H (index 0 unused).
  /// Returns the lazily built cache by reference — this sits on the MGL
  /// hot path (metric weights), so it must not allocate per call.
  const std::vector<int>& cellsPerHeight() const;

  /// Eq. 2 weight of cell c: 1 / (H * |C_h|) for movable cells.
  double metricWeight(CellId c) const;

  /// Width (fine units) of the widest IO pin, for bounded look-back scans
  /// over the xlo-sorted IO pin list.
  std::int64_t maxIoPinWidthFine() const;

  /// Width (sites) of the widest cell type, for bounded occupancy scans.
  std::int64_t maxCellWidth() const;

  /// True if placing a cell of this type with bottom row y satisfies the
  /// P/G parity constraint.
  bool parityOk(TypeId t, std::int64_t y) const {
    const int parity = types[t].parity;
    return parity < 0 || (y & 1) == parity;
  }

  /// Orientation implied by the row assignment: odd-height cells flip in
  /// odd rows to stay rail-aligned; parity-constrained cells are always N.
  Orient orientationAt(TypeId t, std::int64_t y) const {
    if (types[t].height % 2 == 0) return Orient::N;
    return (y & 1) == 0 ? Orient::N : Orient::FS;
  }

  /// Non-aborting consistency check (index ranges, fence rects in core,
  /// type dimensions positive, placed movable cells inside the core).
  /// Returns false and fills *whatOut with the first violation; used by the
  /// parsers so malformed input surfaces as a ParseError, not an abort.
  bool check(std::string* whatOut = nullptr) const;

  /// Aborting wrapper around check(); call sites (the generator) where a
  /// violation means an internal bug rather than bad input.
  void validate() const;

  /// Drop the lazily cached statistics (max height, per-height counts, max
  /// widths). Call after structurally editing the design — e.g. adding ECO
  /// cells before an incremental legalization pass.
  void invalidateCaches() {
    cachedMaxHeight_ = -1;
    cachedPerHeight_.clear();
    cachedMaxIoWidth_ = -1;
    cachedMaxCellWidth_ = -1;
  }

 private:
  mutable int cachedMaxHeight_ = -1;
  mutable std::vector<int> cachedPerHeight_;
  mutable std::int64_t cachedMaxIoWidth_ = -1;
  mutable std::int64_t cachedMaxCellWidth_ = -1;
};

}  // namespace mclg
