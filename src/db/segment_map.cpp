#include "db/segment_map.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mclg {
namespace {

/// Paint fence ownership / blockages over one row and emit the segments.
struct RowPainter {
  // Ownership changes as half-open runs; later paints win, blockage final.
  struct Op {
    std::int64_t xlo, xhi;
    FenceId fence;  // -1 = blocked
  };
  std::vector<Op> ops;

  std::vector<Segment> build(std::int64_t width) const {
    // Sweep with a priority: blockage (-1) beats fences beats default.
    // Fences are disjoint by contract, so at most one fence op covers any
    // point; blockages may overlap anything.
    std::vector<std::int64_t> cuts{0, width};
    for (const auto& op : ops) {
      if (op.xlo > 0 && op.xlo < width) cuts.push_back(op.xlo);
      if (op.xhi > 0 && op.xhi < width) cuts.push_back(op.xhi);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::vector<Segment> result;
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const std::int64_t lo = cuts[i], hi = cuts[i + 1];
      const std::int64_t mid = lo;  // constant ownership on [lo, hi)
      FenceId fence = kDefaultFence;
      bool blocked = false;
      for (const auto& op : ops) {
        if (op.xlo <= mid && mid < op.xhi) {
          if (op.fence < 0) {
            blocked = true;
            break;
          }
          fence = op.fence;
        }
      }
      if (blocked) continue;
      if (!result.empty() && result.back().x.hi == lo &&
          result.back().fence == fence) {
        result.back().x.hi = hi;  // merge
      } else {
        result.push_back({{lo, hi}, fence});
      }
    }
    return result;
  }
};

}  // namespace

SegmentMap::SegmentMap(const Design& design) {
  const auto numRows = static_cast<std::size_t>(design.numRows);
  std::vector<RowPainter> painters(numRows);

  for (FenceId f = 1; f < design.numFences(); ++f) {
    for (const auto& rect : design.fences[f].rects) {
      for (std::int64_t y = rect.ylo; y < rect.yhi; ++y) {
        painters[static_cast<std::size_t>(y)].ops.push_back(
            {rect.xlo, rect.xhi, f});
      }
    }
  }
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (!cell.fixed) continue;
    const int h = design.heightOf(c);
    const int w = design.widthOf(c);
    for (std::int64_t y = cell.y; y < cell.y + h; ++y) {
      if (y < 0 || y >= design.numRows) continue;
      painters[static_cast<std::size_t>(y)].ops.push_back(
          {cell.x, cell.x + w, FenceId{-1}});
    }
  }

  rows_.resize(numRows);
  for (std::size_t y = 0; y < numRows; ++y) {
    rows_[y] = painters[y].build(design.numSitesX);
  }
}

const Segment* SegmentMap::find(std::int64_t y, std::int64_t x) const {
  if (y < 0 || y >= numRows()) return nullptr;
  const auto& segs = rows_[static_cast<std::size_t>(y)];
  // Binary search for the segment with x.lo <= x < x.hi.
  auto it = std::upper_bound(
      segs.begin(), segs.end(), x,
      [](std::int64_t v, const Segment& s) { return v < s.x.lo; });
  if (it == segs.begin()) return nullptr;
  --it;
  return it->x.contains(x) ? &*it : nullptr;
}

bool SegmentMap::spanInFence(std::int64_t y, int h, std::int64_t x, int w,
                             FenceId fence) const {
  if (y < 0 || y + h > numRows()) return false;
  for (std::int64_t row = y; row < y + h; ++row) {
    const Segment* seg = find(row, x);
    if (seg == nullptr || seg->fence != fence ||
        !seg->x.containsInterval({x, x + w})) {
      return false;
    }
  }
  return true;
}

Interval SegmentMap::slideRange(std::int64_t y, int h, std::int64_t x, int w,
                                FenceId fence) const {
  Interval range{0, 0};
  if (y < 0 || y + h > numRows()) return range;
  bool first = true;
  for (std::int64_t row = y; row < y + h; ++row) {
    const Segment* seg = find(row, x);
    if (seg == nullptr || seg->fence != fence ||
        !seg->x.containsInterval({x, x + w})) {
      return {0, 0};
    }
    range = first ? seg->x : range.intersect(seg->x);
    first = false;
  }
  return range;
}

}  // namespace mclg
