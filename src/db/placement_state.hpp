// Mutable occupancy index over a Design: which movable cell occupies which
// sites of which rows. Legalizers mutate placements exclusively through
// this class so the per-row ordered indices stay consistent with the cells'
// coordinates.
//
// Fixed cells are *not* tracked here — they are carved out of the free area
// by SegmentMap, which keeps every query in this class about movable cells
// only.
#pragma once

#include <atomic>
#include <map>
#include <vector>

#include "db/design.hpp"
#include "geometry/rect.hpp"

namespace mclg {

/// Observer of placement mutations. A registered listener is notified after
/// every successful place()/remove()/shiftX() — the hook the ECO
/// DeltaTracker (legal/eco/) uses to record which cells an incremental
/// stage touched.
///
/// Thread-safety: the MGL scheduler mutates row-disjoint windows from
/// several threads, so implementations must tolerate concurrent callbacks
/// for *different* cells. restore() deliberately does not notify (a
/// snapshot rollback is outside the delta model; callers re-diff instead).
class PlacementListener {
 public:
  virtual ~PlacementListener() = default;
  virtual void onPlace(CellId c) = 0;
  virtual void onRemove(CellId c) = 0;
  virtual void onShift(CellId c) = 0;
};

/// Value snapshot of a PlacementState: per-cell coordinates/placed flags of
/// the movable cells plus the row occupancy maps. Captured before a
/// pipeline stage runs so the stage can be rolled back transactionally
/// (legal/guard/); restore() brings both the Design's cells and the
/// occupancy index back to the exact captured state.
struct PlacementSnapshot {
  struct CellPos {
    std::int64_t x = -1;
    std::int64_t y = -1;
    bool placed = false;

    bool operator==(const CellPos&) const = default;
  };
  std::vector<CellPos> cells;  // indexed by CellId; fixed cells included
  std::vector<std::map<std::int64_t, CellId>> rows;
  int numPlaced = 0;

  bool operator==(const PlacementSnapshot&) const = default;
};

class PlacementState {
 public:
  explicit PlacementState(Design& design);

  Design& design() { return *design_; }
  const Design& design() const { return *design_; }

  /// Place cell c with bottom-left site (x, y). The span must be empty.
  void place(CellId c, std::int64_t x, std::int64_t y);

  /// Remove cell c from the index (keeps its coordinates for reference).
  void remove(CellId c);

  /// Move an already-placed cell horizontally within its rows.
  void shiftX(CellId c, std::int64_t newX);

  /// Cell covering site x of row y, or kInvalidCell.
  CellId cellAt(std::int64_t y, std::int64_t x) const;

  /// True iff no movable cell overlaps [x, x+w) × [y, y+h), ignoring
  /// `ignore` if given.
  bool spanEmpty(std::int64_t y, int h, std::int64_t x, int w,
                 CellId ignore = kInvalidCell) const;

  /// All distinct movable cells intersecting the rect (site×row units),
  /// in increasing (row-major, then x) discovery order without duplicates.
  void collectInRect(const Rect& rect, std::vector<CellId>& out) const;

  /// Ordered occupancy of one row: left-site -> cell id.
  const std::map<std::int64_t, CellId>& rowCells(std::int64_t y) const {
    return rows_[static_cast<std::size_t>(y)];
  }

  /// Number of placed movable cells. (Atomic: the MGL scheduler places
  /// cells from several threads, in row-disjoint windows.)
  int numPlaced() const { return numPlaced_.load(std::memory_order_relaxed); }

  /// Capture the full placement (cell coordinates + occupancy index) for a
  /// later transactional restore(). Cost: one copy of the row maps.
  PlacementSnapshot snapshot() const;

  /// Roll back to a snapshot taken on this state. Restores movable cells'
  /// x/y/placed and the occupancy index exactly; fixed cells are untouched
  /// (they never move). Does not notify the listener.
  void restore(const PlacementSnapshot& snap);

  /// Register (or clear, with nullptr) the mutation listener. The listener
  /// outlives the registration window; notifications fire after the
  /// mutation has been applied.
  void setListener(PlacementListener* listener) { listener_ = listener; }
  PlacementListener* listener() const { return listener_; }

 private:
  Design* design_;
  std::vector<std::map<std::int64_t, CellId>> rows_;
  std::atomic<int> numPlaced_{0};
  PlacementListener* listener_ = nullptr;
};

}  // namespace mclg
