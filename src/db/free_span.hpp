// Free-interval queries over a multi-row span: where could a cell of a
// given fence land without pushing anything? Used by the greedy baselines
// and by MGL's guaranteed last-resort placement.
#pragma once

#include <vector>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "geometry/interval.hpp"

namespace mclg {

/// Maximal intervals of `xWindow` that are (a) inside fence-`fence`
/// segments in every row of [y, y+h) and (b) free of movable cells there.
/// Sorted, disjoint.
std::vector<Interval> freeIntervalsForSpan(const PlacementState& state,
                                           const SegmentMap& segments,
                                           std::int64_t y, int h,
                                           FenceId fence,
                                           const Interval& xWindow);

}  // namespace mclg
