// Human-readable evaluation summaries and the Fig.-6-style SVG dump of
// per-cell displacement vectors.
#pragma once

#include <string>

#include "db/design.hpp"
#include "eval/score.hpp"

namespace mclg {

/// One-paragraph textual summary of an evaluation.
std::string summarize(const Design& design, const ScoreBreakdown& score);

/// Write an SVG showing cells of `type` (all types when -1) as rectangles
/// with red lines from each cell's legal position to its GP position — the
/// visualization style of the paper's Fig. 6. Returns false on I/O error.
bool writeDisplacementSvg(const Design& design, TypeId type,
                          const std::string& path);

/// Write an SVG heat map of placement density (cell area per bin, blue =
/// empty through red = full), using legal positions when placed and GP
/// positions otherwise. Returns false on I/O error.
bool writeDensityMapSvg(const Design& design, const std::string& path,
                        int binRows = 8);

}  // namespace mclg
