// Structured per-violation diagnostics: where checkers.hpp returns counts
// (for scores and tables), this module returns the offending cells and
// geometry — what a user needs to debug a flow or waive a rule.
#pragma once

#include <string>
#include <vector>

#include "db/design.hpp"
#include "db/segment_map.hpp"

namespace mclg {

enum class ViolationKind {
  Unplaced,
  OutOfCore,
  Overlap,
  Parity,
  Fence,
  EdgeSpacing,
  PinShort,
  PinAccess,
};

struct Violation {
  ViolationKind kind = ViolationKind::Unplaced;
  CellId cell = kInvalidCell;        // primary offender
  CellId otherCell = kInvalidCell;   // partner (overlap / spacing pairs)
  Rect where;                        // site×row box of the offense
  std::string detail;                // human-readable one-liner
};

const char* violationKindName(ViolationKind kind);

/// Collect every violation, hard and soft, up to `limit` entries (0 = all).
/// Counts always match the checkers in eval/checkers.hpp.
std::vector<Violation> collectViolations(const Design& design,
                                         const SegmentMap& segments,
                                         std::size_t limit = 0);

/// Render a violation list as text, one line per violation.
std::string formatViolations(const Design& design,
                             const std::vector<Violation>& violations);

}  // namespace mclg
