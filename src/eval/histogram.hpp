// Displacement histograms: bucketed per-cell displacement counts used by
// the Fig. 6 reproduction and by reports.
#pragma once

#include <string>
#include <vector>

#include "db/design.hpp"

namespace mclg {

struct DisplacementHistogram {
  /// Bucket upper bounds in row heights (last bucket is open-ended).
  std::vector<double> bounds;
  std::vector<int> counts;  // bounds.size() + 1 entries
  int total = 0;
  double maximum = 0.0;

  /// ASCII rendering, one bucket per line.
  std::string toString() const;
};

/// Histogram over movable placed cells; `type` filters to one cell type
/// (-1 = all). Default buckets: <=1, <=2, <=5, <=10, <=20, <=50, >50 rows.
DisplacementHistogram displacementHistogram(
    const Design& design, TypeId type = -1,
    std::vector<double> bounds = {1, 2, 5, 10, 20, 50});

}  // namespace mclg
