#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mclg {

DisplacementStats displacementStats(const Design& design) {
  DisplacementStats stats;
  const auto perHeight = design.cellsPerHeight();
  const int maxHeight = design.maxCellHeight();
  std::vector<double> sumPerHeight(perHeight.size(), 0.0);
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed || !cell.placed) continue;
    const double disp = design.displacement(c);
    stats.maximum = std::max(stats.maximum, disp);
    stats.totalSites += disp / design.siteWidthFactor;
    sumPerHeight[static_cast<std::size_t>(design.heightOf(c))] += disp;
  }
  double avg = 0.0;
  for (int h = 1; h <= maxHeight; ++h) {
    if (perHeight[static_cast<std::size_t>(h)] > 0) {
      avg += sumPerHeight[static_cast<std::size_t>(h)] /
             perHeight[static_cast<std::size_t>(h)];
    }
  }
  stats.average = avg / maxHeight;
  return stats;
}

double hpwl(const Design& design, bool useGp) {
  double total = 0.0;
  const double fine = static_cast<double>(Design::kFine);
  for (const auto& net : design.nets) {
    if (net.conns.size() < 2) continue;
    double xlo = std::numeric_limits<double>::infinity(), xhi = -xlo;
    double ylo = xlo, yhi = -xlo;
    for (const auto& conn : net.conns) {
      const auto& cell = design.cells[conn.cell];
      const auto& type = design.typeOf(conn.cell);
      const auto& pin = type.pins[static_cast<std::size_t>(conn.pin)];
      const bool atGp = useGp || (!cell.placed && !cell.fixed);
      const double cx = atGp ? cell.gpX : static_cast<double>(cell.x);
      const double cy = atGp ? cell.gpY : static_cast<double>(cell.y);
      // Pin center offset in site units (legal positions honor the
      // row-implied orientation; GP has none, so use N).
      const Rect shape = atGp ? pin.rect
                              : pin.rectInOrient(
                                    design.orientationAt(cell.type, cell.y),
                                    type.height);
      const double px =
          cx + static_cast<double>(shape.xlo + shape.xhi) / (2.0 * fine);
      const double py =
          cy + static_cast<double>(shape.ylo + shape.yhi) / (2.0 * fine);
      xlo = std::min(xlo, px);
      xhi = std::max(xhi, px);
      ylo = std::min(ylo, py);
      yhi = std::max(yhi, py);
    }
    // y in rows; convert to site units via the site-width factor so both
    // axes share a unit.
    total += (xhi - xlo) + (yhi - ylo) / design.siteWidthFactor;
  }
  return total;
}

double hpwlIncreaseRatio(const Design& design) {
  const double before = hpwl(design, /*useGp=*/true);
  if (before <= 0.0) return 0.0;
  const double after = hpwl(design, /*useGp=*/false);
  return (after - before) / before;
}

std::uint64_t placementHash(const Design& design) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFF;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  for (const auto& cell : design.cells) {
    mix(cell.placed ? 1 : 0);
    mix(static_cast<std::uint64_t>(cell.x));
    mix(static_cast<std::uint64_t>(cell.y));
  }
  return h;
}

}  // namespace mclg
