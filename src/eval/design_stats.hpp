// Design statistics: the numbers an engineer asks for before and after
// legalization — utilization (global, per fence, per density bin),
// cell-height mix, free-space fragmentation. Backed by the same segment
// and occupancy structures the legalizers use.
#pragma once

#include <string>
#include <vector>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"

namespace mclg {

struct FenceStats {
  FenceId fence = kDefaultFence;
  std::string name;
  std::int64_t freeSites = 0;   // segment area of this fence (sites)
  std::int64_t usedSites = 0;   // area of movable cells assigned to it
  int cells = 0;
  double utilization() const {
    return freeSites > 0 ? static_cast<double>(usedSites) / freeSites : 0.0;
  }
};

struct DesignStats {
  int movableCells = 0;
  int fixedCells = 0;
  std::vector<int> cellsPerHeight;  // index = height (0 unused)
  std::int64_t coreSites = 0;       // numSitesX * numRows
  std::int64_t freeSites = 0;       // core minus blockages (segment area)
  std::int64_t cellSites = 0;       // total movable cell area
  double utilization = 0.0;         // cellSites / freeSites
  std::vector<FenceStats> fences;

  // Density bins (only for placed designs): utilization of the fullest bin
  // and the count of bins above 1.0 of their free capacity.
  double peakBinUtilization = 0.0;
  int overfullBins = 0;

  // Fragmentation of the free space after placement: gap count and the
  // largest contiguous single-row gap (sites).
  int freeGaps = 0;
  std::int64_t largestGap = 0;

  std::string toString() const;
};

/// Compute statistics. Placement-dependent fields (bins, gaps) are zero
/// when no cell is placed. `binRows` sets the density-bin size.
DesignStats computeDesignStats(const PlacementState& state,
                               const SegmentMap& segments, int binRows = 8);

}  // namespace mclg
