// Contest quality score, Eq. 10 of the paper (ICCAD 2017 style):
//
//   S = (1 + S_hpwl + (N_p + N_e)/m) * (1 + max_i δ_i / Δ) * S_am
//
// with Δ = 100, S_hpwl the HPWL increase ratio, N_p pin access/short
// violations, N_e edge-spacing violations, m the number of movable cells,
// and S_am the height-weighted average displacement (Eq. 2). Lower is
// better. The paper's footnote drops the runtime and target-utilization
// terms, and so do we.
#pragma once

#include "db/design.hpp"
#include "db/segment_map.hpp"
#include "eval/checkers.hpp"
#include "eval/metrics.hpp"

namespace mclg {

struct ScoreBreakdown {
  DisplacementStats displacement;
  double hpwlRatio = 0.0;
  PinViolationReport pins;
  int edgeSpacing = 0;
  LegalityReport legality;
  double score = 0.0;

  static constexpr double kDelta = 100.0;
};

/// Evaluate every metric and the combined score on the current placement.
ScoreBreakdown evaluateScore(const Design& design, const SegmentMap& segments);

/// Just the combination formula (exposed for tests).
double combineScore(double avgDisp, double maxDisp, double hpwlRatio,
                    int pinViolations, int edgeViolations, int numCells);

}  // namespace mclg
