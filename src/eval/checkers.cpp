#include "eval/checkers.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace mclg {
namespace {

std::int64_t floorDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t ceilDiv(std::int64_t a, std::int64_t b) {
  return -floorDiv(-a, b);
}

struct RowEntry {
  std::int64_t x;
  std::int64_t w;
  CellId cell;
  std::int64_t bottomY;
};

/// Per-row listing of all placed cells (movable and fixed), sorted by x.
std::vector<std::vector<RowEntry>> buildRowOccupancy(const Design& design) {
  std::vector<std::vector<RowEntry>> rows(
      static_cast<std::size_t>(design.numRows));
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (!cell.fixed && !cell.placed) continue;
    const int h = design.heightOf(c);
    for (std::int64_t y = cell.y; y < cell.y + h; ++y) {
      if (y < 0 || y >= design.numRows) continue;
      rows[static_cast<std::size_t>(y)].push_back(
          {cell.x, design.widthOf(c), c, cell.y});
    }
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end(),
              [](const RowEntry& a, const RowEntry& b) { return a.x < b.x; });
  }
  return rows;
}

/// Does `pin` placed with its owner's bottom-left at fine coords (fx, fy)
/// conflict with the rail/IO layer `objLayer`? Short: same layer; access:
/// object one layer above the pin.
bool layerConflicts(int pinLayer, int objLayer, bool* isShort) {
  if (objLayer == pinLayer) {
    *isShort = true;
    return true;
  }
  if (objLayer == pinLayer + 1) {
    *isShort = false;
    return true;
  }
  return false;
}

}  // namespace

LegalityReport checkLegality(const Design& design, const SegmentMap& segments) {
  LegalityReport report;
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed) continue;
    if (!cell.placed) {
      ++report.unplacedCells;
      continue;
    }
    const int h = design.heightOf(c);
    const int w = design.widthOf(c);
    if (cell.x < 0 || cell.y < 0 || cell.x + w > design.numSitesX ||
        cell.y + h > design.numRows) {
      ++report.outOfCore;
      continue;
    }
    if (!design.parityOk(cell.type, cell.y)) ++report.parityViolations;
    if (!segments.spanInFence(cell.y, h, cell.x, w, cell.fence)) {
      ++report.fenceViolations;
    }
  }

  const auto rows = buildRowOccupancy(design);
  for (std::int64_t y = 0; y < design.numRows; ++y) {
    const auto& row = rows[static_cast<std::size_t>(y)];
    for (std::size_t i = 0; i + 1 < row.size(); ++i) {
      const auto& a = row[i];
      const auto& b = row[i + 1];
      if (a.x + a.w > b.x) {
        // Count each overlapping pair once, at the lowest shared row.
        if (y == std::max(a.bottomY, b.bottomY)) ++report.overlaps;
      }
    }
  }
  return report;
}

int countEdgeSpacingViolations(const Design& design) {
  const auto rows = buildRowOccupancy(design);
  int violations = 0;
  for (std::int64_t y = 0; y < design.numRows; ++y) {
    const auto& row = rows[static_cast<std::size_t>(y)];
    for (std::size_t i = 0; i + 1 < row.size(); ++i) {
      const auto& a = row[i];
      const auto& b = row[i + 1];
      const std::int64_t gap = b.x - (a.x + a.w);
      const int need = design.spacingBetween(a.cell, b.cell);
      if (gap >= 0 && gap < need) {
        if (y == std::max(a.bottomY, b.bottomY)) ++violations;
      }
    }
  }
  return violations;
}

PinViolationReport pinViolationsAt(const Design& design, TypeId type,
                                   std::int64_t x, std::int64_t y) {
  PinViolationReport report;
  const auto& cellType = design.types[static_cast<std::size_t>(type)];
  const std::int64_t fx = x * Design::kFine;
  const std::int64_t fy = y * Design::kFine;
  const Orient orient = design.orientationAt(type, y);
  for (const auto& pin : cellType.pins) {
    const Rect abs = pin.rectInOrient(orient, cellType.height).shifted(fx, fy);
    bool isShort = false;

    // Horizontal rails: sorted by yFineLo; rails are thin, so scan the
    // window overlapping [abs.ylo, abs.yhi).
    {
      auto it = std::lower_bound(
          design.hRails.begin(), design.hRails.end(), abs.ylo,
          [](const HRail& r, std::int64_t v) { return r.yFineHi <= v; });
      for (; it != design.hRails.end() && it->yFineLo < abs.yhi; ++it) {
        if (layerConflicts(pin.layer, it->layer, &isShort)) {
          (isShort ? report.shorts : report.access) += 1;
        }
      }
    }
    // Vertical rails: sorted by xFineLo.
    {
      auto it = std::lower_bound(
          design.vRails.begin(), design.vRails.end(), abs.xlo,
          [](const VRail& r, std::int64_t v) { return r.xFineHi <= v; });
      for (; it != design.vRails.end() && it->xFineLo < abs.xhi; ++it) {
        if (layerConflicts(pin.layer, it->layer, &isShort)) {
          (isShort ? report.shorts : report.access) += 1;
        }
      }
    }
    // IO pins: sorted by rect.xlo; bounded-width backward scan.
    {
      auto it = std::lower_bound(
          design.ioPins.begin(), design.ioPins.end(), abs.xhi,
          [](const IoPin& p, std::int64_t v) { return p.rect.xlo < v; });
      while (it != design.ioPins.begin()) {
        --it;
        if (it->rect.xhi <= abs.xlo) {
          // Sorted by xlo only; earlier pins may still reach abs if they are
          // wide, but our generators emit fixed-width IO pins, so a bounded
          // look-back suffices. Be conservative: stop after the look-back
          // window of the widest IO pin.
          if (abs.xlo - it->rect.xlo > design.maxIoPinWidthFine()) break;
          continue;
        }
        if (it->rect.overlaps(abs) &&
            layerConflicts(pin.layer, it->layer, &isShort)) {
          (isShort ? report.shorts : report.access) += 1;
        }
      }
    }
  }
  return report;
}

PinViolationReport countPinViolations(const Design& design) {
  PinViolationReport total;
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed || !cell.placed) continue;
    const PinViolationReport r =
        pinViolationsAt(design, cell.type, cell.x, cell.y);
    total.shorts += r.shorts;
    total.access += r.access;
  }
  return total;
}

bool hasHorizontalRailConflict(const Design& design, TypeId type,
                               std::int64_t y) {
  const auto& cellType = design.types[static_cast<std::size_t>(type)];
  const std::int64_t fy = y * Design::kFine;
  const Orient orient = design.orientationAt(type, y);
  for (const auto& pin : cellType.pins) {
    const Rect oriented = pin.rectInOrient(orient, cellType.height);
    const std::int64_t ylo = oriented.ylo + fy;
    const std::int64_t yhi = oriented.yhi + fy;
    auto it = std::lower_bound(
        design.hRails.begin(), design.hRails.end(), ylo,
        [](const HRail& r, std::int64_t v) { return r.yFineHi <= v; });
    for (; it != design.hRails.end() && it->yFineLo < yhi; ++it) {
      bool isShort = false;
      if (layerConflicts(pin.layer, it->layer, &isShort)) return true;
    }
  }
  return false;
}

int countIoOverlaps(const Design& design, TypeId type, std::int64_t x,
                    std::int64_t y) {
  int count = 0;
  const auto& cellType = design.types[static_cast<std::size_t>(type)];
  const std::int64_t fx = x * Design::kFine;
  const std::int64_t fy = y * Design::kFine;
  const Orient orient = design.orientationAt(type, y);
  for (const auto& pin : cellType.pins) {
    const Rect abs = pin.rectInOrient(orient, cellType.height).shifted(fx, fy);
    auto it = std::lower_bound(
        design.ioPins.begin(), design.ioPins.end(), abs.xhi,
        [](const IoPin& p, std::int64_t v) { return p.rect.xlo < v; });
    while (it != design.ioPins.begin()) {
      --it;
      if (it->rect.xhi <= abs.xlo) {
        if (abs.xlo - it->rect.xlo > design.maxIoPinWidthFine()) break;
        continue;
      }
      bool isShort = false;
      if (it->rect.overlaps(abs) &&
          layerConflicts(pin.layer, it->layer, &isShort)) {
        ++count;
      }
    }
  }
  return count;
}

std::vector<Interval> ioPinForbiddenX(const Design& design, TypeId type,
                                      std::int64_t y) {
  std::vector<Interval> forbidden;
  const auto& cellType = design.types[static_cast<std::size_t>(type)];
  const std::int64_t fy = y * Design::kFine;
  const Orient orient = design.orientationAt(type, y);
  for (const auto& pin : cellType.pins) {
    const Rect shape = pin.rectInOrient(orient, cellType.height);
    const std::int64_t ylo = shape.ylo + fy;
    const std::int64_t yhi = shape.yhi + fy;
    for (const auto& io : design.ioPins) {
      bool isShort = false;
      if (!layerConflicts(pin.layer, io.layer, &isShort)) continue;
      if (io.rect.yhi <= ylo || io.rect.ylo >= yhi) continue;
      // x overlap iff x*kFine + shape.xlo < io.xhi && io.xlo < x*kFine +
      // shape.xhi.
      const std::int64_t loX =
          floorDiv(io.rect.xlo - shape.xhi, Design::kFine) + 1;
      const std::int64_t hiX =
          ceilDiv(io.rect.xhi - shape.xlo, Design::kFine) - 1;
      if (loX <= hiX) forbidden.push_back({loX, hiX + 1});
    }
  }
  if (forbidden.empty()) return forbidden;
  std::sort(forbidden.begin(), forbidden.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  for (const auto& iv : forbidden) {
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

std::vector<Interval> verticalRailForbiddenX(const Design& design, TypeId type,
                                             std::int64_t /*y*/) {
  // A vertical flip (FS) leaves every pin's x extent unchanged, so the
  // forbidden intervals are orientation- (and hence y-) independent.
  std::vector<Interval> forbidden;
  const auto& cellType = design.types[static_cast<std::size_t>(type)];
  for (const auto& pin : cellType.pins) {
    for (const auto& rail : design.vRails) {
      bool isShort = false;
      if (!layerConflicts(pin.layer, rail.layer, &isShort)) continue;
      // Overlap iff x*kFine + pin.xlo < rail.xhi && rail.xlo < x*kFine +
      // pin.xhi, i.e. x in (lo, hi) over the reals.
      const std::int64_t loX =
          floorDiv(rail.xFineLo - pin.rect.xhi, Design::kFine) + 1;
      const std::int64_t hiX =
          ceilDiv(rail.xFineHi - pin.rect.xlo, Design::kFine) - 1;
      if (loX <= hiX) forbidden.push_back({loX, hiX + 1});
    }
  }
  if (forbidden.empty()) return forbidden;
  std::sort(forbidden.begin(), forbidden.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  for (const auto& iv : forbidden) {
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  return merged;
}

}  // namespace mclg
