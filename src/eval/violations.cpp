#include "eval/violations.hpp"

#include <algorithm>
#include <sstream>

#include "eval/checkers.hpp"

namespace mclg {
namespace {

struct Collector {
  std::vector<Violation>* out;
  std::size_t limit;

  bool full() const { return limit != 0 && out->size() >= limit; }
  void add(Violation v) {
    if (!full()) out->push_back(std::move(v));
  }
};

Rect cellBox(const Design& design, CellId c) {
  const auto& cell = design.cells[c];
  return {cell.x, cell.y, cell.x + design.widthOf(c),
          cell.y + design.heightOf(c)};
}

struct RowEntry {
  std::int64_t x;
  std::int64_t w;
  CellId cell;
  std::int64_t bottomY;
};

std::vector<std::vector<RowEntry>> rowOccupancy(const Design& design) {
  std::vector<std::vector<RowEntry>> rows(
      static_cast<std::size_t>(design.numRows));
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (!cell.fixed && !cell.placed) continue;
    for (std::int64_t y = cell.y; y < cell.y + design.heightOf(c); ++y) {
      if (y < 0 || y >= design.numRows) continue;
      rows[static_cast<std::size_t>(y)].push_back(
          {cell.x, design.widthOf(c), c, cell.y});
    }
  }
  for (auto& row : rows) {
    std::sort(row.begin(), row.end(),
              [](const RowEntry& a, const RowEntry& b) { return a.x < b.x; });
  }
  return rows;
}

}  // namespace

const char* violationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::Unplaced: return "unplaced";
    case ViolationKind::OutOfCore: return "out-of-core";
    case ViolationKind::Overlap: return "overlap";
    case ViolationKind::Parity: return "parity";
    case ViolationKind::Fence: return "fence";
    case ViolationKind::EdgeSpacing: return "edge-spacing";
    case ViolationKind::PinShort: return "pin-short";
    case ViolationKind::PinAccess: return "pin-access";
  }
  return "?";
}

std::vector<Violation> collectViolations(const Design& design,
                                         const SegmentMap& segments,
                                         std::size_t limit) {
  std::vector<Violation> result;
  Collector collect{&result, limit};

  for (CellId c = 0; c < design.numCells() && !collect.full(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed) continue;
    if (!cell.placed) {
      collect.add({ViolationKind::Unplaced, c, kInvalidCell, {},
                   "cell never placed"});
      continue;
    }
    const int h = design.heightOf(c);
    const int w = design.widthOf(c);
    if (cell.x < 0 || cell.y < 0 || cell.x + w > design.numSitesX ||
        cell.y + h > design.numRows) {
      collect.add({ViolationKind::OutOfCore, c, kInvalidCell,
                   cellBox(design, c), "outside the core area"});
      continue;
    }
    if (!design.parityOk(cell.type, cell.y)) {
      collect.add({ViolationKind::Parity, c, kInvalidCell, cellBox(design, c),
                   "P/G parity mismatch at row " + std::to_string(cell.y)});
    }
    if (!segments.spanInFence(cell.y, h, cell.x, w, cell.fence)) {
      collect.add({ViolationKind::Fence, c, kInvalidCell, cellBox(design, c),
                   "outside fence " +
                       design.fences[static_cast<std::size_t>(cell.fence)].name});
    }
    const auto pins = pinViolationsAt(design, cell.type, cell.x, cell.y);
    if (pins.shorts > 0) {
      collect.add({ViolationKind::PinShort, c, kInvalidCell,
                   cellBox(design, c),
                   std::to_string(pins.shorts) + " pin short(s)"});
    }
    if (pins.access > 0) {
      collect.add({ViolationKind::PinAccess, c, kInvalidCell,
                   cellBox(design, c),
                   std::to_string(pins.access) + " pin access conflict(s)"});
    }
  }

  const auto rows = rowOccupancy(design);
  for (std::int64_t y = 0; y < design.numRows && !collect.full(); ++y) {
    const auto& row = rows[static_cast<std::size_t>(y)];
    for (std::size_t i = 0; i + 1 < row.size(); ++i) {
      const auto& a = row[i];
      const auto& b = row[i + 1];
      if (y != std::max(a.bottomY, b.bottomY)) continue;  // dedupe per pair
      if (a.x + a.w > b.x) {
        collect.add({ViolationKind::Overlap, a.cell, b.cell,
                     cellBox(design, a.cell).intersect(cellBox(design, b.cell)),
                     "cells overlap in row " + std::to_string(y)});
      } else {
        const std::int64_t gap = b.x - (a.x + a.w);
        const int need = design.spacingBetween(a.cell, b.cell);
        if (gap < need) {
          collect.add(
              {ViolationKind::EdgeSpacing, a.cell, b.cell,
               Rect{a.x + a.w, y, b.x, y + 1},
               "gap " + std::to_string(gap) + " < required " +
                   std::to_string(need)});
        }
      }
    }
  }
  return result;
}

std::string formatViolations(const Design& design,
                             const std::vector<Violation>& violations) {
  std::ostringstream out;
  for (const auto& v : violations) {
    out << violationKindName(v.kind) << ": cell " << v.cell;
    if (v.cell != kInvalidCell) {
      out << " (" << design.typeOf(v.cell).name << ")";
    }
    if (v.otherCell != kInvalidCell) {
      out << " vs cell " << v.otherCell << " ("
          << design.typeOf(v.otherCell).name << ")";
    }
    if (!v.where.empty()) {
      out << " at [" << v.where.xlo << "," << v.where.ylo << " - "
          << v.where.xhi << "," << v.where.yhi << ")";
    }
    out << " — " << v.detail << "\n";
  }
  return out.str();
}

}  // namespace mclg
