#include "eval/score.hpp"

namespace mclg {

double combineScore(double avgDisp, double maxDisp, double hpwlRatio,
                    int pinViolations, int edgeViolations, int numCells) {
  const double m = numCells > 0 ? static_cast<double>(numCells) : 1.0;
  const double quality =
      1.0 + hpwlRatio + (pinViolations + edgeViolations) / m;
  const double maxTerm = 1.0 + maxDisp / ScoreBreakdown::kDelta;
  return quality * maxTerm * avgDisp;
}

ScoreBreakdown evaluateScore(const Design& design,
                             const SegmentMap& segments) {
  ScoreBreakdown out;
  out.displacement = displacementStats(design);
  out.hpwlRatio = hpwlIncreaseRatio(design);
  out.pins = countPinViolations(design);
  out.edgeSpacing = countEdgeSpacingViolations(design);
  out.legality = checkLegality(design, segments);
  int movable = 0;
  for (const auto& cell : design.cells) {
    if (!cell.fixed) ++movable;
  }
  out.score = combineScore(out.displacement.average, out.displacement.maximum,
                           out.hpwlRatio, out.pins.total(), out.edgeSpacing,
                           movable);
  return out;
}

}  // namespace mclg
