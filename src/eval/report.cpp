#include "eval/report.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>
#include <sstream>

namespace mclg {

std::string summarize(const Design& design, const ScoreBreakdown& score) {
  std::ostringstream out;
  out << design.name << ": ";
  out << (score.legality.legal() ? "LEGAL" : "ILLEGAL");
  if (!score.legality.legal()) {
    out << " (unplaced=" << score.legality.unplacedCells
        << " overlap=" << score.legality.overlaps
        << " parity=" << score.legality.parityViolations
        << " fence=" << score.legality.fenceViolations
        << " out-of-core=" << score.legality.outOfCore << ")";
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                " avgDisp=%.3f maxDisp=%.1f hpwl%+.2f%% pinShort=%d "
                "pinAccess=%d edge=%d score=%.3f",
                score.displacement.average, score.displacement.maximum,
                score.hpwlRatio * 100.0, score.pins.shorts, score.pins.access,
                score.edgeSpacing, score.score);
  out << buf;
  return out.str();
}

bool writeDisplacementSvg(const Design& design, TypeId type,
                          const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const double scale = 1000.0 / static_cast<double>(design.numSitesX);
  const double height = static_cast<double>(design.numRows) * scale /
                        design.siteWidthFactor * design.siteWidthFactor;
  std::fprintf(file,
               "<svg xmlns='http://www.w3.org/2000/svg' width='1000' "
               "height='%.0f' viewBox='0 0 1000 %.0f'>\n",
               height * 4, height * 4);
  std::fprintf(file, "<rect width='100%%' height='100%%' fill='#fafafa'/>\n");
  const double ys = height * 4 / static_cast<double>(design.numRows);
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed || !cell.placed) continue;
    const bool selected = type < 0 || cell.type == type;
    const double x = static_cast<double>(cell.x) * scale;
    const double y = static_cast<double>(cell.y) * ys;
    const double w = design.widthOf(c) * scale;
    const double h = design.heightOf(c) * ys;
    std::fprintf(file,
                 "<rect x='%.2f' y='%.2f' width='%.2f' height='%.2f' "
                 "fill='%s' stroke='#999' stroke-width='0.2'/>\n",
                 x, y, w, h, selected ? "#d33" : "#ccc");
    if (selected) {
      std::fprintf(file,
                   "<line x1='%.2f' y1='%.2f' x2='%.2f' y2='%.2f' "
                   "stroke='#d33' stroke-width='0.5'/>\n",
                   x + w / 2, y + h / 2, cell.gpX * scale, cell.gpY * ys);
    }
  }
  std::fprintf(file, "</svg>\n");
  std::fclose(file);
  return true;
}

bool writeDensityMapSvg(const Design& design, const std::string& path,
                        int binRows) {
  const std::int64_t binH = binRows > 0 ? binRows : 8;
  const auto binW = static_cast<std::int64_t>(
      std::max(1.0, binH / design.siteWidthFactor));
  const auto cols =
      static_cast<int>((design.numSitesX + binW - 1) / binW);
  const auto rows = static_cast<int>((design.numRows + binH - 1) / binH);
  std::vector<double> usage(static_cast<std::size_t>(cols) * rows, 0.0);
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed && !cell.placed) continue;
    const double x = cell.placed ? static_cast<double>(cell.x) : cell.gpX;
    const double y = cell.placed ? static_cast<double>(cell.y) : cell.gpY;
    const int bx = std::min(cols - 1, static_cast<int>(x / binW));
    const int by = std::min(rows - 1, static_cast<int>(y / binH));
    usage[static_cast<std::size_t>(by) * cols + bx] +=
        static_cast<double>(design.widthOf(c)) * design.heightOf(c);
  }
  const double capacity = static_cast<double>(binW * binH);

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const int cellPx = 12;
  std::fprintf(file,
               "<svg xmlns='http://www.w3.org/2000/svg' width='%d' "
               "height='%d'>\n",
               cols * cellPx, rows * cellPx);
  for (int by = 0; by < rows; ++by) {
    for (int bx = 0; bx < cols; ++bx) {
      const double util = std::min(
          1.0, usage[static_cast<std::size_t>(by) * cols + bx] / capacity);
      // Blue (empty) to red (full); y axis flipped so row 0 is at bottom.
      const int red = static_cast<int>(util * 255.0);
      const int blue = 255 - red;
      std::fprintf(file,
                   "<rect x='%d' y='%d' width='%d' height='%d' "
                   "fill='rgb(%d,40,%d)'/>\n",
                   bx * cellPx, (rows - 1 - by) * cellPx, cellPx, cellPx, red,
                   blue);
    }
  }
  std::fprintf(file, "</svg>\n");
  std::fclose(file);
  return true;
}

}  // namespace mclg
