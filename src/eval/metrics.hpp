// Displacement and wirelength metrics (paper Eqs. 1-2 and the HPWL term of
// the contest score).
#pragma once

#include "db/design.hpp"

namespace mclg {

struct DisplacementStats {
  /// Eq. 2: average displacement weighted per height class, in row heights.
  double average = 0.0;
  /// Largest single-cell displacement, in row heights.
  double maximum = 0.0;
  /// Plain sum of per-cell displacement, in *sites* (the Table 2 metric:
  /// row-height displacement divided by the site-width factor).
  double totalSites = 0.0;
};

/// Displacement of all movable placed cells from their GP positions.
DisplacementStats displacementStats(const Design& design);

/// Half-perimeter wirelength over all nets, in site units, using the current
/// legal positions (GP positions when useGp).
double hpwl(const Design& design, bool useGp);

/// HPWL increase ratio of the legal placement over the GP placement
/// (the S_hpwl term of Eq. 10); 0 when the design has no nets.
double hpwlIncreaseRatio(const Design& design);

/// FNV-1a hash of every cell's (placed, x, y) in cell-id order. Two designs
/// hash equal iff their placements are byte-identical, which is how the
/// perf-regression harness proves optimizations are quality-neutral.
std::uint64_t placementHash(const Design& design);

}  // namespace mclg
