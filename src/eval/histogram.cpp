#include "eval/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace mclg {

std::string DisplacementHistogram::toString() const {
  std::ostringstream out;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    char label[32];
    if (b < bounds.size()) {
      std::snprintf(label, sizeof(label), "<=%g", bounds[b]);
    } else {
      std::snprintf(label, sizeof(label), ">%g", bounds.back());
    }
    char line[64];
    std::snprintf(line, sizeof(line), "  %6s rows: %6d ", label, counts[b]);
    out << line;
    for (int i = 0; i < counts[b] && i < 180; i += 3) out << '#';
    out << '\n';
  }
  return out.str();
}

DisplacementHistogram displacementHistogram(const Design& design, TypeId type,
                                            std::vector<double> bounds) {
  DisplacementHistogram hist;
  std::sort(bounds.begin(), bounds.end());
  hist.bounds = std::move(bounds);
  hist.counts.assign(hist.bounds.size() + 1, 0);
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed || !cell.placed) continue;
    if (type >= 0 && cell.type != type) continue;
    const double d = design.displacement(c);
    hist.maximum = std::max(hist.maximum, d);
    ++hist.total;
    std::size_t bucket = hist.bounds.size();
    for (std::size_t b = 0; b < hist.bounds.size(); ++b) {
      if (d <= hist.bounds[b]) {
        bucket = b;
        break;
      }
    }
    ++hist.counts[bucket];
  }
  return hist;
}

}  // namespace mclg
