// Constraint checkers (paper §2): overlap / core bounds, P/G parity, fence
// containment, edge spacing, and pin access / pin short.
//
// These run over the whole design after legalization; the legalizers use
// their own incremental variants internally, so the checkers double as an
// independent audit of every stage.
#pragma once

#include <cstdint>
#include <vector>

#include "db/design.hpp"
#include "db/segment_map.hpp"

namespace mclg {

struct LegalityReport {
  int unplacedCells = 0;
  int outOfCore = 0;
  int overlaps = 0;        // number of overlapping (unordered) cell pairs
  int parityViolations = 0;
  int fenceViolations = 0;

  bool legal() const {
    return unplacedCells == 0 && outOfCore == 0 && overlaps == 0 &&
           parityViolations == 0 && fenceViolations == 0;
  }
};

/// Hard constraints: all cells placed, inside the core, no overlaps (with
/// movable or fixed cells), P/G parity satisfied, fences respected.
LegalityReport checkLegality(const Design& design, const SegmentMap& segments);

/// Count of adjacent cell pairs violating the edge-spacing table. A pair
/// abutting in several rows counts once.
int countEdgeSpacingViolations(const Design& design);

struct PinViolationReport {
  int shorts = 0;   // signal pin overlapping a rail/IO pin on its own layer
  int access = 0;   // signal pin overlapping a rail/IO pin on layer+1

  int total() const { return shorts + access; }
};

/// Pin short / access violations against P/G rails and IO pins (paper §2 and
/// Fig. 1). Counted per (cell pin, category); a pin that is both short and
/// inaccessible contributes to both counters.
PinViolationReport countPinViolations(const Design& design);

/// Pin violations of a *candidate* placement of one cell (used by MGL's
/// routability-driven insertion, §3.4). `x`/`y` in sites/rows.
PinViolationReport pinViolationsAt(const Design& design, TypeId type,
                                   std::int64_t x, std::int64_t y);

/// True iff some signal pin of `type` placed at bottom row `y` overlaps a
/// horizontal rail on a conflicting layer — independent of x, so MGL uses
/// it to reject whole insertion rows (§3.4).
bool hasHorizontalRailConflict(const Design& design, TypeId type,
                               std::int64_t y);

/// The set of forbidden x-intervals (in sites, half-open) for `type` at
/// bottom row `y` caused by vertical rails. Sorted, disjoint.
std::vector<Interval> verticalRailForbiddenX(const Design& design, TypeId type,
                                             std::int64_t y);

/// Number of signal pins of `type` at (x, y) overlapping an IO pin on a
/// conflicting layer (short or access). MGL penalizes these instead of
/// rejecting the position outright (§3.4).
int countIoOverlaps(const Design& design, TypeId type, std::int64_t x,
                    std::int64_t y);

/// Forbidden x-intervals (sites, half-open, sorted, disjoint) for `type` at
/// bottom row `y` caused by IO pins on conflicting layers. Together with
/// verticalRailForbiddenX this realizes the §3.4 feasible ranges ("the
/// intersection of the row segment and the P/G rails or IO pins").
std::vector<Interval> ioPinForbiddenX(const Design& design, TypeId type,
                                      std::int64_t y);

}  // namespace mclg
