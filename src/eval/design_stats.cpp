#include "eval/design_stats.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "db/free_span.hpp"

namespace mclg {

std::string DesignStats::toString() const {
  std::ostringstream out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "cells: %d movable + %d fixed; core %lld sites, free %lld, "
                "cell area %lld (util %.1f%%)\n",
                movableCells, fixedCells,
                static_cast<long long>(coreSites),
                static_cast<long long>(freeSites),
                static_cast<long long>(cellSites), utilization * 100.0);
  out << buf;
  out << "height mix:";
  for (std::size_t h = 1; h < cellsPerHeight.size(); ++h) {
    if (cellsPerHeight[h] > 0) {
      out << " h" << h << "=" << cellsPerHeight[h];
    }
  }
  out << "\n";
  for (const auto& fence : fences) {
    std::snprintf(buf, sizeof(buf),
                  "fence %-12s: %5d cells, %7lld/%lld sites (util %.1f%%)\n",
                  fence.name.c_str(), fence.cells,
                  static_cast<long long>(fence.usedSites),
                  static_cast<long long>(fence.freeSites),
                  fence.utilization() * 100.0);
    out << buf;
  }
  if (peakBinUtilization > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "density bins: peak util %.2f, %d overfull; free space: %d "
                  "gaps, largest %lld sites\n",
                  peakBinUtilization, overfullBins, freeGaps,
                  static_cast<long long>(largestGap));
    out << buf;
  }
  return out.str();
}

DesignStats computeDesignStats(const PlacementState& state,
                               const SegmentMap& segments, int binRows) {
  const auto& design = state.design();
  DesignStats stats;
  stats.coreSites = design.numSitesX * design.numRows;
  stats.cellsPerHeight.assign(
      static_cast<std::size_t>(design.maxCellHeight()) + 1, 0);

  stats.fences.resize(static_cast<std::size_t>(design.numFences()));
  for (FenceId f = 0; f < design.numFences(); ++f) {
    stats.fences[static_cast<std::size_t>(f)].fence = f;
    stats.fences[static_cast<std::size_t>(f)].name =
        design.fences[static_cast<std::size_t>(f)].name;
  }
  for (std::int64_t y = 0; y < design.numRows; ++y) {
    for (const auto& seg : segments.row(y)) {
      stats.freeSites += seg.x.length();
      stats.fences[static_cast<std::size_t>(seg.fence)].freeSites +=
          seg.x.length();
    }
  }

  bool anyPlaced = false;
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed) {
      ++stats.fixedCells;
      continue;
    }
    ++stats.movableCells;
    const auto area = static_cast<std::int64_t>(design.widthOf(c)) *
                      design.heightOf(c);
    stats.cellSites += area;
    ++stats.cellsPerHeight[static_cast<std::size_t>(design.heightOf(c))];
    auto& fence = stats.fences[static_cast<std::size_t>(cell.fence)];
    fence.usedSites += area;
    ++fence.cells;
    anyPlaced |= cell.placed;
  }
  stats.utilization = stats.freeSites > 0
                          ? static_cast<double>(stats.cellSites) /
                                static_cast<double>(stats.freeSites)
                          : 0.0;

  if (anyPlaced) {
    // Density bins over placed positions.
    const std::int64_t binH = std::max(1, binRows);
    const std::int64_t binW = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(binH / design.siteWidthFactor));
    const auto cols = static_cast<std::size_t>(
        (design.numSitesX + binW - 1) / binW);
    const auto rows = static_cast<std::size_t>(
        (design.numRows + binH - 1) / binH);
    std::vector<double> usage(cols * rows, 0.0);
    for (CellId c = 0; c < design.numCells(); ++c) {
      const auto& cell = design.cells[c];
      if (cell.fixed || !cell.placed) continue;
      const auto bx = static_cast<std::size_t>(cell.x / binW);
      const auto by = static_cast<std::size_t>(cell.y / binH);
      usage[std::min(by, rows - 1) * cols + std::min(bx, cols - 1)] +=
          static_cast<double>(design.widthOf(c)) * design.heightOf(c);
    }
    const double capacity = static_cast<double>(binW) * binH;
    for (const double u : usage) {
      const double util = u / capacity;
      stats.peakBinUtilization = std::max(stats.peakBinUtilization, util);
      if (util > 1.0) ++stats.overfullBins;
    }

    // Fragmentation: single-row free gaps.
    for (std::int64_t y = 0; y < design.numRows; ++y) {
      for (const auto& seg : segments.row(y)) {
        const auto gaps =
            freeIntervalsForSpan(state, segments, y, 1, seg.fence, seg.x);
        for (const auto& gap : gaps) {
          ++stats.freeGaps;
          stats.largestGap = std::max(stats.largestGap, gap.length());
        }
      }
    }
  }
  return stats;
}

}  // namespace mclg
