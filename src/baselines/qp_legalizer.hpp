// Quadratic fixed-row-&-order optimization via the LCP route of Chen et
// al. [9]: minimize Σ w_i (x_i − x'_i)² subject to the neighbor separation
// and boundary constraints, transformed by the KKT conditions into a linear
// complementarity problem and solved with projected Gauss-Seidel. This is
// the quadratic counterpart of our linear §3.3 MCF — implemented so the [9]
// baseline optimizes the objective that the original paper optimized.
//
// On a single row the exact optimum is also produced by the classic Abacus
// cluster collapse (baselines/abacus_row.hpp), which the tests use as an
// independent oracle.
#pragma once

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"

namespace mclg {

struct QpLegalizerConfig {
  /// Weight w_i per cell: Eq. 2 metric weights or unit.
  bool contestWeights = false;
  /// PGS sweeps over the constraint set.
  int maxIterations = 400;
  /// Stop when no multiplier changes by more than this (site units).
  double tolerance = 1e-7;
  /// Honor the edge-spacing table in the separations.
  bool respectEdgeSpacing = true;
};

struct QpLegalizerStats {
  int cellsMoved = 0;
  int iterations = 0;
  double objectiveBefore = 0.0;  // Σ w (x − x')², site units
  double objectiveAfter = 0.0;
};

/// Optimize x positions of all placed movable cells, keeping rows and
/// per-row order. Positions are rounded to sites respecting constraints.
QpLegalizerStats optimizeQuadraticFixedRowOrder(PlacementState& state,
                                                const SegmentMap& segments,
                                                const QpLegalizerConfig& config);

}  // namespace mclg
