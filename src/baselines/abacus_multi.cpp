// [7]-style ordered multi-row legalization: cells are processed in GP x
// order and appended to per-row frontiers, choosing the row span that
// minimizes displacement plus a dead-space penalty (the cost Wang et al.
// evaluate when extending Abacus to multi-row cells). Because cells arrive
// in x order, appending at max(frontier, gpX) preserves the GP cell order —
// the defining restriction of this algorithm family that the paper argues
// hurts dense designs.

#include <algorithm>
#include <cmath>

#include "baselines/baselines.hpp"
#include "baselines/packing_util.hpp"
#include "util/logging.hpp"

namespace mclg {

BaselineStats legalizeAbacusMulti(PlacementState& state,
                                  const SegmentMap& segments) {
  auto& design = state.design();
  BaselineStats stats;

  std::vector<CellId> order;
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (!cell.fixed && !cell.placed) order.push_back(c);
  }
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    if (design.cells[a].gpX != design.cells[b].gpX) {
      return design.cells[a].gpX < design.cells[b].gpX;
    }
    return a < b;
  });

  std::vector<std::int64_t> frontier(
      static_cast<std::size_t>(design.numRows), 0);
  const double swf = design.siteWidthFactor;
  const double deadSpacePenalty = 0.05;  // per empty site left behind

  for (const CellId c : order) {
    const auto& cell = design.cells[c];
    const auto& type = design.typeOf(c);
    const int h = type.height;
    const int w = type.width;
    const auto gpX = static_cast<std::int64_t>(std::lround(cell.gpX));

    double bestCost = 0.0;
    std::int64_t bestX = -1, bestY = -1;
    for (std::int64_t y = 0; y + h <= design.numRows; ++y) {
      if (!design.parityOk(cell.type, y)) continue;
      std::int64_t front = 0;
      for (std::int64_t r = y; r < y + h; ++r) {
        front = std::max(front, frontier[static_cast<std::size_t>(r)]);
      }
      // Prefer the GP x when the frontier has not reached it yet.
      std::int64_t x = std::max(front, gpX);
      // Find a fence-legal slot at or right of x.
      if (!segments.spanInFence(y, h, x, w, cell.fence) ||
          !state.spanEmpty(y, h, x, w)) {
        const auto free = freeIntervalsForSpan(state, segments, y, h,
                                               cell.fence,
                                               {front, design.numSitesX});
        x = -1;
        for (const auto& iv : free) {
          if (iv.length() >= w) {
            x = std::max(iv.lo, std::min(gpX, iv.hi - w));
            if (x < front) x = iv.lo;
            break;
          }
        }
        if (x < 0) continue;
      }
      const double cost =
          swf * std::abs(static_cast<double>(x) - cell.gpX) +
          std::abs(static_cast<double>(y) - cell.gpY) +
          deadSpacePenalty * static_cast<double>(std::max<std::int64_t>(0, x - front));
      if (bestX < 0 || cost < bestCost) {
        bestCost = cost;
        bestX = x;
        bestY = y;
      }
    }
    if (bestX < 0) {
      // The ordered frontier jammed on dead space; fall back to the nearest
      // free slot anywhere (implementations of [7] recover by re-packing
      // clusters — the displacement cost is equivalent in spirit).
      for (std::int64_t y = 0; y + h <= design.numRows; ++y) {
        if (!design.parityOk(cell.type, y)) continue;
        const auto free = freeIntervalsForSpan(state, segments, y, h,
                                               cell.fence,
                                               {0, design.numSitesX});
        for (const auto& iv : free) {
          if (iv.length() < w) continue;
          const std::int64_t x =
              std::clamp(gpX, iv.lo, iv.hi - w);
          const double cost =
              swf * std::abs(static_cast<double>(x) - cell.gpX) +
              std::abs(static_cast<double>(y) - cell.gpY);
          if (bestX < 0 || cost < bestCost) {
            bestCost = cost;
            bestX = x;
            bestY = y;
          }
        }
      }
    }
    if (bestX < 0) {
      ++stats.failed;
      MCLG_LOG_WARN() << "abacus-multi: no slot for cell " << c;
      continue;
    }
    state.place(c, bestX, bestY);
    for (std::int64_t r = bestY; r < bestY + h; ++r) {
      frontier[static_cast<std::size_t>(r)] =
          std::max(frontier[static_cast<std::size_t>(r)], bestX + w);
    }
    ++stats.placed;
  }
  return stats;
}

}  // namespace mclg
