#include "baselines/abacus_row.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace mclg {

double AbacusRow::Cluster::clampedX(std::int64_t lo, std::int64_t hi) const {
  const double maxX = static_cast<double>(hi - width);
  return std::clamp(x, static_cast<double>(lo), maxX);
}

void AbacusRow::add(double desiredX, int width, double weight) {
  MCLG_ASSERT(width > 0, "cell width must be positive");
  MCLG_ASSERT(weight > 0.0, "cell weight must be positive");
  const int index = static_cast<int>(cells_.size());
  cells_.push_back({desiredX, width, weight});

  Cluster cluster;
  cluster.weight = weight;
  cluster.moment = weight * desiredX;  // offset 0 within its own cluster
  cluster.width = width;
  cluster.firstCell = index;
  cluster.x = desiredX;

  // Collapse with predecessors while overlapping (the classic loop).
  while (!clusters_.empty()) {
    Cluster& prev = clusters_.back();
    if (prev.clampedX(lo_, hi_) + prev.width <=
        cluster.clampedX(lo_, hi_)) {
      break;
    }
    // Merge `cluster` into prev: cells of `cluster` sit at offset
    // prev.width inside the merged cluster.
    prev.moment += cluster.moment - cluster.weight * prev.width;
    prev.weight += cluster.weight;
    prev.width += cluster.width;
    prev.x = prev.moment / prev.weight;
    cluster = prev;
    clusters_.pop_back();
  }
  clusters_.push_back(cluster);
}

std::vector<std::int64_t> AbacusRow::positions() const {
  std::vector<std::int64_t> result(cells_.size(), 0);
  std::int64_t minNext = lo_;
  for (const auto& cluster : clusters_) {
    // Round the cluster start, respecting bounds and the previous cluster.
    std::int64_t start = static_cast<std::int64_t>(
        std::llround(cluster.clampedX(lo_, hi_)));
    start = std::max(start, minNext);
    start = std::min(start, hi_ - cluster.width);
    MCLG_ASSERT(start >= lo_, "row capacity exceeded in AbacusRow");
    std::int64_t x = start;
    int cell = cluster.firstCell;
    while (cell < static_cast<int>(cells_.size())) {
      // Cells of this cluster are contiguous from firstCell until the next
      // cluster's firstCell.
      const auto& entry = cells_[static_cast<std::size_t>(cell)];
      result[static_cast<std::size_t>(cell)] = x;
      x += entry.width;
      ++cell;
      if (x - start >= cluster.width) break;
    }
    minNext = start + cluster.width;
  }
  return result;
}

double AbacusRow::totalCost() const {
  const auto xs = positions();
  double total = 0.0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    total += cells_[i].weight *
             std::abs(static_cast<double>(xs[i]) - cells_[i].desired);
  }
  return total;
}

}  // namespace mclg
