// Shared helpers for the greedy baselines. The free-span query lives in the
// db layer (db/free_span.hpp); this header remains for compatibility.
#pragma once

#include "db/free_span.hpp"
