// [12] MLL baseline: the shared window-insertion engine with displacement
// measured from the cells' *current* locations (gpObjective = false). This
// is precisely the difference the paper illustrates in Fig. 3.

#include "baselines/baselines.hpp"
#include "legal/mgl/mgl_legalizer.hpp"

namespace mclg {

BaselineStats legalizeMll(PlacementState& state, const SegmentMap& segments,
                          bool contestWeights) {
  MglConfig config;
  config.insertion.gpObjective = false;
  config.insertion.contestWeights = contestWeights;
  config.insertion.routability = false;
  MglLegalizer legalizer(state, segments, config);
  const MglStats stats = legalizer.run();
  return {stats.placed, stats.failed};
}

}  // namespace mclg
