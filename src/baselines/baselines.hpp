// Baseline legalizers the paper compares against (DESIGN.md §3 documents
// each substitution):
//
//  - TetrisLegalizer: classic greedy nearest-free-slot packing; crude
//    reference lower bound.
//  - AbacusMultiLegalizer: [7]-style ordered legalization — cells processed
//    in GP x order, per-row frontier packing with a dead-space cost.
//  - legalizeMll: [12] — the window-insertion engine run with displacement
//    measured from *current* locations (the paper's own characterization of
//    MLL's weakness; see Fig. 3).
//  - legalizeOrderedMcf: [9] proxy — order-preserving row assignment
//    followed by the globally optimal fixed-row-&-order MCF.
//  - legalizeChampionProxy: ICCAD17-champion stand-in for Table 1 — a
//    displacement-driven legalizer with routability handling disabled, so
//    it accrues the edge/pin violations the champion shows in the paper.
#pragma once

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"

namespace mclg {

struct BaselineStats {
  int placed = 0;
  int failed = 0;
};

/// Greedy Tetris packing. Ignores edge-spacing and routability (counts as
/// violations afterwards); honors fences, parity, and overlap freedom.
BaselineStats legalizeTetris(PlacementState& state, const SegmentMap& segments);

/// [7]-style ordered multi-row Abacus.
BaselineStats legalizeAbacusMulti(PlacementState& state,
                                  const SegmentMap& segments);

/// [12] MLL: window insertion with current-location displacement.
BaselineStats legalizeMll(PlacementState& state, const SegmentMap& segments,
                          bool contestWeights);

/// [9] proxy: ordered row assignment + optimal fixed-row-&-order MCF
/// (linear objective).
BaselineStats legalizeOrderedMcf(PlacementState& state,
                                 const SegmentMap& segments);

/// [9] faithful: ordered row assignment + the *quadratic* fixed-row-&-order
/// optimization via KKT/LCP projected Gauss-Seidel (what Chen et al.
/// actually solve). Used as the Table 2 "[9]" column.
BaselineStats legalizeOrderedQp(PlacementState& state,
                                const SegmentMap& segments);

/// ICCAD17 champion proxy: MLL objective, routability off, no
/// post-processing.
BaselineStats legalizeChampionProxy(PlacementState& state,
                                    const SegmentMap& segments);

}  // namespace mclg
