#include <algorithm>
#include <cmath>

#include "baselines/baselines.hpp"
#include "baselines/packing_util.hpp"
#include "util/logging.hpp"

namespace mclg {

BaselineStats legalizeTetris(PlacementState& state,
                             const SegmentMap& segments) {
  auto& design = state.design();
  BaselineStats stats;

  std::vector<CellId> order;
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (!cell.fixed && !cell.placed) order.push_back(c);
  }
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    if (design.cells[a].gpX != design.cells[b].gpX) {
      return design.cells[a].gpX < design.cells[b].gpX;
    }
    return a < b;
  });

  const double swf = design.siteWidthFactor;
  for (const CellId c : order) {
    const auto& cell = design.cells[c];
    const auto& type = design.typeOf(c);
    const int h = type.height;
    const int w = type.width;
    const auto gy = static_cast<std::int64_t>(std::lround(cell.gpY));

    bool placed = false;
    // Grow the x search window until a slot is found.
    for (std::int64_t halfW = 64; !placed && halfW <= 2 * design.numSitesX;
         halfW *= 4) {
      const Interval xWindow{
          std::max<std::int64_t>(
              0, static_cast<std::int64_t>(std::lround(cell.gpX)) - halfW),
          std::min(design.numSitesX,
                   static_cast<std::int64_t>(std::lround(cell.gpX)) + halfW)};
      double bestCost = 0.0;
      std::int64_t bestX = -1, bestY = -1;
      // Scan rows by growing distance from the GP row; stop once the y
      // distance alone exceeds the best cost so far.
      for (std::int64_t dy = 0; dy < design.numRows; ++dy) {
        if (bestX >= 0 && static_cast<double>(dy) - 1.0 > bestCost) break;
        for (const std::int64_t y : {gy - dy, gy + dy}) {
          if (dy == 0 && y != gy) continue;
          if (y < 0 || y + h > design.numRows) continue;
          if (!design.parityOk(cell.type, y)) continue;
          const auto free =
              freeIntervalsForSpan(state, segments, y, h, cell.fence, xWindow);
          for (const auto& iv : free) {
            if (iv.length() < w) continue;
            const std::int64_t x = std::clamp(
                static_cast<std::int64_t>(std::lround(cell.gpX)), iv.lo,
                iv.hi - w);
            const double cost =
                swf * std::abs(static_cast<double>(x) - cell.gpX) +
                std::abs(static_cast<double>(y) - cell.gpY);
            if (bestX < 0 || cost < bestCost) {
              bestCost = cost;
              bestX = x;
              bestY = y;
            }
          }
        }
      }
      if (bestX >= 0) {
        state.place(c, bestX, bestY);
        placed = true;
      }
    }
    if (placed) {
      ++stats.placed;
    } else {
      ++stats.failed;
      MCLG_LOG_WARN() << "tetris: no slot for cell " << c;
    }
  }
  return stats;
}

}  // namespace mclg
