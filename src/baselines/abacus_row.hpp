// Classic single-row Abacus (Spindler, Schlichtmann, Johannes — ISPD 2008,
// the paper's reference [8]): given cells of one row in fixed left-to-right
// order with desired x positions and weights, compute the positions
// minimizing Σ w_i (x_i - desired_i)² ... the original is quadratic; this
// implementation uses the standard cluster collapse, which for the
// quadratic objective is exact (pool-adjacent-violators). It is both a
// baseline building block and a cross-check for the fixed-row-&-order MCF
// (whose linear objective it brackets on single-row instances).
#pragma once

#include <cstdint>
#include <vector>

namespace mclg {

class AbacusRow {
 public:
  /// Row span [lo, hi) in sites.
  AbacusRow(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {}

  /// Append the next cell in row order. desiredX is the target left edge.
  void add(double desiredX, int width, double weight = 1.0);

  /// Final left edges in add order (computed lazily; rounded to sites with
  /// order and bounds preserved).
  std::vector<std::int64_t> positions() const;

  /// Σ weight · |x - desired| of positions().
  double totalCost() const;

  int numCells() const { return static_cast<int>(cells_.size()); }

 private:
  struct Cluster {
    double weight = 0.0;   // Σ w_i
    double moment = 0.0;   // Σ w_i (desired_i - offset_i)
    std::int64_t width = 0;
    int firstCell = 0;
    double x = 0.0;        // optimal left edge (unclamped mean)

    double clampedX(std::int64_t lo, std::int64_t hi) const;
  };
  struct CellEntry {
    double desired;
    int width;
    double weight;
  };

  std::int64_t lo_;
  std::int64_t hi_;
  std::vector<CellEntry> cells_;
  std::vector<Cluster> clusters_;
};

}  // namespace mclg
