// [9] proxy: order-preserving row assignment (the Abacus-multi pass)
// followed by the globally optimal fixed-row-&-order movement — the linear
// analogue of Chen et al.'s LCP-based global optimization under the
// GP-cell-order restriction.

#include "baselines/baselines.hpp"
#include "baselines/qp_legalizer.hpp"
#include "legal/mcfopt/fixed_row_order.hpp"

namespace mclg {

BaselineStats legalizeOrderedMcf(PlacementState& state,
                                 const SegmentMap& segments) {
  BaselineStats stats = legalizeAbacusMulti(state, segments);
  FixedRowOrderConfig config;
  config.contestWeights = false;
  config.routability = false;
  config.maxDispWeight = 0.0;
  optimizeFixedRowOrder(state, segments, config);
  return stats;
}

BaselineStats legalizeOrderedQp(PlacementState& state,
                                const SegmentMap& segments) {
  BaselineStats stats = legalizeAbacusMulti(state, segments);
  QpLegalizerConfig config;
  config.contestWeights = false;
  config.respectEdgeSpacing = true;
  optimizeQuadraticFixedRowOrder(state, segments, config);
  return stats;
}

}  // namespace mclg
