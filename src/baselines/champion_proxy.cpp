// ICCAD-2017-champion stand-in for Table 1 (DESIGN.md §3): a fast,
// displacement-driven greedy legalizer with no routability model — nearest
// free-slot packing followed by a fixed-row-&-order refinement with unit
// weights. It is quick and produces competitive average displacement, but
// ignores the edge-spacing table, rails, and IO pins, so it accrues the
// violations the champion binary shows in the paper, and its greedy slot
// choice leaves a heavier displacement tail than the window-based MGL.

#include "baselines/baselines.hpp"
#include "legal/mcfopt/fixed_row_order.hpp"

namespace mclg {

BaselineStats legalizeChampionProxy(PlacementState& state,
                                    const SegmentMap& segments) {
  const BaselineStats stats = legalizeTetris(state, segments);
  FixedRowOrderConfig config;
  config.contestWeights = true;  // it optimized the contest metric
  config.routability = false;    // but had no pin-aware movement ranges
  config.respectEdgeSpacing = false;
  config.maxDispWeight = 0.0;
  optimizeFixedRowOrder(state, segments, config);
  return stats;
}

}  // namespace mclg
