#include "baselines/qp_legalizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "legal/mcfopt/fixed_row_order.hpp"
#include "legal/refine/feasible_range.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace mclg {
namespace {

struct PairConstraint {
  int left;   // index into cells
  int right;
  double sep;  // x_right - x_left >= sep
  double lambda = 0.0;
};

}  // namespace

QpLegalizerStats optimizeQuadraticFixedRowOrder(
    PlacementState& state, const SegmentMap& segments,
    const QpLegalizerConfig& config) {
  auto& design = state.design();
  QpLegalizerStats stats;

  // Index placed movable cells.
  std::vector<CellId> cells;
  std::vector<int> indexOf(static_cast<std::size_t>(design.numCells()), -1);
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed || !cell.placed) continue;
    indexOf[static_cast<std::size_t>(c)] = static_cast<int>(cells.size());
    cells.push_back(c);
  }
  const int m = static_cast<int>(cells.size());
  if (m == 0) return stats;

  std::vector<double> x(static_cast<std::size_t>(m));
  std::vector<double> desired(static_cast<std::size_t>(m));
  std::vector<double> invQ(static_cast<std::size_t>(m));  // 1 / (2 w_i)
  std::vector<double> lo(static_cast<std::size_t>(m));
  std::vector<double> hi(static_cast<std::size_t>(m));
  std::vector<double> loLambda(static_cast<std::size_t>(m), 0.0);
  std::vector<double> hiLambda(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < m; ++i) {
    const CellId c = cells[static_cast<std::size_t>(i)];
    const auto& cell = design.cells[c];
    desired[static_cast<std::size_t>(i)] = cell.gpX;
    const double w = config.contestWeights ? design.metricWeight(c) : 1.0;
    invQ[static_cast<std::size_t>(i)] = 1.0 / (2.0 * std::max(1e-12, w));
    const Interval range =
        feasibleRange(design, segments, c, /*routability=*/false);
    lo[static_cast<std::size_t>(i)] = static_cast<double>(range.lo);
    hi[static_cast<std::size_t>(i)] = static_cast<double>(range.hi - 1);
    stats.objectiveBefore +=
        w * (cell.x - cell.gpX) * (cell.x - cell.gpX);
    // Start from the unconstrained optimum (the KKT stationary point with
    // zero multipliers).
    x[static_cast<std::size_t>(i)] = cell.gpX;
  }

  // Neighbor constraints (deduped across shared rows, separation clamped to
  // the existing gap as in the linear optimizer).
  std::vector<PairConstraint> pairs;
  std::unordered_set<std::uint64_t> seen;
  for (std::int64_t y = 0; y < design.numRows; ++y) {
    const auto& rowMap = state.rowCells(y);
    CellId prev = kInvalidCell;
    std::int64_t prevX = 0;
    for (const auto& [cx, c] : rowMap) {
      if (prev != kInvalidCell) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(prev))
             << 32) |
            static_cast<std::uint32_t>(c);
        if (seen.insert(key).second) {
          double sep = design.widthOf(prev) +
                       (config.respectEdgeSpacing
                            ? design.spacingBetween(prev, c)
                            : 0);
          sep = std::min(sep, static_cast<double>(cx - prevX));
          pairs.push_back({indexOf[static_cast<std::size_t>(prev)],
                           indexOf[static_cast<std::size_t>(c)], sep});
        }
      }
      prev = c;
      prevX = cx;
    }
  }

  // Projected Gauss-Seidel over the KKT multipliers. Alternating
  // forward/backward sweeps propagate corrections along long chains in both
  // directions, which converges far faster than one-directional sweeps.
  auto relaxPair = [&](PairConstraint& pc) {
    const auto li = static_cast<std::size_t>(pc.left);
    const auto ri = static_cast<std::size_t>(pc.right);
    const double denom = invQ[li] + invQ[ri];
    const double residual = pc.sep - (x[ri] - x[li]);
    double dLambda = residual / denom;
    dLambda = std::max(dLambda, -pc.lambda);
    if (dLambda == 0.0) return 0.0;
    pc.lambda += dLambda;
    x[li] -= dLambda * invQ[li];
    x[ri] += dLambda * invQ[ri];
    return std::abs(dLambda) * denom;
  };
  int iter = 0;
  for (; iter < config.maxIterations; ++iter) {
    double maxChange = 0.0;
    if (iter % 2 == 0) {
      for (auto& pc : pairs) maxChange = std::max(maxChange, relaxPair(pc));
    } else {
      for (auto it = pairs.rbegin(); it != pairs.rend(); ++it) {
        maxChange = std::max(maxChange, relaxPair(*it));
      }
    }
    for (int i = 0; i < m; ++i) {
      const auto ii = static_cast<std::size_t>(i);
      // x_i >= lo_i.
      double dLambda = (lo[ii] - x[ii]) / invQ[ii];
      dLambda = std::max(dLambda, -loLambda[ii]);
      if (dLambda != 0.0) {
        loLambda[ii] += dLambda;
        x[ii] += dLambda * invQ[ii];
        maxChange = std::max(maxChange, std::abs(dLambda) * invQ[ii]);
      }
      // x_i <= hi_i.
      dLambda = (x[ii] - hi[ii]) / invQ[ii];
      dLambda = std::max(dLambda, -hiLambda[ii]);
      if (dLambda != 0.0) {
        hiLambda[ii] += dLambda;
        x[ii] -= dLambda * invQ[ii];
        maxChange = std::max(maxChange, std::abs(dLambda) * invQ[ii]);
      }
    }
    if (maxChange < config.tolerance) break;
  }
  stats.iterations = iter;

  // Round to sites with a forward pass in nondecreasing float-x order; the
  // per-row cursors keep separations exact.
  std::vector<int> order(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (x[static_cast<std::size_t>(a)] != x[static_cast<std::size_t>(b)]) {
      return x[static_cast<std::size_t>(a)] < x[static_cast<std::size_t>(b)];
    }
    return design.cells[cells[static_cast<std::size_t>(a)]].x <
           design.cells[cells[static_cast<std::size_t>(b)]].x;
  });
  struct Cursor {
    std::int64_t end = std::numeric_limits<std::int64_t>::min();
    CellId last = kInvalidCell;
  };
  std::vector<Cursor> cursors(static_cast<std::size_t>(design.numRows));
  std::vector<std::int64_t> finalX(static_cast<std::size_t>(m));
  bool roundingOk = true;
  for (const int i : order) {
    const auto ii = static_cast<std::size_t>(i);
    const CellId c = cells[ii];
    const auto& cell = design.cells[c];
    std::int64_t bound = static_cast<std::int64_t>(std::llround(lo[ii]));
    for (std::int64_t r = cell.y; r < cell.y + design.heightOf(c); ++r) {
      const auto& cur = cursors[static_cast<std::size_t>(r)];
      if (cur.last != kInvalidCell) {
        const std::int64_t sep =
            design.widthOf(cur.last) +
            (config.respectEdgeSpacing ? design.spacingBetween(cur.last, c)
                                       : 0);
        bound = std::max(bound, cur.end - design.widthOf(cur.last) + sep);
      }
    }
    std::int64_t xi = std::max(bound,
                               static_cast<std::int64_t>(std::llround(x[ii])));
    xi = std::min(xi, static_cast<std::int64_t>(std::llround(hi[ii])));
    if (xi < bound) {
      roundingOk = false;
      break;
    }
    finalX[ii] = xi;
    for (std::int64_t r = cell.y; r < cell.y + design.heightOf(c); ++r) {
      cursors[static_cast<std::size_t>(r)] = {xi + design.widthOf(c), c};
    }
  }
  if (!roundingOk) {
    // PGS had not converged enough for a consistent rounding (very long
    // packed chains converge slowly). Fall back to the exact *linear*
    // fixed-row-&-order projection so the refinement still happens.
    MCLG_LOG_WARN() << "QP rounding jammed after " << iter
                    << " sweeps; falling back to the linear MCF projection";
    FixedRowOrderConfig linear;
    linear.contestWeights = config.contestWeights;
    linear.routability = false;
    linear.respectEdgeSpacing = config.respectEdgeSpacing;
    linear.maxDispWeight = 0.0;
    const auto linearStats = optimizeFixedRowOrder(state, segments, linear);
    stats.cellsMoved = linearStats.cellsMoved;
    stats.objectiveAfter = 0.0;
    for (int i = 0; i < m; ++i) {
      const CellId c = cells[static_cast<std::size_t>(i)];
      const double w = config.contestWeights ? design.metricWeight(c) : 1.0;
      const double dx =
          static_cast<double>(design.cells[c].x) - design.cells[c].gpX;
      stats.objectiveAfter += w * dx * dx;
    }
    return stats;
  }

  // Apply (remove all moved, re-place left to right).
  std::vector<std::pair<CellId, std::int64_t>> moves;
  for (int i = 0; i < m; ++i) {
    const CellId c = cells[static_cast<std::size_t>(i)];
    if (finalX[static_cast<std::size_t>(i)] != design.cells[c].x) {
      moves.emplace_back(c, finalX[static_cast<std::size_t>(i)]);
    }
  }
  for (const auto& [c, nx] : moves) {
    (void)nx;
    state.remove(c);
  }
  std::sort(moves.begin(), moves.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [c, nx] : moves) {
    state.place(c, nx, design.cells[c].y);
  }
  stats.cellsMoved = static_cast<int>(moves.size());
  for (int i = 0; i < m; ++i) {
    const CellId c = cells[static_cast<std::size_t>(i)];
    const double w = config.contestWeights ? design.metricWeight(c) : 1.0;
    const double dx = static_cast<double>(design.cells[c].x) -
                      design.cells[c].gpX;
    stats.objectiveAfter += w * dx * dx;
  }
  return stats;
}

}  // namespace mclg
