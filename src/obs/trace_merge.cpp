#include "obs/trace_merge.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "obs/json.hpp"

namespace mclg::obs {

std::string serializeTraceSpans(const std::vector<TraceSpanRecord>& spans) {
  char buffer[96];
  std::string out;
  for (const TraceSpanRecord& span : spans) {
    std::snprintf(buffer, sizeof buffer, "%d\t%" PRId64 "\t%" PRId64 "\t",
                  span.tid, span.tsUs, span.durUs);
    out += buffer;
    out += span.name;
    out += '\t';
    out += span.args;
    out += '\n';
  }
  return out;
}

std::string serializeTraceChunk() {
  return serializeTraceSpans(traceSnapshot());
}

bool parseTraceChunk(const std::string& payload,
                     std::vector<TraceSpanRecord>* spans) {
  std::vector<TraceSpanRecord> parsed;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t end = payload.find('\n', pos);
    if (end == std::string::npos) end = payload.size();
    const std::string line = payload.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    std::size_t fields[4];
    std::size_t from = 0;
    bool ok = true;
    for (int f = 0; f < 4; ++f) {
      fields[f] = line.find('\t', from);
      if (fields[f] == std::string::npos) {
        ok = false;
        break;
      }
      from = fields[f] + 1;
    }
    if (!ok) return false;
    TraceSpanRecord span;
    char* parseEnd = nullptr;
    const std::string tid = line.substr(0, fields[0]);
    span.tid = static_cast<int>(std::strtol(tid.c_str(), &parseEnd, 10));
    if (parseEnd == tid.c_str() || *parseEnd != '\0') return false;
    const std::string ts =
        line.substr(fields[0] + 1, fields[1] - fields[0] - 1);
    span.tsUs = std::strtoll(ts.c_str(), &parseEnd, 10);
    if (parseEnd == ts.c_str() || *parseEnd != '\0') return false;
    const std::string dur =
        line.substr(fields[1] + 1, fields[2] - fields[1] - 1);
    span.durUs = std::strtoll(dur.c_str(), &parseEnd, 10);
    if (parseEnd == dur.c_str() || *parseEnd != '\0') return false;
    span.name = line.substr(fields[2] + 1, fields[3] - fields[2] - 1);
    if (span.name.empty()) return false;
    span.args = line.substr(fields[3] + 1);
    parsed.push_back(std::move(span));
  }
  spans->insert(spans->end(), std::make_move_iterator(parsed.begin()),
                std::make_move_iterator(parsed.end()));
  return true;
}

void TraceMerger::addWorker(int pid, const std::string& label) {
  workers_[pid].label = label;
}

bool TraceMerger::addChunk(int pid, const std::string& payload) {
  std::vector<TraceSpanRecord> spans;
  if (!parseTraceChunk(payload, &spans)) return false;
  addSpans(pid, spans);
  return true;
}

void TraceMerger::addSpans(int pid, const std::vector<TraceSpanRecord>& spans) {
  Worker& worker = workers_[pid];
  worker.spans.insert(worker.spans.end(), spans.begin(), spans.end());
}

std::size_t TraceMerger::spanCount() const {
  std::size_t total = 0;
  for (const auto& [pid, worker] : workers_) total += worker.spans.size();
  return total;
}

std::string TraceMerger::render() const {
  JsonWriter w;
  w.beginObject();
  w.key("traceEvents").beginArray();
  for (const auto& [pid, worker] : workers_) {
    w.beginObject()
        .field("name", "process_name")
        .field("ph", "M")
        .field("pid", pid)
        .field("tid", 0)
        .key("args")
        .beginObject()
        .field("name",
               worker.label.empty() ? "worker-" + std::to_string(pid)
                                    : worker.label)
        .endObject()
        .endObject();
    // Sort by (tid, ts) so every lane's events are timestamp-monotonic and
    // the thread metadata precedes the thread's first event.
    std::vector<const TraceSpanRecord*> ordered;
    ordered.reserve(worker.spans.size());
    for (const TraceSpanRecord& span : worker.spans) ordered.push_back(&span);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TraceSpanRecord* a, const TraceSpanRecord* b) {
                       return a->tid != b->tid ? a->tid < b->tid
                                               : a->tsUs < b->tsUs;
                     });
    std::set<int> namedTids;
    for (const TraceSpanRecord* span : ordered) {
      if (namedTids.insert(span->tid).second) {
        w.beginObject()
            .field("name", "thread_name")
            .field("ph", "M")
            .field("pid", pid)
            .field("tid", span->tid)
            .key("args")
            .beginObject()
            .field("name", "mclg-thread-" + std::to_string(span->tid))
            .endObject()
            .endObject();
      }
      w.beginObject()
          .field("name", span->name)
          .field("cat", "mclg")
          .field("ph", "X")
          .field("pid", pid)
          .field("tid", span->tid)
          .field("ts", span->tsUs)
          .field("dur", std::max<std::int64_t>(span->durUs, 0));
      if (!span->args.empty()) w.key("args").rawValue(span->args);
      w.endObject();
    }
  }
  w.endArray();
  w.field("displayTimeUnit", "ms");
  w.endObject();
  return w.take();
}

bool TraceMerger::write(const std::string& path) const {
  const std::string json = render();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), file) == json.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace mclg::obs
