#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace mclg::obs {

void appendJsonEscaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void JsonWriter::beforeValue() {
  if (!stack_.empty() && stack_.back() == 'v') {
    stack_.back() = 'o';  // the pending key gets this value
    return;
  }
  MCLG_ASSERT(stack_.empty() || stack_.back() == 'a',
              "JSON value inside an object requires a key first");
  if (!firstInScope_) out_ += ',';
  firstInScope_ = false;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  out_ += '{';
  stack_ += 'o';
  firstInScope_ = true;
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  MCLG_ASSERT(!stack_.empty() && stack_.back() == 'o',
              "endObject without matching beginObject");
  stack_.pop_back();
  out_ += '}';
  firstInScope_ = false;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  out_ += '[';
  stack_ += 'a';
  firstInScope_ = true;
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  MCLG_ASSERT(!stack_.empty() && stack_.back() == 'a',
              "endArray without matching beginArray");
  stack_.pop_back();
  out_ += ']';
  firstInScope_ = false;
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  MCLG_ASSERT(!stack_.empty() && stack_.back() == 'o',
              "JSON key outside an object");
  if (!firstInScope_) out_ += ',';
  firstInScope_ = false;
  out_ += '"';
  appendJsonEscaped(out_, name);
  out_ += "\":";
  stack_.back() = 'v';
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& text) {
  beforeValue();
  out_ += '"';
  appendJsonEscaped(out_, text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string(text));
}

JsonWriter& JsonWriter::value(double number) {
  beforeValue();
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  beforeValue();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  beforeValue();
  out_ += flag ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::valueNull() {
  beforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::rawValue(const std::string& json) {
  beforeValue();
  out_ += json;
  return *this;
}

}  // namespace mclg::obs
