#include "obs/serve_ledger.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace mclg::obs {

void ServeLedger::tenantLoaded(const std::string& tenant, double nowSeconds) {
  TenantStats& stats = tenants_[tenant];
  stats.loadedAt = nowSeconds;
  stats.lastAt = nowSeconds;
  if (firstAt_ < 0.0) firstAt_ = nowSeconds;
}

void ServeLedger::requestFinished(const std::string& tenant,
                                  const RequestOutcome& outcome,
                                  double nowSeconds) {
  if (firstAt_ < 0.0) firstAt_ = nowSeconds;
  lastAt_ = nowSeconds;
  ++requests_;
  if (!outcome.ok) ++failures_;
  lastTenant_ = tenant;
  lastVerb_ = outcome.verb;
  lastStatus_ = outcome.status;
  lastSeconds_ = outcome.seconds;
  TenantStats& stats = tenants_[tenant];
  ++stats.requests;
  if (outcome.verb == "eco") ++stats.eco;
  else if (outcome.verb == "commit") ++stats.commits;
  else if (outcome.verb == "rollback") ++stats.rollbacks;
  else if (outcome.verb == "query") ++stats.queries;
  if (!outcome.ok) ++stats.failures;
  stats.totalSeconds += outcome.seconds;
  stats.lastAt = nowSeconds;
  stats.lastVerb = outcome.verb;
  stats.lastStatus = outcome.status;
  if (outcome.hash != 0) stats.lastHash = outcome.hash;
  if (outcome.score != 0.0) stats.lastScore = outcome.score;
  if (outcome.cells != 0) stats.cells = outcome.cells;
}

void ServeLedger::busyRejected(const std::string& tenant) {
  ++busy_;
  (void)tenant;  // Busy is pre-admission: no per-tenant work to attribute.
}

std::string ServeLedger::renderStatusLine(double nowSeconds) const {
  char buffer[256];
  const double elapsed =
      firstAt_ >= 0.0 ? std::max(1e-9, nowSeconds - firstAt_) : 0.0;
  const double rate = elapsed > 0.0 ? requests_ / elapsed : 0.0;
  std::string out;
  std::snprintf(buffer, sizeof buffer,
                "[serve] %d tenants | %lld requests (%lld failed, %lld busy)",
                tenants(), requests_, failures_, busy_);
  out += buffer;
  if (!lastTenant_.empty()) {
    std::snprintf(buffer, sizeof buffer, " | last %s %s %s %.2fs",
                  lastTenant_.c_str(), lastVerb_.c_str(), lastStatus_.c_str(),
                  lastSeconds_);
    out += buffer;
  }
  std::snprintf(buffer, sizeof buffer, " | %.1f req/s", rate);
  out += buffer;
  return out;
}

std::string ServeLedger::renderStatusTable(double nowSeconds) const {
  char buffer[320];
  std::string out;
  std::snprintf(buffer, sizeof buffer,
                "%-16s %8s %6s %7s %9s %7s %8s %9s  %-10s %s\n", "tenant",
                "requests", "eco", "commit", "rollback", "failed", "mean_ms",
                "idle_s", "last", "hash");
  out += buffer;
  for (const auto& [name, stats] : tenants_) {
    const double meanMs =
        stats.requests > 0 ? 1e3 * stats.totalSeconds / stats.requests : 0.0;
    const std::string last =
        stats.lastVerb.empty() ? "loaded"
                               : stats.lastVerb + ":" + stats.lastStatus;
    std::snprintf(buffer, sizeof buffer,
                  "%-16s %8lld %6lld %7lld %9lld %7lld %8.1f %9.1f  %-10s "
                  "%016" PRIx64 "\n",
                  name.c_str(), stats.requests, stats.eco, stats.commits,
                  stats.rollbacks, stats.failures, meanMs,
                  std::max(0.0, nowSeconds - stats.lastAt), last.c_str(),
                  stats.lastHash);
    out += buffer;
  }
  out += renderStatusLine(nowSeconds);
  out += '\n';
  return out;
}

}  // namespace mclg::obs
