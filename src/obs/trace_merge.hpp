// Multi-process trace merge: workers ship their recorded spans to the
// supervisor in TraceChunk frames (flow/worker_protocol.hpp), and the
// supervisor renders one Chrome/Perfetto document in which every worker
// process is its own lane — `pid` is the real worker pid, the process_name
// metadata carries the design (and attempt) it ran, and the worker's
// per-thread tracks keep their thread attribution. A whole batch then
// reads as a single timeline in ui.perfetto.dev.
//
// The chunk payload is line-oriented, one span per line, tab-separated:
//
//   <tid> \t <tsUs> \t <durUs> \t <name> \t <argsJson>
//
// Span names are string literals and args are pre-rendered one-line JSON,
// so neither contains a tab or newline. Workers serialize at a quiescent
// point (after the pipeline returns, before the Result frame); the
// supervisor tolerates malformed chunks by dropping them (counted by the
// caller), never by corrupting the merged document.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mclg::obs {

/// Serialize every span recorded since the last traceReset into one
/// TraceChunk payload. Same quiescence contract as renderChromeTrace().
std::string serializeTraceChunk();

/// Render spans (e.g. from traceSnapshot) into a chunk payload.
std::string serializeTraceSpans(const std::vector<TraceSpanRecord>& spans);

/// Parse a chunk payload. Returns false (leaving `spans` untouched) on any
/// malformed line.
bool parseTraceChunk(const std::string& payload,
                     std::vector<TraceSpanRecord>* spans);

/// Supervisor-side accumulator: one process lane per worker pid.
class TraceMerger {
 public:
  /// Register (or re-label) a worker lane. Safe to call before or after
  /// chunks for that pid arrive.
  void addWorker(int pid, const std::string& label);

  /// Fold one chunk into the pid's lane. Returns false on parse error
  /// (the lane is left unchanged).
  bool addChunk(int pid, const std::string& payload);

  void addSpans(int pid, const std::vector<TraceSpanRecord>& spans);

  std::size_t workerLanes() const { return workers_.size(); }
  std::size_t spanCount() const;

  /// One Chrome trace-event document: per-pid process_name metadata, per
  /// (pid, tid) thread_name metadata, and every span as an "X" event with
  /// its worker's pid. Events are sorted by timestamp within each
  /// (pid, tid) lane.
  std::string render() const;
  bool write(const std::string& path) const;

 private:
  struct Worker {
    std::string label;
    std::vector<TraceSpanRecord> spans;
  };
  std::map<int, Worker> workers_;
};

}  // namespace mclg::obs
