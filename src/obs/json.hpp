// Minimal streaming JSON writer for the observability outputs (Chrome
// traces, run reports, structured log lines). Emits valid UTF-8 JSON with
// correct string escaping and finite-number handling; no DOM, no parsing.
#pragma once

#include <cstdint>
#include <string>

namespace mclg::obs {

/// Escape `text` per RFC 8259 and append it (without surrounding quotes)
/// to `out`. Exposed so the logger can build JSON lines without a writer.
void appendJsonEscaped(std::string& out, const std::string& text);

/// Stack-based writer: begin/end object/array calls must balance; `key`
/// must precede every value inside an object. Commas and quoting are
/// handled internally. Non-finite doubles are emitted as null (JSON has no
/// NaN/Infinity).
class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();
  JsonWriter& key(const std::string& name);
  JsonWriter& value(const std::string& text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(long long number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);
  JsonWriter& valueNull();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// Append a pre-rendered JSON fragment verbatim (caller guarantees
  /// validity) — used for the per-span args objects rendered at record time.
  JsonWriter& rawValue(const std::string& json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void beforeValue();

  std::string out_;
  // One char per nesting level: 'o' = object (expecting key), 'v' = object
  // (key written, expecting value), 'a' = array.
  std::string stack_;
  bool firstInScope_ = true;
};

}  // namespace mclg::obs
