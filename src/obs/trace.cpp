#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json.hpp"

namespace mclg::obs {
namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_enabled{false};

/// One per recording thread, owned by the registry so spans survive the
/// recording thread's exit (thread-pool workers die at stage teardown).
struct ThreadBuffer {
  int tid = 0;
  std::vector<detail::SpanEvent> events;
  // Events up to this index belong to a previous session (before the last
  // traceReset) and are skipped by render/count. Cheaper than clearing,
  // which would race with a thread still holding the pointer.
  std::size_t liveFrom = 0;
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  Clock::time_point epoch = Clock::now();
  std::atomic<std::uint64_t> generation{1};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may record at exit
  return *r;
}

struct ThreadSlot {
  ThreadBuffer* buffer = nullptr;
  std::uint64_t generation = 0;
};

ThreadBuffer& threadBuffer() {
  thread_local ThreadSlot slot;
  Registry& r = registry();
  const std::uint64_t gen = r.generation.load(std::memory_order_acquire);
  if (slot.buffer == nullptr || slot.generation != gen) {
    std::lock_guard<std::mutex> lock(r.mutex);
    if (slot.buffer == nullptr) {
      r.buffers.push_back(std::make_unique<ThreadBuffer>());
      slot.buffer = r.buffers.back().get();
      slot.buffer->tid = static_cast<int>(r.buffers.size());
    }
    // After a reset, everything already recorded is stale.
    slot.buffer->liveFrom = slot.buffer->events.size();
    slot.generation = gen;
  }
  return *slot.buffer;
}

}  // namespace

bool tracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void setTracingEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void traceReset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.epoch = Clock::now();
  // Bumping the generation invalidates every thread's cached slot; each
  // thread advances its own liveFrom on next record. Buffers of threads
  // that never record again keep stale events, which render/count skip via
  // the liveFrom recorded here.
  for (auto& buffer : r.buffers) buffer->liveFrom = buffer->events.size();
  r.generation.fetch_add(1, std::memory_order_release);
}

std::size_t traceEventCount() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t total = 0;
  for (const auto& buffer : r.buffers) {
    total += buffer->events.size() - buffer->liveFrom;
  }
  return total;
}

namespace detail {

std::int64_t nowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             Clock::now() - registry().epoch)
      .count();
}

void recordSpan(const char* name, std::int64_t tsUs, std::int64_t durUs,
                std::string args) {
  threadBuffer().events.push_back({name, tsUs, durUs, std::move(args)});
}

}  // namespace detail

void TraceScope::renderArgs(
    std::initializer_list<std::pair<const char*, double>> args) {
  if (args.size() == 0) return;
  JsonWriter w;
  w.beginObject();
  for (const auto& [key, number] : args) w.field(key, number);
  w.endObject();
  args_ = w.take();
}

std::string renderChromeTrace() {
  Registry& r = registry();
  // Snapshot under the lock. Callers flush at quiescent points (see the
  // header), so no thread is appending while the live ranges are copied.
  struct Snapshot {
    int tid;
    std::vector<detail::SpanEvent> events;
  };
  std::vector<Snapshot> snapshots;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    for (const auto& buffer : r.buffers) {
      const std::size_t n = buffer->events.size();
      if (n == buffer->liveFrom) continue;
      Snapshot s;
      s.tid = buffer->tid;
      s.events.assign(buffer->events.begin() +
                          static_cast<std::ptrdiff_t>(buffer->liveFrom),
                      buffer->events.begin() + static_cast<std::ptrdiff_t>(n));
      snapshots.push_back(std::move(s));
    }
  }

  JsonWriter w;
  w.beginObject();
  w.key("traceEvents").beginArray();
  for (const auto& snap : snapshots) {
    // Thread-name metadata so Perfetto labels the tracks.
    w.beginObject()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", 1)
        .field("tid", snap.tid)
        .key("args")
        .beginObject()
        .field("name", "mclg-thread-" + std::to_string(snap.tid))
        .endObject()
        .endObject();
    for (const auto& event : snap.events) {
      w.beginObject()
          .field("name", event.name)
          .field("cat", "mclg")
          .field("ph", "X")
          .field("pid", 1)
          .field("tid", snap.tid)
          .field("ts", event.tsUs)
          .field("dur", std::max<std::int64_t>(event.durUs, 0));
      if (!event.args.empty()) w.key("args").rawValue(event.args);
      w.endObject();
    }
  }
  w.endArray();
  w.field("displayTimeUnit", "ms");
  w.endObject();
  return w.take();
}

std::vector<TraceSpanRecord> traceSnapshot() {
  Registry& r = registry();
  std::vector<TraceSpanRecord> out;
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& buffer : r.buffers) {
    for (std::size_t i = buffer->liveFrom; i < buffer->events.size(); ++i) {
      const detail::SpanEvent& event = buffer->events[i];
      out.push_back({buffer->tid, event.tsUs,
                     std::max<std::int64_t>(event.durUs, 0), event.name,
                     event.args});
    }
  }
  return out;
}

bool writeChromeTrace(const std::string& path) {
  const std::string json = renderChromeTrace();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), file) == json.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace mclg::obs
