#include "obs/sampler.hpp"

#include <cstdio>

#include <sys/resource.h>
#include <unistd.h>

namespace mclg::obs {

double MetricsSampler::processCpuSeconds() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  const auto toSeconds = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return toSeconds(usage.ru_utime) + toSeconds(usage.ru_stime);
}

long MetricsSampler::processRssKb() {
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) return 0;
  long sizePages = 0;
  long residentPages = 0;
  const int fields = std::fscanf(file, "%ld %ld", &sizePages, &residentPages);
  std::fclose(file);
  if (fields != 2) return 0;
  const long pageKb = sysconf(_SC_PAGESIZE) / 1024;
  return residentPages * (pageKb > 0 ? pageKb : 4);
}

void MetricsSampler::start(SamplerConfig config) {
  stop();
  config_ = std::move(config);
  if (config_.intervalMs < 1) config_.intervalMs = 1;
  encoder_ = MetricsDeltaEncoder();
  sequence_ = 0;
  startedAt_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopRequested_ = false;
  }
  running_ = true;
  thread_ = std::thread([this] { loop(); });
}

void MetricsSampler::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopRequested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  running_ = false;
  // Final beat from the caller's thread: the stream ends with a delta that
  // folds to the registry's final values, and nothing can race the fd the
  // emit callback writes to afterwards.
  sampleOnce(true);
}

void MetricsSampler::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopRequested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(config_.intervalMs),
                 [this] { return stopRequested_; });
    if (stopRequested_) break;
    lock.unlock();
    sampleOnce(false);
    lock.lock();
  }
}

void MetricsSampler::sampleOnce(bool last) {
  if (config_.preSample) config_.preSample();
  TelemetrySample sample;
  sample.sequence = ++sequence_;
  sample.phase = phase_.load(std::memory_order_relaxed);
  sample.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    startedAt_)
          .count();
  sample.cpuSeconds = processCpuSeconds();
  sample.rssKb = processRssKb();
  if (metricsEnabled()) sample.metricsDelta = encoder_.encode(metricsSnapshot());
  sample.last = last;
  if (config_.emit) config_.emit(sample);
}

}  // namespace mclg::obs
