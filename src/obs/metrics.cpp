#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace mclg::obs {
namespace {

std::atomic<bool> g_enabled{false};

struct MetricsRegistry {
  std::mutex mutex;
  // Node-based maps: references handed out stay valid forever.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& registry() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked by design
  return *r;
}

}  // namespace

namespace detail {

int threadShard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

}  // namespace detail

bool metricsEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void setMetricsEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  if (!(v >= 0.0)) v = 0.0;  // negatives and NaN clamp into bucket 0
  int bucket = 0;
  if (v >= 1.0) {
    bucket = 1 + std::min(kBuckets - 2, std::ilogb(v));
  }
  auto& shard = shards_[detail::threadShard() % 4];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  double curMax = max_.load(std::memory_order_relaxed);
  while (v > curMax && !max_.compare_exchange_weak(
                           curMax, v, std::memory_order_relaxed)) {
  }
}

long long Histogram::bucketCount(int bucket) const {
  long long total = 0;
  for (const auto& shard : shards_) {
    total += shard.buckets[bucket].load(std::memory_order_relaxed);
  }
  return total;
}

long long Histogram::count() const {
  long long total = 0;
  for (int b = 0; b < kBuckets; ++b) total += bucketCount(b);
  return total;
}

void Histogram::reset() {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>(name);
  return *slot;
}

Gauge& gauge(const std::string& name) {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>(name);
  return *slot;
}

Histogram& histogram(const std::string& name) {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>(name);
  return *slot;
}

void metricsReset() {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, g] : r.gauges) g->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

MetricsSnapshot metricsSnapshot() {
  MetricsRegistry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  MetricsSnapshot snap;
  for (const auto& [name, c] : r.counters) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : r.gauges) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : r.histograms) {
    MetricsSnapshot::HistogramValue value;
    value.name = name;
    value.count = h->count();
    value.sum = h->sum();
    value.max = h->maxValue();
    value.buckets.resize(Histogram::kBuckets);
    int last = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      value.buckets[static_cast<std::size_t>(b)] = h->bucketCount(b);
      if (value.buckets[static_cast<std::size_t>(b)] != 0) last = b;
    }
    value.buckets.resize(static_cast<std::size_t>(last + 1));
    snap.histograms.push_back(std::move(value));
  }
  return snap;
}

double histogramQuantile(const std::vector<long long>& buckets, double q) {
  long long total = 0;
  for (const long long b : buckets) total += b;
  if (total <= 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const double inBucket = static_cast<double>(buckets[i]);
    if (inBucket <= 0.0) continue;
    if (cumulative + inBucket >= target) {
      const double lower = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      const double upper = i == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(i));
      const double fraction = (target - cumulative) / inBucket;
      return lower + fraction * (upper - lower);
    }
    cumulative += inBucket;
  }
  return std::ldexp(1.0, static_cast<int>(buckets.size()));
}

long long MetricsSnapshot::counterValue(const std::string& name) const {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  return it != counters.end() && it->first == name ? it->second : 0;
}

}  // namespace mclg::obs
