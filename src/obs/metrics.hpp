// Process-wide metrics registry: named counters, gauges, and histograms.
//
// Counters shard their cells across a small fixed set of cache-line-padded
// atomics indexed by a per-thread slot, so concurrent MGL workers never
// contend on one line; value() aggregates the shards at read time. Gauges
// are single atomics (written from the serial pipeline driver). Histograms
// bucket by powers of two with sharded bucket counts.
//
// Instrumentation sites guard on metricsEnabled() — one relaxed atomic
// load — and cache the registry lookup in a function-local static, so a
// disabled run pays a branch per site and nothing else:
//
//   if (obs::metricsEnabled()) {
//     static obs::Counter& c = obs::counter("mgl.insert.attempted");
//     c.add();
//   }
//
// Registry entries are created on first use and live for the process
// lifetime (reset() zeroes values but never invalidates references).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mclg::obs {

/// Global metrics switch, same contract as tracingEnabled().
bool metricsEnabled();
void setMetricsEnabled(bool enabled);

namespace detail {
inline constexpr int kCounterShards = 16;
/// Small dense per-thread slot in [0, kCounterShards), assigned on first
/// use; distinct live threads get distinct slots until the space wraps.
int threadShard();
}  // namespace detail

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(long long delta = 1) {
    cells_[detail::threadShard()].v.fetch_add(delta,
                                              std::memory_order_relaxed);
  }
  long long value() const {
    long long total = 0;
    for (const auto& cell : cells_) {
      total += cell.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() {
    for (auto& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Cell {
    std::atomic<long long> v{0};
  };
  std::string name_;
  Cell cells_[detail::kCounterShards];
};

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Power-of-two histogram for non-negative observations: bucket i counts
/// values in [2^(i-1), 2^i) (bucket 0 counts [0, 1)). Tracks count/sum/max
/// alongside the buckets.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void observe(double v);

  long long count() const;
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double maxValue() const { return max_.load(std::memory_order_relaxed); }
  long long bucketCount(int bucket) const;
  void reset();
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  struct alignas(64) Shard {
    std::atomic<long long> buckets[kBuckets] = {};
  };
  Shard shards_[4];
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Registry lookups: create-on-first-use, stable references, O(log n) under
/// a mutex — call once per site and cache (see the header comment).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Zero every registered metric (references stay valid).
void metricsReset();

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    long long count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::vector<long long> buckets;  // trailing zero buckets trimmed
  };
  std::vector<std::pair<std::string, long long>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramValue> histograms;

  /// Counter value by exact name; 0 when absent.
  long long counterValue(const std::string& name) const;
};

MetricsSnapshot metricsSnapshot();

/// Quantile estimate (q in [0, 1]) from pow2 buckets (bucket 0 = [0, 1),
/// bucket i = [2^(i-1), 2^i)): linear interpolation inside the bucket
/// where the cumulative count crosses q * total. Returns 0 for an empty
/// histogram. The estimate is exact to within the bucket resolution —
/// good enough to rank regressions, which is what the p50/p95/p99 report
/// fields are for.
double histogramQuantile(const std::vector<long long>& buckets, double q);

}  // namespace mclg::obs
