#include "obs/run_report.hpp"

#include <cstdio>

#include "obs/batch_ledger.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace mclg::obs {
namespace {

void writeProvenance(JsonWriter& w, const RunProvenance& p) {
  w.key("provenance").beginObject();
  w.field("tool", "mclg");
  w.field("design", p.design);
  w.field("cells", p.numCells);
  w.field("preset", p.preset);
  w.field("threads", p.threads);
  w.field("seed", static_cast<std::int64_t>(p.seed));
  w.field("guard", p.guardEnabled);
#ifdef MCLG_TRACING_DISABLED
  w.field("tracing_compiled", false);
#else
  w.field("tracing_compiled", true);
#endif
  if (!p.configText.empty()) w.field("config", p.configText);
  w.endObject();
}

void writeMetricsBlock(JsonWriter& w) {
  const MetricsSnapshot snap = metricsSnapshot();
  w.key("metrics").beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, value] : snap.counters) w.field(name, value);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, value] : snap.gauges) w.field(name, value);
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& hist : snap.histograms) {
    w.key(hist.name).beginObject();
    w.field("count", hist.count);
    w.field("sum", hist.sum);
    w.field("max", hist.max);
    w.field("p50", histogramQuantile(hist.buckets, 0.50));
    w.field("p95", histogramQuantile(hist.buckets, 0.95));
    w.field("p99", histogramQuantile(hist.buckets, 0.99));
    w.key("pow2_buckets").beginArray();
    for (const long long bucket : hist.buckets) w.value(bucket);
    w.endArray();
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

void writeStageRecord(JsonWriter& w, const StageRecord& rec) {
  w.key(stageName(rec.stage)).beginObject();
  w.field("status", stageStatusName(rec.status));
  w.field("attempts", rec.attempts);
  w.field("wall_seconds", rec.seconds);
  w.field("score_before", rec.scoreBefore);
  w.field("score_after", rec.scoreAfter);
  if (!rec.detail.empty()) w.field("detail", rec.detail);
  w.endObject();
}

bool writeStringToFile(const std::string& path, const std::string& text) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), file) == text.size();
  return std::fclose(file) == 0 && ok;
}

}  // namespace

std::string renderRunReport(const RunProvenance& provenance,
                            const PipelineStats& stats,
                            const ScoreBreakdown* score, bool includeMetrics,
                            const EcoStats* eco) {
  JsonWriter w;
  w.beginObject();
  w.field("schema_version", kRunReportSchemaVersion);
  w.field("kind", "legalize");
  writeProvenance(w, provenance);

  w.key("stages").beginObject();
  for (const StageRecord& rec : stats.guard.stages) writeStageRecord(w, rec);
  w.endObject();

  w.key("pipeline").beginObject();
  w.key("mgl").beginObject();
  w.field("placed", stats.mgl.placed);
  w.field("fallback_placed", stats.mgl.fallbackPlaced);
  w.field("failed", stats.mgl.failed);
  w.field("window_expansions",
          static_cast<std::int64_t>(stats.mgl.windowExpansions));
  w.field("seconds", stats.secondsMgl);
  w.endObject();
  w.key("maxdisp").beginObject();
  w.field("groups", stats.maxDisp.groups);
  w.field("cells_considered", stats.maxDisp.cellsConsidered);
  w.field("cells_moved", stats.maxDisp.cellsMoved);
  w.field("seconds", stats.secondsMaxDisp);
  w.endObject();
  w.key("fixed_row_order").beginObject();
  w.field("cells_moved", stats.fixedRowOrder.cellsMoved);
  w.field("objective_before", stats.fixedRowOrder.objectiveBefore);
  w.field("objective_after", stats.fixedRowOrder.objectiveAfter);
  w.field("seconds", stats.secondsFixedRowOrder);
  w.endObject();
  w.key("ripup").beginObject();
  w.field("attempted", stats.ripup.attempted);
  w.field("improved", stats.ripup.improved);
  w.field("gain", stats.ripup.gain);
  w.field("seconds", stats.secondsRipup);
  w.endObject();
  w.key("recovery").beginObject();
  w.field("cells_moved", stats.recovery.cellsMoved);
  w.field("hpwl_before", stats.recovery.hpwlBefore);
  w.field("hpwl_after", stats.recovery.hpwlAfter);
  w.field("seconds", stats.secondsRecovery);
  w.endObject();
  w.field("seconds_total", stats.secondsTotal());
  w.endObject();

  w.key("guard").beginObject();
  w.field("degraded", stats.guard.degraded);
  w.field("failed", stats.guard.failed);
  w.field("infeasible_cells", stats.guard.infeasibleCells);
  w.endObject();

  if (eco != nullptr) {
    w.key("eco").beginObject();
    w.field("moved_cells", eco->movedCells);
    w.field("resized_cells", eco->resizedCells);
    w.field("added_cells", eco->addedCells);
    w.field("dirty_cells", eco->dirtyCells);
    w.field("spilled_cells", eco->spilledCells);
    w.field("dirty_windows", eco->dirtyWindows);
    w.field("reused_windows", static_cast<std::int64_t>(eco->reusedWindows));
    w.field("matched_cells_moved", eco->matchedCellsMoved);
    w.field("ripup_improved", eco->ripupImproved);
    w.field("dirty_segments", eco->dirtySegments);
    w.field("warm_restarts", static_cast<std::int64_t>(eco->warmRestarts));
    w.field("cold_fallbacks", static_cast<std::int64_t>(eco->coldFallbacks));
    w.field("mcf_cells_moved", eco->mcfCellsMoved);
    w.field("used_full_run", eco->usedFullRun);
    if (!eco->fallbackReason.empty()) {
      w.field("fallback_reason", eco->fallbackReason);
    }
    w.field("exact_verified", eco->exactVerified);
    if (eco->scoreIncremental >= 0.0) {
      w.field("score_incremental", eco->scoreIncremental);
    }
    if (eco->scoreFull >= 0.0) w.field("score_full", eco->scoreFull);
    w.field("seconds_incremental", eco->secondsIncremental);
    w.field("seconds_shadow", eco->secondsShadow);
    w.endObject();
  }

  if (score != nullptr) {
    w.key("quality").beginObject();
    w.field("legal", score->legality.legal());
    w.field("unplaced", score->legality.unplacedCells);
    w.field("overlaps", score->legality.overlaps);
    w.field("parity_violations", score->legality.parityViolations);
    w.field("fence_violations", score->legality.fenceViolations);
    w.field("out_of_core", score->legality.outOfCore);
    w.field("avg_disp", score->displacement.average);
    w.field("max_disp", score->displacement.maximum);
    w.field("hpwl_ratio", score->hpwlRatio);
    w.field("pin_shorts", score->pins.shorts);
    w.field("pin_access", score->pins.access);
    w.field("edge_spacing", score->edgeSpacing);
    w.field("score", score->score);
    w.endObject();
  }

  if (includeMetrics) writeMetricsBlock(w);
  w.endObject();
  return w.take();
}

bool writeRunReport(const std::string& path, const RunProvenance& provenance,
                    const PipelineStats& stats, const ScoreBreakdown* score,
                    bool includeMetrics, const EcoStats* eco) {
  return writeStringToFile(
      path, renderRunReport(provenance, stats, score, includeMetrics, eco));
}

namespace {

std::string renderBenchDocument(
    const std::string& benchName,
    const std::vector<std::pair<std::string, double>>& values,
    const BatchLedger* ledger) {
  JsonWriter w;
  w.beginObject();
  w.field("schema_version", kRunReportSchemaVersion);
  w.field("kind", "bench");
  w.key("provenance").beginObject();
  w.field("tool", "mclg");
  w.field("bench", benchName);
#ifdef MCLG_TRACING_DISABLED
  w.field("tracing_compiled", false);
#else
  w.field("tracing_compiled", true);
#endif
  w.endObject();
  w.key("values").beginObject();
  for (const auto& [name, value] : values) w.field(name, value);
  w.endObject();
  if (ledger != nullptr) ledger->writeBatchBlock(w);
  writeMetricsBlock(w);
  w.endObject();
  return w.take();
}

}  // namespace

std::string renderBenchReport(
    const std::string& benchName,
    const std::vector<std::pair<std::string, double>>& values) {
  return renderBenchDocument(benchName, values, nullptr);
}

std::string renderBatchReport(
    const std::string& benchName,
    const std::vector<std::pair<std::string, double>>& values,
    const BatchLedger& ledger) {
  return renderBenchDocument(benchName, values, &ledger);
}

bool writeBatchReport(const std::string& path, const std::string& benchName,
                      const std::vector<std::pair<std::string, double>>& values,
                      const BatchLedger& ledger) {
  return writeStringToFile(path,
                           renderBatchReport(benchName, values, ledger));
}

bool writeBenchReport(const std::string& path, const std::string& benchName,
                      const std::vector<std::pair<std::string, double>>& values) {
  return writeStringToFile(path, renderBenchReport(benchName, values));
}

}  // namespace mclg::obs
