// Daemon-side per-tenant serving ledger: the fold of every request the
// legalization service (flow/serve/serve_server.hpp) has answered, kept
// resident so the `--status` endpoint and the periodic status line can
// answer "who is being served, how fast, and how healthy" without
// touching tenant sessions.
//
// Mirrors the BatchLedger conventions (obs/batch_ledger.hpp): the caller
// synchronizes access (the serve server holds its registry mutex around
// every call) and injects monotonic time, so the ledger is deterministic
// under test. Counters the metrics registry also tracks (serve.requests,
// serve.busy_rejections, ...) are bumped by the server, not here — the
// ledger is the per-tenant breakdown the flat registry cannot express.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace mclg::obs {

class ServeLedger {
 public:
  /// One answered request, in Response terms (serve_protocol.hpp).
  struct RequestOutcome {
    std::string verb;     ///< "load" / "eco" / "commit" / "rollback" / "query"
    std::string status;   ///< serveStatusName vocabulary
    bool ok = false;      ///< serveStatusOk(status)
    double seconds = 0.0;
    std::uint64_t hash = 0;
    double score = 0.0;
    int cells = 0;
  };

  void tenantLoaded(const std::string& tenant, double nowSeconds);
  void requestFinished(const std::string& tenant,
                       const RequestOutcome& outcome, double nowSeconds);
  /// Admission bounce before any tenant work (Busy responses). Counted
  /// globally; `tenant` may be empty when the request never parsed.
  void busyRejected(const std::string& tenant);

  int tenants() const { return static_cast<int>(tenants_.size()); }
  long long requests() const { return requests_; }
  long long busy() const { return busy_; }
  long long failures() const { return failures_; }

  /// `[serve] 2 tenants | 341 requests (2 failed, 1 busy) | last t1 eco ok
  /// 0.8s | 412 req/s` — the periodic daemon status line.
  std::string renderStatusLine(double nowSeconds) const;

  /// Fixed-width per-tenant table for Query(status) / `mclg_serve
  /// --status`: requests, per-verb counts, failures, mean latency, last
  /// outcome + placement hash.
  std::string renderStatusTable(double nowSeconds) const;

 private:
  struct TenantStats {
    long long requests = 0;
    long long eco = 0;
    long long commits = 0;
    long long rollbacks = 0;
    long long queries = 0;
    long long failures = 0;   ///< !ok outcomes (including Rejected)
    double totalSeconds = 0.0;
    double loadedAt = 0.0;
    double lastAt = 0.0;
    std::string lastVerb;
    std::string lastStatus;
    std::uint64_t lastHash = 0;
    double lastScore = 0.0;
    int cells = 0;
  };

  std::map<std::string, TenantStats> tenants_;
  long long requests_ = 0;
  long long busy_ = 0;
  long long failures_ = 0;
  double firstAt_ = -1.0;
  double lastAt_ = 0.0;
  std::string lastTenant_;
  std::string lastVerb_;
  std::string lastStatus_;
  double lastSeconds_ = 0.0;
};

}  // namespace mclg::obs
