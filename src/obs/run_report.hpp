// Machine-readable run reports: one versioned JSON document per run,
// merging the pipeline's PipelineStats + GuardReport, the metrics
// registry, the quality metrics from src/eval, and build/config
// provenance. Bench binaries emit the same schema ("kind":"bench") so CI
// can diff legalize runs and benchmark sweeps with one parser. The schema
// is documented in docs/OBSERVABILITY.md; bump kRunReportSchemaVersion on
// any breaking field change.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "eval/score.hpp"
#include "legal/eco/eco_driver.hpp"
#include "legal/pipeline.hpp"

namespace mclg::obs {

/// v2 (PR 3): adds the perf-overhaul metric families to the metrics block —
/// `mgl.curve_cache.*`, `mgl.insert.seed_dedup`, the `mgl.window.candidates`
/// histogram and `mcf.simplex.warm.*` — and the "perf_suite" document kind
/// written by scripts/perf_gate.py. Purely additive: v1 consumers that
/// ignore unknown fields keep working, and the in-tree readers
/// (scripts/perf_gate.py, tests/cli_end_to_end.cmake) accept both versions.
///
/// v3 (PR 4): adds the optional top-level `eco` block emitted by the
/// `--eco-from` incremental mode (`eco.dirty_windows`, `eco.reused_windows`,
/// `eco.warm_restarts`, `eco.cold_fallbacks`, plus the delta/fallback/
/// exactness fields — see docs/ECO.md). Additive as before; absent on full
/// runs.
///
/// v4 (PR 5): adds the work-stealing executor's metric families to the
/// metrics block — `executor.steals`, `executor.chunk_grabs`,
/// `executor.parks` / `executor.unparks`, `executor.batches`,
/// `executor.submitted` counters and the `executor.queue_depth` /
/// `executor.designs_in_flight` high-water gauges (see
/// docs/PERFORMANCE.md). Additive: v2/v3 consumers that ignore unknown
/// metric names keep working, and the in-tree readers
/// (scripts/perf_gate.py, tests/cli_end_to_end.cmake) accept v1–v4.
///
/// v5 (PR 6): adds the batch supervisor's metric families (see
/// docs/ROBUSTNESS.md) — `executor.tasks.escaped_exceptions` and the
/// `supervisor.spawns` / `supervisor.restarts` / `supervisor.retries` /
/// `supervisor.crashes` (+ `supervisor.crash.signal.<N>`) /
/// `supervisor.timeouts` / `supervisor.kills` / `supervisor.exhausted`
/// counters with the `supervisor.workers_in_flight` high-water gauge —
/// plus the `process_isolation` / `shard_index` / `shard_count` and
/// per-design `status` / `attempts` values in mclg_batch bench reports.
/// Additive as before; the in-tree readers accept v1–v5.
///
/// v6 (PR 7): live-telemetry additions (see docs/OBSERVABILITY.md "Live
/// telemetry") — `p50` / `p95` / `p99` quantile estimates in every
/// histogram entry (raw `pow2_buckets` kept), the `supervisor.heartbeats`
/// / `supervisor.stalls_detected` / `supervisor.trace_chunks` (+
/// `.dropped`) counters with the `supervisor.heartbeat_gap_ms` histogram,
/// the sampled `executor.parked_workers` gauge, and the top-level `batch`
/// aggregate block in mclg_batch reports (per-design rollups, attempt
/// history, folded worker counters/gauges, heartbeat gap histogram —
/// rendered by obs/batch_ledger.hpp). Additive as before; the in-tree
/// readers (scripts/perf_gate.py, scripts/check_report_schema.py,
/// tests/cli_end_to_end.cmake) accept v1–v6.
inline constexpr int kRunReportSchemaVersion = 6;

/// Where the run came from: everything needed to reproduce it.
struct RunProvenance {
  std::string design;        // design name from the input
  int numCells = 0;
  std::string preset;        // "contest" / "totaldisp" / bench-specific
  int threads = 1;
  std::uint64_t seed = 0;    // generator seed when known, 0 otherwise
  bool guardEnabled = false;
  std::string configText;    // full configToText() dump, optional
};

/// Render the "kind":"legalize" report. `score` may be null (quality block
/// omitted); the metrics block snapshots the registry when
/// `includeMetrics` is set. `eco` may be null (block omitted — full runs).
std::string renderRunReport(const RunProvenance& provenance,
                            const PipelineStats& stats,
                            const ScoreBreakdown* score, bool includeMetrics,
                            const EcoStats* eco = nullptr);

bool writeRunReport(const std::string& path, const RunProvenance& provenance,
                    const PipelineStats& stats, const ScoreBreakdown* score,
                    bool includeMetrics, const EcoStats* eco = nullptr);

/// Render the "kind":"bench" report: same envelope (schema_version,
/// provenance, metrics registry), with the benchmark's named values in
/// place of the pipeline blocks.
std::string renderBenchReport(
    const std::string& benchName,
    const std::vector<std::pair<std::string, double>>& values);

bool writeBenchReport(const std::string& path, const std::string& benchName,
                      const std::vector<std::pair<std::string, double>>& values);

class BatchLedger;

/// renderBenchReport plus the v6 top-level `batch` aggregate block folded
/// by `ledger` (obs/batch_ledger.hpp) — the document mclg_batch writes.
std::string renderBatchReport(
    const std::string& benchName,
    const std::vector<std::pair<std::string, double>>& values,
    const BatchLedger& ledger);

bool writeBatchReport(const std::string& path, const std::string& benchName,
                      const std::vector<std::pair<std::string, double>>& values,
                      const BatchLedger& ledger);

}  // namespace mclg::obs
