#include "obs/metrics_delta.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

namespace mclg::obs {

std::string MetricsDeltaEncoder::encode(const MetricsSnapshot& snap) {
  char buffer[160];
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    long long& previous = counters_[name];
    const long long delta = value - previous;
    if (delta == 0) continue;
    previous = value;
    std::snprintf(buffer, sizeof buffer, "c %s %lld\n", name.c_str(), delta);
    out += buffer;
  }
  for (const auto& [name, value] : snap.gauges) {
    const auto it = gauges_.find(name);
    if (it != gauges_.end() && it->second == value) continue;
    if (it == gauges_.end() && value == 0.0) continue;
    gauges_[name] = value;
    std::snprintf(buffer, sizeof buffer, "g %s %.17g\n", name.c_str(), value);
    out += buffer;
  }
  return out;
}

bool applyMetricsDelta(const std::string& payload, MetricsAccumulator* acc) {
  std::vector<std::pair<std::string, long long>> counterDeltas;
  std::vector<std::pair<std::string, double>> gaugeValues;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t end = payload.find('\n', pos);
    if (end == std::string::npos) end = payload.size();
    const std::string line = payload.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    if (line.size() < 5 || (line[0] != 'c' && line[0] != 'g') ||
        line[1] != ' ') {
      return false;
    }
    const std::size_t space = line.find(' ', 2);
    if (space == std::string::npos || space == 2 ||
        space + 1 >= line.size()) {
      return false;
    }
    const std::string name = line.substr(2, space - 2);
    const std::string number = line.substr(space + 1);
    char* parseEnd = nullptr;
    if (line[0] == 'c') {
      const long long delta = std::strtoll(number.c_str(), &parseEnd, 10);
      if (parseEnd == number.c_str() || *parseEnd != '\0') return false;
      counterDeltas.emplace_back(name, delta);
    } else {
      const double value = std::strtod(number.c_str(), &parseEnd);
      if (parseEnd == number.c_str() || *parseEnd != '\0') return false;
      gaugeValues.emplace_back(name, value);
    }
  }
  for (const auto& [name, delta] : counterDeltas) acc->counters[name] += delta;
  for (const auto& [name, value] : gaugeValues) acc->gauges[name] = value;
  return true;
}

long long MetricsAccumulator::counterValue(const std::string& name) const {
  const auto it = counters.find(name);
  return it != counters.end() ? it->second : 0;
}

}  // namespace mclg::obs
