// Batch-wide run ledger: the supervisor-side fold of every worker's
// telemetry stream into one live view of the batch.
//
// The supervisor (flow/supervisor.cpp) feeds it worker lifecycle events
// plus the Heartbeat / MetricsDelta frames it demultiplexes off the worker
// pipes; the in-process batch runner (flow/batch_runner.cpp) feeds the
// same calls directly, so `mclg_batch --live-status` reads identically in
// both modes. The ledger answers three questions the final report can't:
//
//  * progress — designs done / running / retrying, the slowest design and
//    its current phase, aggregate cells/s (one line, renderStatusLine());
//  * liveness — which workers have stopped heartbeating. The sampler
//    thread beats independently of the compute threads, so a missing beat
//    means the process is wedged ("hung"), while beats flowing under a
//    long wall clock merely mean "slow". detectStalls() surfaces the
//    transition (once per silence) as `supervisor.stalls_detected`,
//    before the wall-clock timeout escalates to SIGTERM;
//  * aggregates — folded worker counters/gauges, per-design rollups, the
//    attempt/retry history, and the heartbeat-gap histogram, rendered as
//    the run report's v6 `batch` block (writeBatchBlock()).
//
// Counter folds are exact: every worker's sampler flushes a final delta,
// so the ledger's counters equal the sum of the per-design run reports
// (asserted in tests/test_supervisor.cpp). Time is injected by the caller
// (monotonic seconds) to keep the ledger deterministic under test.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics_delta.hpp"

namespace mclg::obs {

class JsonWriter;

class BatchLedger {
 public:
  static constexpr int kGapBuckets = 40;

  explicit BatchLedger(int totalDesigns = 0) : total_(totalDesigns) {}

  void setTotalDesigns(int n) { total_ = n; }

  /// A worker process (or in-process design run) started `attempt` of
  /// `design`. Clears any pending-retry mark for the design.
  void workerStarted(const std::string& design, int pid, int attempt,
                     double nowSeconds);

  void heartbeat(const std::string& design, std::uint64_t sequence,
                 const std::string& phase, double wallSeconds,
                 double cpuSeconds, long rssKb, double nowSeconds);

  /// Fold one MetricsDelta payload. Returns false on a malformed payload
  /// (nothing applied; callers count it as a protocol anomaly).
  bool metricsDelta(const std::string& design, const std::string& payload);

  struct DesignOutcome {
    std::string status;    // workerStatusName vocabulary
    bool ok = false;
    bool retrying = false; // this attempt failed but will be re-run
    double seconds = 0.0;
    int cells = 0;
    double score = 0.0;
    int attempt = 1;
  };
  void designFinished(const std::string& design, const DesignOutcome& outcome,
                      double nowSeconds);

  /// Designs whose workers have been silent for more than
  /// `thresholdSeconds` since their last beat (or start). Each silence is
  /// reported once — a new beat re-arms detection. Bumps the
  /// `supervisor.stalls_detected` counter per newly stalled worker.
  std::vector<std::string> detectStalls(double nowSeconds,
                                        double thresholdSeconds);

  int totalDesigns() const { return total_; }
  int done() const { return static_cast<int>(finished_.size()); }
  int running() const { return static_cast<int>(running_.size()); }
  int retrying() const { return static_cast<int>(retryPending_.size()); }
  long long heartbeats() const { return heartbeats_; }
  long long stallsDetected() const { return stallsDetected_; }
  const MetricsAccumulator& folded() const { return folded_; }

  /// `[batch] 3/8 done, 4 running, 1 retrying | slowest d5 12.4s (mcf) |
  /// 8421 cells/s | stalls 0` — the --live-status line.
  std::string renderStatusLine(double nowSeconds) const;

  /// Write the v6 `batch` aggregate block: `w.key("batch")` + object.
  void writeBatchBlock(JsonWriter& w) const;

 private:
  struct RunningWorker {
    int pid = 0;
    int attempt = 1;
    double startedAt = 0.0;
    double lastBeatAt = 0.0;
    std::uint64_t lastSequence = 0;
    std::string phase;
    double wallSeconds = 0.0;
    double cpuSeconds = 0.0;
    long rssKb = 0;
    bool stallReported = false;
  };
  struct FinishedDesign {
    std::string design;
    std::string status;
    bool ok = false;
    double seconds = 0.0;
    int cells = 0;
    double score = 0.0;
    int attempts = 1;
  };
  struct AttemptRecord {
    std::string design;
    int attempt = 1;
    std::string status;
  };

  void observeGap(double gapMs);

  int total_ = 0;
  double firstStartAt_ = -1.0;
  std::map<std::string, RunningWorker> running_;
  std::set<std::string> retryPending_;
  std::vector<FinishedDesign> finished_;
  std::vector<AttemptRecord> attempts_;
  MetricsAccumulator folded_;
  long long heartbeats_ = 0;
  long long stallsDetected_ = 0;
  long long gapBuckets_[kGapBuckets] = {};
  long long gapCount_ = 0;
  double gapSumMs_ = 0.0;
  double gapMaxMs_ = 0.0;
};

}  // namespace mclg::obs
