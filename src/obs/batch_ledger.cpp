#include "obs/batch_ledger.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace mclg::obs {

void BatchLedger::workerStarted(const std::string& design, int pid,
                                int attempt, double nowSeconds) {
  if (firstStartAt_ < 0.0) firstStartAt_ = nowSeconds;
  retryPending_.erase(design);
  RunningWorker worker;
  worker.pid = pid;
  worker.attempt = attempt;
  worker.startedAt = nowSeconds;
  worker.lastBeatAt = nowSeconds;
  running_[design] = std::move(worker);
}

void BatchLedger::heartbeat(const std::string& design, std::uint64_t sequence,
                            const std::string& phase, double wallSeconds,
                            double cpuSeconds, long rssKb, double nowSeconds) {
  ++heartbeats_;
  if (metricsEnabled()) {
    static Counter& beats = counter("supervisor.heartbeats");
    beats.add();
  }
  auto it = running_.find(design);
  if (it == running_.end()) return;  // beat raced the design's completion
  RunningWorker& worker = it->second;
  observeGap((nowSeconds - worker.lastBeatAt) * 1000.0);
  worker.lastBeatAt = nowSeconds;
  worker.lastSequence = sequence;
  worker.phase = phase;
  worker.wallSeconds = wallSeconds;
  worker.cpuSeconds = cpuSeconds;
  worker.rssKb = rssKb;
  worker.stallReported = false;  // alive again — re-arm stall detection
}

bool BatchLedger::metricsDelta(const std::string& design,
                               const std::string& payload) {
  (void)design;
  return applyMetricsDelta(payload, &folded_);
}

void BatchLedger::designFinished(const std::string& design,
                                 const DesignOutcome& outcome,
                                 double nowSeconds) {
  (void)nowSeconds;
  running_.erase(design);
  attempts_.push_back({design, outcome.attempt, outcome.status});
  if (outcome.retrying) {
    retryPending_.insert(design);
    return;
  }
  retryPending_.erase(design);
  FinishedDesign finished;
  finished.design = design;
  finished.status = outcome.status;
  finished.ok = outcome.ok;
  finished.seconds = outcome.seconds;
  finished.cells = outcome.cells;
  finished.score = outcome.score;
  finished.attempts = outcome.attempt;
  finished_.push_back(std::move(finished));
}

std::vector<std::string> BatchLedger::detectStalls(double nowSeconds,
                                                   double thresholdSeconds) {
  std::vector<std::string> stalled;
  if (thresholdSeconds <= 0.0) return stalled;
  for (auto& [design, worker] : running_) {
    if (worker.stallReported) continue;
    if (nowSeconds - worker.lastBeatAt <= thresholdSeconds) continue;
    worker.stallReported = true;
    ++stallsDetected_;
    if (metricsEnabled()) {
      static Counter& stalls = counter("supervisor.stalls_detected");
      stalls.add();
    }
    stalled.push_back(design);
  }
  return stalled;
}

void BatchLedger::observeGap(double gapMs) {
  if (!(gapMs >= 0.0)) gapMs = 0.0;
  int bucket = 0;
  if (gapMs >= 1.0) {
    bucket = 1 + std::min(kGapBuckets - 2, std::ilogb(gapMs));
  }
  ++gapBuckets_[bucket];
  ++gapCount_;
  gapSumMs_ += gapMs;
  gapMaxMs_ = std::max(gapMaxMs_, gapMs);
  if (metricsEnabled()) {
    static Histogram& gaps = histogram("supervisor.heartbeat_gap_ms");
    gaps.observe(gapMs);
  }
}

std::string BatchLedger::renderStatusLine(double nowSeconds) const {
  // Slowest in-flight design (falling back to the slowest finished one
  // when nothing is running), with its current phase when known.
  std::string slowest;
  std::string slowestPhase;
  double slowestSeconds = -1.0;
  for (const auto& [design, worker] : running_) {
    const double seconds = nowSeconds - worker.startedAt;
    if (seconds > slowestSeconds) {
      slowestSeconds = seconds;
      slowest = design;
      slowestPhase = worker.phase;
    }
  }
  if (slowest.empty()) {
    for (const FinishedDesign& finished : finished_) {
      if (finished.seconds > slowestSeconds) {
        slowestSeconds = finished.seconds;
        slowest = finished.design;
      }
    }
  }

  long long cells = 0;
  for (const FinishedDesign& finished : finished_) {
    if (finished.ok) cells += finished.cells;
  }
  const double elapsed =
      firstStartAt_ >= 0.0 ? nowSeconds - firstStartAt_ : 0.0;
  const double cellsPerSecond = elapsed > 0.0 ? cells / elapsed : 0.0;

  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "[batch] %d/%d done, %d running, %d retrying", done(), total_,
                running(), retrying());
  std::string out = buffer;
  if (!slowest.empty()) {
    std::snprintf(buffer, sizeof buffer, " | slowest %s %.1fs",
                  slowest.c_str(), slowestSeconds);
    out += buffer;
    if (!slowestPhase.empty()) {
      out += " (" + slowestPhase + ")";
    }
  }
  std::snprintf(buffer, sizeof buffer, " | %.0f cells/s | stalls %lld",
                cellsPerSecond, stallsDetected_);
  out += buffer;
  return out;
}

void BatchLedger::writeBatchBlock(JsonWriter& w) const {
  int ok = 0;
  long long cells = 0;
  double secondsSum = 0.0;
  std::string slowest;
  double slowestSeconds = -1.0;
  for (const FinishedDesign& finished : finished_) {
    if (finished.ok) {
      ++ok;
      cells += finished.cells;
    }
    secondsSum += finished.seconds;
    if (finished.seconds > slowestSeconds) {
      slowestSeconds = finished.seconds;
      slowest = finished.design;
    }
  }

  w.key("batch").beginObject();
  w.field("designs_total", total_);
  w.field("designs_done", done());
  w.field("designs_ok", ok);
  w.field("designs_failed", done() - ok);
  w.field("attempts_total", static_cast<std::int64_t>(attempts_.size()));
  w.field("heartbeats", heartbeats_);
  w.field("stalls_detected", stallsDetected_);
  w.field("cells_total", cells);
  w.field("seconds_sum", secondsSum);
  if (!slowest.empty()) {
    w.key("slowest").beginObject();
    w.field("design", slowest);
    w.field("seconds", slowestSeconds);
    w.endObject();
  }

  w.key("designs").beginArray();
  for (const FinishedDesign& finished : finished_) {
    w.beginObject();
    w.field("design", finished.design);
    w.field("status", finished.status);
    w.field("ok", finished.ok);
    w.field("attempts", finished.attempts);
    w.field("seconds", finished.seconds);
    w.field("cells", finished.cells);
    w.field("score", finished.score);
    w.endObject();
  }
  w.endArray();

  w.key("attempts").beginArray();
  for (const AttemptRecord& attempt : attempts_) {
    w.beginObject();
    w.field("design", attempt.design);
    w.field("attempt", attempt.attempt);
    w.field("status", attempt.status);
    w.endObject();
  }
  w.endArray();

  std::vector<long long> buckets(gapBuckets_, gapBuckets_ + kGapBuckets);
  int last = -1;
  for (int b = 0; b < kGapBuckets; ++b) {
    if (buckets[static_cast<std::size_t>(b)] != 0) last = b;
  }
  buckets.resize(static_cast<std::size_t>(last + 1));
  w.key("heartbeat_gap_ms").beginObject();
  w.field("count", gapCount_);
  w.field("sum", gapSumMs_);
  w.field("max", gapMaxMs_);
  w.field("p50", histogramQuantile(buckets, 0.50));
  w.field("p95", histogramQuantile(buckets, 0.95));
  w.field("p99", histogramQuantile(buckets, 0.99));
  w.key("pow2_buckets").beginArray();
  for (const long long bucket : buckets) w.value(bucket);
  w.endArray();
  w.endObject();

  w.key("counters").beginObject();
  for (const auto& [name, value] : folded_.counters) w.field(name, value);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, value] : folded_.gauges) w.field(name, value);
  w.endObject();

  w.endObject();
}

}  // namespace mclg::obs
