// Scoped-span tracing for the legalization pipeline.
//
// Spans are recorded per thread into registry-owned buffers: the hot path
// (TraceScope constructor/destructor) touches only a thread-local pointer
// and a vector push_back — no locks, no allocation beyond vector growth —
// and compiles down to a single branch on the global enable flag when
// tracing is off. Buffers outlive their threads (the MGL thread pool is
// torn down per stage, long before the flush), so worker spans keep their
// thread attribution in the output.
//
// The flush renders Chrome trace-event JSON ("X" complete events), loadable
// in Perfetto / chrome://tracing: one track per recording thread, span
// nesting recovered from timestamps. Instrumentation sites use the
// MCLG_TRACE_SCOPE macro, which compiles to nothing when the build sets
// MCLG_TRACING_DISABLED (CMake option MCLG_TRACING=OFF).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

namespace mclg::obs {

/// Global tracing switch. Off by default; the CLI turns it on for
/// --trace-out runs. Reads are a single relaxed atomic load.
bool tracingEnabled();
void setTracingEnabled(bool enabled);

/// Drop all recorded spans and restart the session clock. Buffers of
/// threads that recorded before stay registered (and are re-used).
void traceReset();

/// Number of spans recorded since the last reset (all threads).
std::size_t traceEventCount();

/// Render the Chrome trace-event JSON document for everything recorded
/// since the last reset. Recording is lock-free per thread, so call this
/// (and traceReset) only at quiescent points — no spans in flight. The CLI
/// flushes after the pipeline returns; tests flush after joining workers.
std::string renderChromeTrace();

/// renderChromeTrace() to a file. Returns false on I/O error.
bool writeChromeTrace(const std::string& path);

/// One recorded span with its thread attribution — the unit shipped in
/// TraceChunk frames and merged across workers (obs/trace_merge.hpp).
struct TraceSpanRecord {
  int tid = 0;
  std::int64_t tsUs = 0;
  std::int64_t durUs = 0;
  std::string name;
  std::string args;  // pre-rendered JSON object body, may be empty
};

/// Copy of every span recorded since the last reset, in per-thread record
/// order. Same quiescence contract as renderChromeTrace().
std::vector<TraceSpanRecord> traceSnapshot();

namespace detail {

struct SpanEvent {
  const char* name;      // static string (macro passes literals)
  std::int64_t tsUs;     // microseconds since session start
  std::int64_t durUs;
  std::string args;      // pre-rendered JSON object body, may be empty
};

/// Append a finished span to the calling thread's buffer.
void recordSpan(const char* name, std::int64_t tsUs, std::int64_t durUs,
                std::string args);

/// Microseconds since the session clock started (monotonic).
std::int64_t nowUs();

}  // namespace detail

/// RAII span. Constructing with tracing disabled is a single branch; with
/// tracing enabled the constructor snapshots the clock and the destructor
/// records a complete event on the current thread's track.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (tracingEnabled()) begin(name);
  }
  /// Numeric key/value annotations, shown in the Perfetto span details
  /// (e.g. MCLG_TRACE_SCOPE("mgl/window", {{"cells", n}})). Keys must be
  /// string literals; values are rendered as JSON numbers.
  TraceScope(const char* name,
             std::initializer_list<std::pair<const char*, double>> args) {
    if (tracingEnabled()) {
      begin(name);
      renderArgs(args);
    }
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (active_) {
      detail::recordSpan(name_, startUs_, detail::nowUs() - startUs_,
                         std::move(args_));
    }
  }

 private:
  void begin(const char* name) {
    name_ = name;
    startUs_ = detail::nowUs();
    active_ = true;
  }
  void renderArgs(std::initializer_list<std::pair<const char*, double>> args);

  const char* name_ = nullptr;
  std::int64_t startUs_ = 0;
  bool active_ = false;
  std::string args_;
};

}  // namespace mclg::obs

#ifdef MCLG_TRACING_DISABLED
#define MCLG_TRACE_SCOPE(...) \
  do {                        \
  } while (0)
#else
#define MCLG_TRACE_CONCAT_IMPL(a, b) a##b
#define MCLG_TRACE_CONCAT(a, b) MCLG_TRACE_CONCAT_IMPL(a, b)
#define MCLG_TRACE_SCOPE(...)                                      \
  ::mclg::obs::TraceScope MCLG_TRACE_CONCAT(mclgTraceScope_,       \
                                            __COUNTER__)(__VA_ARGS__)
#endif
