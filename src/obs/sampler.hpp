// Low-overhead telemetry sampler: one background thread that beats every
// `intervalMs`, snapshotting process vitals (wall/CPU time, RSS) and the
// metrics registry (delta-encoded via obs/metrics_delta.hpp), and handing
// each beat to a caller-supplied emit callback.
//
// The sampler is transport-agnostic — in a supervised worker the callback
// wraps beats into Heartbeat + MetricsDelta frames on the supervisor pipe
// (flow/supervisor.cpp); the in-process batch runner feeds the same beats
// straight into a BatchLedger. Because the sampler thread beats
// independently of the compute threads, a missing beat at the receiver
// means the *process* is wedged, not merely busy — the signal behind
// supervisor stall detection (docs/ROBUSTNESS.md).
//
// stop() joins the thread and then emits one final beat (last = true) from
// the calling thread, so the stream always ends with a delta that brings
// the receiver's fold exactly up to the sender's final counter values, and
// so no emit callback can race a subsequent writer on the same fd.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics_delta.hpp"

namespace mclg::obs {

/// One sampler beat. `metricsDelta` is empty when no metric moved since
/// the previous beat (senders then emit only the heartbeat).
struct TelemetrySample {
  std::uint64_t sequence = 0;
  const char* phase = "";
  double wallSeconds = 0.0;
  double cpuSeconds = 0.0;
  long rssKb = 0;
  std::string metricsDelta;
  bool last = false;  ///< final beat, emitted from stop()
};

struct SamplerConfig {
  int intervalMs = 100;
  /// Refresh point-in-time gauges (e.g. executor queue depth / parked
  /// workers) just before the registry snapshot. May be empty.
  std::function<void()> preSample;
  /// Receives every beat; called on the sampler thread, except the final
  /// beat which stop() emits from its caller. Must not throw.
  std::function<void(const TelemetrySample&)> emit;
};

class MetricsSampler {
 public:
  MetricsSampler() = default;
  ~MetricsSampler() { stop(); }
  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  void start(SamplerConfig config);
  /// Idempotent: joins the thread and emits the final beat (once).
  void stop();
  bool running() const { return running_; }

  /// Coarse run phase shown in heartbeats; must be a string literal.
  void setPhase(const char* phase) {
    phase_.store(phase, std::memory_order_relaxed);
  }

  /// Process CPU time (utime + stime, getrusage).
  static double processCpuSeconds();
  /// Current resident set size in KiB (/proc/self/statm; 0 if unreadable).
  static long processRssKb();

 private:
  void loop();
  void sampleOnce(bool last);

  SamplerConfig config_;
  MetricsDeltaEncoder encoder_;
  std::uint64_t sequence_ = 0;
  std::atomic<const char*> phase_{""};
  std::chrono::steady_clock::time_point startedAt_{};
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopRequested_ = false;
  bool running_ = false;
};

}  // namespace mclg::obs
