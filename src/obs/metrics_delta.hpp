// Delta encoding of the metrics registry for the MetricsDelta telemetry
// frame (flow/worker_protocol.hpp).
//
// A worker's sampler thread (obs/sampler.hpp) snapshots the registry every
// N ms and streams only what changed since the previous beat, so a quiet
// worker costs a few bytes per sample instead of a full snapshot. The
// payload is line-oriented text, one metric per line:
//
//   c <name> <delta>    counter increment since the previous delta
//   g <name> <value>    gauge absolute value (re-sent only when it moved)
//
// Metric names never contain whitespace. Histograms are not streamed —
// their full distribution rides in the worker's final Report frame; the
// supervisor-side fold therefore covers counters and gauges, which is what
// the live batch view (obs/batch_ledger.hpp) displays.
//
// The fold is exact for counters: summing every delta a worker emitted
// (the sampler flushes a final delta at stop()) reproduces the worker's
// final counter values, so a batch-wide accumulator equals the sum of the
// per-design run reports — asserted in tests/test_supervisor.cpp.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace mclg::obs {

/// Stateful encoder: remembers the previously encoded snapshot and renders
/// only the changes. Returns "" when nothing changed (the caller skips the
/// frame and sends only the heartbeat).
class MetricsDeltaEncoder {
 public:
  std::string encode(const MetricsSnapshot& snap);

 private:
  std::map<std::string, long long> counters_;
  std::map<std::string, double> gauges_;
};

/// Running fold of decoded deltas (supervisor side): counters accumulate,
/// gauges keep the last value seen.
struct MetricsAccumulator {
  std::map<std::string, long long> counters;
  std::map<std::string, double> gauges;

  long long counterValue(const std::string& name) const;
};

/// Parse one MetricsDelta payload and fold it into `acc`. Returns false on
/// any malformed line, in which case `acc` is left untouched (the payload
/// is validated in full before anything is applied).
bool applyMetricsDelta(const std::string& payload, MetricsAccumulator* acc);

}  // namespace mclg::obs
