// Umbrella header for the observability subsystem: scoped-span tracing
// (obs/trace.hpp), the metrics registry (obs/metrics.hpp), and the run
// report (obs/run_report.hpp — not included here; it pulls the pipeline
// headers and only report producers need it).
//
// Instrumentation sites include this and pay, when both switches are off,
// exactly one branch per site. See docs/OBSERVABILITY.md for the span and
// counter naming conventions.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
