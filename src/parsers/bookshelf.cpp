#include "parsers/bookshelf.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

namespace mclg {
namespace {

bool setError(ParseError* error, const std::string& file, int line,
              const std::string& what) {
  if (error != nullptr) {
    error->file = file;
    error->line = line;
    error->token.clear();
    error->message = what;
  }
  return false;
}

/// A content line with its 1-based position in the source file.
struct NumberedLine {
  std::string text;
  int number = 0;
};

/// Strip comments (#) and skip the "UCLA <kind> 1.0" header line.
std::vector<NumberedLine> contentLines(const std::string& text) {
  std::vector<NumberedLine> lines;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  int lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    line = line.substr(begin, line.find_last_not_of(" \t\r") - begin + 1);
    if (first && line.rfind("UCLA", 0) == 0) {
      first = false;
      continue;
    }
    first = false;
    lines.push_back({line, lineNo});
  }
  return lines;
}

}  // namespace

BookshelfBundle writeBookshelf(const Design& design) {
  BookshelfBundle bundle;
  // .nodes — dimensions in Bookshelf units: 1 unit = 1 site horizontally;
  // a row is siteWidthFactor... keep x and y in *site units*, with row
  // height = 1/siteWidthFactor sites so geometry stays isotropic.
  const double rowUnits = 1.0 / design.siteWidthFactor;
  int terminals = 0;
  for (const auto& cell : design.cells) {
    if (cell.fixed) ++terminals;
  }
  {
    std::ostringstream out;
    out << "UCLA nodes 1.0\n";
    out << "NumNodes : " << design.numCells() << "\n";
    out << "NumTerminals : " << terminals << "\n";
    for (CellId c = 0; c < design.numCells(); ++c) {
      const auto& type = design.typeOf(c);
      out << "o" << c << " " << type.width << " "
          << type.height * rowUnits;
      if (design.cells[c].fixed) out << " terminal";
      out << "\n";
    }
    bundle.nodes = out.str();
  }
  {
    std::ostringstream out;
    out << "UCLA nets 1.0\n";
    std::size_t numPins = 0;
    for (const auto& net : design.nets) numPins += net.conns.size();
    out << "NumNets : " << design.nets.size() << "\n";
    out << "NumPins : " << numPins << "\n";
    out.precision(4);
    out << std::fixed;
    for (std::size_t n = 0; n < design.nets.size(); ++n) {
      const auto& net = design.nets[n];
      out << "NetDegree : " << net.conns.size() << " n" << n << "\n";
      for (const auto& conn : net.conns) {
        const auto& type = design.typeOf(conn.cell);
        const auto& pin = type.pins[static_cast<std::size_t>(conn.pin)];
        // Bookshelf offsets are from the node center.
        const double ox =
            static_cast<double>(pin.rect.xlo + pin.rect.xhi) /
                (2.0 * Design::kFine) -
            type.width / 2.0;
        const double oy = (static_cast<double>(pin.rect.ylo + pin.rect.yhi) /
                               (2.0 * Design::kFine) -
                           type.height / 2.0) *
                          rowUnits;
        out << "\to" << conn.cell << " B : " << ox << " " << oy << "\n";
      }
    }
    bundle.nets = out.str();
  }
  {
    std::ostringstream out;
    out << "UCLA pl 1.0\n";
    out.precision(6);
    for (CellId c = 0; c < design.numCells(); ++c) {
      const auto& cell = design.cells[c];
      const double px = cell.fixed ? static_cast<double>(cell.x) : cell.gpX;
      const double py =
          (cell.fixed ? static_cast<double>(cell.y) : cell.gpY) * rowUnits;
      out << "o" << c << " " << px << " " << py << " : N";
      if (cell.fixed) out << " /FIXED";
      out << "\n";
    }
    bundle.pl = out.str();
  }
  {
    std::ostringstream out;
    out << "UCLA scl 1.0\n";
    out << "NumRows : " << design.numRows << "\n";
    for (std::int64_t r = 0; r < design.numRows; ++r) {
      out << "CoreRow Horizontal\n";
      out << "  Coordinate : " << static_cast<double>(r) * rowUnits << "\n";
      out << "  Height : " << rowUnits << "\n";
      out << "  Sitewidth : 1\n";
      out << "  Sitespacing : 1\n";
      out << "  Siteorient : N\n";
      out << "  Sitesymmetry : Y\n";
      out << "  SubrowOrigin : 0 NumSites : " << design.numSitesX << "\n";
      out << "End\n";
    }
    bundle.scl = out.str();
  }
  return bundle;
}

std::optional<Design> readBookshelf(const BookshelfBundle& bundle,
                                    std::string* error) {
  ParseError parseError;
  auto design = readBookshelf(bundle, &parseError);
  if (!design && error != nullptr) *error = parseError.str();
  return design;
}

std::optional<Design> readBookshelf(const BookshelfBundle& bundle,
                                    ParseError* error) {
  Design design;
  design.name = "bookshelf";

  // --- .scl: uniform row geometry.
  double rowHeight = 0.0, siteWidth = 1.0, maxRowEnd = 0.0;
  double minCoord = 0.0;
  int numRows = 0;
  {
    for (const auto& line : contentLines(bundle.scl)) {
      std::istringstream ls(line.text);
      std::string key;
      ls >> key;
      if (key == "Height") {
        std::string colon;
        double v;
        if (ls >> colon >> v) {
          if (rowHeight != 0.0 && std::abs(v - rowHeight) > 1e-9) {
            setError(error, "<scl>", line.number,
                     "non-uniform row heights are not supported");
            return std::nullopt;
          }
          rowHeight = v;
        }
      } else if (key == "Sitewidth") {
        std::string colon;
        ls >> colon >> siteWidth;
      } else if (key == "Coordinate") {
        std::string colon;
        double v;
        if (ls >> colon >> v) minCoord = std::min(minCoord, v);
      } else if (key == "SubrowOrigin") {
        std::string colon, numSitesKey, colon2;
        double origin = 0, sites = 0;
        if (ls >> colon >> origin >> numSitesKey >> colon2 >> sites) {
          maxRowEnd = std::max(maxRowEnd, origin + sites * siteWidth);
        }
      } else if (key == "CoreRow") {
        ++numRows;
      }
    }
    if (numRows == 0 || rowHeight <= 0.0 || siteWidth <= 0.0) {
      setError(error, "<scl>", 0, "missing or malformed .scl");
      return std::nullopt;
    }
  }
  design.numRows = numRows;
  design.numSitesX =
      static_cast<std::int64_t>(std::llround(maxRowEnd / siteWidth));
  design.siteWidthFactor = siteWidth / rowHeight;

  // --- .nodes: footprints (deduped into types).
  std::unordered_map<std::string, CellId> cellByName;
  std::map<std::pair<int, int>, TypeId> typeBySize;
  for (const auto& line : contentLines(bundle.nodes)) {
    std::istringstream ls(line.text);
    std::string name;
    double w = 0, h = 0;
    if (!(ls >> name)) continue;
    if (name == "NumNodes" || name == "NumTerminals") continue;
    if (!(ls >> w >> h)) {
      setError(error, "<nodes>", line.number, "bad .nodes line: " + line.text);
      return std::nullopt;
    }
    std::string flag;
    ls >> flag;
    const int widthSites =
        std::max(1, static_cast<int>(std::llround(w / siteWidth)));
    const int heightRows =
        std::max(1, static_cast<int>(std::llround(h / rowHeight)));
    auto [it, inserted] =
        typeBySize.try_emplace({widthSites, heightRows}, design.numTypes());
    if (inserted) {
      CellType type;
      type.name = "BK" + std::to_string(widthSites) + "x" +
                  std::to_string(heightRows);
      type.width = widthSites;
      type.height = heightRows;
      type.parity = heightRows % 2 == 0 ? 0 : -1;
      // One center point pin so nets have geometry.
      type.pins.push_back(
          {1,
           {widthSites * Design::kFine / 2, heightRows * Design::kFine / 2,
            widthSites * Design::kFine / 2 + 1,
            heightRows * Design::kFine / 2 + 1}});
      design.types.push_back(std::move(type));
    }
    Cell cell;
    cell.type = it->second;
    cell.fixed = flag == "terminal";
    cellByName[name] = design.numCells();
    design.cells.push_back(cell);
  }

  // --- .pl: positions.
  for (const auto& line : contentLines(bundle.pl)) {
    std::istringstream ls(line.text);
    std::string name;
    double px = 0, py = 0;
    if (!(ls >> name >> px >> py)) continue;
    const auto it = cellByName.find(name);
    if (it == cellByName.end()) {
      setError(error, "<pl>", line.number,
               ".pl references unknown node " + name);
      return std::nullopt;
    }
    auto& cell = design.cells[it->second];
    cell.gpX = px / siteWidth;
    cell.gpY = (py - minCoord) / rowHeight;
    if (cell.fixed || line.text.find("/FIXED") != std::string::npos) {
      cell.fixed = true;
      cell.placed = true;
      cell.x = static_cast<std::int64_t>(std::llround(cell.gpX));
      cell.y = static_cast<std::int64_t>(std::llround(cell.gpY));
    }
  }

  // --- .nets.
  {
    Net current;
    int remaining = 0;
    for (const auto& line : contentLines(bundle.nets)) {
      std::istringstream ls(line.text);
      std::string first;
      ls >> first;
      if (first == "NumNets" || first == "NumPins") continue;
      if (first == "NetDegree") {
        if (current.conns.size() >= 2) design.nets.push_back(current);
        current = Net{};
        std::string colon;
        ls >> colon >> remaining;
        continue;
      }
      const auto it = cellByName.find(first);
      if (it == cellByName.end()) continue;  // pad/pin connections skipped
      current.conns.push_back({it->second, 0});
    }
    if (current.conns.size() >= 2) design.nets.push_back(current);
  }

  std::string what;
  if (!design.check(&what)) {
    setError(error, "<bookshelf>", 0, "inconsistent design: " + what);
    return std::nullopt;
  }
  return design;
}

bool saveBookshelf(const Design& design, const std::string& basePath) {
  const BookshelfBundle bundle = writeBookshelf(design);
  const std::string base =
      basePath.size() > 4 && basePath.substr(basePath.size() - 4) == ".aux"
          ? basePath.substr(0, basePath.size() - 4)
          : basePath;
  {
    std::ofstream aux(base + ".aux");
    if (!aux) return false;
    const auto slash = base.find_last_of('/');
    const std::string stem =
        slash == std::string::npos ? base : base.substr(slash + 1);
    aux << "RowBasedPlacement : " << stem << ".nodes " << stem << ".nets "
        << stem << ".pl " << stem << ".scl\n";
  }
  const std::pair<const char*, const std::string*> files[] = {
      {".nodes", &bundle.nodes},
      {".nets", &bundle.nets},
      {".pl", &bundle.pl},
      {".scl", &bundle.scl},
  };
  for (const auto& [ext, content] : files) {
    std::ofstream out(base + ext);
    if (!out) return false;
    out << *content;
  }
  return true;
}

std::optional<Design> loadBookshelf(const std::string& auxPath,
                                    std::string* error) {
  ParseError parseError;
  auto design = loadBookshelf(auxPath, &parseError);
  if (!design && error != nullptr) *error = parseError.str();
  return design;
}

std::optional<Design> loadBookshelf(const std::string& auxPath,
                                    ParseError* error) {
  std::ifstream aux(auxPath);
  if (!aux) {
    setError(error, auxPath, 0, "cannot open file");
    return std::nullopt;
  }
  std::string line;
  std::getline(aux, line);
  std::istringstream ls(line);
  std::string tag, colon;
  ls >> tag >> colon;
  const auto slash = auxPath.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "" : auxPath.substr(0, slash + 1);
  BookshelfBundle bundle;
  std::string fileName;
  while (ls >> fileName) {
    std::ifstream in(dir + fileName);
    if (!in) {
      setError(error, dir + fileName, 0, "cannot open file");
      return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (fileName.find(".nodes") != std::string::npos) {
      bundle.nodes = buffer.str();
    } else if (fileName.find(".nets") != std::string::npos) {
      bundle.nets = buffer.str();
    } else if (fileName.find(".pl") != std::string::npos) {
      bundle.pl = buffer.str();
    } else if (fileName.find(".scl") != std::string::npos) {
      bundle.scl = buffer.str();
    }
  }
  return readBookshelf(bundle, error);
}

}  // namespace mclg
