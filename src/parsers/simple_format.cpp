#include "parsers/simple_format.hpp"

#include <fstream>
#include <sstream>

namespace mclg {
namespace {

void fail(ParseError* error, int line, const std::string& what,
          const std::string& token = std::string()) {
  if (error != nullptr) {
    error->file = "<mclg>";
    error->line = line;
    error->token = token;
    error->message = what;
  }
}

}  // namespace

std::string writeSimpleFormat(const Design& design) {
  std::ostringstream out;
  out.precision(17);  // max_digits10: doubles round-trip losslessly
  out << "MCLG 1\n";
  out << "DESIGN " << design.name << "\n";
  out << "CORE " << design.numSitesX << " " << design.numRows << " "
      << design.siteWidthFactor << "\n";
  out << "EDGECLASSES " << design.numEdgeClasses << "\n";
  for (int a = 0; a < design.numEdgeClasses; ++a) {
    for (int b = 0; b < design.numEdgeClasses; ++b) {
      const int s = design.edgeSpacing(a, b);
      if (s != 0) out << "EDGESPACING " << a << " " << b << " " << s << "\n";
    }
  }
  for (const auto& type : design.types) {
    out << "TYPE " << type.name << " " << type.width << " " << type.height
        << " " << type.parity << " " << type.leftEdge << " " << type.rightEdge
        << " " << type.pins.size() << "\n";
    for (const auto& pin : type.pins) {
      out << "PIN " << pin.layer << " " << pin.rect.xlo << " " << pin.rect.ylo
          << " " << pin.rect.xhi << " " << pin.rect.yhi << "\n";
    }
  }
  for (std::size_t f = 1; f < design.fences.size(); ++f) {
    const auto& fence = design.fences[f];
    out << "FENCE " << fence.name << " " << fence.rects.size() << "\n";
    for (const auto& rect : fence.rects) {
      out << "RECT " << rect.xlo << " " << rect.ylo << " " << rect.xhi << " "
          << rect.yhi << "\n";
    }
  }
  for (const auto& rail : design.hRails) {
    out << "HRAIL " << rail.layer << " " << rail.yFineLo << " " << rail.yFineHi
        << "\n";
  }
  for (const auto& rail : design.vRails) {
    out << "VRAIL " << rail.layer << " " << rail.xFineLo << " " << rail.xFineHi
        << "\n";
  }
  for (const auto& pin : design.ioPins) {
    out << "IOPIN " << pin.layer << " " << pin.rect.xlo << " " << pin.rect.ylo
        << " " << pin.rect.xhi << " " << pin.rect.yhi << "\n";
  }
  for (const auto& cell : design.cells) {
    out << "CELL " << cell.type << " " << cell.gpX << " " << cell.gpY << " "
        << cell.fence << " " << (cell.fixed ? 1 : 0) << " "
        << (cell.placed ? 1 : 0) << " " << cell.x << " " << cell.y << "\n";
  }
  for (const auto& net : design.nets) {
    out << "NET " << net.conns.size();
    for (const auto& conn : net.conns) {
      out << " " << conn.cell << " " << conn.pin;
    }
    out << "\n";
  }
  out << "END\n";
  return out.str();
}

std::optional<Design> readSimpleFormat(const std::string& text,
                                       std::string* error) {
  ParseError parseError;
  auto design = readSimpleFormat(text, &parseError);
  if (!design && error != nullptr) *error = parseError.str();
  return design;
}

std::optional<Design> readSimpleFormat(const std::string& text,
                                       ParseError* error) {
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  Design design;
  bool sawHeader = false;
  bool sawEnd = false;

  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank

    if (key == "MCLG") {
      int version = 0;
      if (!(ls >> version) || version != 1) {
        fail(error, lineNo, "unsupported version");
        return std::nullopt;
      }
      sawHeader = true;
    } else if (!sawHeader) {
      fail(error, lineNo, "missing MCLG header");
      return std::nullopt;
    } else if (key == "DESIGN") {
      ls >> design.name;
    } else if (key == "CORE") {
      if (!(ls >> design.numSitesX >> design.numRows >>
            design.siteWidthFactor)) {
        fail(error, lineNo, "bad CORE");
        return std::nullopt;
      }
    } else if (key == "EDGECLASSES") {
      if (!(ls >> design.numEdgeClasses) || design.numEdgeClasses < 1) {
        fail(error, lineNo, "bad EDGECLASSES");
        return std::nullopt;
      }
      design.edgeSpacingTable.assign(
          static_cast<std::size_t>(design.numEdgeClasses) *
              design.numEdgeClasses,
          0);
    } else if (key == "EDGESPACING") {
      int a = 0, b = 0, s = 0;
      if (!(ls >> a >> b >> s) || a < 0 || b < 0 ||
          a >= design.numEdgeClasses || b >= design.numEdgeClasses) {
        fail(error, lineNo, "bad EDGESPACING");
        return std::nullopt;
      }
      design.edgeSpacingTable[static_cast<std::size_t>(a) *
                                  design.numEdgeClasses +
                              b] = s;
    } else if (key == "TYPE") {
      CellType type;
      std::size_t numPins = 0;
      if (!(ls >> type.name >> type.width >> type.height >> type.parity >>
            type.leftEdge >> type.rightEdge >> numPins)) {
        fail(error, lineNo, "bad TYPE");
        return std::nullopt;
      }
      for (std::size_t p = 0; p < numPins; ++p) {
        if (!std::getline(in, line)) {
          fail(error, lineNo, "truncated PIN list");
          return std::nullopt;
        }
        ++lineNo;
        std::istringstream ps(line);
        std::string pkey;
        PinShape pin;
        if (!(ps >> pkey >> pin.layer >> pin.rect.xlo >> pin.rect.ylo >>
              pin.rect.xhi >> pin.rect.yhi) ||
            pkey != "PIN") {
          fail(error, lineNo, "bad PIN");
          return std::nullopt;
        }
        type.pins.push_back(pin);
      }
      design.types.push_back(std::move(type));
    } else if (key == "FENCE") {
      Fence fence;
      std::size_t numRects = 0;
      if (!(ls >> fence.name >> numRects)) {
        fail(error, lineNo, "bad FENCE");
        return std::nullopt;
      }
      for (std::size_t r = 0; r < numRects; ++r) {
        if (!std::getline(in, line)) {
          fail(error, lineNo, "truncated RECT list");
          return std::nullopt;
        }
        ++lineNo;
        std::istringstream rs(line);
        std::string rkey;
        Rect rect;
        if (!(rs >> rkey >> rect.xlo >> rect.ylo >> rect.xhi >> rect.yhi) ||
            rkey != "RECT") {
          fail(error, lineNo, "bad RECT");
          return std::nullopt;
        }
        fence.rects.push_back(rect);
      }
      design.fences.push_back(std::move(fence));
    } else if (key == "HRAIL") {
      HRail rail;
      if (!(ls >> rail.layer >> rail.yFineLo >> rail.yFineHi)) {
        fail(error, lineNo, "bad HRAIL");
        return std::nullopt;
      }
      design.hRails.push_back(rail);
    } else if (key == "VRAIL") {
      VRail rail;
      if (!(ls >> rail.layer >> rail.xFineLo >> rail.xFineHi)) {
        fail(error, lineNo, "bad VRAIL");
        return std::nullopt;
      }
      design.vRails.push_back(rail);
    } else if (key == "IOPIN") {
      IoPin pin;
      if (!(ls >> pin.layer >> pin.rect.xlo >> pin.rect.ylo >> pin.rect.xhi >>
            pin.rect.yhi)) {
        fail(error, lineNo, "bad IOPIN");
        return std::nullopt;
      }
      design.ioPins.push_back(pin);
    } else if (key == "CELL") {
      Cell cell;
      int fixed = 0, placed = 0;
      if (!(ls >> cell.type >> cell.gpX >> cell.gpY >> cell.fence >> fixed >>
            placed >> cell.x >> cell.y)) {
        fail(error, lineNo, "bad CELL");
        return std::nullopt;
      }
      cell.fixed = fixed != 0;
      cell.placed = placed != 0;
      if (cell.type < 0 || cell.type >= design.numTypes()) {
        fail(error, lineNo, "CELL type out of range");
        return std::nullopt;
      }
      design.cells.push_back(cell);
    } else if (key == "NET") {
      std::size_t numConns = 0;
      if (!(ls >> numConns)) {
        fail(error, lineNo, "bad NET");
        return std::nullopt;
      }
      Net net;
      for (std::size_t i = 0; i < numConns; ++i) {
        Net::Conn conn;
        if (!(ls >> conn.cell >> conn.pin)) {
          fail(error, lineNo, "truncated NET");
          return std::nullopt;
        }
        net.conns.push_back(conn);
      }
      design.nets.push_back(std::move(net));
    } else if (key == "END") {
      sawEnd = true;
      break;
    } else {
      fail(error, lineNo, "unknown keyword", key);
      return std::nullopt;
    }
  }
  if (!sawEnd) {
    fail(error, lineNo, "missing END");
    return std::nullopt;
  }
  std::string what;
  if (!design.check(&what)) {
    fail(error, lineNo, "inconsistent design: " + what);
    return std::nullopt;
  }
  return design;
}

bool saveDesign(const Design& design, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << writeSimpleFormat(design);
  return static_cast<bool>(out);
}

std::optional<Design> loadDesign(const std::string& path, std::string* error) {
  ParseError parseError;
  auto design = loadDesign(path, &parseError);
  if (!design && error != nullptr) *error = parseError.str();
  return design;
}

std::optional<Design> loadDesign(const std::string& path, ParseError* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      error->file = path;
      error->line = 0;
      error->message = "cannot open file";
    }
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto design = readSimpleFormat(buffer.str(), error);
  if (!design && error != nullptr) error->file = path;
  return design;
}

}  // namespace mclg
