// Bookshelf reader/writer (UCLA .aux/.nodes/.nets/.pl/.scl) — the classic
// academic placement interchange used by the ISPD placement-contest
// lineage and by the original Abacus paper's benchmarks.
//
// Mapping to/from our Design:
//  - every distinct (width, height) node footprint becomes a cell type
//    ("BK<w>x<h>"); heights must be whole row multiples;
//  - terminals become fixed cells; movable nodes' .pl coordinates are the
//    GP input;
//  - net pin offsets are carried as point pin shapes (one per connection
//    footprint) so HPWL is comparable;
//  - row geometry comes from .scl (uniform height and site width required).
//
// Fences, rails and edge-spacing rules have no Bookshelf encoding and are
// dropped on write / default-initialized on read (documented limitation:
// Bookshelf predates those constraints).
#pragma once

#include <optional>
#include <string>

#include "db/design.hpp"
#include "parsers/parse_error.hpp"

namespace mclg {

/// The five Bookshelf files as in-memory strings (keyed as in the .aux).
struct BookshelfBundle {
  std::string nodes;
  std::string nets;
  std::string pl;
  std::string scl;
};

/// Serialize a design.
BookshelfBundle writeBookshelf(const Design& design);

/// Parse a bundle; nullopt + *error on malformed input.
std::optional<Design> readBookshelf(const BookshelfBundle& bundle,
                                    std::string* error = nullptr);
std::optional<Design> readBookshelf(const BookshelfBundle& bundle,
                                    ParseError* error);

/// File helpers: `base.aux` plus the four sibling files.
bool saveBookshelf(const Design& design, const std::string& basePath);
std::optional<Design> loadBookshelf(const std::string& auxPath,
                                    std::string* error = nullptr);
std::optional<Design> loadBookshelf(const std::string& auxPath,
                                    ParseError* error);

}  // namespace mclg
