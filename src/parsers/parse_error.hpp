// Structured parse diagnostics shared by every reader (.mclg, LEF-lite,
// DEF-lite, Bookshelf).
//
// Malformed input must never abort or silently misread: readers return
// nullopt and fill a ParseError locating the problem — source file (or
// format name when parsing from memory), 1-based line, the offending token
// when known, and a message. The legacy std::string* overloads remain and
// carry ParseError::str().
#pragma once

#include <string>

namespace mclg {

struct ParseError {
  std::string file;     // path, or format name for in-memory parses
  int line = 0;         // 1-based; 0 when unknown
  std::string token;    // offending token, when known
  std::string message;  // human-readable description

  /// "file:line: message (near 'token')" with the optional parts elided.
  std::string str() const {
    std::string out = file.empty() ? std::string() : file + ":";
    if (line > 0) out += std::to_string(line) + ":";
    if (!out.empty()) out += " ";
    out += message;
    if (!token.empty()) out += " (near '" + token + "')";
    return out;
  }
};

}  // namespace mclg
