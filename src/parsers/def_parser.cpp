#include "parsers/def_parser.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "parsers/parse_error.hpp"
#include "parsers/token_stream.hpp"

namespace mclg {
namespace {

using parse::layerNumber;
using parse::TokenStream;

struct DefError {
  ParseError* error;
  const TokenStream* ts;
  bool set(const std::string& what) {
    if (error != nullptr) {
      error->file = "<def>";
      error->line = ts->line();
      error->token = ts->peek();
      error->message = what;
    }
    return false;
  }
};

/// Parse "( x y )" into the two numbers.
bool parsePoint(TokenStream& ts, double* x, double* y) {
  return ts.accept("(") && ts.number(x) && ts.number(y) && ts.accept(")");
}

}  // namespace

std::optional<Design> readDef(const std::string& text, const LefLibrary& lib,
                              std::string* error) {
  ParseError parseError;
  auto design = readDef(text, lib, &parseError);
  if (!design && error != nullptr) *error = parseError.str();
  return design;
}

std::optional<Design> readDef(const std::string& text, const LefLibrary& lib,
                              ParseError* error) {
  TokenStream ts(text);
  DefError err{error, &ts};
  Design design;
  design.siteWidthFactor = lib.siteWidthFactor();
  design.types = lib.types;
  design.numEdgeClasses = lib.numEdgeClasses;
  design.edgeSpacingTable = lib.edgeSpacingTable;
  // Guard against libraries whose macros reference edge classes the
  // (optional) properties did not declare.
  for (const auto& type : design.types) {
    design.numEdgeClasses = std::max(
        {design.numEdgeClasses, type.leftEdge + 1, type.rightEdge + 1});
  }
  if (static_cast<int>(design.edgeSpacingTable.size()) !=
      design.numEdgeClasses * design.numEdgeClasses) {
    design.edgeSpacingTable.assign(
        static_cast<std::size_t>(design.numEdgeClasses) *
            design.numEdgeClasses,
        0);
  }

  double dbu = 2000.0;
  const double siteW = lib.siteWidthMicron;
  const double rowH = lib.rowHeightMicron;
  auto xToSites = [&](double v) { return v / (siteW * dbu); };
  auto yToRows = [&](double v) { return v / (rowH * dbu); };
  auto xToFine = [&](double v) {
    return static_cast<std::int64_t>(std::llround(xToSites(v) * Design::kFine));
  };
  auto yToFine = [&](double v) {
    return static_cast<std::int64_t>(std::llround(yToRows(v) * Design::kFine));
  };

  std::unordered_map<std::string, CellId> cellByName;
  std::unordered_map<std::string, FenceId> fenceByName;

  while (!ts.done()) {
    const std::string tok = ts.next();
    if (tok == "VERSION" || tok == "DIVIDERCHAR" || tok == "BUSBITCHARS") {
      ts.skipStatement();
    } else if (tok == "DESIGN") {
      design.name = ts.next();
      ts.skipStatement();
    } else if (tok == "UNITS") {
      if (!ts.accept("DISTANCE") || !ts.accept("MICRONS") || !ts.number(&dbu)) {
        err.set("bad UNITS");
        return std::nullopt;
      }
      ts.skipStatement();
    } else if (tok == "DIEAREA") {
      double x1 = 0, y1 = 0, x2 = 0, y2 = 0;
      if (!parsePoint(ts, &x1, &y1) || !parsePoint(ts, &x2, &y2)) {
        err.set("bad DIEAREA");
        return std::nullopt;
      }
      ts.skipStatement();
      design.numSitesX =
          static_cast<std::int64_t>(std::llround(xToSites(x2 - x1)));
      design.numRows =
          static_cast<std::int64_t>(std::llround(yToRows(y2 - y1)));
    } else if (tok == "ROW") {
      ts.skipStatement();  // row grid is implied by DIEAREA in this subset
    } else if (tok == "REGIONS") {
      ts.skipStatement();  // count
      while (!ts.done() && ts.accept("-")) {
        Fence fence;
        fence.name = ts.next();
        double x1, y1, x2, y2;
        while (parsePoint(ts, &x1, &y1) && parsePoint(ts, &x2, &y2)) {
          fence.rects.push_back(
              {static_cast<std::int64_t>(std::llround(xToSites(x1))),
               static_cast<std::int64_t>(std::llround(yToRows(y1))),
               static_cast<std::int64_t>(std::llround(xToSites(x2))),
               static_cast<std::int64_t>(std::llround(yToRows(y2)))});
        }
        ts.skipStatement();  // + TYPE FENCE ;
        fenceByName[fence.name] = design.numFences();
        design.fences.push_back(std::move(fence));
      }
      if (!ts.accept("END") || !ts.accept("REGIONS")) {
        err.set("bad REGIONS end");
        return std::nullopt;
      }
    } else if (tok == "COMPONENTS") {
      ts.skipStatement();  // count
      while (!ts.done() && ts.accept("-")) {
        const std::string name = ts.next();
        const std::string macro = ts.next();
        const int typeId = lib.findType(macro);
        if (typeId < 0) {
          err.set("unknown macro " + macro);
          return std::nullopt;
        }
        Cell cell;
        cell.type = typeId;
        while (!ts.done() && ts.accept("+")) {
          const std::string attr = ts.next();
          if (attr == "PLACED" || attr == "FIXED") {
            double x = 0, y = 0;
            if (!parsePoint(ts, &x, &y)) {
              err.set("bad component placement");
              return std::nullopt;
            }
            ts.next();  // orientation
            cell.gpX = xToSites(x);
            cell.gpY = yToRows(y);
            if (attr == "FIXED") {
              cell.fixed = true;
              cell.placed = true;
              cell.x = static_cast<std::int64_t>(std::llround(cell.gpX));
              cell.y = static_cast<std::int64_t>(std::llround(cell.gpY));
            }
          } else if (attr == "UNPLACED") {
            // GP-less component: leave at origin.
          }
        }
        if (!ts.accept(";")) {
          err.set("component missing ';'");
          return std::nullopt;
        }
        cellByName[name] = design.numCells();
        design.cells.push_back(cell);
      }
      if (!ts.accept("END") || !ts.accept("COMPONENTS")) {
        err.set("bad COMPONENTS end");
        return std::nullopt;
      }
    } else if (tok == "GROUPS") {
      ts.skipStatement();  // count
      while (!ts.done() && ts.accept("-")) {
        ts.next();  // group name
        std::vector<CellId> members;
        while (!ts.done() && ts.peek() != "+" && ts.peek() != ";") {
          const auto it = cellByName.find(ts.next());
          if (it != cellByName.end()) members.push_back(it->second);
        }
        FenceId fence = kDefaultFence;
        if (ts.accept("+") && ts.accept("REGION")) {
          const auto it = fenceByName.find(ts.next());
          if (it != fenceByName.end()) fence = it->second;
        }
        ts.skipStatement();
        for (const CellId c : members) design.cells[c].fence = fence;
      }
      if (!ts.accept("END") || !ts.accept("GROUPS")) {
        err.set("bad GROUPS end");
        return std::nullopt;
      }
    } else if (tok == "PINS") {
      ts.skipStatement();  // count
      while (!ts.done() && ts.accept("-")) {
        ts.next();  // pin name
        int layer = 1;
        double dx1 = 0, dy1 = 0, dx2 = 0, dy2 = 0;
        double px = 0, py = 0;
        bool placed = false;
        while (!ts.done() && ts.accept("+")) {
          const std::string attr = ts.next();
          if (attr == "LAYER") {
            layer = layerNumber(ts.next());
            if (!parsePoint(ts, &dx1, &dy1) || !parsePoint(ts, &dx2, &dy2)) {
              err.set("bad PIN LAYER geometry");
              return std::nullopt;
            }
          } else if (attr == "PLACED" || attr == "FIXED") {
            if (!parsePoint(ts, &px, &py)) {
              err.set("bad PIN placement");
              return std::nullopt;
            }
            ts.next();  // orientation
            placed = true;
          } else if (attr == "NET" || attr == "DIRECTION" || attr == "USE") {
            ts.next();
          }
        }
        if (!ts.accept(";")) {
          err.set("pin missing ';'");
          return std::nullopt;
        }
        if (placed) {
          IoPin pin;
          pin.layer = layer;
          pin.rect = {xToFine(px + dx1), yToFine(py + dy1), xToFine(px + dx2),
                      yToFine(py + dy2)};
          design.ioPins.push_back(pin);
        }
      }
      if (!ts.accept("END") || !ts.accept("PINS")) {
        err.set("bad PINS end");
        return std::nullopt;
      }
    } else if (tok == "NETS") {
      ts.skipStatement();  // count
      while (!ts.done() && ts.accept("-")) {
        ts.next();  // net name
        Net net;
        double ignored = 0;
        (void)ignored;
        while (ts.accept("(")) {
          const std::string comp = ts.next();
          const std::string pinName = ts.next();
          if (!ts.accept(")")) {
            err.set("bad net pin");
            return std::nullopt;
          }
          const auto it = cellByName.find(comp);
          if (it == cellByName.end()) continue;  // PIN connections ignored
          int pinIndex = 0;
          if (pinName.size() > 1 && (pinName[0] == 'P' || pinName[0] == 'p')) {
            pinIndex = std::atoi(pinName.c_str() + 1);
          }
          const int numPins = static_cast<int>(
              design.typeOf(it->second).pins.size());
          if (numPins == 0) continue;
          net.conns.push_back({it->second, std::clamp(pinIndex, 0, numPins - 1)});
        }
        ts.skipStatement();
        if (net.conns.size() >= 2) design.nets.push_back(std::move(net));
      }
      if (!ts.accept("END") || !ts.accept("NETS")) {
        err.set("bad NETS end");
        return std::nullopt;
      }
    } else if (tok == "END" && !ts.done() && ts.peek() == "DESIGN") {
      break;
    }
  }

  if (design.numSitesX <= 0 || design.numRows <= 0) {
    err.set("DEF has no DIEAREA");
    return std::nullopt;
  }
  std::sort(design.ioPins.begin(), design.ioPins.end(),
            [](const IoPin& a, const IoPin& b) { return a.rect.xlo < b.rect.xlo; });
  std::string what;
  if (!design.check(&what)) {
    err.set("inconsistent design: " + what);
    return std::nullopt;
  }
  return design;
}

std::string writeDef(const Design& design, double siteWidthMicron) {
  const double rowHeightMicron = siteWidthMicron / design.siteWidthFactor;
  const double dbu = 2000.0;
  const double sx = siteWidthMicron * dbu;   // dbu per site
  const double sy = rowHeightMicron * dbu;   // dbu per row
  const double fx = sx / Design::kFine;
  const double fy = sy / Design::kFine;
  auto dx = [&](double sites) { return std::llround(sites * sx); };
  auto dy = [&](double rows) { return std::llround(rows * sy); };

  std::ostringstream out;
  out << "VERSION 5.8 ;\n";
  out << "DESIGN " << design.name << " ;\n";
  out << "UNITS DISTANCE MICRONS " << static_cast<long long>(dbu) << " ;\n";
  out << "DIEAREA ( 0 0 ) ( " << dx(static_cast<double>(design.numSitesX))
      << " " << dy(static_cast<double>(design.numRows)) << " ) ;\n";
  for (std::int64_t r = 0; r < design.numRows; ++r) {
    out << "ROW row_" << r << " core 0 " << dy(static_cast<double>(r))
        << " N DO " << design.numSitesX << " BY 1 STEP "
        << static_cast<long long>(sx) << " 0 ;\n";
  }

  if (design.numFences() > 1) {
    out << "REGIONS " << design.numFences() - 1 << " ;\n";
    for (int f = 1; f < design.numFences(); ++f) {
      const auto& fence = design.fences[static_cast<std::size_t>(f)];
      out << " - " << fence.name;
      for (const auto& rect : fence.rects) {
        out << " ( " << dx(static_cast<double>(rect.xlo)) << " "
            << dy(static_cast<double>(rect.ylo)) << " ) ( "
            << dx(static_cast<double>(rect.xhi)) << " "
            << dy(static_cast<double>(rect.yhi)) << " )";
      }
      out << " + TYPE FENCE ;\n";
    }
    out << "END REGIONS\n";
  }

  out << "COMPONENTS " << design.numCells() << " ;\n";
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    out << " - c" << c << " " << design.typeOf(c).name;
    if (cell.fixed) {
      out << " + FIXED ( " << dx(static_cast<double>(cell.x)) << " "
          << dy(static_cast<double>(cell.y)) << " ) N";
    } else {
      out << " + PLACED ( " << dx(cell.gpX) << " " << dy(cell.gpY) << " ) N";
    }
    out << " ;\n";
  }
  out << "END COMPONENTS\n";

  // Fence membership via GROUPS.
  std::vector<std::vector<CellId>> members(
      static_cast<std::size_t>(design.numFences()));
  for (CellId c = 0; c < design.numCells(); ++c) {
    if (!design.cells[c].fixed && design.cells[c].fence != kDefaultFence) {
      members[static_cast<std::size_t>(design.cells[c].fence)].push_back(c);
    }
  }
  int numGroups = 0;
  for (int f = 1; f < design.numFences(); ++f) {
    if (!members[static_cast<std::size_t>(f)].empty()) ++numGroups;
  }
  if (numGroups > 0) {
    out << "GROUPS " << numGroups << " ;\n";
    for (int f = 1; f < design.numFences(); ++f) {
      if (members[static_cast<std::size_t>(f)].empty()) continue;
      out << " - g_" << design.fences[static_cast<std::size_t>(f)].name;
      for (const CellId c : members[static_cast<std::size_t>(f)]) {
        out << " c" << c;
      }
      out << " + REGION " << design.fences[static_cast<std::size_t>(f)].name
          << " ;\n";
    }
    out << "END GROUPS\n";
  }

  if (!design.ioPins.empty()) {
    out << "PINS " << design.ioPins.size() << " ;\n";
    for (std::size_t i = 0; i < design.ioPins.size(); ++i) {
      const auto& pin = design.ioPins[i];
      out << " - io" << i << " + NET io" << i << " + LAYER metal" << pin.layer
          << " ( 0 0 ) ( "
          << std::llround(static_cast<double>(pin.rect.width()) * fx) << " "
          << std::llround(static_cast<double>(pin.rect.height()) * fy)
          << " ) + PLACED ( "
          << std::llround(static_cast<double>(pin.rect.xlo) * fx) << " "
          << std::llround(static_cast<double>(pin.rect.ylo) * fy)
          << " ) N ;\n";
    }
    out << "END PINS\n";
  }

  if (!design.nets.empty()) {
    out << "NETS " << design.nets.size() << " ;\n";
    for (std::size_t n = 0; n < design.nets.size(); ++n) {
      out << " - n" << n;
      for (const auto& conn : design.nets[n].conns) {
        out << " ( c" << conn.cell << " P" << conn.pin << " )";
      }
      out << " ;\n";
    }
    out << "END NETS\n";
  }
  out << "END DESIGN\n";
  return out.str();
}

}  // namespace mclg
