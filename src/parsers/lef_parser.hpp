// LEF-lite reader/writer.
//
// Supports the subset of LEF 5.8 a legalizer needs (and that our writer
// emits): UNITS, one SITE definition, and MACRO blocks with CLASS, SIZE,
// and PIN/PORT/LAYER/RECT geometry. Two PROPERTY extensions carry what
// plain LEF cannot: `mclgParity <0|1>` (P/G bottom-row parity of
// even-height macros) and `mclgEdges <left> <right>` (edge-spacing
// classes). Geometry is converted to the library's site/row/fine units.
//
// Not supported (documented limitation, not needed by the flow):
// OBS blocks, non-rect port geometry, multiple SITEs, VIA/LAYER sections.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "db/design.hpp"
#include "parsers/parse_error.hpp"

namespace mclg {

struct LefLibrary {
  double siteWidthMicron = 0.2;
  double rowHeightMicron = 0.4;
  std::vector<CellType> types;
  // Edge-spacing rules, carried via library-level PROPERTY extensions
  // (plain LEF 5.8 has no portable encoding for contest edge types).
  int numEdgeClasses = 1;
  std::vector<int> edgeSpacingTable;  // flattened, may be empty

  /// site width / row height (Design::siteWidthFactor).
  double siteWidthFactor() const { return siteWidthMicron / rowHeightMicron; }
  int findType(const std::string& name) const;
};

std::optional<LefLibrary> readLef(const std::string& text,
                                  std::string* error = nullptr);

/// Structured-diagnostic overload: on failure fills *error with the source
/// line and offending token.
std::optional<LefLibrary> readLef(const std::string& text, ParseError* error);

/// Emit the library of `design` as LEF-lite (round-trips through readLef).
std::string writeLef(const Design& design, double siteWidthMicron = 0.2);

}  // namespace mclg
