// Native .mclg text format: a compact, lossless serialization of Design
// (cell library, cells with GP and legal positions, fences, rails, IO pins,
// nets, edge-spacing table). Used for test fixtures and for interchange
// when LEF/DEF is overkill.
//
// Grammar (line oriented, '#' comments):
//   MCLG 1
//   DESIGN <name>
//   CORE <numSitesX> <numRows> <siteWidthFactor>
//   EDGECLASSES <n>
//   EDGESPACING <a> <b> <sites>          (only non-zero entries)
//   TYPE <name> <width> <height> <parity> <leftEdge> <rightEdge> <numPins>
//   PIN <layer> <xlo> <ylo> <xhi> <yhi>  (numPins lines, fine units)
//   FENCE <name> <numRects>
//   RECT <xlo> <ylo> <xhi> <yhi>         (site x row units)
//   HRAIL <layer> <yFineLo> <yFineHi>
//   VRAIL <layer> <xFineLo> <xFineHi>
//   IOPIN <layer> <xlo> <ylo> <xhi> <yhi>
//   CELL <type> <gpX> <gpY> <fence> <fixed> <placed> <x> <y>
//   NET <numConns> (<cell> <pin>)*
//   END
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "db/design.hpp"
#include "parsers/parse_error.hpp"

namespace mclg {

/// Serialize a design. Never fails (pure formatting).
std::string writeSimpleFormat(const Design& design);

/// Parse; returns nullopt and fills *error on malformed input.
std::optional<Design> readSimpleFormat(const std::string& text,
                                       std::string* error = nullptr);
std::optional<Design> readSimpleFormat(const std::string& text,
                                       ParseError* error);

/// File helpers.
bool saveDesign(const Design& design, const std::string& path);
std::optional<Design> loadDesign(const std::string& path,
                                 std::string* error = nullptr);
std::optional<Design> loadDesign(const std::string& path, ParseError* error);

}  // namespace mclg
