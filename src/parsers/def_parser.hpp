// DEF-lite reader/writer.
//
// Supports the DEF 5.8 subset a legalization flow consumes (and that our
// writer emits): DESIGN/UNITS/DIEAREA, ROW statements (checked for
// consistency with DIEAREA), REGIONS of TYPE FENCE, GROUPS binding
// components to regions, COMPONENTS with PLACED/FIXED/UNPLACED state, PINS
// (IO pins with LAYER geometry), and NETS. Component coordinates are
// interpreted as the global-placement input: PLACED components become
// unplaced movable cells with GP positions; FIXED components become
// blockages.
//
// P/G rail geometry is not expressible in this subset (real flows read it
// from SPECIALNETS); the native .mclg format and the generator carry rails.
#pragma once

#include <optional>
#include <string>

#include "db/design.hpp"
#include "parsers/lef_parser.hpp"
#include "parsers/parse_error.hpp"

namespace mclg {

/// Parse a DEF-lite file against an already-loaded LEF library.
std::optional<Design> readDef(const std::string& text, const LefLibrary& lib,
                              std::string* error = nullptr);

/// Structured-diagnostic overload: on failure fills *error with the source
/// line and offending token.
std::optional<Design> readDef(const std::string& text, const LefLibrary& lib,
                              ParseError* error);

/// Emit the design as DEF-lite (round-trips through readDef with the
/// library from writeLef). GP positions are written as PLACED coordinates.
std::string writeDef(const Design& design, double siteWidthMicron = 0.2);

}  // namespace mclg
