// Shared LEF/DEF-style tokenizer: whitespace-separated tokens, ';', '(' and
// ')' as standalone tokens, '#' line comments.
//
// Every read is bounds-checked: next()/peek() past the end return an empty
// sentinel token (and set overran()) instead of walking off the token
// vector, so truncated input degrades into an orderly parse error rather
// than undefined behavior. Tokens carry their source line for diagnostics.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace mclg::parse {

struct Token {
  std::string text;
  int line = 0;  // 1-based source line
};

inline std::vector<Token> tokenize(const std::string& text) {
  std::vector<Token> tokens;
  std::string current;
  int line = 1;
  int currentLine = 1;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back({current, currentLine});
      current.clear();
    }
  };
  bool inComment = false;
  for (const char c : text) {
    if (c == '\n') ++line;
    if (inComment) {
      if (c == '\n') inComment = false;
      continue;
    }
    if (c == '#') {
      inComment = true;
      flush();
    } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      flush();
    } else if (c == ';' || c == '(' || c == ')') {
      flush();
      tokens.push_back({std::string(1, c), line});
    } else {
      if (current.empty()) currentLine = line;
      current += c;
    }
  }
  flush();
  return tokens;
}

class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}
  explicit TokenStream(const std::string& text)
      : TokenStream(tokenize(text)) {}

  bool done() const { return pos_ >= tokens_.size(); }

  /// True iff a read was attempted past the last token (truncated input).
  bool overran() const { return overran_; }

  const std::string& peek() const {
    if (done()) return kEof.text;
    return tokens_[pos_].text;
  }

  std::string next() {
    if (done()) {
      overran_ = true;
      return kEof.text;
    }
    lastLine_ = tokens_[pos_].line;
    return tokens_[pos_++].text;
  }

  /// Source line of the upcoming token (or of the last consumed token at
  /// end of input) — anchors ParseError locations.
  int line() const {
    if (done()) return lastLine_;
    return tokens_[pos_].line;
  }

  bool accept(const std::string& tok) {
    if (!done() && tokens_[pos_].text == tok) {
      lastLine_ = tokens_[pos_].line;
      ++pos_;
      return true;
    }
    return false;
  }

  bool number(double* out) {
    if (done()) {
      overran_ = true;
      return false;
    }
    char* end = nullptr;
    const double v = std::strtod(tokens_[pos_].text.c_str(), &end);
    if (end == tokens_[pos_].text.c_str() || *end != '\0') return false;
    *out = v;
    lastLine_ = tokens_[pos_].line;
    ++pos_;
    return true;
  }

  /// Skip tokens until (and including) the next ';'.
  void skipStatement() {
    while (!done() && tokens_[pos_].text != ";") {
      lastLine_ = tokens_[pos_].line;
      ++pos_;
    }
    if (!done()) {
      lastLine_ = tokens_[pos_].line;
      ++pos_;
    }
  }

 private:
  inline static const Token kEof{};

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int lastLine_ = 0;
  bool overran_ = false;
};

/// metal1 / M2 / met3 -> 1 / 2 / 3 (first digit run in the name).
inline int layerNumber(const std::string& name) {
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) != 0) {
      return std::atoi(name.c_str() + i);
    }
  }
  return 1;
}

}  // namespace mclg::parse
