// Shared LEF/DEF-style tokenizer: whitespace-separated tokens, ';', '(' and
// ')' as standalone tokens, '#' line comments.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

namespace mclg::parse {

inline std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  bool inComment = false;
  for (const char c : text) {
    if (inComment) {
      if (c == '\n') inComment = false;
      continue;
    }
    if (c == '#') {
      inComment = true;
      flush();
    } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      flush();
    } else if (c == ';' || c == '(' || c == ')') {
      flush();
      tokens.emplace_back(1, c);
    } else {
      current += c;
    }
  }
  flush();
  return tokens;
}

class TokenStream {
 public:
  explicit TokenStream(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {}

  bool done() const { return pos_ >= tokens_.size(); }
  const std::string& peek() const { return tokens_[pos_]; }
  std::string next() { return tokens_[pos_++]; }

  bool accept(const std::string& tok) {
    if (!done() && tokens_[pos_] == tok) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool number(double* out) {
    if (done()) return false;
    char* end = nullptr;
    const double v = std::strtod(tokens_[pos_].c_str(), &end);
    if (end == tokens_[pos_].c_str() || *end != '\0') return false;
    *out = v;
    ++pos_;
    return true;
  }

  /// Skip tokens until (and including) the next ';'.
  void skipStatement() {
    while (!done() && next() != ";") {
    }
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

/// metal1 / M2 / met3 -> 1 / 2 / 3 (first digit run in the name).
inline int layerNumber(const std::string& name) {
  for (std::size_t i = 0; i < name.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(name[i])) != 0) {
      return std::atoi(name.c_str() + i);
    }
  }
  return 1;
}

}  // namespace mclg::parse
