#include "parsers/lef_parser.hpp"

#include <cmath>
#include <sstream>

#include "parsers/parse_error.hpp"
#include "parsers/token_stream.hpp"

namespace mclg {
namespace {

using parse::layerNumber;
using parse::TokenStream;

/// Fill *error with the message plus the stream's current location.
bool setError(ParseError* error, const TokenStream& ts,
              const std::string& what) {
  if (error != nullptr) {
    error->file = "<lef>";
    error->line = ts.line();
    error->token = ts.peek();
    error->message = what;
  }
  return false;
}

}  // namespace

int LefLibrary::findType(const std::string& name) const {
  for (std::size_t i = 0; i < types.size(); ++i) {
    if (types[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::optional<LefLibrary> readLef(const std::string& text,
                                  std::string* error) {
  ParseError parseError;
  auto lib = readLef(text, &parseError);
  if (!lib && error != nullptr) *error = parseError.str();
  return lib;
}

std::optional<LefLibrary> readLef(const std::string& text,
                                  ParseError* error) {
  TokenStream ts(text);
  LefLibrary lib;
  bool sawSite = false;

  auto parseMacro = [&](const std::string& macroName) -> bool {
    CellType type;
    type.name = macroName;
    double wMicron = 0.0, hMicron = 0.0;
    bool macroClosed = false;
    while (!ts.done()) {
      const std::string tok = ts.next();
      if (tok == "END") {
        if (ts.done()) return setError(error, ts, "truncated MACRO");
        ts.next();  // macro name
        macroClosed = true;
        break;
      } else if (tok == "CLASS") {
        ts.skipStatement();
      } else if (tok == "SIZE") {
        if (!ts.number(&wMicron) || !ts.accept("BY") || !ts.number(&hMicron)) {
          return setError(error, ts, "bad MACRO SIZE");
        }
        ts.skipStatement();
      } else if (tok == "PROPERTY") {
        const std::string prop = ts.next();
        if (prop == "mclgParity") {
          double v = 0;
          if (!ts.number(&v)) return setError(error, ts, "bad mclgParity");
          type.parity = static_cast<int>(v);
        } else if (prop == "mclgEdges") {
          double l = 0, r = 0;
          if (!ts.number(&l) || !ts.number(&r)) {
            return setError(error, ts, "bad mclgEdges");
          }
          type.leftEdge = static_cast<int>(l);
          type.rightEdge = static_cast<int>(r);
        }
        ts.skipStatement();
      } else if (tok == "PIN") {
        const std::string pinName = ts.next();
        int layer = 1;
        bool pinClosed = false;
        while (!ts.done()) {
          const std::string ptok = ts.next();
          if (ptok == "END") {
            const std::string endName = ts.next();
            if (endName != pinName) {
              return setError(error, ts, "mismatched PIN END");
            }
            pinClosed = true;
            break;
          } else if (ptok == "LAYER") {
            layer = layerNumber(ts.next());
            ts.skipStatement();
          } else if (ptok == "RECT") {
            double x1 = 0, y1 = 0, x2 = 0, y2 = 0;
            if (!ts.number(&x1) || !ts.number(&y1) || !ts.number(&x2) ||
                !ts.number(&y2)) {
              return setError(error, ts, "bad PIN RECT");
            }
            ts.skipStatement();
            PinShape pin;
            pin.layer = layer;
            const double fx = Design::kFine / lib.siteWidthMicron;
            const double fy = Design::kFine / lib.rowHeightMicron;
            pin.rect = {static_cast<std::int64_t>(std::llround(x1 * fx)),
                        static_cast<std::int64_t>(std::llround(y1 * fy)),
                        static_cast<std::int64_t>(std::llround(x2 * fx)),
                        static_cast<std::int64_t>(std::llround(y2 * fy))};
            type.pins.push_back(pin);
          }
          // PORT / USE / DIRECTION etc.: structural noise for our purposes.
        }
        if (!pinClosed) return setError(error, ts, "truncated PIN block");
      }
      // Other macro statements (FOREIGN, ORIGIN, SYMMETRY...) are skipped
      // by falling through; they end at ';' naturally on the next loop.
    }
    if (!macroClosed) return setError(error, ts, "truncated MACRO");
    if (!sawSite) return setError(error, ts, "MACRO before SITE");
    type.width = std::max(
        1, static_cast<int>(std::llround(wMicron / lib.siteWidthMicron)));
    type.height = std::max(
        1, static_cast<int>(std::llround(hMicron / lib.rowHeightMicron)));
    if (type.height % 2 == 0 && type.parity < 0) type.parity = 0;
    lib.types.push_back(std::move(type));
    return true;
  };

  while (!ts.done()) {
    const std::string tok = ts.next();
    if (tok == "UNITS") {
      while (!ts.done() && !ts.accept("END")) ts.next();
      if (!ts.done()) ts.next();  // "UNITS"
    } else if (tok == "SITE") {
      const std::string siteName = ts.next();
      while (!ts.done()) {
        const std::string stok = ts.next();
        if (stok == "END") {
          ts.next();  // site name
          break;
        } else if (stok == "SIZE") {
          if (!ts.number(&lib.siteWidthMicron) || !ts.accept("BY") ||
              !ts.number(&lib.rowHeightMicron)) {
            setError(error, ts, "bad SITE SIZE");
            return std::nullopt;
          }
          ts.skipStatement();
        } else if (stok == ";") {
          continue;
        }
      }
      sawSite = true;
    } else if (tok == "MACRO") {
      if (!parseMacro(ts.next())) return std::nullopt;
    } else if (tok == "PROPERTY") {
      const std::string prop = ts.done() ? "" : ts.next();
      if (prop == "mclgEdgeClasses") {
        double n = 1;
        if (!ts.number(&n) || n < 1) {
          setError(error, ts, "bad mclgEdgeClasses");
          return std::nullopt;
        }
        lib.numEdgeClasses = static_cast<int>(n);
        lib.edgeSpacingTable.assign(
            static_cast<std::size_t>(lib.numEdgeClasses) * lib.numEdgeClasses,
            0);
      } else if (prop == "mclgEdgeSpacing") {
        double a = 0, b = 0, v = 0;
        if (!ts.number(&a) || !ts.number(&b) || !ts.number(&v) ||
            a < 0 || b < 0 || a >= lib.numEdgeClasses ||
            b >= lib.numEdgeClasses) {
          setError(error, ts, "bad mclgEdgeSpacing");
          return std::nullopt;
        }
        lib.edgeSpacingTable[static_cast<std::size_t>(a) *
                                 lib.numEdgeClasses +
                             static_cast<std::size_t>(b)] =
            static_cast<int>(v);
      }
      ts.skipStatement();
    } else if (tok == "END" && !ts.done() && ts.peek() == "LIBRARY") {
      break;
    }
    // VERSION, BUSBITCHARS, DIVIDERCHAR... skipped implicitly.
  }
  if (!sawSite) {
    setError(error, ts, "LEF has no SITE definition");
    return std::nullopt;
  }
  return lib;
}

std::string writeLef(const Design& design, double siteWidthMicron) {
  const double rowHeightMicron = siteWidthMicron / design.siteWidthFactor;
  std::ostringstream out;
  out.precision(6);
  out << std::fixed;
  out << "VERSION 5.8 ;\n";
  out << "UNITS\n  DATABASE MICRONS 2000 ;\nEND UNITS\n";
  out << "SITE core\n  SIZE " << siteWidthMicron << " BY " << rowHeightMicron
      << " ;\nEND core\n";
  if (design.numEdgeClasses > 1) {
    out << "PROPERTY mclgEdgeClasses " << design.numEdgeClasses << " ;\n";
    for (int a = 0; a < design.numEdgeClasses; ++a) {
      for (int b = 0; b < design.numEdgeClasses; ++b) {
        if (design.edgeSpacing(a, b) != 0) {
          out << "PROPERTY mclgEdgeSpacing " << a << " " << b << " "
              << design.edgeSpacing(a, b) << " ;\n";
        }
      }
    }
  }
  const double fx = siteWidthMicron / Design::kFine;
  const double fy = rowHeightMicron / Design::kFine;
  for (const auto& type : design.types) {
    out << "MACRO " << type.name << "\n";
    out << "  CLASS CORE ;\n";
    out << "  SIZE " << type.width * siteWidthMicron << " BY "
        << type.height * rowHeightMicron << " ;\n";
    if (type.parity >= 0) {
      out << "  PROPERTY mclgParity " << type.parity << " ;\n";
    }
    if (type.leftEdge != 0 || type.rightEdge != 0) {
      out << "  PROPERTY mclgEdges " << type.leftEdge << " " << type.rightEdge
          << " ;\n";
    }
    for (std::size_t p = 0; p < type.pins.size(); ++p) {
      const auto& pin = type.pins[p];
      out << "  PIN P" << p << "\n";
      out << "    LAYER metal" << pin.layer << " ;\n";
      out << "    RECT " << pin.rect.xlo * fx << " " << pin.rect.ylo * fy
          << " " << pin.rect.xhi * fx << " " << pin.rect.yhi * fy << " ;\n";
      out << "  END P" << p << "\n";
    }
    out << "END " << type.name << "\n";
  }
  out << "END LIBRARY\n";
  return out.str();
}

}  // namespace mclg
