// Crash-isolated batch fan-out: a supervisor that runs each manifest
// design in its own worker *process* so one bad_alloc, assertion, or OS
// kill poisons only that design, never the batch.
//
// The supervisor fork/execs one worker per design (mclg_batch --worker, or
// any mclg_cli-equivalent command configured via workerCommand), up to
// maxConcurrent at a time. Each worker inherits a pipe and streams its
// result and versioned run report back as length-prefixed frames
// (flow/worker_protocol.hpp); the supervisor multiplexes the pipes with
// poll(), reaps with waitpid, and folds what only it can observe — exit
// code, terminating signal, wall-clock timeout — into the per-design
// WorkerStatus of the BatchDesignResult.
//
// Failure policy:
//  * A worker past designTimeoutSeconds gets SIGTERM, then SIGKILL after
//    killGraceSeconds; its design is recorded as Timeout.
//  * Crashed / timed-out / internal-error designs are retried up to
//    maxRetries times with exponential backoff (backoffMs << attempt);
//    deterministic failures (parse, infeasible, IO) are not retried.
//  * Healthy workers keep running while others die: there is no batch-wide
//    abort, and a design's placement bytes are identical to a solo run
//    (workers run the same pipeline config on a private process).
//
// Observability: supervisor.* counters (spawns, restarts, crashes by
// signal, timeouts, kill escalations, exhausted retries) land in run-report
// schema v5 (docs/OBSERVABILITY.md). Since schema v6 workers additionally
// stream live telemetry — Heartbeat and MetricsDelta frames every
// telemetrySampleMs from a sampler thread, plus one TraceChunk at run end
// when streamTrace is set — which the supervisor folds into a BatchLedger
// (live --live-status progress, heartbeat-based stall detection that tells
// a hung worker from a slow one before the SIGTERM escalation) and a
// TraceMerger (one Perfetto timeline with a process lane per worker pid).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "flow/batch_runner.hpp"

namespace mclg::obs {
class BatchLedger;
class TraceMerger;
}  // namespace mclg::obs

namespace mclg {

struct SupervisorConfig {
  /// Worker argv prefix; per-design arguments are appended:
  ///   <workerCommand...> --worker-input IN [--worker-output OUT]
  ///   --worker-fd FD --worker-attempt K [--preset P] [--threads N]
  ///   [--scores] [--worker-fault SPEC...] <extraWorkerArgs...>
  /// Defaults to {selfExecutablePath(), "--worker"} when empty — correct
  /// for mclg_batch and for test binaries that dispatch to
  /// supervisorWorkerMain on "--worker".
  std::vector<std::string> workerCommand;
  /// Extra argv appended to every worker (tests inject deterministic
  /// crash/fault specs here; see supervisorWorkerMain).
  std::vector<std::string> extraWorkerArgs;
  /// Workers running at once; 0 = hardware concurrency.
  int maxConcurrent = 0;
  /// Hard wall-clock budget per worker attempt; <= 0 = unlimited.
  double designTimeoutSeconds = 0.0;
  /// SIGTERM -> SIGKILL escalation grace.
  double killGraceSeconds = 2.0;
  /// Re-runs after a retryable failure (crash/timeout/internal).
  int maxRetries = 2;
  /// Base retry backoff; attempt k waits backoffMs << (k-1), capped at 30 s.
  int backoffMs = 100;
  /// Per-design pipeline settings forwarded to workers.
  std::string preset = "contest";
  int threadsPerDesign = 1;
  bool evaluateScores = false;

  // ---- Live telemetry (schema v6, docs/OBSERVABILITY.md) ----
  /// Worker sampler beat interval; <= 0 disables Heartbeat/MetricsDelta
  /// streaming (and stall detection with it).
  int telemetrySampleMs = 100;
  /// Workers trace their run and ship one TraceChunk frame at run end.
  bool streamTrace = false;
  /// Fold target for worker telemetry and per-design outcomes; optional —
  /// the supervisor keeps a private ledger when null (stall detection
  /// still works, callers just can't read the fold).
  obs::BatchLedger* ledger = nullptr;
  /// Merged-trace sink; worker lanes register at spawn. Only fed when
  /// streamTrace is set.
  obs::TraceMerger* traceMerger = nullptr;
  /// No heartbeat for this long marks a worker stalled ("hung", counted as
  /// supervisor.stalls_detected — vs merely "slow", which keeps beating);
  /// <= 0 picks max(2 s, 20 × telemetrySampleMs).
  double stallThresholdSeconds = 0.0;
  /// Throttled single-line progress callback (mclg_batch --live-status):
  /// called at most every statusIntervalMs with BatchLedger's status line,
  /// plus once after the batch drains.
  std::function<void(const std::string&)> onStatusLine;
  int statusIntervalMs = 200;
};

/// Run every manifest item in a supervised worker process. Results are
/// positionally aligned with `items`; per-design failures (including
/// crashes and timeouts) come back as statuses, never as exceptions or a
/// batch abort.
std::vector<BatchDesignResult> runSupervisedManifest(
    const std::vector<BatchManifestItem>& items, const SupervisorConfig& config);

/// Entry point for the worker side, shared by mclg_batch's `--worker` mode
/// and the supervisor tests' self-exec. Parses the worker argv produced by
/// the supervisor, runs the design via runBatchItem, streams Result +
/// Report frames over --worker-fd, and returns the GuardExitCode-contract
/// exit code for its status.
///
/// Deterministic fault injection (tests and scripts/batch_stress.sh):
/// `--worker-fault <design>:<mode>:<n>` makes attempts 0..n-1 of the named
/// design fail — mode `segv` / `abort` / `kill` raises that signal with
/// default disposition (a real crash, sanitizer handlers bypassed), `hang`
/// ignores SIGTERM and sleeps forever (exercises the SIGKILL escalation),
/// and `degrade` arms the guard's FaultPlan so the run completes via the
/// skip-after-rollback path (exit 2).
int supervisorWorkerMain(int argc, char** argv);

/// /proc/self/exe when readable, else fallback (typically argv[0]).
std::string selfExecutablePath(const std::string& fallback);

}  // namespace mclg
