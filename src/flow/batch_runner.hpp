// Multi-design throughput driver: legalize N designs concurrently on the
// shared work-stealing executor (util/executor/).
//
// Each design runs as one whole-run task (Executor::submit) with fully
// isolated state — its own Design, PlacementState, SegmentMap, stage
// scratch (all per-thread arenas in the stages are thread_local and rebuilt
// per use) and a per-design result record, so designs never share mutable
// state. Admission control caps the number of designs in flight; stage
// parallelism inside a design (threadsPerDesign > 1) borrows further lanes
// from the same executor via the config's ExecutorRef, so one worker set
// serves both levels without partitioning.
//
// Determinism: a design's result depends only on its input and the
// per-design pipeline config — never on the batch composition, admission
// order, or executor width — and is byte-identical to a solo legalize()
// run of the same design at the same thread count. The batch tests and
// bench_executor assert this by placement hash.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "flow/worker_protocol.hpp"
#include "legal/pipeline.hpp"
#include "util/executor/executor.hpp"

namespace mclg::obs {
class BatchLedger;
}  // namespace mclg::obs

namespace mclg {

struct BatchRunConfig {
  /// Template config applied to every design. The runner copies it per
  /// design, overrides its thread budget with threadsPerDesign
  /// (PipelineConfig::setThreads semantics) and points its ExecutorRef at
  /// `executor` below.
  PipelineConfig pipeline;
  /// Stage-parallel lanes inside each design (1 = each design runs
  /// serially on its worker — the highest-throughput setting for small
  /// designs).
  int threadsPerDesign = 1;
  /// Cap on designs legalizing concurrently (admission control);
  /// 0 = the executor's worker count.
  int maxInFlight = 0;
  /// Executor to run on (default: the process-wide one). Benches and tests
  /// inject a private, fixed-width executor here.
  ExecutorRef executor{};
  /// Evaluate the contest score per design (needs an extra metrics pass;
  /// off for throughput benches).
  bool evaluateScores = false;
  /// In-process telemetry parity with the supervisor (obs/batch_ledger.hpp):
  /// when set, runBatchManifest reports per-design start/finish events into
  /// the ledger so `mclg_batch --live-status` reads identically with and
  /// without --process-isolation. The runner serializes its ledger calls
  /// internally (BatchLedger itself is single-caller).
  obs::BatchLedger* ledger = nullptr;
  /// Throttled progress callback, fed BatchLedger::renderStatusLine after
  /// design completions; requires `ledger`.
  std::function<void(const std::string&)> onStatusLine;
  int statusIntervalMs = 200;
};

struct BatchDesignResult {
  std::string name;
  bool ok = false;
  /// Machine-readable failure kind, uniform across the in-process runner
  /// and the process-isolated supervisor (flow/worker_protocol.hpp):
  /// `ok` above is exactly workerStatusOk(status).
  WorkerStatus status = WorkerStatus::Exception;
  std::string error;       ///< parse/IO/pipeline failure when !ok
  double seconds = 0.0;    ///< wall clock of this design's pipeline
  std::uint64_t placementHash = 0;  ///< eval placementHash after legalize
  double score = 0.0;      ///< contest score when evaluateScores, else 0
  int numCells = 0;        ///< movable + fixed cells of the loaded design
  PipelineStats stats;
  // Supervisor-only fields (process-isolation mode; see flow/supervisor.hpp).
  int attempts = 0;        ///< worker runs, 1 + retries (0 = in-process mode)
  int lastSignal = 0;      ///< signal that killed the last attempt, 0 = none
  std::string reportJson;  ///< worker's streamed run report, verbatim
};

/// Legalize every design in place, up to maxInFlight concurrently.
/// Results are positionally aligned with `designs`. Never throws for
/// per-design failures — they come back with ok == false.
std::vector<BatchDesignResult> runBatch(
    const std::vector<std::pair<std::string, Design*>>& designs,
    const BatchRunConfig& config);

/// One line per design: `input [output]`, `#` comments and blank lines
/// skipped. The design name is the input filename without directory and
/// extension. With no output path the result is not written back.
struct BatchManifestItem {
  std::string name;
  std::string inputPath;
  std::string outputPath;  ///< empty = don't save
};

bool loadBatchManifest(const std::string& path,
                       std::vector<BatchManifestItem>* items,
                       std::string* error);

/// Deterministic manifest shard `index` of `count`: hosts running the same
/// manifest with i = 0..N-1 partition it exactly (round-robin by manifest
/// position, order preserved) with no coordination.
struct ShardSpec {
  int index = 0;
  int count = 1;
};

/// Parse "i/N" with 0 <= i < N (strict: no sign, no trailing junk).
bool parseShardSpec(const std::string& text, ShardSpec* spec,
                    std::string* error);

std::vector<BatchManifestItem> shardManifest(
    const std::vector<BatchManifestItem>& items, const ShardSpec& spec);

/// Load + legalize + save one manifest item with per-design isolation: all
/// failures (parse, pipeline, IO) come back in the result, never as an
/// exception. The building block of runBatchManifest and of the supervised
/// worker mode (flow/supervisor.hpp).
BatchDesignResult runBatchItem(const BatchManifestItem& item,
                               const BatchRunConfig& config);

/// File-level driver: each design task loads its input, legalizes, and
/// saves to the output path (when given) — I/O included in the concurrent
/// region so loading overlaps compute across designs.
std::vector<BatchDesignResult> runBatchManifest(
    const std::vector<BatchManifestItem>& items, const BatchRunConfig& config);

}  // namespace mclg
