#include "flow/worker_protocol.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "legal/guard/guard.hpp"

namespace mclg {

const char* workerStatusName(WorkerStatus status) {
  switch (status) {
    case WorkerStatus::Ok: return "ok";
    case WorkerStatus::GuardDegraded: return "guard-degraded";
    case WorkerStatus::Infeasible: return "infeasible";
    case WorkerStatus::ParseError: return "parse-error";
    case WorkerStatus::Exception: return "exception";
    case WorkerStatus::IoError: return "io-error";
    case WorkerStatus::Crashed: return "crashed";
    case WorkerStatus::Timeout: return "timeout";
    case WorkerStatus::Protocol: return "protocol-error";
    case WorkerStatus::SpawnFailed: return "spawn-failed";
  }
  return "?";
}

bool workerStatusOk(WorkerStatus status) {
  return status == WorkerStatus::Ok || status == WorkerStatus::GuardDegraded;
}

bool workerStatusRetryable(WorkerStatus status) {
  switch (status) {
    case WorkerStatus::Crashed:
    case WorkerStatus::Timeout:
    case WorkerStatus::Exception:
    case WorkerStatus::Protocol:
    case WorkerStatus::SpawnFailed:
      return true;
    default:
      return false;
  }
}

WorkerStatus workerStatusFromExit(int exitCode) {
  switch (static_cast<GuardExitCode>(exitCode)) {
    case GuardExitCode::Legal: return WorkerStatus::Ok;
    case GuardExitCode::Usage: return WorkerStatus::IoError;
    case GuardExitCode::Degraded: return WorkerStatus::GuardDegraded;
    case GuardExitCode::Infeasible: return WorkerStatus::Infeasible;
    case GuardExitCode::ParseError: return WorkerStatus::ParseError;
    case GuardExitCode::Internal: return WorkerStatus::Exception;
  }
  return WorkerStatus::Exception;
}

int workerStatusToExit(WorkerStatus status) {
  switch (status) {
    case WorkerStatus::Ok: return static_cast<int>(GuardExitCode::Legal);
    case WorkerStatus::GuardDegraded:
      return static_cast<int>(GuardExitCode::Degraded);
    case WorkerStatus::Infeasible:
      return static_cast<int>(GuardExitCode::Infeasible);
    case WorkerStatus::ParseError:
      return static_cast<int>(GuardExitCode::ParseError);
    case WorkerStatus::IoError: return static_cast<int>(GuardExitCode::Usage);
    default: return static_cast<int>(GuardExitCode::Internal);
  }
}

// ---- Result payload --------------------------------------------------------

namespace {

/// Newlines would break the line-oriented payload; spaces are fine.
std::string oneLine(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

int statusFromName(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(WorkerStatus::SpawnFailed); ++i) {
    if (name == workerStatusName(static_cast<WorkerStatus>(i))) return i;
  }
  return -1;
}

}  // namespace

std::string serializeWorkerResult(const WorkerResult& result) {
  char buffer[128];
  std::string out;
  out += "status=";
  out += workerStatusName(result.status);
  out += '\n';
  std::snprintf(buffer, sizeof buffer, "seconds=%.9g\n", result.seconds);
  out += buffer;
  std::snprintf(buffer, sizeof buffer, "hash=%016" PRIx64 "\n",
                result.placementHash);
  out += buffer;
  std::snprintf(buffer, sizeof buffer, "score=%.17g\n", result.score);
  out += buffer;
  std::snprintf(buffer, sizeof buffer, "cells=%d\n", result.numCells);
  out += buffer;
  out += "error=" + oneLine(result.error) + "\n";
  return out;
}

bool parseWorkerResult(const std::string& payload, WorkerResult* result) {
  WorkerResult parsed;
  bool sawStatus = false;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t end = payload.find('\n', pos);
    if (end == std::string::npos) end = payload.size();
    const std::string line = payload.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "status") {
      const int status = statusFromName(value);
      if (status < 0) return false;
      parsed.status = static_cast<WorkerStatus>(status);
      sawStatus = true;
    } else if (key == "seconds") {
      parsed.seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "hash") {
      parsed.placementHash =
          static_cast<std::uint64_t>(std::strtoull(value.c_str(), nullptr, 16));
    } else if (key == "score") {
      parsed.score = std::strtod(value.c_str(), nullptr);
    } else if (key == "cells") {
      parsed.numCells = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "error") {
      parsed.error = value;
    }
    // Unknown keys are skipped: older supervisors read newer workers.
  }
  if (!sawStatus) return false;
  *result = parsed;
  return true;
}

// ---- Heartbeat payload -----------------------------------------------------

std::string serializeWorkerHeartbeat(const WorkerHeartbeat& heartbeat) {
  char buffer[128];
  std::string out;
  std::snprintf(buffer, sizeof buffer, "pid=%d\n", heartbeat.pid);
  out += buffer;
  std::snprintf(buffer, sizeof buffer, "seq=%" PRIu64 "\n",
                heartbeat.sequence);
  out += buffer;
  out += "phase=" + oneLine(heartbeat.phase) + "\n";
  std::snprintf(buffer, sizeof buffer, "wall=%.9g\n", heartbeat.wallSeconds);
  out += buffer;
  std::snprintf(buffer, sizeof buffer, "cpu=%.9g\n", heartbeat.cpuSeconds);
  out += buffer;
  std::snprintf(buffer, sizeof buffer, "rss_kb=%ld\n", heartbeat.rssKb);
  out += buffer;
  return out;
}

bool parseWorkerHeartbeat(const std::string& payload,
                          WorkerHeartbeat* heartbeat) {
  WorkerHeartbeat parsed;
  bool sawPid = false;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t end = payload.find('\n', pos);
    if (end == std::string::npos) end = payload.size();
    const std::string line = payload.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "pid") {
      parsed.pid = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
      sawPid = true;
    } else if (key == "seq") {
      parsed.sequence = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "phase") {
      parsed.phase = value;
    } else if (key == "wall") {
      parsed.wallSeconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "cpu") {
      parsed.cpuSeconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "rss_kb") {
      parsed.rssKb = std::strtol(value.c_str(), nullptr, 10);
    }
    // Unknown keys are skipped: older supervisors read newer workers.
  }
  if (!sawPid) return false;
  *heartbeat = parsed;
  return true;
}

// ---- Frame IO --------------------------------------------------------------

namespace {

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t getU32(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  return static_cast<std::uint32_t>(bytes[0]) |
         (static_cast<std::uint32_t>(bytes[1]) << 8) |
         (static_cast<std::uint32_t>(bytes[2]) << 16) |
         (static_cast<std::uint32_t>(bytes[3]) << 24);
}

bool writeAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t written = ::write(fd, data, size);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

inline constexpr std::size_t kHeaderBytes = 12;

}  // namespace

bool writeFrame(int fd, FrameType type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) return false;
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  putU32(out, kFrameMagic);
  putU32(out, static_cast<std::uint32_t>(type));
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out += payload;
  return writeAll(fd, out.data(), out.size());
}

void FrameReader::feed(const char* data, std::size_t size) {
  if (corrupted_) return;
  buffer_.append(data, size);
  while (buffer_.size() >= kHeaderBytes) {
    if (getU32(buffer_.data()) != kFrameMagic) {
      corrupted_ = true;
      frames_.clear();
      buffer_.clear();
      return;
    }
    const std::uint32_t type = getU32(buffer_.data() + 4);
    const std::uint32_t length = getU32(buffer_.data() + 8);
    const bool knownType =
        type >= static_cast<std::uint32_t>(FrameType::Result) &&
        type <= static_cast<std::uint32_t>(FrameType::Response);
    if (length > kMaxFramePayload || !knownType) {
      corrupted_ = true;
      frames_.clear();
      buffer_.clear();
      return;
    }
    if (buffer_.size() < kHeaderBytes + length) return;
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.payload = buffer_.substr(kHeaderBytes, length);
    frames_.push_back(std::move(frame));
    buffer_.erase(0, kHeaderBytes + length);
  }
}

std::vector<FrameReader::Frame> FrameReader::take() {
  std::vector<Frame> out;
  out.swap(frames_);
  return out;
}

}  // namespace mclg
