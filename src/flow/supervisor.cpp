#include "flow/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/batch_ledger.hpp"
#include "obs/obs.hpp"
#include "obs/run_report.hpp"
#include "obs/sampler.hpp"
#include "obs/trace_merge.hpp"
#include "util/executor/executor.hpp"
#include "util/logging.hpp"

namespace mclg {
namespace {

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void bumpCounter(const std::string& name, long long delta = 1) {
  if (obs::metricsEnabled()) obs::counter(name).add(delta);
}

/// The fd number workers are told to write frames to. dup2'd over in the
/// child between fork and exec, which also clears FD_CLOEXEC.
constexpr int kWorkerFd = 3;

// ---- Worker side -----------------------------------------------------------

struct WorkerArgs {
  std::string input;
  std::string output;
  std::string name;
  int fd = -1;
  int attempt = 0;
  std::string preset = "contest";
  int threads = 1;
  bool scores = false;
  int telemetryMs = 0;  ///< sampler beat interval; 0 = no telemetry frames
  bool trace = false;   ///< record spans, ship one TraceChunk at run end
  std::vector<std::string> faults;
};

struct FaultSpecParts {
  std::string design;
  std::string mode;
  int count = 0;
};

bool splitFaultSpec(const std::string& spec, FaultSpecParts* parts) {
  const auto first = spec.find(':');
  const auto second = first == std::string::npos
                          ? std::string::npos
                          : spec.find(':', first + 1);
  if (second == std::string::npos) return false;
  parts->design = spec.substr(0, first);
  parts->mode = spec.substr(first + 1, second - first - 1);
  parts->count =
      static_cast<int>(std::strtol(spec.c_str() + second + 1, nullptr, 10));
  return !parts->design.empty() && !parts->mode.empty() && parts->count > 0;
}

/// Die by `sig` with the *default* disposition, bypassing any handler a
/// sanitizer runtime installed — the supervisor must observe a genuine
/// signal death, not an ASan exit code.
[[noreturn]] void dieBySignal(int sig) {
  std::signal(sig, SIG_DFL);
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, sig);
  sigprocmask(SIG_UNBLOCK, &set, nullptr);
  ::raise(sig);
  _exit(126);  // unreachable unless the signal was uncatchably blocked
}

[[noreturn]] void hangIgnoringSigterm() {
  std::signal(SIGTERM, SIG_IGN);
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

std::string baseNameOf(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base = slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.erase(dot);
  return base;
}

}  // namespace

std::string selfExecutablePath(const std::string& fallback) {
  char buffer[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (len <= 0) return fallback;
  buffer[len] = '\0';
  return std::string(buffer);
}

int supervisorWorkerMain(int argc, char** argv) {
  WorkerArgs args;
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--worker-input") == 0) {
      args.input = value();
    } else if (std::strcmp(argv[i], "--worker-output") == 0) {
      args.output = value();
    } else if (std::strcmp(argv[i], "--worker-name") == 0) {
      args.name = value();
    } else if (std::strcmp(argv[i], "--worker-fd") == 0) {
      args.fd = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--worker-attempt") == 0) {
      args.attempt = static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--preset") == 0) {
      args.preset = value();
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      args.threads = std::max(
          1, static_cast<int>(std::strtol(value(), nullptr, 10)));
    } else if (std::strcmp(argv[i], "--scores") == 0) {
      args.scores = true;
    } else if (std::strcmp(argv[i], "--worker-telemetry-ms") == 0) {
      args.telemetryMs =
          static_cast<int>(std::strtol(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--worker-trace") == 0) {
      args.trace = true;
    } else if (std::strcmp(argv[i], "--worker-fault") == 0) {
      args.faults.emplace_back(value());
    }
  }
  if (args.input.empty()) {
    std::fprintf(stderr, "worker: missing --worker-input\n");
    return static_cast<int>(GuardExitCode::Usage);
  }
  if (args.name.empty()) args.name = baseNameOf(args.input);

  BatchRunConfig config;
  config.pipeline = args.preset == "totaldisp"
                        ? PipelineConfig::totalDisplacement()
                        : PipelineConfig::contest();
  config.threadsPerDesign = args.threads;
  config.evaluateScores = args.scores;

  // Deterministic fault injection (see supervisor.hpp). Crash modes fire
  // before the pipeline so the death is abrupt; `degrade` arms the guard's
  // FaultPlan instead so the run completes via skip-after-rollback.
  for (const std::string& spec : args.faults) {
    FaultSpecParts parts;
    if (!splitFaultSpec(spec, &parts)) {
      std::fprintf(stderr, "worker: bad --worker-fault '%s'\n", spec.c_str());
      return static_cast<int>(GuardExitCode::Usage);
    }
    if (parts.design != args.name || args.attempt >= parts.count) continue;
    if (parts.mode == "segv") dieBySignal(SIGSEGV);
    if (parts.mode == "abort") dieBySignal(SIGABRT);
    if (parts.mode == "kill") dieBySignal(SIGKILL);
    if (parts.mode == "hang") hangIgnoringSigterm();
    if (parts.mode == "degrade") {
      config.pipeline.guard.enabled = true;
      config.pipeline.guard.maxAttempts = 2;
      config.pipeline.guard.faults.add(PipelineStage::MaxDisp,
                                       FaultKind::StageThrow, 0);
      config.pipeline.guard.faults.add(PipelineStage::MaxDisp,
                                       FaultKind::StageThrow, 1);
      continue;
    }
    std::fprintf(stderr, "worker: unknown fault mode '%s'\n",
                 parts.mode.c_str());
    return static_cast<int>(GuardExitCode::Usage);
  }

  // Metrics populate the streamed run report's metrics block.
  obs::setMetricsEnabled(true);
  obs::metricsReset();
  if (args.trace) {
    obs::setTracingEnabled(true);
    obs::traceReset();
  }

  BatchManifestItem item;
  item.name = args.name;
  item.inputPath = args.input;
  item.outputPath = args.output;

  // Telemetry stream: heartbeats + metric deltas from the sampler thread.
  // The sampler writes frames concurrently with the compute thread but is
  // the pipe's ONLY writer until stop() joins it (the final beat and the
  // Result/Report frames below then come from this thread), so frames
  // never interleave. A hang fault (above) fires before the sampler
  // starts, so a hung worker is genuinely silent — exactly the signal the
  // supervisor's stall detection keys on.
  obs::MetricsSampler sampler;
  if (args.fd >= 0 && args.telemetryMs > 0) {
    obs::SamplerConfig samplerConfig;
    samplerConfig.intervalMs = args.telemetryMs;
    samplerConfig.preSample = [] {
      if (Executor* executor = Executor::globalIfCreated()) {
        executor->sampleGauges();
      }
    };
    const int fd = args.fd;
    samplerConfig.emit = [fd](const obs::TelemetrySample& sample) {
      WorkerHeartbeat heartbeat;
      heartbeat.pid = static_cast<int>(::getpid());
      heartbeat.sequence = sample.sequence;
      heartbeat.phase = sample.phase;
      heartbeat.wallSeconds = sample.wallSeconds;
      heartbeat.cpuSeconds = sample.cpuSeconds;
      heartbeat.rssKb = sample.rssKb;
      writeFrame(fd, FrameType::Heartbeat,
                 serializeWorkerHeartbeat(heartbeat));
      if (!sample.metricsDelta.empty()) {
        writeFrame(fd, FrameType::MetricsDelta, sample.metricsDelta);
      }
    };
    sampler.start(std::move(samplerConfig));
    sampler.setPhase("legalize");
  }

  const BatchDesignResult result = runBatchItem(item, config);
  sampler.setPhase("report");
  // Stop before writing the final frames: the final delta brings the
  // supervisor's counter fold exactly to this report's values, and the fd
  // has a single writer again.
  sampler.stop();

  if (args.fd >= 0 && args.trace) {
    writeFrame(args.fd, FrameType::TraceChunk, obs::serializeTraceChunk());
  }
  if (args.fd >= 0) {
    WorkerResult wire;
    wire.status = result.status;
    wire.seconds = result.seconds;
    wire.placementHash = result.placementHash;
    wire.score = result.score;
    wire.numCells = result.numCells;
    wire.error = result.error;
    writeFrame(args.fd, FrameType::Result, serializeWorkerResult(wire));
    obs::RunProvenance provenance;
    provenance.design = result.name;
    provenance.numCells = result.numCells;
    provenance.preset = args.preset;
    provenance.threads = args.threads;
    provenance.guardEnabled = config.pipeline.guard.enabled;
    writeFrame(args.fd, FrameType::Report,
               obs::renderRunReport(provenance, result.stats, nullptr,
                                    /*includeMetrics=*/true));
    ::close(args.fd);
  }
  return workerStatusToExit(result.status);
}

// ---- Supervisor side -------------------------------------------------------

namespace {

struct LiveWorker {
  int item = -1;       ///< manifest index
  pid_t pid = -1;
  int fd = -1;         ///< pipe read end (nonblocking)
  FrameReader reader;
  /// Result/Report frames held back for resolveOutcome at reap time;
  /// telemetry frames (Heartbeat/MetricsDelta/TraceChunk) are consumed
  /// live after every drain and never land here.
  std::vector<FrameReader::Frame> finalFrames;
  double killDeadline = 0.0;   ///< SIGTERM at this time; 0 = no timeout
  double graceDeadline = 0.0;  ///< SIGKILL at this time; 0 = no TERM sent yet
  bool timedOut = false;
  bool eof = false;
};

struct DesignProgress {
  int attempts = 0;
  double readyAt = 0.0;  ///< backoff: do not respawn before this time
  bool queued = true;
  bool done = false;
};

std::vector<std::string> buildWorkerArgv(const SupervisorConfig& config,
                                         const BatchManifestItem& item,
                                         int attempt) {
  std::vector<std::string> argv = config.workerCommand;
  argv.push_back("--worker-input");
  argv.push_back(item.inputPath);
  if (!item.outputPath.empty()) {
    argv.push_back("--worker-output");
    argv.push_back(item.outputPath);
  }
  argv.push_back("--worker-name");
  argv.push_back(item.name);
  argv.push_back("--worker-fd");
  argv.push_back(std::to_string(kWorkerFd));
  argv.push_back("--worker-attempt");
  argv.push_back(std::to_string(attempt));
  argv.push_back("--preset");
  argv.push_back(config.preset);
  argv.push_back("--threads");
  argv.push_back(std::to_string(std::max(1, config.threadsPerDesign)));
  if (config.evaluateScores) argv.push_back("--scores");
  if (config.telemetrySampleMs > 0) {
    argv.push_back("--worker-telemetry-ms");
    argv.push_back(std::to_string(config.telemetrySampleMs));
  }
  if (config.streamTrace) argv.push_back("--worker-trace");
  argv.insert(argv.end(), config.extraWorkerArgs.begin(),
              config.extraWorkerArgs.end());
  return argv;
}

/// fork/exec one worker. Returns false (with *error set) when the process
/// could not even be started; exec failures inside the child surface as
/// exit code 126 (-> WorkerStatus::Exception, retryable).
bool spawnWorker(const SupervisorConfig& config, const BatchManifestItem& item,
                 int attempt, LiveWorker* worker, std::string* error) {
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    *error = std::string("pipe2: ") + std::strerror(errno);
    return false;
  }
  // argv must be materialized before fork: only async-signal-safe calls are
  // allowed in the child of a (potentially multithreaded) parent.
  const std::vector<std::string> argvStrings =
      buildWorkerArgv(config, item, attempt);
  std::vector<char*> argv;
  argv.reserve(argvStrings.size() + 1);
  for (const std::string& arg : argvStrings) {
    argv.push_back(const_cast<char*>(arg.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    ::close(fds[0]);
    ::close(fds[1]);
    return false;
  }
  if (pid == 0) {
    // Child: move the pipe write end onto the advertised fd (dup2 clears
    // FD_CLOEXEC) and exec. Everything else is O_CLOEXEC and vanishes.
    if (fds[1] == kWorkerFd) {
      ::fcntl(fds[1], F_SETFD, 0);
    } else {
      if (::dup2(fds[1], kWorkerFd) < 0) _exit(126);
      ::close(fds[1]);
    }
    ::execv(argv[0], argv.data());
    _exit(126);  // exec failed; parent maps this to a retryable Exception
  }
  ::close(fds[1]);
  ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
  worker->pid = pid;
  worker->fd = fds[0];
  worker->timedOut = false;
  worker->eof = false;
  worker->reader = FrameReader();
  worker->killDeadline = config.designTimeoutSeconds > 0.0
                             ? monotonicSeconds() + config.designTimeoutSeconds
                             : 0.0;
  worker->graceDeadline = 0.0;
  return true;
}

/// Drain whatever the worker pipe currently holds. Returns true at EOF.
bool drainWorkerPipe(LiveWorker& worker) {
  char buffer[16384];
  for (;;) {
    const ssize_t got = ::read(worker.fd, buffer, sizeof buffer);
    if (got > 0) {
      worker.reader.feed(buffer, static_cast<std::size_t>(got));
      continue;
    }
    if (got == 0) return true;
    if (errno == EINTR) continue;
    return false;  // EAGAIN: drained for now
  }
}

/// Merge worker frames + wait status into the design's result. Returns the
/// final WorkerStatus.
WorkerStatus resolveOutcome(const LiveWorker& worker, int waitStatus,
                            const std::vector<FrameReader::Frame>& frames,
                            bool readerCorrupted, std::size_t pendingBytes,
                            BatchDesignResult* result) {
  bool sawResult = false;
  WorkerResult wire;
  for (const auto& frame : frames) {
    if (frame.type == FrameType::Result) {
      sawResult = parseWorkerResult(frame.payload, &wire) || sawResult;
    } else if (frame.type == FrameType::Report) {
      result->reportJson = frame.payload;
    }
  }
  if (sawResult) {
    result->seconds = wire.seconds;
    result->placementHash = wire.placementHash;
    result->score = wire.score;
    result->numCells = wire.numCells;
    result->error = wire.error;
  }

  if (worker.timedOut) {
    result->lastSignal =
        WIFSIGNALED(waitStatus) ? WTERMSIG(waitStatus) : SIGKILL;
    result->error = "timed out";
    return WorkerStatus::Timeout;
  }
  if (WIFSIGNALED(waitStatus)) {
    const int sig = WTERMSIG(waitStatus);
    result->lastSignal = sig;
    result->error = std::string("killed by signal ") + std::to_string(sig) +
                    " (" + strsignal(sig) + ")";
    return WorkerStatus::Crashed;
  }
  const int exitCode = WIFEXITED(waitStatus) ? WEXITSTATUS(waitStatus) : 126;
  const WorkerStatus exitStatus = workerStatusFromExit(exitCode);
  if (readerCorrupted || pendingBytes > 0 ||
      (!sawResult && exitStatus == WorkerStatus::Ok)) {
    result->error = readerCorrupted ? "corrupted worker frame stream"
                                    : "worker exited without a result frame";
    return WorkerStatus::Protocol;
  }
  // Prefer the worker's own (finer-grained) status when the frame agrees
  // with the exit-code family; fall back to the exit code otherwise.
  if (sawResult && workerStatusToExit(wire.status) == exitCode) {
    return wire.status;
  }
  return exitStatus;
}

}  // namespace

std::vector<BatchDesignResult> runSupervisedManifest(
    const std::vector<BatchManifestItem>& items,
    const SupervisorConfig& configIn) {
  SupervisorConfig config = configIn;
  if (config.workerCommand.empty()) {
    config.workerCommand = {selfExecutablePath("mclg_batch"), "--worker"};
  }
  const int cap =
      config.maxConcurrent > 0
          ? config.maxConcurrent
          : std::max(1u, std::thread::hardware_concurrency());
  const double grace = std::max(0.05, config.killGraceSeconds);

  std::vector<BatchDesignResult> results(items.size());
  std::vector<DesignProgress> progress(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    results[i].name = items[i].name;
  }
  if (items.empty()) return results;

  // Telemetry fold: an injected ledger when the caller wants to read it
  // (mclg_batch --live-status), a private one otherwise — stall detection
  // runs either way.
  obs::BatchLedger localLedger;
  obs::BatchLedger* const ledger =
      config.ledger != nullptr ? config.ledger : &localLedger;
  ledger->setTotalDesigns(static_cast<int>(items.size()));
  const double stallThreshold =
      config.telemetrySampleMs > 0
          ? (config.stallThresholdSeconds > 0.0
                 ? config.stallThresholdSeconds
                 : std::max(2.0, 20.0 * config.telemetrySampleMs / 1000.0))
          : 0.0;
  double nextStatusAt = 0.0;

  std::vector<LiveWorker> live;
  int doneCount = 0;

  // Consume telemetry frames as they arrive; hold Result/Report back for
  // resolveOutcome at reap time.
  const auto processTelemetry = [&](LiveWorker& worker) {
    const std::string& design =
        items[static_cast<std::size_t>(worker.item)].name;
    for (auto& frame : worker.reader.take()) {
      switch (frame.type) {
        case FrameType::Heartbeat: {
          WorkerHeartbeat heartbeat;
          if (parseWorkerHeartbeat(frame.payload, &heartbeat)) {
            ledger->heartbeat(design, heartbeat.sequence, heartbeat.phase,
                              heartbeat.wallSeconds, heartbeat.cpuSeconds,
                              heartbeat.rssKb, monotonicSeconds());
          } else {
            bumpCounter("supervisor.telemetry.malformed");
          }
          break;
        }
        case FrameType::MetricsDelta:
          if (!ledger->metricsDelta(design, frame.payload)) {
            bumpCounter("supervisor.telemetry.malformed");
          }
          break;
        case FrameType::TraceChunk:
          bumpCounter("supervisor.trace_chunks");
          if (config.traceMerger != nullptr &&
              !config.traceMerger->addChunk(static_cast<int>(worker.pid),
                                            frame.payload)) {
            bumpCounter("supervisor.trace_chunks.dropped");
          }
          break;
        default:
          worker.finalFrames.push_back(std::move(frame));
          break;
      }
    }
  };

  const auto finishDesign = [&](int item, WorkerStatus status) {
    BatchDesignResult& result = results[static_cast<std::size_t>(item)];
    result.status = status;
    result.ok = workerStatusOk(status);
    result.attempts = progress[static_cast<std::size_t>(item)].attempts;
    progress[static_cast<std::size_t>(item)].done = true;
    ++doneCount;
    if (!workerStatusOk(status) && workerStatusRetryable(status)) {
      bumpCounter("supervisor.exhausted");
    }
  };

  const auto scheduleRetryOrFinish = [&](int item, WorkerStatus status) {
    DesignProgress& p = progress[static_cast<std::size_t>(item)];
    if (workerStatusRetryable(status) && p.attempts <= config.maxRetries) {
      const int backoffShift = std::min(p.attempts - 1, 8);
      const double delay =
          std::min(30.0, static_cast<double>(config.backoffMs) *
                             static_cast<double>(1 << backoffShift) / 1000.0);
      p.readyAt = monotonicSeconds() + delay;
      p.queued = true;
      results[static_cast<std::size_t>(item)].status = status;
      bumpCounter("supervisor.retries");
      return;
    }
    finishDesign(item, status);
  };

  const auto reapWorker = [&](std::size_t slot) {
    LiveWorker worker = std::move(live[slot]);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(slot));
    ::close(worker.fd);
    int waitStatus = 0;
    // The pipe reached EOF (or the worker was SIGKILLed): the process has
    // exited or is mid-exit, so a blocking waitpid is bounded.
    while (::waitpid(worker.pid, &waitStatus, 0) < 0 && errno == EINTR) {
    }
    BatchDesignResult& result = results[static_cast<std::size_t>(worker.item)];
    processTelemetry(worker);
    const auto frames = std::move(worker.finalFrames);
    const WorkerStatus status =
        resolveOutcome(worker, waitStatus, frames, worker.reader.corrupted(),
                       worker.reader.pendingBytes(), &result);
    if (status == WorkerStatus::Crashed) {
      bumpCounter("supervisor.crashes");
      bumpCounter("supervisor.crash.signal." +
                  std::to_string(result.lastSignal));
    }
    if (status == WorkerStatus::Timeout) bumpCounter("supervisor.timeouts");
    {
      const DesignProgress& p = progress[static_cast<std::size_t>(worker.item)];
      obs::BatchLedger::DesignOutcome outcome;
      outcome.status = workerStatusName(status);
      outcome.ok = workerStatusOk(status);
      outcome.retrying =
          workerStatusRetryable(status) && p.attempts <= config.maxRetries;
      outcome.seconds = result.seconds;
      outcome.cells = result.numCells;
      outcome.score = result.score;
      outcome.attempt = p.attempts;
      ledger->designFinished(items[static_cast<std::size_t>(worker.item)].name,
                             outcome, monotonicSeconds());
    }
    scheduleRetryOrFinish(worker.item, status);
  };

  while (doneCount < static_cast<int>(items.size())) {
    // Admit queued designs whose backoff has elapsed.
    const double now = monotonicSeconds();
    for (std::size_t i = 0;
         i < items.size() && static_cast<int>(live.size()) < cap; ++i) {
      DesignProgress& p = progress[i];
      if (!p.queued || p.done || p.readyAt > now) continue;
      p.queued = false;
      ++p.attempts;
      bumpCounter("supervisor.spawns");
      if (p.attempts > 1) bumpCounter("supervisor.restarts");
      LiveWorker worker;
      worker.item = static_cast<int>(i);
      std::string spawnError;
      if (!spawnWorker(config, items[i], p.attempts - 1, &worker,
                       &spawnError)) {
        results[i].error = spawnError;
        obs::BatchLedger::DesignOutcome outcome;
        outcome.status = workerStatusName(WorkerStatus::SpawnFailed);
        outcome.retrying = p.attempts <= config.maxRetries;
        outcome.attempt = p.attempts;
        ledger->designFinished(items[i].name, outcome, monotonicSeconds());
        scheduleRetryOrFinish(static_cast<int>(i), WorkerStatus::SpawnFailed);
        continue;
      }
      ledger->workerStarted(items[i].name, static_cast<int>(worker.pid),
                            p.attempts, monotonicSeconds());
      if (config.streamTrace && config.traceMerger != nullptr) {
        config.traceMerger->addWorker(static_cast<int>(worker.pid),
                                      items[i].name);
      }
      live.push_back(std::move(worker));
      if (obs::metricsEnabled()) {
        obs::gauge("supervisor.workers_in_flight")
            .max(static_cast<double>(live.size()));
      }
    }

    // Throttled live progress (works during backoff lulls too).
    if (config.onStatusLine) {
      const double statusNow = monotonicSeconds();
      if (statusNow >= nextStatusAt) {
        config.onStatusLine(ledger->renderStatusLine(statusNow));
        nextStatusAt =
            statusNow + std::max(50, config.statusIntervalMs) / 1000.0;
      }
    }

    if (live.empty()) {
      // Nothing running: either everything is done, or every queued design
      // is in backoff — sleep until the earliest becomes ready.
      double wakeAt = -1.0;
      for (const DesignProgress& p : progress) {
        if (p.queued && !p.done && (wakeAt < 0.0 || p.readyAt < wakeAt)) {
          wakeAt = p.readyAt;
        }
      }
      if (wakeAt < 0.0) break;  // defensive: no work left at all
      const double sleepFor = wakeAt - monotonicSeconds();
      if (sleepFor > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::min(sleepFor, 0.25)));
      }
      continue;
    }

    // Poll timeout: the nearest of any worker deadline or retry wakeup,
    // capped so timeout enforcement stays responsive.
    double timeoutAt = -1.0;
    for (const LiveWorker& worker : live) {
      const double deadline = worker.graceDeadline > 0.0 ? worker.graceDeadline
                                                         : worker.killDeadline;
      if (deadline > 0.0 && (timeoutAt < 0.0 || deadline < timeoutAt)) {
        timeoutAt = deadline;
      }
    }
    for (const DesignProgress& p : progress) {
      if (p.queued && !p.done && (timeoutAt < 0.0 || p.readyAt < timeoutAt)) {
        timeoutAt = p.readyAt;
      }
    }
    int pollMs = 250;
    if (timeoutAt > 0.0) {
      const double delta = timeoutAt - monotonicSeconds();
      pollMs = std::clamp(static_cast<int>(delta * 1000.0) + 1, 1, 250);
    }

    std::vector<pollfd> pollFds;
    pollFds.reserve(live.size());
    for (const LiveWorker& worker : live) {
      pollFds.push_back({worker.fd, POLLIN, 0});
    }
    const int ready = ::poll(pollFds.data(),
                             static_cast<nfds_t>(pollFds.size()), pollMs);
    if (ready < 0 && errno != EINTR) {
      // poll itself failing is unrecoverable for multiplexing; fall back to
      // a short sleep so the deadline sweep below still runs.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    // Read ready pipes; remember EOFs (reap below, outside the fd loop).
    for (std::size_t s = 0; s < live.size(); ++s) {
      if (ready > 0 &&
          (pollFds[s].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        live[s].eof = drainWorkerPipe(live[s]);
        // Fold telemetry the moment it lands: heartbeats must reach the
        // ledger before the stall sweep, not at reap time.
        processTelemetry(live[s]);
      }
    }
    for (std::size_t s = live.size(); s-- > 0;) {
      if (live[s].eof) reapWorker(s);
    }

    // Enforce timeouts: SIGTERM at the deadline, SIGKILL after the grace.
    const double sweep = monotonicSeconds();
    for (LiveWorker& worker : live) {
      if (worker.killDeadline > 0.0 && worker.graceDeadline == 0.0 &&
          sweep >= worker.killDeadline) {
        worker.timedOut = true;
        worker.graceDeadline = sweep + grace;
        ::kill(worker.pid, SIGTERM);
      } else if (worker.graceDeadline > 0.0 && sweep >= worker.graceDeadline) {
        worker.graceDeadline = sweep + 3600.0;  // kill once; EOF follows
        bumpCounter("supervisor.kills");
        ::kill(worker.pid, SIGKILL);
      }
    }

    // Stall sweep: a worker whose sampler thread stopped beating is hung
    // (the sampler beats even while compute is stuck), not merely slow —
    // flag it well before the wall-clock timeout escalates to SIGTERM.
    if (stallThreshold > 0.0) {
      for (const std::string& design :
           ledger->detectStalls(monotonicSeconds(), stallThreshold)) {
        MCLG_LOG_WARN() << "worker for design '" << design
                        << "' stopped heartbeating (stalled, not just slow)";
      }
    }
  }

  if (config.onStatusLine) {
    config.onStatusLine(ledger->renderStatusLine(monotonicSeconds()));
  }
  return results;
}

}  // namespace mclg
