// Min-cost perfect bipartite matching on sparse edge lists, solved as an
// MCF (the reduction the paper uses for its §3.2 maximum-displacement
// optimization).
#pragma once

#include <optional>
#include <vector>

#include "flow/mcf.hpp"

namespace mclg {

struct AssignmentEdge {
  int left = 0;
  int right = 0;
  CostValue cost = 0;
};

/// Perfect matching of all `numLeft` left vertices into distinct right
/// vertices (numRight >= numLeft) minimizing total cost. Returns
/// match[left] = right, or nullopt when no perfect matching exists.
std::optional<std::vector<int>> solveAssignment(
    int numLeft, int numRight, const std::vector<AssignmentEdge>& edges);

}  // namespace mclg
