// Wire protocol between the batch supervisor (flow/supervisor.{hpp,cpp})
// and its fork/exec'd per-design workers, plus the WorkerStatus vocabulary
// shared by the in-process batch runner so both execution modes report
// design outcomes uniformly.
//
// A worker inherits one pipe write end and streams *frames* over it:
//
//   +--------+--------+--------+----------------------+
//   | magic  | type   | length | payload (length B)   |
//   | u32 LE | u32 LE | u32 LE |                      |
//   +--------+--------+--------+----------------------+
//
// Frame types: Result (a serialized WorkerResult — status, timing,
// placement hash, score, error text) and Report (the worker's versioned
// run-report JSON, docs/OBSERVABILITY.md, passed through verbatim) end a
// run; Heartbeat (pid, phase, wall/CPU time, RSS), MetricsDelta
// (delta-encoded counter/gauge snapshots, obs/metrics_delta.hpp), and
// TraceChunk (serialized trace spans, obs/trace_merge.hpp) stream live
// telemetry while the run is in flight. The supervisor reads frames
// incrementally (FrameReader copes with arbitrary read() fragmentation)
// and never trusts the worker: a bad magic, an oversized length, an
// unknown frame type, or a truncated payload surfaces as
// WorkerStatus::Protocol, not as supervisor memory corruption.
//
// The legalization daemon (tools/mclg_serve, flow/serve/) reuses the same
// envelope in the opposite direction: clients stream *request* frames
// (LoadDesign, EcoDelta, Commit, Rollback, Query, Shutdown — payload
// codecs in flow/serve/serve_protocol.hpp) and the daemon answers each
// with one Response frame. The full wire format, including byte layouts
// and the rules for adding frame types, is documented normatively in
// docs/PROTOCOL.md.
//
// Exit codes reuse the guard contract (GuardExitCode, legal/guard/):
// workerStatusFromExit / workerStatusToExit map between the 0/2/3/4/5
// process vocabulary and WorkerStatus, so a worker that dies before
// framing anything still reports a meaningful outcome through waitpid.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mclg {

/// Outcome of one design run, uniform across the in-process batch runner
/// and supervised worker processes. The first six values mirror the
/// GuardExitCode contract; the rest are supervisor-observed outcomes a
/// process can only have *done to it* (signal, timeout, spawn failure).
enum class WorkerStatus {
  Ok,             ///< legalized, fully legal (exit 0)
  GuardDegraded,  ///< legalized only after guard degradation (exit 2)
  Infeasible,     ///< infeasible cells remain / not legal (exit 3)
  ParseError,     ///< input failed to parse (exit 4)
  Exception,      ///< escaped exception / internal error (exit 5)
  IoError,        ///< usage or IO failure, e.g. unwritable output (exit 1)
  Crashed,        ///< worker killed by a signal (WorkerResult::signal)
  Timeout,        ///< supervisor killed it after --design-timeout
  Protocol,       ///< worker exited without a parseable Result frame
  SpawnFailed,    ///< fork/exec itself failed
};

const char* workerStatusName(WorkerStatus status);

/// Did the design end in a usable placement? (Ok or GuardDegraded.)
bool workerStatusOk(WorkerStatus status);

/// Should the supervisor re-run the design? Only non-deterministic process
/// deaths are worth retrying: crashes, timeouts, internal errors, protocol
/// violations, spawn failures. Deterministic failures (parse, infeasible,
/// IO) would fail identically again.
bool workerStatusRetryable(WorkerStatus status);

/// Map a worker's process exit code (guard contract 0/2/3/4/5, 1 = usage)
/// to a status; unknown codes map to Exception.
WorkerStatus workerStatusFromExit(int exitCode);

/// Inverse mapping for worker mains: the exit code a worker should return
/// for a status it computed in-process.
int workerStatusToExit(WorkerStatus status);

// ---- Frames ----------------------------------------------------------------

/// Wire values are load-bearing (docs/PROTOCOL.md): never renumber, only
/// append — FrameReader treats any value outside [Result, Response] as
/// sticky corruption, which is exactly how an old reader rejects a frame
/// type it was never taught.
enum class FrameType : std::uint32_t {
  Result = 1,       ///< serialized WorkerResult
  Report = 2,       ///< run-report JSON, verbatim
  Heartbeat = 3,    ///< serialized WorkerHeartbeat (liveness + phase)
  MetricsDelta = 4, ///< delta-encoded metrics snapshot (obs/metrics_delta)
  TraceChunk = 5,   ///< serialized trace spans (obs/trace_merge)
  // ---- Serving requests (client -> mclg_serve; flow/serve/) ----
  LoadDesign = 6,   ///< register a tenant with a full .mclg design text
  EcoDelta = 7,     ///< move/resize/add ops to ECO-relegalize incrementally
  Commit = 8,       ///< promote the tenant's placement to its new snapshot
  Rollback = 9,     ///< discard uncommitted state; restore the snapshot
  Query = 10,       ///< read-only: status / score / report / design text
  Shutdown = 11,    ///< end the connection (or, if allowed, the daemon)
  Response = 12,    ///< daemon -> client: one reply per request, in order
};

inline constexpr std::uint32_t kFrameMagic = 0x4d434c47u;  // "MCLG"
/// Upper bound on a frame payload the supervisor will accept (a run report
/// with full metrics is ~10 KiB; 16 MiB leaves three orders of headroom
/// while still bounding a corrupted length field).
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// What a worker knows about its own run, serialized into a Result frame.
/// The supervisor merges this with what only it can observe (exit code,
/// signal, timeout) into the final BatchDesignResult.
struct WorkerResult {
  WorkerStatus status = WorkerStatus::Exception;
  double seconds = 0.0;            ///< wall clock of the pipeline
  std::uint64_t placementHash = 0;
  double score = 0.0;              ///< contest score when evaluated, else 0
  int numCells = 0;
  std::string error;               ///< failure detail when !workerStatusOk
};

/// Serialize / parse the Result payload (newline-separated `key=value`
/// text; the error value is sanitized to a single line). parse returns
/// false on any malformed payload.
std::string serializeWorkerResult(const WorkerResult& result);
bool parseWorkerResult(const std::string& payload, WorkerResult* result);

/// Periodic liveness beacon emitted by the worker's sampler thread
/// (obs/sampler.hpp). Because the sampler beats independently of the
/// compute thread, a missing heartbeat means the *process* is wedged
/// (hung), while flowing heartbeats with a long wall clock merely mean
/// the design is slow — the distinction behind supervisor stall detection
/// (docs/ROBUSTNESS.md).
struct WorkerHeartbeat {
  int pid = 0;
  std::uint64_t sequence = 0;   ///< monotonic per-worker beat counter
  std::string phase;            ///< coarse run phase ("parse", "legalize", ...)
  double wallSeconds = 0.0;     ///< wall clock since the run started
  double cpuSeconds = 0.0;      ///< process CPU time (utime+stime)
  long rssKb = 0;               ///< resident set size, KiB (0 if unknown)
};

/// Serialize / parse the Heartbeat payload (same newline-separated
/// `key=value` shape as WorkerResult; unknown keys skipped, the phase is
/// sanitized to one line). parse returns false on malformed payloads.
std::string serializeWorkerHeartbeat(const WorkerHeartbeat& heartbeat);
bool parseWorkerHeartbeat(const std::string& payload,
                          WorkerHeartbeat* heartbeat);

/// Write one frame to `fd`, restarting on EINTR. Returns false on any
/// write error (e.g. the supervisor died and the pipe broke) — workers
/// treat that as fatal-but-quiet and still exit with their status code.
bool writeFrame(int fd, FrameType type, const std::string& payload);

/// Incremental frame parser: feed() raw bytes in any fragmentation, take()
/// complete frames out. Corruption (bad magic / oversized length / unknown
/// frame type) is sticky: corrupted() stays set and no further frames are
/// produced.
class FrameReader {
 public:
  struct Frame {
    FrameType type = FrameType::Result;
    std::string payload;
  };

  void feed(const char* data, std::size_t size);
  /// Frames completed so far, in arrival order; the internal list is
  /// cleared. Never returns frames after corruption.
  std::vector<Frame> take();
  bool corrupted() const { return corrupted_; }
  /// Bytes buffered but not yet forming a complete frame — nonzero at
  /// worker EOF means a truncated frame (WorkerStatus::Protocol).
  std::size_t pendingBytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  std::vector<Frame> frames_;
  bool corrupted_ = false;
};

}  // namespace mclg
