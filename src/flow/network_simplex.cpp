// Network simplex for min-cost flow, first-eligible (round-robin) pivot rule.
//
// Follows the classic primal network simplex structure (cf. LEMON's
// NetworkSimplex and Király & Kovács, arXiv:1207.6381, which the paper cites
// as its solver): an artificial root node is connected to every node by a
// big-cost artificial arc forming the initial spanning tree; pivots push
// flow around the cycle closed by an eligible non-tree arc and exchange it
// with a blocking tree arc. The leaving-arc tie-break (strict '<' on the
// source-side path, '<=' on the target-side path) keeps the basis strongly
// feasible, which prevents cycling on degenerate instances.
//
// The spanning tree is stored as parent/pred-arc plus first-child/
// next-sibling lists; a pivot re-roots and re-potentials only the subtree
// that moves, so the per-pivot cost is proportional to that subtree.

#include <algorithm>
#include <cmath>

#include "flow/mcf.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace mclg {

int McfProblem::addArc(int src, int dst, FlowValue cap, CostValue cost) {
  MCLG_ASSERT(src >= 0 && src < numNodes(), "arc source out of range");
  MCLG_ASSERT(dst >= 0 && dst < numNodes(), "arc target out of range");
  MCLG_ASSERT(src != dst, "self-loop arcs are not supported");
  MCLG_ASSERT(cap >= 0, "negative arc capacity");
  arcs_.push_back({src, dst, cap, cost});
  return static_cast<int>(arcs_.size()) - 1;
}

long double McfSolution::costOf(const McfProblem& problem,
                                const std::vector<FlowValue>& flow) {
  long double total = 0.0L;
  for (int a = 0; a < problem.numArcs(); ++a) {
    total += static_cast<long double>(flow[a]) *
             static_cast<long double>(problem.arc(a).cost);
  }
  return total;
}

namespace {

constexpr int kStateTree = 0;
constexpr int kStateLower = 1;
constexpr int kStateUpper = -1;

class Simplex {
 public:
  explicit Simplex(const McfProblem& problem) : p_(problem) {}

  McfSolution run() {
    build();
    McfSolution sol;
    const McfStatus status = optimize();
    sol.status = status;
    if (status != McfStatus::Optimal) return sol;
    sol.flow.assign(flow_.begin(), flow_.begin() + p_.numArcs());
    sol.potential.assign(pi_.begin(), pi_.begin() + p_.numNodes());
    sol.totalCost = McfSolution::costOf(p_, sol.flow);
    return sol;
  }

 private:
  void build() {
    n_ = p_.numNodes();
    m_ = p_.numArcs();
    root_ = n_;
    const int allArcs = m_ + n_;
    src_.resize(allArcs);
    dst_.resize(allArcs);
    cap_.resize(allArcs);
    cost_.resize(allArcs);
    flow_.assign(allArcs, 0);
    state_.assign(allArcs, kStateLower);

    CostValue maxCost = 1;
    for (int a = 0; a < m_; ++a) {
      const auto& arc = p_.arc(a);
      src_[a] = arc.src;
      dst_[a] = arc.dst;
      cap_[a] = arc.cap;
      cost_[a] = arc.cost;
      maxCost = std::max<CostValue>(maxCost, std::llabs(arc.cost));
    }
    // Big-M cost for artificial arcs: larger than any simple-path cost.
    artCost_ = (maxCost + 1) * static_cast<CostValue>(n_ + 1);

    parent_.assign(n_ + 1, root_);
    predArc_.assign(n_ + 1, -1);
    firstChild_.assign(n_ + 1, -1);
    nextSibling_.assign(n_ + 1, -1);
    prevSibling_.assign(n_ + 1, -1);
    pi_.assign(n_ + 1, 0);
    parent_[root_] = -1;

    for (int v = 0; v < n_; ++v) {
      const int a = m_ + v;
      const FlowValue b = p_.supply(v);
      if (b >= 0) {
        src_[a] = v;
        dst_[a] = root_;
        flow_[a] = b;
        pi_[v] = -artCost_;
      } else {
        src_[a] = root_;
        dst_[a] = v;
        flow_[a] = -b;
        pi_[v] = artCost_;
      }
      cap_[a] = kInfiniteCap;
      cost_[a] = artCost_;
      state_[a] = kStateTree;
      predArc_[v] = a;
      attachChild(root_, v);
    }
    nextScan_ = 0;
  }

  void attachChild(int parent, int child) {
    parent_[child] = parent;
    prevSibling_[child] = -1;
    nextSibling_[child] = firstChild_[parent];
    if (firstChild_[parent] >= 0) prevSibling_[firstChild_[parent]] = child;
    firstChild_[parent] = child;
  }

  void detachChild(int child) {
    const int parent = parent_[child];
    if (prevSibling_[child] >= 0) {
      nextSibling_[prevSibling_[child]] = nextSibling_[child];
    } else {
      firstChild_[parent] = nextSibling_[child];
    }
    if (nextSibling_[child] >= 0) {
      prevSibling_[nextSibling_[child]] = prevSibling_[child];
    }
    prevSibling_[child] = nextSibling_[child] = -1;
    parent_[child] = -1;
  }

  CostValue reducedCost(int a) const {
    return cost_[a] + pi_[src_[a]] - pi_[dst_[a]];
  }

  bool eligible(int a) const {
    if (state_[a] == kStateTree) return false;
    const CostValue rc = reducedCost(a);
    return (state_[a] == kStateLower && rc < 0) ||
           (state_[a] == kStateUpper && rc > 0);
  }

  /// First-eligible pivot rule: resume the scan where the last one stopped.
  int findEnteringArc() {
    const int allArcs = m_ + n_;
    for (int step = 0; step < allArcs; ++step) {
      const int a = (nextScan_ + step) % allArcs;
      if (eligible(a)) {
        nextScan_ = (a + 1) % allArcs;
        return a;
      }
    }
    return -1;
  }

  /// true iff arc predArc_[u] points from u to its parent.
  bool forward(int u) const { return src_[predArc_[u]] == u; }

  int findJoin(int u, int v) const {
    // Subtree sizes strictly increase toward the root, so repeatedly lifting
    // the smaller-subtree endpoint converges to the lowest common ancestor.
    while (u != v) {
      if (subtreeSize(u) < subtreeSize(v)) {
        u = parent_[u];
      } else {
        v = parent_[v];
      }
    }
    return u;
  }

  int subtreeSize(int u) const { return succNum_[u]; }

  void recomputeSubtreeSizes() {
    // succNum is only needed for LCA; maintain it incrementally in pivots.
    succNum_.assign(n_ + 1, 1);
    // initial tree: all nodes children of root
    succNum_[root_] = n_ + 1;
  }

  McfStatus optimize() {
    recomputeSubtreeSizes();
    // Pivots are counted locally and flushed once per solve, keeping the
    // inner loop free of atomics.
    long long pivots = 0;
    McfStatus status = McfStatus::Optimal;
    for (;;) {
      const int inArc = findEnteringArc();
      if (inArc < 0) break;
      ++pivots;
      if (!pivot(inArc)) {
        status = McfStatus::Unbounded;
        break;
      }
    }
    if (status == McfStatus::Optimal) {
      for (int v = 0; v < n_; ++v) {
        if (flow_[m_ + v] != 0) {
          status = McfStatus::Infeasible;
          break;
        }
      }
    }
    if (obs::metricsEnabled()) {
      obs::counter("mcf.simplex.solves").add();
      obs::counter("mcf.simplex.pivots").add(pivots);
    }
    return status;
  }

  /// Returns false iff the pivot reveals an uncapacitated negative cycle.
  bool pivot(int inArc) {
    const int u = src_[inArc];
    const int v = dst_[inArc];
    const int first = state_[inArc] == kStateLower ? u : v;
    const int second = state_[inArc] == kStateLower ? v : u;
    const int join = findJoin(u, v);

    // --- find leaving arc (strongly feasible rule) ---
    FlowValue delta =
        cap_[inArc] >= kInfiniteCap ? kInfiniteCap : cap_[inArc];
    int result = 0;  // 0: bound flip, 1: leave on first path, 2: second path
    int uOut = -1;
    for (int w = first; w != join; w = parent_[w]) {
      const int a = predArc_[w];
      const FlowValue d =
          forward(w) ? flow_[a]
                     : (cap_[a] >= kInfiniteCap ? kInfiniteCap
                                                : cap_[a] - flow_[a]);
      if (d < delta) {
        delta = d;
        result = 1;
        uOut = w;
      }
    }
    for (int w = second; w != join; w = parent_[w]) {
      const int a = predArc_[w];
      const FlowValue d =
          forward(w) ? (cap_[a] >= kInfiniteCap ? kInfiniteCap
                                                : cap_[a] - flow_[a])
                     : flow_[a];
      if (d <= delta) {
        delta = d;
        result = 2;
        uOut = w;
      }
    }
    if (delta >= kInfiniteCap) return false;  // unbounded

    // --- augment along the cycle ---
    if (delta > 0) {
      const FlowValue val = static_cast<FlowValue>(state_[inArc]) * delta;
      flow_[inArc] += val;
      for (int w = src_[inArc]; w != join; w = parent_[w]) {
        flow_[predArc_[w]] += forward(w) ? -val : val;
      }
      for (int w = dst_[inArc]; w != join; w = parent_[w]) {
        flow_[predArc_[w]] += forward(w) ? val : -val;
      }
    }

    if (result == 0) {
      // Bound flip: the entering arc itself was blocking.
      state_[inArc] = -state_[inArc];
      return true;
    }

    // --- exchange arcs and restructure the tree ---
    const int outArc = predArc_[uOut];
    state_[outArc] = flow_[outArc] == 0 ? kStateLower : kStateUpper;

    // The disconnected subtree T2 (rooted at uOut) contains `first` when the
    // leaving arc was found on the first path, `second` otherwise. Re-root
    // T2 at that endpoint and hang it from the other side via the entering
    // arc.
    const int newRoot = result == 1 ? first : second;
    const int newParent = result == 1 ? second : first;

    // Update subtree sizes along the old path uOut..root before surgery.
    const int movedSize = succNum_[uOut];
    for (int w = parent_[uOut]; w != -1; w = parent_[w]) {
      succNum_[w] -= movedSize;
    }
    detachChild(uOut);

    // Re-root T2 at newRoot by reversing parent pointers on the path
    // newRoot -> uOut.
    reroot(newRoot, uOut);

    // Attach T2 under newParent via the entering arc.
    attachChild(newParent, newRoot);
    predArc_[newRoot] = inArc;
    state_[inArc] = kStateTree;
    for (int w = newParent; w != -1; w = parent_[w]) {
      succNum_[w] += movedSize;
    }

    // Update potentials of all nodes in T2 so the entering arc's reduced
    // cost becomes zero (sigma computed with the *old* potentials).
    const CostValue sigma = dst_[inArc] == newRoot
                                ? reducedCost(inArc)
                                : -reducedCost(inArc);
    addPotential(newRoot, sigma);
    return true;
  }

  /// Reverse parent pointers along the path from newRoot up to oldRoot,
  /// keeping predArc consistent (arc of each reversed edge moves to the new
  /// child) and subtree sizes correct within the moved subtree.
  void reroot(int newRoot, int oldRoot) {
    if (newRoot == oldRoot) return;
    // Collect the path newRoot -> oldRoot.
    path_.clear();
    for (int w = newRoot; w != oldRoot; w = parent_[w]) path_.push_back(w);
    path_.push_back(oldRoot);
    // Reverse each edge (path_[i] -> path_[i+1]) to (path_[i+1] -> path_[i]).
    for (std::size_t i = path_.size(); i-- > 1;) {
      const int child = path_[i - 1];
      const int par = path_[i];
      // Remove child from par's children (parent pointers still old).
      detachChild(child);
      // par becomes child of `child`.
      attachChild(child, par);
      predArc_[par] = predArc_[child];
    }
    predArc_[newRoot] = -1;
    // Recompute subtree sizes along the reversed path: every former ancestor
    // loses the nodes that are now above it.
    // After reversal, path_[k] (k>0) is a child of path_[k-1]. Sizes:
    // succNum of the whole moved tree stays at the new root.
    const int total = succNum_[oldRoot];
    // Walk from oldRoot down the reversed path recomputing sizes.
    // Old succNum values along the path are still the pre-reversal ones for
    // indices > current; compute new sizes bottom-up on the path.
    // New size of path_[i] = total - (old size of path_[i-1]) for i >= 1,
    // where "old size" is the pre-reversal subtree size.
    // Save old sizes first.
    oldSizes_.resize(path_.size());
    for (std::size_t i = 0; i < path_.size(); ++i) {
      oldSizes_[i] = succNum_[path_[i]];
    }
    succNum_[newRoot] = total;
    for (std::size_t i = 1; i < path_.size(); ++i) {
      succNum_[path_[i]] = total - oldSizes_[i - 1];
    }
  }

  /// Add sigma to the potential of every node in the subtree rooted at v.
  void addPotential(int v, CostValue sigma) {
    if (sigma == 0) return;
    stack_.clear();
    stack_.push_back(v);
    while (!stack_.empty()) {
      const int w = stack_.back();
      stack_.pop_back();
      pi_[w] += sigma;
      for (int c = firstChild_[w]; c != -1; c = nextSibling_[c]) {
        stack_.push_back(c);
      }
    }
  }

  const McfProblem& p_;
  int n_ = 0, m_ = 0, root_ = 0;
  CostValue artCost_ = 0;
  std::vector<int> src_, dst_;
  std::vector<FlowValue> cap_, flow_;
  std::vector<CostValue> cost_, pi_;
  std::vector<int> state_;
  std::vector<int> parent_, predArc_;
  std::vector<int> firstChild_, nextSibling_, prevSibling_;
  std::vector<int> succNum_;
  std::vector<int> path_, stack_;
  std::vector<int> oldSizes_;
  int nextScan_ = 0;
};

}  // namespace

McfSolution NetworkSimplex::solve(const McfProblem& problem) {
  FlowValue total = 0;
  for (int v = 0; v < problem.numNodes(); ++v) total += problem.supply(v);
  if (total != 0) {
    McfSolution sol;
    sol.status = McfStatus::Infeasible;
    return sol;
  }
  Simplex simplex(problem);
  return simplex.run();
}

bool verifyMcfOptimality(const McfProblem& problem, const McfSolution& sol) {
  if (sol.status != McfStatus::Optimal) return false;
  if (static_cast<int>(sol.flow.size()) != problem.numArcs()) return false;
  if (static_cast<int>(sol.potential.size()) != problem.numNodes()) {
    return false;
  }
  std::vector<FlowValue> net(problem.numNodes(), 0);
  for (int a = 0; a < problem.numArcs(); ++a) {
    const auto& arc = problem.arc(a);
    const FlowValue f = sol.flow[a];
    if (f < 0 || f > arc.cap) return false;
    net[arc.src] += f;
    net[arc.dst] -= f;
  }
  for (int v = 0; v < problem.numNodes(); ++v) {
    if (net[v] != problem.supply(v)) return false;
  }
  // Complementary slackness.
  for (int a = 0; a < problem.numArcs(); ++a) {
    const auto& arc = problem.arc(a);
    const CostValue rc =
        arc.cost + sol.potential[arc.src] - sol.potential[arc.dst];
    if (rc > 0 && sol.flow[a] != 0) return false;
    if (rc < 0 && sol.flow[a] != arc.cap) return false;
  }
  return true;
}

}  // namespace mclg
