// Network simplex for min-cost flow, first-eligible (round-robin) pivot rule.
//
// Follows the classic primal network simplex structure (cf. LEMON's
// NetworkSimplex and Király & Kovács, arXiv:1207.6381, which the paper cites
// as its solver): an artificial root node is connected to every node by a
// big-cost artificial arc forming the initial spanning tree; pivots push
// flow around the cycle closed by an eligible non-tree arc and exchange it
// with a blocking tree arc. The leaving-arc tie-break (strict '<' on the
// source-side path, '<=' on the target-side path) keeps the basis strongly
// feasible, which prevents cycling on degenerate instances.
//
// The spanning tree is stored as parent/pred-arc plus first-child/
// next-sibling lists; a pivot re-roots and re-potentials only the subtree
// that moves, so the per-pivot cost is proportional to that subtree.
//
// The solver lives in NetworkSimplexSolver::Impl so its ~15 working arrays
// survive between solves; the legalizer solves hundreds of small problems
// back to back and the per-solve allocations used to dominate. The retained
// state doubles as the warm-start basis: after a successful solve the
// spanning tree, flows, and arc states describe an optimal strongly feasible
// basis, which stays primal feasible for any re-solve that changes only the
// arc costs (see solveWarm).

#include <algorithm>
#include <cmath>

#include "flow/mcf.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace mclg {

int McfProblem::addArc(int src, int dst, FlowValue cap, CostValue cost) {
  MCLG_ASSERT(src >= 0 && src < numNodes(), "arc source out of range");
  MCLG_ASSERT(dst >= 0 && dst < numNodes(), "arc target out of range");
  MCLG_ASSERT(src != dst, "self-loop arcs are not supported");
  MCLG_ASSERT(cap >= 0, "negative arc capacity");
  arcs_.push_back({src, dst, cap, cost});
  return static_cast<int>(arcs_.size()) - 1;
}

long double McfSolution::costOf(const McfProblem& problem,
                                const std::vector<FlowValue>& flow) {
  long double total = 0.0L;
  for (int a = 0; a < problem.numArcs(); ++a) {
    total += static_cast<long double>(flow[a]) *
             static_cast<long double>(problem.arc(a).cost);
  }
  return total;
}

namespace {

constexpr int kStateTree = 0;
constexpr int kStateLower = 1;
constexpr int kStateUpper = -1;

}  // namespace

struct NetworkSimplexSolver::Impl {
  enum class PivotResult { Optimal, Unbounded, LimitExceeded };

  McfSolution runCold(const McfProblem& p) {
    build(p);
    long long pivots = 0;
    const PivotResult r = pivotLoop(-1, &pivots);
    ++stats_.coldSolves;
    stats_.coldPivots += pivots;
    flushCounters(pivots, /*warm=*/false);
    return extract(p, r);
  }

  McfSolution runWarm(const McfProblem& p) {
    if (!warmApplicable(p)) {
      ++stats_.warmRejected;
      if (obs::metricsEnabled()) obs::counter("mcf.simplex.warm.rejected").add();
      return runCold(p);
    }
    rewarm(p);
    // Safety bound: a warm basis near the new optimum needs few pivots. A
    // pathological cost change can make resuming slower than restarting, so
    // past this bound we abandon the basis and solve cold.
    const long long limit = 2LL * (m_ + n_) + 64;
    long long pivots = 0;
    const PivotResult r = pivotLoop(limit, &pivots);
    if (r == PivotResult::LimitExceeded) {
      ++stats_.warmRejected;
      if (obs::metricsEnabled()) obs::counter("mcf.simplex.warm.rejected").add();
      return runCold(p);
    }
    ++stats_.warmSolves;
    stats_.warmPivots += pivots;
    flushCounters(pivots, /*warm=*/true);
    return extract(p, r);
  }

  // --- setup ---------------------------------------------------------------

  void build(const McfProblem& p) {
    n_ = p.numNodes();
    m_ = p.numArcs();
    root_ = n_;
    const int allArcs = m_ + n_;
    src_.resize(static_cast<std::size_t>(allArcs));
    dst_.resize(static_cast<std::size_t>(allArcs));
    cap_.resize(static_cast<std::size_t>(allArcs));
    cost_.resize(static_cast<std::size_t>(allArcs));
    flow_.assign(static_cast<std::size_t>(allArcs), 0);
    state_.assign(static_cast<std::size_t>(allArcs), kStateLower);

    CostValue maxCost = 1;
    for (int a = 0; a < m_; ++a) {
      const auto& arc = p.arc(a);
      src_[a] = arc.src;
      dst_[a] = arc.dst;
      cap_[a] = arc.cap;
      cost_[a] = arc.cost;
      maxCost = std::max<CostValue>(maxCost, std::llabs(arc.cost));
    }
    // Big-M cost for artificial arcs: larger than any simple-path cost.
    artCost_ = (maxCost + 1) * static_cast<CostValue>(n_ + 1);

    parent_.assign(static_cast<std::size_t>(n_) + 1, root_);
    predArc_.assign(static_cast<std::size_t>(n_) + 1, -1);
    firstChild_.assign(static_cast<std::size_t>(n_) + 1, -1);
    nextSibling_.assign(static_cast<std::size_t>(n_) + 1, -1);
    prevSibling_.assign(static_cast<std::size_t>(n_) + 1, -1);
    pi_.assign(static_cast<std::size_t>(n_) + 1, 0);
    parent_[root_] = -1;

    for (int v = 0; v < n_; ++v) {
      const int a = m_ + v;
      const FlowValue b = p.supply(v);
      if (b >= 0) {
        src_[a] = v;
        dst_[a] = root_;
        flow_[a] = b;
        pi_[v] = -artCost_;
      } else {
        src_[a] = root_;
        dst_[a] = v;
        flow_[a] = -b;
        pi_[v] = artCost_;
      }
      cap_[a] = kInfiniteCap;
      cost_[a] = artCost_;
      state_[a] = kStateTree;
      predArc_[v] = a;
      attachChild(root_, v);
    }
    // succNum is only needed for LCA; pivots maintain it incrementally.
    succNum_.assign(static_cast<std::size_t>(n_) + 1, 1);
    succNum_[root_] = n_ + 1;
    nextScan_ = 0;
  }

  /// A retained basis stays valid for a new problem iff the network is the
  /// same graph with the same capacities and supplies (primal feasibility of
  /// the old flow depends on exactly those; costs are free to change).
  bool warmApplicable(const McfProblem& p) const {
    if (!hasBasis_) return false;
    if (p.numNodes() != n_ || p.numArcs() != m_) return false;
    for (int a = 0; a < m_; ++a) {
      const auto& arc = p.arc(a);
      if (arc.src != src_[a] || arc.dst != dst_[a] || arc.cap != cap_[a]) {
        return false;
      }
    }
    for (int v = 0; v < n_; ++v) {
      if (p.supply(v) != supplySnap_[static_cast<std::size_t>(v)]) {
        return false;
      }
    }
    return true;
  }

  /// Load the new costs onto the retained basis and make the basis dual
  /// consistent again: potentials are recomputed from the tree so every tree
  /// arc has zero reduced cost, and subtree sizes are rebuilt (O(n)). Flows,
  /// arc states, and the tree itself are untouched — they are exactly the
  /// previous optimal basis, which is still primal and strongly feasible.
  void rewarm(const McfProblem& p) {
    CostValue maxCost = 1;
    for (int a = 0; a < m_; ++a) {
      cost_[a] = p.arc(a).cost;
      maxCost = std::max<CostValue>(maxCost, std::llabs(cost_[a]));
    }
    artCost_ = (maxCost + 1) * static_cast<CostValue>(n_ + 1);
    for (int v = 0; v < n_; ++v) cost_[m_ + v] = artCost_;

    // Pre-order over the retained tree: child potentials follow from the
    // parent through the (zero-reduced-cost) tree arc.
    path_.clear();
    stack_.clear();
    stack_.push_back(root_);
    pi_[root_] = 0;
    while (!stack_.empty()) {
      const int w = stack_.back();
      stack_.pop_back();
      path_.push_back(w);
      for (int c = firstChild_[w]; c != -1; c = nextSibling_[c]) {
        const int a = predArc_[c];
        pi_[c] = src_[a] == c ? pi_[w] - cost_[a] : pi_[w] + cost_[a];
        stack_.push_back(c);
      }
    }
    succNum_.assign(static_cast<std::size_t>(n_) + 1, 1);
    for (std::size_t i = path_.size(); i-- > 1;) {
      succNum_[parent_[path_[i]]] += succNum_[path_[i]];
    }
    nextScan_ = 0;
  }

  // --- simplex core --------------------------------------------------------

  void attachChild(int parent, int child) {
    parent_[child] = parent;
    prevSibling_[child] = -1;
    nextSibling_[child] = firstChild_[parent];
    if (firstChild_[parent] >= 0) prevSibling_[firstChild_[parent]] = child;
    firstChild_[parent] = child;
  }

  void detachChild(int child) {
    const int parent = parent_[child];
    if (prevSibling_[child] >= 0) {
      nextSibling_[prevSibling_[child]] = nextSibling_[child];
    } else {
      firstChild_[parent] = nextSibling_[child];
    }
    if (nextSibling_[child] >= 0) {
      prevSibling_[nextSibling_[child]] = prevSibling_[child];
    }
    prevSibling_[child] = nextSibling_[child] = -1;
    parent_[child] = -1;
  }

  CostValue reducedCost(int a) const {
    return cost_[a] + pi_[src_[a]] - pi_[dst_[a]];
  }

  bool eligible(int a) const {
    if (state_[a] == kStateTree) return false;
    const CostValue rc = reducedCost(a);
    return (state_[a] == kStateLower && rc < 0) ||
           (state_[a] == kStateUpper && rc > 0);
  }

  /// First-eligible pivot rule: resume the scan where the last one stopped.
  /// Two plain ranges instead of one modulo walk — this scan is the solver's
  /// innermost loop and the per-arc division was measurable.
  int findEnteringArc() {
    const int allArcs = m_ + n_;
    for (int a = nextScan_; a < allArcs; ++a) {
      if (eligible(a)) {
        nextScan_ = a + 1 == allArcs ? 0 : a + 1;
        return a;
      }
    }
    for (int a = 0; a < nextScan_; ++a) {
      if (eligible(a)) {
        nextScan_ = a + 1;
        return a;
      }
    }
    return -1;
  }

  /// true iff arc predArc_[u] points from u to its parent.
  bool forward(int u) const { return src_[predArc_[u]] == u; }

  /// One tree-path step of the pivot cycle, recorded while climbing to the
  /// lowest common ancestor so the leaving-arc search and the augmentation
  /// can replay the paths from flat arrays instead of re-chasing parent
  /// pointers (the walks are the pivot's cache-miss hotspot).
  struct CycleStep {
    int arc;
    int node;  // the child endpoint of `arc` (the walked-from node)
    bool fwd;  // src_[arc] == node
  };

  /// Climb both endpoints to their LCA, recording each side's path bottom-up.
  /// Subtree sizes strictly increase toward the root, so repeatedly lifting
  /// the smaller-subtree endpoint converges to the lowest common ancestor.
  int findJoin(int u, int v) {
    pathU_.clear();
    pathV_.clear();
    while (u != v) {
      if (succNum_[u] < succNum_[v]) {
        const int a = predArc_[u];
        pathU_.push_back({a, u, src_[a] == u});
        u = parent_[u];
      } else {
        const int a = predArc_[v];
        pathV_.push_back({a, v, src_[a] == v});
        v = parent_[v];
      }
    }
    return u;
  }

  PivotResult pivotLoop(long long pivotLimit, long long* pivotsOut) {
    long long pivots = 0;
    PivotResult result = PivotResult::Optimal;
    for (;;) {
      const int inArc = findEnteringArc();
      if (inArc < 0) break;
      if (pivotLimit >= 0 && pivots >= pivotLimit) {
        result = PivotResult::LimitExceeded;
        break;
      }
      ++pivots;
      if (!pivot(inArc)) {
        result = PivotResult::Unbounded;
        break;
      }
    }
    *pivotsOut = pivots;
    return result;
  }

  /// Returns false iff the pivot reveals an uncapacitated negative cycle.
  bool pivot(int inArc) {
    const int u = src_[inArc];
    const int v = dst_[inArc];
    const bool lower = state_[inArc] == kStateLower;
    const int first = lower ? u : v;
    const int second = lower ? v : u;
    findJoin(u, v);
    // pathU_/pathV_ now hold the cycle's two tree paths bottom-up; the
    // "first" path (strict '<' in the leaving rule) starts at the entering
    // arc's tail when it enters from its lower bound, at its head otherwise.
    const auto& firstPath = lower ? pathU_ : pathV_;
    const auto& secondPath = lower ? pathV_ : pathU_;

    // --- find leaving arc (strongly feasible rule) ---
    FlowValue delta =
        cap_[inArc] >= kInfiniteCap ? kInfiniteCap : cap_[inArc];
    int result = 0;  // 0: bound flip, 1: leave on first path, 2: second path
    int uOut = -1;
    std::size_t uOutIdx = 0;
    for (std::size_t i = 0; i < firstPath.size(); ++i) {
      const CycleStep& s = firstPath[i];
      const FlowValue d =
          s.fwd ? flow_[s.arc]
                : (cap_[s.arc] >= kInfiniteCap ? kInfiniteCap
                                               : cap_[s.arc] - flow_[s.arc]);
      if (d < delta) {
        delta = d;
        result = 1;
        uOut = s.node;
        uOutIdx = i;
      }
    }
    for (std::size_t i = 0; i < secondPath.size(); ++i) {
      const CycleStep& s = secondPath[i];
      const FlowValue d =
          s.fwd ? (cap_[s.arc] >= kInfiniteCap ? kInfiniteCap
                                               : cap_[s.arc] - flow_[s.arc])
                : flow_[s.arc];
      if (d <= delta) {
        delta = d;
        result = 2;
        uOut = s.node;
        uOutIdx = i;
      }
    }
    if (delta >= kInfiniteCap) return false;  // unbounded

    // --- augment along the cycle ---
    if (delta > 0) {
      const FlowValue val = static_cast<FlowValue>(state_[inArc]) * delta;
      flow_[inArc] += val;
      for (const CycleStep& s : pathU_) {
        flow_[s.arc] += s.fwd ? -val : val;
      }
      for (const CycleStep& s : pathV_) {
        flow_[s.arc] += s.fwd ? val : -val;
      }
    }

    if (result == 0) {
      // Bound flip: the entering arc itself was blocking.
      state_[inArc] = -state_[inArc];
      return true;
    }

    // --- exchange arcs and restructure the tree ---
    const int outArc = predArc_[uOut];
    state_[outArc] = flow_[outArc] == 0 ? kStateLower : kStateUpper;

    // The disconnected subtree T2 (rooted at uOut) contains `first` when the
    // leaving arc was found on the first path, `second` otherwise. Re-root
    // T2 at that endpoint and hang it from the other side via the entering
    // arc.
    const int newRoot = result == 1 ? first : second;
    const int newParent = result == 1 ? second : first;

    // Update subtree sizes. T2 moves from under uOut's old parent to under
    // newParent; both ancestor chains pass through the join, and above it
    // the -movedSize / +movedSize walks cancel exactly, so only the two
    // disjoint below-join segments change — and those are sub-ranges of the
    // recorded cycle paths (no parent-pointer walks to the root).
    const int movedSize = succNum_[uOut];
    const auto& outPath = result == 1 ? firstPath : secondPath;
    const auto& inPath = result == 1 ? secondPath : firstPath;
    for (std::size_t i = uOutIdx + 1; i < outPath.size(); ++i) {
      succNum_[outPath[i].node] -= movedSize;
    }
    for (const CycleStep& s : inPath) {
      succNum_[s.node] += movedSize;
    }
    detachChild(uOut);

    // Re-root T2 at newRoot by reversing parent pointers on the path
    // newRoot -> uOut.
    reroot(newRoot, uOut);

    // Attach T2 under newParent via the entering arc.
    attachChild(newParent, newRoot);
    predArc_[newRoot] = inArc;
    state_[inArc] = kStateTree;

    // Update potentials of all nodes in T2 so the entering arc's reduced
    // cost becomes zero (sigma computed with the *old* potentials).
    const CostValue sigma = dst_[inArc] == newRoot
                                ? reducedCost(inArc)
                                : -reducedCost(inArc);
    addPotential(newRoot, sigma);
    return true;
  }

  /// Reverse parent pointers along the path from newRoot up to oldRoot,
  /// keeping predArc consistent (arc of each reversed edge moves to the new
  /// child) and subtree sizes correct within the moved subtree.
  void reroot(int newRoot, int oldRoot) {
    if (newRoot == oldRoot) return;
    // Collect the path newRoot -> oldRoot.
    path_.clear();
    for (int w = newRoot; w != oldRoot; w = parent_[w]) path_.push_back(w);
    path_.push_back(oldRoot);
    // Reverse each edge (path_[i] -> path_[i+1]) to (path_[i+1] -> path_[i]).
    for (std::size_t i = path_.size(); i-- > 1;) {
      const int child = path_[i - 1];
      const int par = path_[i];
      // Remove child from par's children (parent pointers still old).
      detachChild(child);
      // par becomes child of `child`.
      attachChild(child, par);
      predArc_[par] = predArc_[child];
    }
    predArc_[newRoot] = -1;
    // Recompute subtree sizes along the reversed path: every former ancestor
    // loses the nodes that are now above it.
    // After reversal, path_[k] (k>0) is a child of path_[k-1]. Sizes:
    // succNum of the whole moved tree stays at the new root.
    const int total = succNum_[oldRoot];
    // Walk from oldRoot down the reversed path recomputing sizes.
    // Old succNum values along the path are still the pre-reversal ones for
    // indices > current; compute new sizes bottom-up on the path.
    // New size of path_[i] = total - (old size of path_[i-1]) for i >= 1,
    // where "old size" is the pre-reversal subtree size.
    // Save old sizes first.
    oldSizes_.resize(path_.size());
    for (std::size_t i = 0; i < path_.size(); ++i) {
      oldSizes_[i] = succNum_[path_[i]];
    }
    succNum_[newRoot] = total;
    for (std::size_t i = 1; i < path_.size(); ++i) {
      succNum_[path_[i]] = total - oldSizes_[i - 1];
    }
  }

  /// Add sigma to the potential of every node in the subtree rooted at v.
  void addPotential(int v, CostValue sigma) {
    if (sigma == 0) return;
    stack_.clear();
    stack_.push_back(v);
    while (!stack_.empty()) {
      const int w = stack_.back();
      stack_.pop_back();
      pi_[w] += sigma;
      for (int c = firstChild_[w]; c != -1; c = nextSibling_[c]) {
        stack_.push_back(c);
      }
    }
  }

  // --- result extraction ---------------------------------------------------

  McfSolution extract(const McfProblem& p, PivotResult r) {
    McfSolution sol;
    McfStatus status = McfStatus::Optimal;
    if (r == PivotResult::Unbounded) {
      status = McfStatus::Unbounded;
    } else {
      for (int v = 0; v < n_; ++v) {
        if (flow_[m_ + v] != 0) {
          status = McfStatus::Infeasible;
          break;
        }
      }
    }
    sol.status = status;
    hasBasis_ = status == McfStatus::Optimal;
    if (status != McfStatus::Optimal) return sol;
    supplySnap_.assign(p.supplies().begin(), p.supplies().end());
    sol.flow.assign(flow_.begin(), flow_.begin() + m_);
    sol.potential.assign(pi_.begin(), pi_.begin() + n_);
    sol.totalCost = McfSolution::costOf(p, sol.flow);
    return sol;
  }

  void flushCounters(long long pivots, bool warm) {
    if (!obs::metricsEnabled()) return;
    obs::counter("mcf.simplex.solves").add();
    obs::counter("mcf.simplex.pivots").add(pivots);
    if (warm) {
      obs::counter("mcf.simplex.warm.solves").add();
      obs::counter("mcf.simplex.warm.pivots").add(pivots);
    }
  }

  int n_ = 0, m_ = 0, root_ = 0;
  CostValue artCost_ = 0;
  std::vector<int> src_, dst_;
  std::vector<FlowValue> cap_, flow_;
  std::vector<CostValue> cost_, pi_;
  std::vector<int> state_;
  std::vector<int> parent_, predArc_;
  std::vector<int> firstChild_, nextSibling_, prevSibling_;
  std::vector<int> succNum_;
  std::vector<int> path_, stack_;
  std::vector<int> oldSizes_;
  std::vector<CycleStep> pathU_, pathV_;
  int nextScan_ = 0;
  bool hasBasis_ = false;
  std::vector<FlowValue> supplySnap_;
  NetworkSimplexSolver::Stats stats_;
};

NetworkSimplexSolver::NetworkSimplexSolver() : impl_(new Impl) {}
NetworkSimplexSolver::~NetworkSimplexSolver() = default;
NetworkSimplexSolver::NetworkSimplexSolver(NetworkSimplexSolver&&) noexcept =
    default;
NetworkSimplexSolver& NetworkSimplexSolver::operator=(
    NetworkSimplexSolver&&) noexcept = default;

namespace {

bool suppliesBalanced(const McfProblem& problem) {
  FlowValue total = 0;
  for (int v = 0; v < problem.numNodes(); ++v) total += problem.supply(v);
  return total == 0;
}

}  // namespace

McfSolution NetworkSimplexSolver::solve(const McfProblem& problem) {
  if (!suppliesBalanced(problem)) {
    McfSolution sol;
    sol.status = McfStatus::Infeasible;
    return sol;
  }
  return impl_->runCold(problem);
}

McfSolution NetworkSimplexSolver::solveWarm(const McfProblem& problem) {
  if (!suppliesBalanced(problem)) {
    McfSolution sol;
    sol.status = McfStatus::Infeasible;
    return sol;
  }
  return impl_->runWarm(problem);
}

const NetworkSimplexSolver::Stats& NetworkSimplexSolver::stats() const {
  return impl_->stats_;
}

McfSolution NetworkSimplex::solve(const McfProblem& problem) {
  // One retained solver per thread: cold solves are pure functions of the
  // problem, so reuse is invisible to callers — including the thread pools
  // that solve independent subproblems concurrently.
  thread_local NetworkSimplexSolver solver;
  return solver.solve(problem);
}

bool verifyMcfOptimality(const McfProblem& problem, const McfSolution& sol) {
  if (sol.status != McfStatus::Optimal) return false;
  if (static_cast<int>(sol.flow.size()) != problem.numArcs()) return false;
  if (static_cast<int>(sol.potential.size()) != problem.numNodes()) {
    return false;
  }
  std::vector<FlowValue> net(problem.numNodes(), 0);
  for (int a = 0; a < problem.numArcs(); ++a) {
    const auto& arc = problem.arc(a);
    const FlowValue f = sol.flow[a];
    if (f < 0 || f > arc.cap) return false;
    net[arc.src] += f;
    net[arc.dst] -= f;
  }
  for (int v = 0; v < problem.numNodes(); ++v) {
    if (net[v] != problem.supply(v)) return false;
  }
  // Complementary slackness.
  for (int a = 0; a < problem.numArcs(); ++a) {
    const auto& arc = problem.arc(a);
    const CostValue rc =
        arc.cost + sol.potential[arc.src] - sol.potential[arc.dst];
    if (rc > 0 && sol.flow[a] != 0) return false;
    if (rc < 0 && sol.flow[a] != arc.cap) return false;
  }
  return true;
}

}  // namespace mclg
