#include "flow/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "eval/score.hpp"
#include "obs/batch_ledger.hpp"
#include "obs/obs.hpp"
#include "parsers/simple_format.hpp"
#include "util/timer.hpp"

namespace mclg {
namespace {

double steadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

PipelineConfig perDesignConfig(const BatchRunConfig& config) {
  PipelineConfig pipeline = config.pipeline;
  pipeline.setThreads(std::max(1, config.threadsPerDesign));
  pipeline.executor = config.executor;
  return pipeline;
}

void legalizeOne(const std::string& name, Design& design,
                 const PipelineConfig& pipeline, bool evaluateScores,
                 BatchDesignResult* result) {
  result->name = name;
  result->numCells = design.numCells();
  try {
    Timer timer;
    SegmentMap segments(design);
    PlacementState state(design);
    result->stats = legalize(state, segments, pipeline);
    result->seconds = timer.seconds();
    result->placementHash = placementHash(design);
    if (evaluateScores) result->score = evaluateScore(design, segments).score;
    if (result->stats.guard.failed) {
      result->status = WorkerStatus::Exception;
      result->error = "guard: unrecoverable stage failure";
    } else if (result->stats.mgl.failed > 0 ||
               result->stats.guard.infeasibleCells > 0) {
      result->status = WorkerStatus::Infeasible;
      result->error = std::to_string(std::max(
                          result->stats.mgl.failed,
                          result->stats.guard.infeasibleCells)) +
                      " cells could not be placed";
    } else if (result->stats.guard.degraded) {
      result->status = WorkerStatus::GuardDegraded;
    } else {
      result->status = WorkerStatus::Ok;
    }
  } catch (const std::exception& e) {
    result->status = WorkerStatus::Exception;
    result->error = e.what();
  } catch (...) {
    result->status = WorkerStatus::Exception;
    result->error = "unknown error";
  }
  result->ok = workerStatusOk(result->status);
}

/// Submit one task per design with admission control: the coordinator
/// blocks while `maxInFlight` designs are running and wakes as they retire.
/// `run(i)` must not throw (per-design failures are recorded in results).
template <typename Run>
void driveBatch(int count, int maxInFlight, ExecutorRef executor,
                const Run& run) {
  Executor& exec = executor.get();
  const int cap = maxInFlight > 0
                      ? maxInFlight
                      : std::max(1, exec.numWorkers());
  std::mutex mutex;
  std::condition_variable cv;
  int inFlight = 0;
  for (int i = 0; i < count; ++i) {
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return inFlight < cap; });
      ++inFlight;
      if (obs::metricsEnabled()) {
        obs::gauge("executor.designs_in_flight")
            .max(static_cast<double>(inFlight));
      }
    }
    exec.submit([&, i] {
      try {
        run(i);
      } catch (...) {
        // run(i) records its own failures; nothing escaping it (e.g.
        // bad_alloc) may skip the in-flight accounting below, or the
        // coordinator would wait forever.
      }
      // Notify while holding the mutex: mutex and cv live on the
      // coordinator's stack, and the coordinator destroys them as soon as
      // its wait observes inFlight == 0. Holding the lock across the
      // notify means it cannot observe that until this task has finished
      // touching both.
      std::lock_guard<std::mutex> lock(mutex);
      --inFlight;
      cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return inFlight == 0; });
}

std::string manifestNameOf(const std::string& inputPath) {
  const auto slash = inputPath.find_last_of('/');
  std::string base =
      slash == std::string::npos ? inputPath : inputPath.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base.erase(dot);
  return base;
}

}  // namespace

std::vector<BatchDesignResult> runBatch(
    const std::vector<std::pair<std::string, Design*>>& designs,
    const BatchRunConfig& config) {
  std::vector<BatchDesignResult> results(designs.size());
  if (designs.empty()) return results;
  const PipelineConfig pipeline = perDesignConfig(config);
  driveBatch(static_cast<int>(designs.size()), config.maxInFlight,
             config.executor, [&](int i) {
               const auto& item = designs[static_cast<std::size_t>(i)];
               legalizeOne(item.first, *item.second, pipeline,
                           config.evaluateScores,
                           &results[static_cast<std::size_t>(i)]);
             });
  return results;
}

bool loadBatchManifest(const std::string& path,
                       std::vector<BatchManifestItem>* items,
                       std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open manifest '" + path + "'";
    return false;
  }
  char buffer[4096];
  int lineNo = 0;
  while (std::fgets(buffer, sizeof buffer, file) != nullptr) {
    ++lineNo;
    std::string line(buffer);
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Tokenize on whitespace.
    std::vector<std::string> tokens;
    std::string token;
    for (const char c : line) {
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        if (!token.empty()) tokens.push_back(token);
        token.clear();
      } else {
        token += c;
      }
    }
    if (!token.empty()) tokens.push_back(token);
    if (tokens.empty()) continue;
    if (tokens.size() > 2) {
      if (error != nullptr) {
        *error = "manifest line " + std::to_string(lineNo) +
                 ": expected 'input [output]'";
      }
      std::fclose(file);
      return false;
    }
    BatchManifestItem item;
    item.inputPath = tokens[0];
    item.outputPath = tokens.size() > 1 ? tokens[1] : "";
    item.name = manifestNameOf(item.inputPath);
    items->push_back(std::move(item));
  }
  std::fclose(file);
  return true;
}

bool parseShardSpec(const std::string& text, ShardSpec* spec,
                    std::string* error) {
  const auto fail = [&] {
    if (error != nullptr) {
      *error = "invalid shard '" + text + "' (want i/N with 0 <= i < N)";
    }
    return false;
  };
  const auto slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    return fail();
  }
  const auto digits = [](const std::string& s) {
    if (s.empty()) return false;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
    }
    return true;
  };
  const std::string indexText = text.substr(0, slash);
  const std::string countText = text.substr(slash + 1);
  if (!digits(indexText) || !digits(countText) || indexText.size() > 9 ||
      countText.size() > 9) {
    return fail();
  }
  ShardSpec parsed;
  parsed.index = static_cast<int>(std::strtol(indexText.c_str(), nullptr, 10));
  parsed.count = static_cast<int>(std::strtol(countText.c_str(), nullptr, 10));
  if (parsed.count < 1 || parsed.index >= parsed.count) return fail();
  *spec = parsed;
  return true;
}

std::vector<BatchManifestItem> shardManifest(
    const std::vector<BatchManifestItem>& items, const ShardSpec& spec) {
  std::vector<BatchManifestItem> shard;
  if (spec.count <= 1) return items;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(spec.count)) ==
        spec.index) {
      shard.push_back(items[i]);
    }
  }
  return shard;
}

BatchDesignResult runBatchItem(const BatchManifestItem& item,
                               const BatchRunConfig& config) {
  BatchDesignResult result;
  result.name = item.name;
  const PipelineConfig pipeline = perDesignConfig(config);
  try {
    ParseError parseError;
    auto design = loadDesign(item.inputPath, &parseError);
    if (!design) {
      result.status = WorkerStatus::ParseError;
      result.error = "parse error: " + parseError.str();
      return result;
    }
    legalizeOne(item.name, *design, pipeline, config.evaluateScores, &result);
    if (result.ok && !item.outputPath.empty() &&
        !saveDesign(*design, item.outputPath)) {
      result.status = WorkerStatus::IoError;
      result.ok = false;
      result.error = "cannot write '" + item.outputPath + "'";
    }
  } catch (const std::exception& e) {
    result.status = WorkerStatus::Exception;
    result.ok = false;
    result.error = e.what();
  } catch (...) {
    result.status = WorkerStatus::Exception;
    result.ok = false;
    result.error = "unknown error";
  }
  return result;
}

std::vector<BatchDesignResult> runBatchManifest(
    const std::vector<BatchManifestItem>& items,
    const BatchRunConfig& config) {
  std::vector<BatchDesignResult> results(items.size());
  if (items.empty()) return results;
  // Design tasks run on executor workers, so the (single-caller) ledger
  // needs its calls serialized here. In-process mode has no heartbeats —
  // liveness is the supervisor's concern — but start/finish events and the
  // status line fold identically to the supervised path.
  std::mutex ledgerMutex;
  double nextStatusAt = 0.0;
  driveBatch(
      static_cast<int>(items.size()), config.maxInFlight, config.executor,
      [&](int i) {
        const BatchManifestItem& item = items[static_cast<std::size_t>(i)];
        if (config.ledger != nullptr) {
          std::lock_guard<std::mutex> lock(ledgerMutex);
          config.ledger->workerStarted(item.name, /*pid=*/0, /*attempt=*/1,
                                       steadySeconds());
        }
        BatchDesignResult& result = results[static_cast<std::size_t>(i)];
        result = runBatchItem(item, config);
        if (config.ledger != nullptr) {
          std::lock_guard<std::mutex> lock(ledgerMutex);
          obs::BatchLedger::DesignOutcome outcome;
          outcome.status = workerStatusName(result.status);
          outcome.ok = result.ok;
          outcome.seconds = result.seconds;
          outcome.cells = result.numCells;
          outcome.score = result.score;
          outcome.attempt = 1;
          const double now = steadySeconds();
          config.ledger->designFinished(item.name, outcome, now);
          if (config.onStatusLine && now >= nextStatusAt) {
            config.onStatusLine(config.ledger->renderStatusLine(now));
            nextStatusAt =
                now + std::max(50, config.statusIntervalMs) / 1000.0;
          }
        }
      });
  return results;
}

}  // namespace mclg
