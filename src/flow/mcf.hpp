// Minimum-cost flow problem container shared by both solvers.
//
// The paper solves two different MCFs (the bipartite matching of §3.2 and
// the dual of the fixed-row-&-order LP in §3.3) with LEMON's network
// simplex. We ship our own network simplex with the same first-eligible
// pivot rule, plus an independent successive-shortest-path solver used to
// cross-validate it in tests.
//
// Conventions:
//  - arcs have lower bound 0, integer capacity and integer cost (callers
//    scale fractional data; see legal/mcfopt);
//  - supply(v) > 0 means v is a source; supplies must sum to zero;
//  - negative arc costs are allowed (the dual MCF has them).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

namespace mclg {

using FlowValue = std::int64_t;
using CostValue = std::int64_t;

/// Capacity treated as "uncapacitated".
inline constexpr FlowValue kInfiniteCap =
    std::numeric_limits<FlowValue>::max() / 4;

class McfProblem {
 public:
  struct Arc {
    int src = 0;
    int dst = 0;
    FlowValue cap = 0;
    CostValue cost = 0;
  };

  int addNode() {
    supply_.push_back(0);
    return static_cast<int>(supply_.size()) - 1;
  }

  int addNodes(int count) {
    const int first = static_cast<int>(supply_.size());
    supply_.resize(supply_.size() + static_cast<std::size_t>(count), 0);
    return first;
  }

  /// Returns the arc id. Arcs with zero capacity are legal (and useless).
  int addArc(int src, int dst, FlowValue cap, CostValue cost);

  void addSupply(int node, FlowValue s) { supply_[node] += s; }

  /// Drop all nodes, arcs, and supplies but keep the allocated capacity —
  /// for callers that build many problems of similar size in a loop.
  void clear() {
    arcs_.clear();
    supply_.clear();
  }

  int numNodes() const { return static_cast<int>(supply_.size()); }
  int numArcs() const { return static_cast<int>(arcs_.size()); }
  const Arc& arc(int a) const { return arcs_[a]; }
  FlowValue supply(int node) const { return supply_[node]; }
  const std::vector<Arc>& arcs() const { return arcs_; }
  const std::vector<FlowValue>& supplies() const { return supply_; }

 private:
  std::vector<Arc> arcs_;
  std::vector<FlowValue> supply_;
};

enum class McfStatus { Optimal, Infeasible, Unbounded };

struct McfSolution {
  McfStatus status = McfStatus::Infeasible;
  /// Exact total cost of the returned flow (sum of flow*cost over arcs).
  /// Stored as long double because cost*cap products can exceed int64.
  long double totalCost = 0.0L;
  std::vector<FlowValue> flow;       // per arc
  std::vector<CostValue> potential;  // per node (dual values)

  /// Recompute the objective from the flow vector (used by tests).
  static long double costOf(const McfProblem& problem,
                            const std::vector<FlowValue>& flow);
};

/// Network simplex with the first-eligible (round-robin) pivot rule.
///
/// The static entry point keeps one solver instance per thread, so repeated
/// solves (the per-chunk matchings of §3.2, the per-component duals of §3.3)
/// reuse the internal arenas instead of reallocating them per problem.
class NetworkSimplex {
 public:
  static McfSolution solve(const McfProblem& problem);
};

/// A network simplex instance whose working arrays persist across solves.
///
/// `solve` is a cold solve from the artificial-root basis — bit-identical to
/// `NetworkSimplex::solve` (same pivot sequence, same optimal vertex), just
/// without the per-call allocations.
///
/// `solveWarm` restarts from the basis retained by the previous successful
/// solve on this instance. It requires the identical network topology
/// (node/arc counts, per-arc endpoints and capacities) and supplies; only
/// arc costs may differ. The retained tree/flow basis stays primal feasible
/// and strongly feasible under a pure cost change, so only the potentials
/// are recomputed (from the tree) before pivoting resumes. When validation
/// fails, no basis is retained, or the warm pivot count exceeds a safety
/// bound, it falls back to a cold solve.
///
/// A warm solve reaches the same optimal objective but possibly a different
/// optimal vertex than a cold solve, so the legalization pipeline (which
/// promises bit-identical output at any thread count) uses cold solves; warm
/// starts are for iterated re-solves with perturbed costs (ablation sweeps,
/// parameter search).
class NetworkSimplexSolver {
 public:
  NetworkSimplexSolver();
  ~NetworkSimplexSolver();
  NetworkSimplexSolver(NetworkSimplexSolver&&) noexcept;
  NetworkSimplexSolver& operator=(NetworkSimplexSolver&&) noexcept;

  McfSolution solve(const McfProblem& problem);
  McfSolution solveWarm(const McfProblem& problem);

  struct Stats {
    long long coldSolves = 0;
    long long coldPivots = 0;
    long long warmSolves = 0;    // warm solves that used the retained basis
    long long warmPivots = 0;
    long long warmRejected = 0;  // fell back cold (validation / pivot bound)
  };
  const Stats& stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Successive shortest paths with Dijkstra + node potentials. Negative-cost
/// arcs are removed up front by the standard saturate-and-reverse
/// transformation, so the input may contain them (but no negative cycle may
/// be uncapacitated).
class SspSolver {
 public:
  static McfSolution solve(const McfProblem& problem);
};

/// Goldberg-Tarjan cost scaling (push-relabel refine phases with ε-scaling)
/// — the other high-performance MCF family benchmarked by Király & Kovács
/// (the paper's solver reference). Feasibility is established by a Dinic
/// max-flow; negative-cost arcs must have finite capacity (as for SSP).
class CostScalingSolver {
 public:
  static McfSolution solve(const McfProblem& problem);
};

/// Check primal feasibility and complementary slackness of a solution
/// (used by tests and by debug builds of the legalizer). Returns true iff
/// the solution is optimal for the problem.
bool verifyMcfOptimality(const McfProblem& problem, const McfSolution& sol);

}  // namespace mclg
