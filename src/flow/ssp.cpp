// Successive-shortest-path min-cost flow with Dijkstra + node potentials.
//
// Used as an independent oracle against the network simplex in tests, and
// as a fallback solver. Negative-cost arcs are eliminated up front by the
// standard transformation: saturate the arc, adjust both endpoint excesses,
// and rely on its (positive-cost) residual reverse arc. After that, every
// residual arc with free capacity has non-negative reduced cost, so
// Dijkstra with potentials stays valid throughout.

#include <queue>

#include "flow/mcf.hpp"
#include "util/assert.hpp"

namespace mclg {
namespace {

struct ResidualArc {
  int to = 0;
  int rev = 0;          // index of the reverse arc in adj_[to]
  FlowValue cap = 0;    // remaining capacity
  CostValue cost = 0;
  int origArc = -1;     // original arc id (for forward arcs), -1 for reverse
};

class Ssp {
 public:
  explicit Ssp(const McfProblem& problem) : p_(problem) {}

  McfSolution run() {
    McfSolution sol;
    const int n = p_.numNodes();
    adj_.assign(n, {});
    excess_.assign(n, 0);
    for (int v = 0; v < n; ++v) excess_[v] = p_.supply(v);

    flow_.assign(p_.numArcs(), 0);
    for (int a = 0; a < p_.numArcs(); ++a) {
      const auto& arc = p_.arc(a);
      FlowValue initial = 0;
      if (arc.cost < 0) {
        MCLG_ASSERT(arc.cap < kInfiniteCap,
                    "SSP requires finite capacity on negative-cost arcs");
        initial = arc.cap;  // saturate; reverse residual arc has cost > 0
        excess_[arc.src] -= arc.cap;
        excess_[arc.dst] += arc.cap;
        flow_[a] = arc.cap;
      }
      addResidualPair(arc.src, arc.dst, arc.cap - initial, initial, arc.cost,
                      a);
    }

    pi_.assign(n, 0);
    if (!drainExcess()) {
      sol.status = McfStatus::Infeasible;
      return sol;
    }

    sol.status = McfStatus::Optimal;
    sol.flow = flow_;
    sol.potential.assign(n, 0);
    for (int v = 0; v < n; ++v) sol.potential[v] = pi_[v];
    sol.totalCost = McfSolution::costOf(p_, sol.flow);
    return sol;
  }

 private:
  void addResidualPair(int u, int v, FlowValue fwdCap, FlowValue bwdCap,
                       CostValue cost, int origArc) {
    adj_[u].push_back(
        {v, static_cast<int>(adj_[v].size()), fwdCap, cost, origArc});
    adj_[v].push_back(
        {u, static_cast<int>(adj_[u].size()) - 1, bwdCap, -cost, ~origArc});
  }

  /// Repeatedly route excess from sources to sinks along shortest paths.
  /// Returns false if some excess cannot be drained (infeasible).
  bool drainExcess() {
    const int n = p_.numNodes();
    for (;;) {
      // Multi-source Dijkstra from all positive-excess nodes.
      std::vector<CostValue> dist(n, kUnreached);
      std::vector<int> prevNode(n, -1), prevArc(n, -1);
      using Item = std::pair<CostValue, int>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
      bool anySource = false;
      for (int v = 0; v < n; ++v) {
        if (excess_[v] > 0) {
          dist[v] = 0;
          heap.push({0, v});
          anySource = true;
        }
      }
      if (!anySource) return true;

      int sink = -1;
      std::vector<bool> done(n, false);
      while (!heap.empty()) {
        const auto [d, u] = heap.top();
        heap.pop();
        if (done[u]) continue;
        done[u] = true;
        if (excess_[u] < 0 && sink == -1) {
          sink = u;
          // Keep settling to preserve potential validity for *all* settled
          // nodes; stopping here is also correct if we only update settled
          // potentials, which is what we do below.
          break;
        }
        for (std::size_t i = 0; i < adj_[u].size(); ++i) {
          const auto& arc = adj_[u][i];
          if (arc.cap <= 0) continue;
          const CostValue nd = d + arc.cost + pi_[u] - pi_[arc.to];
          MCLG_ASSERT(arc.cost + pi_[u] - pi_[arc.to] >= 0,
                      "negative reduced cost in SSP Dijkstra");
          if (nd < dist[arc.to]) {
            dist[arc.to] = nd;
            prevNode[arc.to] = u;
            prevArc[arc.to] = static_cast<int>(i);
            heap.push({nd, arc.to});
          }
        }
      }
      if (sink == -1) return false;  // some excess is unroutable

      // Update potentials for settled nodes; unsettled ones get the sink
      // distance (standard capped update keeps reduced costs non-negative).
      const CostValue dSink = dist[sink];
      for (int v = 0; v < n; ++v) {
        pi_[v] += std::min(dist[v], dSink);
      }

      // Bottleneck along the path.
      FlowValue delta = excess_[sink] < 0 ? -excess_[sink] : 0;
      for (int v = sink; prevNode[v] != -1; v = prevNode[v]) {
        const auto& arc = adj_[prevNode[v]][prevArc[v]];
        delta = std::min(delta, arc.cap);
      }
      int source = sink;
      for (int v = sink; prevNode[v] != -1; v = prevNode[v]) source = prevNode[v];
      delta = std::min(delta, excess_[source]);
      MCLG_ASSERT(delta > 0, "zero augmentation in SSP");

      // Augment.
      for (int v = sink; prevNode[v] != -1; v = prevNode[v]) {
        auto& arc = adj_[prevNode[v]][prevArc[v]];
        auto& rev = adj_[v][arc.rev];
        arc.cap -= delta;
        rev.cap += delta;
        if (arc.origArc >= 0) {
          flow_[arc.origArc] += delta;
        } else {
          flow_[~arc.origArc] -= delta;
        }
      }
      excess_[source] -= delta;
      excess_[sink] += delta;
    }
  }

  static constexpr CostValue kUnreached =
      std::numeric_limits<CostValue>::max() / 4;

  const McfProblem& p_;
  std::vector<std::vector<ResidualArc>> adj_;
  std::vector<FlowValue> excess_;
  std::vector<FlowValue> flow_;
  std::vector<CostValue> pi_;
};

}  // namespace

McfSolution SspSolver::solve(const McfProblem& problem) {
  FlowValue total = 0;
  for (int v = 0; v < problem.numNodes(); ++v) total += problem.supply(v);
  if (total != 0) {
    McfSolution sol;
    sol.status = McfStatus::Infeasible;
    return sol;
  }
  Ssp ssp(problem);
  return ssp.run();
}

}  // namespace mclg
