#include "flow/bipartite_matching.hpp"

#include "util/assert.hpp"

namespace mclg {

std::optional<std::vector<int>> solveAssignment(
    int numLeft, int numRight, const std::vector<AssignmentEdge>& edges) {
  MCLG_ASSERT(numLeft <= numRight, "assignment needs numLeft <= numRight");
  // The matching stage solves one problem per chunk; rebuilding into a
  // retained problem keeps the arc vector's capacity across chunks.
  thread_local McfProblem problem;
  problem.clear();
  const int source = problem.addNode();
  const int sink = problem.addNode();
  const int leftBase = problem.addNodes(numLeft);
  const int rightBase = problem.addNodes(numRight);
  problem.addSupply(source, numLeft);
  problem.addSupply(sink, -numLeft);
  for (int i = 0; i < numLeft; ++i) {
    problem.addArc(source, leftBase + i, 1, 0);
  }
  for (int j = 0; j < numRight; ++j) {
    problem.addArc(rightBase + j, sink, 1, 0);
  }
  const int firstEdgeArc = problem.numArcs();
  for (const auto& edge : edges) {
    MCLG_ASSERT(edge.left >= 0 && edge.left < numLeft, "edge.left range");
    MCLG_ASSERT(edge.right >= 0 && edge.right < numRight, "edge.right range");
    problem.addArc(leftBase + edge.left, rightBase + edge.right, 1, edge.cost);
  }

  const McfSolution sol = NetworkSimplex::solve(problem);
  if (sol.status != McfStatus::Optimal) return std::nullopt;

  std::vector<int> match(static_cast<std::size_t>(numLeft), -1);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    if (sol.flow[firstEdgeArc + static_cast<int>(e)] > 0) {
      match[static_cast<std::size_t>(edges[e].left)] = edges[e].right;
    }
  }
  for (const int m : match) {
    if (m < 0) return std::nullopt;  // not a perfect matching
  }
  return match;
}

}  // namespace mclg
