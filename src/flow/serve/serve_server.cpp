#include "flow/serve/serve_server.hpp"

#include <algorithm>
#include <cerrno>
#include <utility>

#include <unistd.h>

#include "obs/obs.hpp"

namespace mclg {

namespace {

void bumpServeCounter(const char* name) {
  if (!obs::metricsEnabled()) return;
  obs::counter(name).add();
}

}  // namespace

ServeServer::ServeServer(ServeConfig config) : config_(std::move(config)) {
  config_.maxInFlight = std::max(1, config_.maxInFlight);
  config_.queueDepth = std::max(0, config_.queueDepth);
  config_.maxThreadsPerRequest = std::max(1, config_.maxThreadsPerRequest);
}

// ---- Admission -------------------------------------------------------------

ServeServer::Admission ServeServer::admit() {
  std::unique_lock<std::mutex> lock(admissionMutex_);
  if (executing_ >= config_.maxInFlight && waiting_ >= config_.queueDepth) {
    return {};
  }
  Admission admission;
  admission.admitted = true;
  // The budget clock starts here: queue wait counts against the request,
  // so a request that waited out its budget rejects fast instead of
  // starting doomed pipeline work.
  admission.deadline = Deadline::after(config_.requestBudgetSeconds);
  ++waiting_;
  admissionCv_.wait(lock, [&] { return executing_ < config_.maxInFlight; });
  --waiting_;
  ++executing_;
  if (obs::metricsEnabled()) {
    obs::gauge("serve.in_flight").set(static_cast<double>(executing_));
  }
  return admission;
}

void ServeServer::release() {
  {
    std::lock_guard<std::mutex> lock(admissionMutex_);
    --executing_;
    if (obs::metricsEnabled()) {
      obs::gauge("serve.in_flight").set(static_cast<double>(executing_));
    }
  }
  admissionCv_.notify_one();
}

ServeResponse ServeServer::runOnExecutor(
    const std::function<ServeResponse()>& work) {
  ServeResponse result;
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  config_.executor.get().submit([&] {
    if (config_.testRequestHook) config_.testRequestHook();
    try {
      result = work();
    } catch (const std::exception& e) {
      result.status = ServeStatus::Internal;
      result.error = e.what();
    }
    {
      std::lock_guard<std::mutex> lock(mutex);
      done = true;
    }
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return done; });
  return result;
}

// ---- Ledger / metrics ------------------------------------------------------

void ServeServer::recordOutcome(const std::string& tenant, const char* verb,
                                const ServeResponse& response) {
  {
    std::lock_guard<std::mutex> lock(ledgerMutex_);
    obs::ServeLedger::RequestOutcome outcome;
    outcome.verb = verb;
    outcome.status = serveStatusName(response.status);
    outcome.ok = serveStatusOk(response.status) ||
                 response.status == ServeStatus::Bye;
    outcome.seconds = response.seconds;
    outcome.hash = response.hash;
    outcome.score = response.score;
    outcome.cells = response.cells;
    ledger_.requestFinished(tenant, outcome, uptime_.seconds());
  }
  bumpServeCounter("serve.requests");
  switch (response.status) {
    case ServeStatus::Rejected:
      bumpServeCounter("serve.budget_rejections");
      break;
    case ServeStatus::Malformed:
    case ServeStatus::ParseError:
      bumpServeCounter("serve.malformed");
      break;
    default:
      break;
  }
}

std::string ServeServer::statusTable() const {
  std::lock_guard<std::mutex> lock(ledgerMutex_);
  return ledger_.renderStatusTable(uptime_.seconds());
}

std::string ServeServer::statusLine() const {
  std::lock_guard<std::mutex> lock(ledgerMutex_);
  return ledger_.renderStatusLine(uptime_.seconds());
}

int ServeServer::tenants() const {
  std::lock_guard<std::mutex> lock(registryMutex_);
  return static_cast<int>(sessions_.size());
}

// ---- Request handlers ------------------------------------------------------

ServeSession* ServeServer::findSession(const std::string& tenant,
                                       ServeResponse* response) {
  std::lock_guard<std::mutex> lock(registryMutex_);
  const auto it = sessions_.find(tenant);
  if (it == sessions_.end()) {
    response->tenant = tenant;
    response->status = ServeStatus::UnknownTenant;
    response->error = "tenant " + tenant + " was never loaded";
    return nullptr;
  }
  return it->second.get();
}

ServeResponse ServeServer::handleLoad(const std::string& payload) {
  ServeResponse response;
  LoadDesignRequest request;
  if (!parseLoadDesign(payload, &request)) {
    response.status = ServeStatus::Malformed;
    response.error = "malformed LoadDesign payload";
    bumpServeCounter("serve.requests");
    bumpServeCounter("serve.malformed");
    return response;
  }
  response.id = request.id;
  response.tenant = request.tenant;
  {
    std::lock_guard<std::mutex> lock(registryMutex_);
    if (sessions_.count(request.tenant) != 0 ||
        loading_.count(request.tenant) != 0) {
      response.status = ServeStatus::TenantExists;
      response.error = "tenant " + request.tenant + " already loaded";
      bumpServeCounter("serve.requests");
      return response;
    }
    loading_[request.tenant] = 1;
  }

  const Admission admission = admit();
  if (!admission.admitted) {
    std::lock_guard<std::mutex> lock(registryMutex_);
    loading_.erase(request.tenant);
    response.status = ServeStatus::Busy;
    response.error = "admission queue full";
    {
      std::lock_guard<std::mutex> ledgerLock(ledgerMutex_);
      ledger_.busyRejected(request.tenant);
    }
    bumpServeCounter("serve.busy_rejections");
    return response;
  }

  ServeSessionConfig sessionConfig;
  sessionConfig.preset = request.preset;
  sessionConfig.threads =
      std::clamp(request.threads, 1, config_.maxThreadsPerRequest);
  sessionConfig.executor = config_.executor;
  sessionConfig.requestDeadline = admission.deadline;

  std::unique_ptr<ServeSession> session;
  response = runOnExecutor([&] {
    ServeResponse loadResponse;
    session = ServeSession::load(request, sessionConfig, &loadResponse);
    return loadResponse;
  });
  release();

  {
    std::lock_guard<std::mutex> lock(registryMutex_);
    loading_.erase(request.tenant);
    if (session) sessions_[request.tenant] = std::move(session);
  }
  if (serveStatusOk(response.status)) {
    std::lock_guard<std::mutex> lock(ledgerMutex_);
    ledger_.tenantLoaded(request.tenant, uptime_.seconds());
    bumpServeCounter("serve.tenants_loaded");
  } else if (admission.deadline.expiredNow()) {
    // A failed load under an exhausted budget is a rejection, whatever the
    // proximate symptom (guard throw -> Internal, stages degraded into
    // infeasibility): the tenant was never registered, nothing is broken,
    // and the client should retry with a bigger budget.
    response.status = ServeStatus::Rejected;
  }
  recordOutcome(request.tenant, "load", response);
  return response;
}

ServeResponse ServeServer::handleEco(const std::string& payload) {
  ServeResponse response;
  EcoDeltaRequest request;
  if (!parseEcoDelta(payload, &request)) {
    response.status = ServeStatus::Malformed;
    response.error = "malformed EcoDelta payload";
    bumpServeCounter("serve.requests");
    bumpServeCounter("serve.malformed");
    return response;
  }
  ServeSession* session = findSession(request.tenant, &response);
  if (session == nullptr) {
    response.id = request.id;
    bumpServeCounter("serve.requests");
    return response;
  }
  const Admission admission = admit();
  if (!admission.admitted) {
    response.id = request.id;
    response.tenant = request.tenant;
    response.status = ServeStatus::Busy;
    response.error = "admission queue full";
    {
      std::lock_guard<std::mutex> lock(ledgerMutex_);
      ledger_.busyRejected(request.tenant);
    }
    bumpServeCounter("serve.busy_rejections");
    return response;
  }
  response = runOnExecutor(
      [&] { return session->applyDelta(request, admission.deadline); });
  release();
  recordOutcome(request.tenant, "eco", response);
  return response;
}

ServeResponse ServeServer::handleCommitRollback(const std::string& payload,
                                                bool commit) {
  ServeResponse response;
  TenantRequest request;
  if (!parseTenantRequest(payload, &request)) {
    response.status = ServeStatus::Malformed;
    response.error = commit ? "malformed Commit payload"
                            : "malformed Rollback payload";
    bumpServeCounter("serve.requests");
    bumpServeCounter("serve.malformed");
    return response;
  }
  ServeSession* session = findSession(request.tenant, &response);
  if (session == nullptr) {
    response.id = request.id;
    bumpServeCounter("serve.requests");
    return response;
  }
  response = commit ? session->commit(request) : session->rollback(request);
  bumpServeCounter(commit ? "serve.commits" : "serve.rollbacks");
  recordOutcome(request.tenant, commit ? "commit" : "rollback", response);
  return response;
}

ServeResponse ServeServer::handleQuery(const std::string& payload) {
  ServeResponse response;
  QueryRequest request;
  if (!parseQuery(payload, &request)) {
    response.status = ServeStatus::Malformed;
    response.error = "malformed Query payload";
    bumpServeCounter("serve.requests");
    bumpServeCounter("serve.malformed");
    return response;
  }
  if (request.tenant.empty()) {
    response.id = request.id;
    if (request.key == "status") {
      response.status = ServeStatus::Ok;
      response.body = statusTable();
    } else {
      response.status = ServeStatus::Malformed;
      response.error = "query key " + request.key + " needs a tenant";
    }
    bumpServeCounter("serve.requests");
    return response;
  }
  ServeSession* session = findSession(request.tenant, &response);
  if (session == nullptr) {
    response.id = request.id;
    bumpServeCounter("serve.requests");
    return response;
  }
  if (request.key == "status") {
    // Tenant-scoped status reads the same daemon table; the interesting
    // per-tenant row is in there.
    response = ServeResponse{};
    response.id = request.id;
    response.tenant = request.tenant;
    response.status = ServeStatus::Ok;
    response.body = statusTable();
  } else {
    response = session->query(request);
  }
  recordOutcome(request.tenant, "query", response);
  return response;
}

// ---- Connection loop -------------------------------------------------------

bool ServeServer::serveConnection(int inFd, int outFd) {
  FrameReader reader;
  char buffer[1 << 16];
  bool open = true;
  bool stopDaemon = false;
  while (open && !shutdownRequested()) {
    const ssize_t n = ::read(inFd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client EOF; a pending partial frame is just dropped
    reader.feed(buffer, static_cast<std::size_t>(n));
    if (reader.corrupted()) {
      // Sticky corruption: answer once so the client knows why, then hang
      // up — nothing after a corrupt header can be trusted or resynced.
      ServeResponse response;
      response.status = ServeStatus::Malformed;
      response.error = "frame stream corrupted";
      writeFrame(outFd, FrameType::Response,
                 serializeServeResponse(response));
      bumpServeCounter("serve.corrupt_streams");
      break;
    }
    for (FrameReader::Frame& frame : reader.take()) {
      ServeResponse response;
      bool closeConnection = false;
      switch (frame.type) {
        case FrameType::LoadDesign:
          response = handleLoad(frame.payload);
          break;
        case FrameType::EcoDelta:
          response = handleEco(frame.payload);
          break;
        case FrameType::Commit:
          response = handleCommitRollback(frame.payload, /*commit=*/true);
          break;
        case FrameType::Rollback:
          response = handleCommitRollback(frame.payload, /*commit=*/false);
          break;
        case FrameType::Query:
          response = handleQuery(frame.payload);
          break;
        case FrameType::Shutdown: {
          ShutdownRequest request;
          if (!parseShutdown(frame.payload, &request)) {
            response.status = ServeStatus::Malformed;
            response.error = "malformed Shutdown payload";
            bumpServeCounter("serve.malformed");
          } else if (request.scope == "daemon" &&
                     !config_.allowRemoteShutdown) {
            response.id = request.id;
            response.status = ServeStatus::Malformed;
            response.error = "daemon shutdown not allowed on this transport";
          } else {
            response.id = request.id;
            response.status = ServeStatus::Bye;
            closeConnection = true;
            stopDaemon = request.scope == "daemon";
          }
          bumpServeCounter("serve.requests");
          break;
        }
        default:
          // Result/Report/Heartbeat/... are daemon->client or
          // worker->supervisor frames; a client sending one is confused.
          response.status = ServeStatus::Malformed;
          response.error = "unexpected frame type on a serve connection";
          bumpServeCounter("serve.requests");
          bumpServeCounter("serve.malformed");
          break;
      }
      if (!writeFrame(outFd, FrameType::Response,
                      serializeServeResponse(response))) {
        open = false;
        break;
      }
      if (closeConnection) {
        open = false;
        break;
      }
    }
  }
  if (stopDaemon) stop_.store(true, std::memory_order_release);
  return stopDaemon;
}

}  // namespace mclg
