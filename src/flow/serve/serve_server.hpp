// The legalization service core: a tenant registry plus the per-connection
// request loop, transport-agnostic over a pair of file descriptors.
//
// tools/mclg_serve owns the transport (a Unix socket listener or
// stdin/stdout) and calls serveConnection(inFd, outFd) once per client;
// everything else lives here so tests can drive a full daemon over
// socketpairs without forking. Frames use the supervisor envelope
// (flow/worker_protocol.hpp) with the serving payloads
// (flow/serve/serve_protocol.hpp); responses are written in request order
// per connection.
//
// Concurrency model: each connection is one blocking reader thread.
// Legalization work (LoadDesign, EcoDelta) is submitted to the
// work-stealing executor — one whole-run task per in-flight request — so
// tenants multiplex the shared worker set; cheap requests (Commit,
// Rollback, Query, Shutdown) run inline on the connection thread.
// Per-tenant order is still total: the session mutex serializes requests
// that race on one tenant.
//
// Admission control: at most `maxInFlight` expensive requests execute at
// once and at most `queueDepth` may wait for a slot; beyond that the
// daemon answers ServeStatus::Busy immediately instead of queueing
// unboundedly. A positive `requestBudgetSeconds` starts the request's
// deadline when it is admitted (queue wait counts), bounds every guard
// stage and ECO phase through GuardConfig/EcoConfig::requestDeadline, and
// surfaces exhaustion as ServeStatus::Rejected with the tenant rolled
// back. Corrupt frame streams get one final Malformed response, then the
// connection closes (FrameReader corruption is sticky by design).
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "flow/serve/serve_protocol.hpp"
#include "flow/serve/serve_session.hpp"
#include "obs/serve_ledger.hpp"
#include "util/executor/executor.hpp"
#include "util/timer.hpp"

namespace mclg {

struct ServeConfig {
  /// Expensive requests (LoadDesign/EcoDelta) executing concurrently.
  int maxInFlight = 4;
  /// Admitted-but-waiting requests beyond which the daemon answers Busy.
  int queueDepth = 16;
  /// Per-request wall-clock budget, captured at admission; <= 0 unlimited.
  double requestBudgetSeconds = 0.0;
  /// Upper bound a LoadDesign request may ask for in `threads`.
  int maxThreadsPerRequest = 4;
  /// Honor Shutdown scope=daemon (on for --stdio, flag-gated for sockets).
  bool allowRemoteShutdown = false;
  /// Lane source for request tasks and in-run parallelism.
  ExecutorRef executor;
  /// Test-only: runs at the start of every admitted expensive request, on
  /// the executor lane — lets tests hold admission slots deterministically.
  std::function<void()> testRequestHook;
};

class ServeServer {
 public:
  explicit ServeServer(ServeConfig config = {});

  /// Serve one client until EOF, Shutdown, a write error, or stream
  /// corruption. Blocking; safe to call from several threads at once.
  /// Returns true when the daemon should stop (accepted daemon Shutdown).
  bool serveConnection(int inFd, int outFd);

  /// A daemon-scope Shutdown was accepted on some connection.
  bool shutdownRequested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// Per-tenant service table / one-line rollup (obs/serve_ledger.hpp).
  std::string statusTable() const;
  std::string statusLine() const;

  int tenants() const;

 private:
  struct Admission {
    bool admitted = false;
    Deadline deadline;  ///< request-scoped; unlimited when no budget set
  };

  /// Block until an execution slot frees (or bounce with Busy when the
  /// wait queue is full). Every admit() needs a matching release().
  Admission admit();
  void release();

  /// Run `work` as one whole-run executor task and wait for its result.
  ServeResponse runOnExecutor(const std::function<ServeResponse()>& work);

  ServeResponse handleLoad(const std::string& payload);
  ServeResponse handleEco(const std::string& payload);
  ServeResponse handleCommitRollback(const std::string& payload, bool commit);
  ServeResponse handleQuery(const std::string& payload);

  /// Registry lookup; null with *response filled when unknown.
  ServeSession* findSession(const std::string& tenant,
                            ServeResponse* response);

  void recordOutcome(const std::string& tenant, const char* verb,
                     const ServeResponse& response);

  ServeConfig config_;
  Timer uptime_;

  mutable std::mutex registryMutex_;
  std::map<std::string, std::unique_ptr<ServeSession>> sessions_;
  /// Tenants with a LoadDesign in flight (blocks duplicate loads without
  /// holding the registry lock across legalization).
  std::map<std::string, int> loading_;

  mutable std::mutex admissionMutex_;
  std::condition_variable admissionCv_;
  int executing_ = 0;
  int waiting_ = 0;

  mutable std::mutex ledgerMutex_;
  obs::ServeLedger ledger_;

  std::atomic<bool> stop_{false};
};

}  // namespace mclg
