#include "flow/serve/serve_protocol.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace mclg {

namespace {

/// Newlines would break the line-oriented header; spaces are fine.
std::string oneLine(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

constexpr const char* kBodySeparator = "---";

/// Split a payload into `key=value` header pairs and the verbatim body
/// after the first line that is exactly `---`. Returns false on a header
/// line without '='. The body keeps its bytes untouched (design texts and
/// report JSON must round-trip exactly).
bool splitPayload(const std::string& payload,
                  std::vector<std::pair<std::string, std::string>>* headers,
                  std::string* body) {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t end = payload.find('\n', pos);
    const bool lastLine = end == std::string::npos;
    if (lastLine) end = payload.size();
    const std::string line = payload.substr(pos, end - pos);
    pos = lastLine ? payload.size() : end + 1;
    if (line == kBodySeparator) {
      *body = payload.substr(pos);
      return true;
    }
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return false;
    headers->emplace_back(line.substr(0, eq), line.substr(eq + 1));
  }
  return true;
}

void putKey(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += '=';
  out += oneLine(value);
  out += '\n';
}

void putU64(std::string& out, const char* key, std::uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%s=%" PRIu64 "\n", key, value);
  out += buffer;
}

void putHex64(std::string& out, const char* key, std::uint64_t value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%s=%016" PRIx64 "\n", key, value);
  out += buffer;
}

void putInt(std::string& out, const char* key, long long value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%s=%lld\n", key, value);
  out += buffer;
}

void putDouble(std::string& out, const char* key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%s=%.17g\n", key, value);
  out += buffer;
}

std::string protoHeader() {
  std::string out;
  putInt(out, "proto", kServeProtocolVersion);
  return out;
}

void appendBody(std::string& out, const std::string& body) {
  out += kBodySeparator;
  out += '\n';
  out += body;
}

/// Shared header-field fold: returns false only on a proto mismatch.
/// Requests without a proto key are rejected too — the version handshake
/// is mandatory so a future v2 daemon can refuse v1 payloads explicitly.
struct CommonHeaders {
  std::uint64_t id = 0;
  std::string tenant;
  bool sawProto = false;
  bool protoOk = false;

  bool fold(const std::string& key, const std::string& value) {
    if (key == "proto") {
      sawProto = true;
      protoOk =
          std::strtol(value.c_str(), nullptr, 10) == kServeProtocolVersion;
      return true;
    }
    if (key == "id") {
      id = std::strtoull(value.c_str(), nullptr, 10);
      return true;
    }
    if (key == "tenant") {
      tenant = value;
      return true;
    }
    return false;
  }
  bool versioned() const { return sawProto && protoOk; }
};

bool parseOpLine(const std::string& line, EcoOp* out) {
  std::istringstream in(line);
  std::string verb;
  if (!(in >> verb)) return false;
  EcoOp op;
  if (verb == "move") {
    op.kind = EcoOp::Kind::Move;
    if (!(in >> op.cell >> op.gpX >> op.gpY)) return false;
  } else if (verb == "resize") {
    op.kind = EcoOp::Kind::Resize;
    if (!(in >> op.cell >> op.type)) return false;
  } else if (verb == "add") {
    op.kind = EcoOp::Kind::Add;
    if (!(in >> op.type >> op.gpX >> op.gpY)) return false;
    in >> op.fence;  // optional
  } else {
    return false;
  }
  std::string extra;
  if (in >> extra) return false;
  if (op.kind != EcoOp::Kind::Add && op.cell < 0) return false;
  *out = op;
  return true;
}

std::string renderOpLine(const EcoOp& op) {
  char buffer[160];
  switch (op.kind) {
    case EcoOp::Kind::Move:
      std::snprintf(buffer, sizeof buffer, "move %d %.17g %.17g", op.cell,
                    op.gpX, op.gpY);
      return buffer;
    case EcoOp::Kind::Resize:
      return "resize " + std::to_string(op.cell) + " " + oneLine(op.type);
    case EcoOp::Kind::Add: {
      std::snprintf(buffer, sizeof buffer, " %.17g %.17g", op.gpX, op.gpY);
      std::string out = "add " + oneLine(op.type) + buffer;
      if (!op.fence.empty()) out += " " + oneLine(op.fence);
      return out;
    }
  }
  return "";
}

}  // namespace

const char* serveStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::Ok: return "ok";
    case ServeStatus::Degraded: return "degraded";
    case ServeStatus::Infeasible: return "infeasible";
    case ServeStatus::ParseError: return "parse-error";
    case ServeStatus::Malformed: return "malformed";
    case ServeStatus::UnknownTenant: return "unknown-tenant";
    case ServeStatus::TenantExists: return "tenant-exists";
    case ServeStatus::Busy: return "busy";
    case ServeStatus::Rejected: return "rejected";
    case ServeStatus::Internal: return "internal";
    case ServeStatus::Bye: return "bye";
  }
  return "?";
}

int serveStatusFromName(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(ServeStatus::Bye); ++i) {
    if (name == serveStatusName(static_cast<ServeStatus>(i))) return i;
  }
  return -1;
}

bool serveStatusOk(ServeStatus status) {
  return status == ServeStatus::Ok || status == ServeStatus::Degraded;
}

// ---- LoadDesign ------------------------------------------------------------

std::string serializeLoadDesign(const LoadDesignRequest& request) {
  std::string out = protoHeader();
  putU64(out, "id", request.id);
  putKey(out, "tenant", request.tenant);
  putKey(out, "preset", request.preset);
  putInt(out, "threads", request.threads);
  appendBody(out, request.designText);
  return out;
}

bool parseLoadDesign(const std::string& payload, LoadDesignRequest* out) {
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  if (!splitPayload(payload, &headers, &body)) return false;
  LoadDesignRequest parsed;
  CommonHeaders common;
  for (const auto& [key, value] : headers) {
    if (common.fold(key, value)) continue;
    if (key == "preset") {
      parsed.preset = value;
    } else if (key == "threads") {
      parsed.threads = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    }
    // Unknown keys skipped: older daemons read newer clients.
  }
  if (!common.versioned() || common.tenant.empty() || body.empty()) {
    return false;
  }
  parsed.id = common.id;
  parsed.tenant = common.tenant;
  parsed.designText = std::move(body);
  *out = std::move(parsed);
  return true;
}

// ---- EcoDelta --------------------------------------------------------------

std::string serializeEcoDelta(const EcoDeltaRequest& request) {
  std::string out = protoHeader();
  putU64(out, "id", request.id);
  putKey(out, "tenant", request.tenant);
  putInt(out, "ops", static_cast<long long>(request.ops.size()));
  std::string body;
  for (const EcoOp& op : request.ops) {
    body += renderOpLine(op);
    body += '\n';
  }
  appendBody(out, body);
  return out;
}

bool parseEcoDelta(const std::string& payload, EcoDeltaRequest* out) {
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  if (!splitPayload(payload, &headers, &body)) return false;
  EcoDeltaRequest parsed;
  long long declaredOps = -1;
  CommonHeaders common;
  for (const auto& [key, value] : headers) {
    if (common.fold(key, value)) continue;
    if (key == "ops") {
      declaredOps = std::strtoll(value.c_str(), nullptr, 10);
    }
  }
  if (!common.versioned() || common.tenant.empty()) return false;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    EcoOp op;
    if (!parseOpLine(line, &op)) return false;
    parsed.ops.push_back(std::move(op));
  }
  // The declared count guards against a truncated body smuggled through an
  // intact frame (the frame length only covers the payload as sent).
  if (declaredOps >= 0 &&
      declaredOps != static_cast<long long>(parsed.ops.size())) {
    return false;
  }
  parsed.id = common.id;
  parsed.tenant = common.tenant;
  *out = std::move(parsed);
  return true;
}

// ---- Commit / Rollback -----------------------------------------------------

std::string serializeTenantRequest(const TenantRequest& request) {
  std::string out = protoHeader();
  putU64(out, "id", request.id);
  putKey(out, "tenant", request.tenant);
  return out;
}

bool parseTenantRequest(const std::string& payload, TenantRequest* out) {
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  if (!splitPayload(payload, &headers, &body)) return false;
  CommonHeaders common;
  for (const auto& [key, value] : headers) common.fold(key, value);
  if (!common.versioned() || common.tenant.empty()) return false;
  out->id = common.id;
  out->tenant = common.tenant;
  return true;
}

// ---- Query -----------------------------------------------------------------

std::string serializeQuery(const QueryRequest& request) {
  std::string out = protoHeader();
  putU64(out, "id", request.id);
  if (!request.tenant.empty()) putKey(out, "tenant", request.tenant);
  putKey(out, "key", request.key);
  return out;
}

bool parseQuery(const std::string& payload, QueryRequest* out) {
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  if (!splitPayload(payload, &headers, &body)) return false;
  QueryRequest parsed;
  CommonHeaders common;
  for (const auto& [key, value] : headers) {
    if (common.fold(key, value)) continue;
    if (key == "key") parsed.key = value;
  }
  if (!common.versioned() || parsed.key.empty()) return false;
  parsed.id = common.id;
  parsed.tenant = common.tenant;
  *out = std::move(parsed);
  return true;
}

// ---- Shutdown --------------------------------------------------------------

std::string serializeShutdown(const ShutdownRequest& request) {
  std::string out = protoHeader();
  putU64(out, "id", request.id);
  putKey(out, "scope", request.scope);
  return out;
}

bool parseShutdown(const std::string& payload, ShutdownRequest* out) {
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  if (!splitPayload(payload, &headers, &body)) return false;
  ShutdownRequest parsed;
  CommonHeaders common;
  for (const auto& [key, value] : headers) {
    if (common.fold(key, value)) continue;
    if (key == "scope") parsed.scope = value;
  }
  if (!common.versioned()) return false;
  if (parsed.scope != "connection" && parsed.scope != "daemon") return false;
  parsed.id = common.id;
  *out = std::move(parsed);
  return true;
}

// ---- Response --------------------------------------------------------------

std::string serializeServeResponse(const ServeResponse& response) {
  std::string out = protoHeader();
  putU64(out, "id", response.id);
  putKey(out, "status", serveStatusName(response.status));
  if (!response.tenant.empty()) putKey(out, "tenant", response.tenant);
  if (!response.error.empty()) putKey(out, "error", response.error);
  putHex64(out, "hash", response.hash);
  putDouble(out, "score", response.score);
  putDouble(out, "seconds", response.seconds);
  putInt(out, "cells", response.cells);
  if (!response.body.empty()) appendBody(out, response.body);
  return out;
}

bool parseServeResponse(const std::string& payload, ServeResponse* out) {
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  if (!splitPayload(payload, &headers, &body)) return false;
  ServeResponse parsed;
  bool sawStatus = false;
  CommonHeaders common;
  for (const auto& [key, value] : headers) {
    if (common.fold(key, value)) continue;
    if (key == "status") {
      const int status = serveStatusFromName(value);
      if (status < 0) return false;
      parsed.status = static_cast<ServeStatus>(status);
      sawStatus = true;
    } else if (key == "error") {
      parsed.error = value;
    } else if (key == "hash") {
      parsed.hash = std::strtoull(value.c_str(), nullptr, 16);
    } else if (key == "score") {
      parsed.score = std::strtod(value.c_str(), nullptr);
    } else if (key == "seconds") {
      parsed.seconds = std::strtod(value.c_str(), nullptr);
    } else if (key == "cells") {
      parsed.cells = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    }
  }
  if (!common.versioned() || !sawStatus) return false;
  parsed.id = common.id;
  parsed.tenant = common.tenant;
  parsed.body = std::move(body);
  *out = std::move(parsed);
  return true;
}

}  // namespace mclg
