#include "flow/serve/serve_session.hpp"

#include <algorithm>
#include <utility>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/metrics.hpp"
#include "eval/report.hpp"
#include "eval/score.hpp"
#include "legal/eco/eco_driver.hpp"
#include "obs/run_report.hpp"
#include "parsers/simple_format.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace mclg {

namespace {

/// The CLI's config construction (tools/mclg_cli.cpp cmdLegalize), minus
/// the flag overrides: preset, guard on, thread budget. Byte-identity of
/// serve responses with solo CLI runs depends on this staying in sync.
PipelineConfig cliEquivalentConfig(const std::string& preset, int threads) {
  PipelineConfig config = preset == "totaldisp"
                              ? PipelineConfig::totalDisplacement()
                              : PipelineConfig::contest();
  config.guard.enabled = true;
  config.setThreads(std::max(1, threads));
  return config;
}

obs::RunProvenance provenanceFor(const Design& design,
                                 const std::string& preset,
                                 const PipelineConfig& config) {
  obs::RunProvenance provenance;
  provenance.design = design.name;
  provenance.numCells = design.numCells();
  provenance.preset = preset;
  provenance.threads = config.mgl.numThreads;
  provenance.guardEnabled = config.guard.enabled;
  return provenance;
}

}  // namespace

std::unique_ptr<ServeSession> ServeSession::load(
    const LoadDesignRequest& request, const ServeSessionConfig& config,
    ServeResponse* response) {
  response->id = request.id;
  response->tenant = request.tenant;
  Timer timer;

  std::string parseError;
  auto design = readSimpleFormat(request.designText, &parseError);
  if (!design) {
    response->status = ServeStatus::ParseError;
    response->error = parseError;
    return nullptr;
  }

  auto session = std::unique_ptr<ServeSession>(new ServeSession());
  session->tenant_ = request.tenant;
  session->preset_ = config.preset;
  session->config_ = cliEquivalentConfig(config.preset, config.threads);
  session->config_.executor = config.executor;
  session->current_ = std::move(*design);

  PipelineStats stats;
  ScoreBreakdown score;
  try {
    SegmentMap segments(session->current_);
    PlacementState state(session->current_);
    // The load deadline only bounds this run — config_ stays deadline-free
    // for the ECO requests that follow.
    PipelineConfig runConfig = session->config_;
    runConfig.guard.requestDeadline = config.requestDeadline;
    stats = legalize(state, segments, runConfig);
    score = evaluateScore(session->current_, segments);
  } catch (const std::exception& e) {
    response->status = ServeStatus::Internal;
    response->error = e.what();
    return nullptr;
  }

  // The CLI's exit-code classification (guard contract).
  if (stats.guard.failed) {
    response->status = ServeStatus::Internal;
    response->error = "guard: unrecoverable stage failure";
    return nullptr;
  }
  if (stats.guard.infeasibleCells > 0 || !score.legality.legal()) {
    response->status = ServeStatus::Infeasible;
    response->error =
        std::to_string(std::max(stats.guard.infeasibleCells,
                                score.legality.unplacedCells)) +
        " cells unplaced or placement not legal";
    return nullptr;
  }
  response->status =
      stats.guard.degraded ? ServeStatus::Degraded : ServeStatus::Ok;

  session->snapshot_ = session->current_;
  session->lastScore_ = score.score;
  session->lastReport_ =
      obs::renderRunReport(provenanceFor(session->current_, session->preset_,
                                         session->config_),
                           stats, &score, /*includeMetrics=*/false);

  response->hash = placementHash(session->current_);
  response->score = score.score;
  response->cells = session->current_.numCells();
  response->seconds = timer.seconds();
  response->body = session->lastReport_;
  return session;
}

bool ServeSession::applyOp(Design& design, const EcoOp& op,
                           std::string* error) {
  const auto typeByName = [&](const std::string& name) -> TypeId {
    for (TypeId t = 0; t < design.numTypes(); ++t) {
      if (design.types[t].name == name) return t;
    }
    return -1;
  };
  const auto gpInCore = [&](double gpX, double gpY) {
    return gpX >= 0.0 && gpX <= static_cast<double>(design.numSitesX - 1) &&
           gpY >= 0.0 && gpY <= static_cast<double>(design.numRows - 1);
  };
  switch (op.kind) {
    case EcoOp::Kind::Move: {
      if (op.cell < 0 || op.cell >= design.numCells()) {
        *error = "move: unknown cell " + std::to_string(op.cell);
        return false;
      }
      Cell& cell = design.cells[op.cell];
      if (cell.fixed) {
        *error = "move: cell " + std::to_string(op.cell) + " is fixed";
        return false;
      }
      if (!gpInCore(op.gpX, op.gpY)) {
        *error = "move: GP target outside the core";
        return false;
      }
      cell.gpX = op.gpX;
      cell.gpY = op.gpY;
      return true;
    }
    case EcoOp::Kind::Resize: {
      if (op.cell < 0 || op.cell >= design.numCells()) {
        *error = "resize: unknown cell " + std::to_string(op.cell);
        return false;
      }
      const TypeId type = typeByName(op.type);
      if (type < 0) {
        *error = "resize: unknown type " + op.type;
        return false;
      }
      Cell& cell = design.cells[op.cell];
      if (cell.fixed) {
        *error = "resize: cell " + std::to_string(op.cell) + " is fixed";
        return false;
      }
      // A net references this cell's pins by index into the type's pin
      // list; a type with fewer pins would leave those indexes dangling
      // (the file parser rejects exactly this as "net pin index out of
      // range", so the in-memory path must too).
      for (const Net& net : design.nets) {
        for (const Net::Conn& conn : net.conns) {
          if (conn.cell == op.cell &&
              conn.pin >=
                  static_cast<int>(design.types[type].pins.size())) {
            *error = "resize: type " + op.type + " has no pin " +
                     std::to_string(conn.pin) +
                     " (referenced by a net of cell " +
                     std::to_string(op.cell) + ")";
            return false;
          }
        }
      }
      cell.type = type;
      return true;
    }
    case EcoOp::Kind::Add: {
      const TypeId type = typeByName(op.type);
      if (type < 0) {
        *error = "add: unknown type " + op.type;
        return false;
      }
      if (!gpInCore(op.gpX, op.gpY)) {
        *error = "add: GP target outside the core";
        return false;
      }
      Cell fresh;
      fresh.type = type;
      fresh.gpX = op.gpX;
      fresh.gpY = op.gpY;
      fresh.placed = false;
      fresh.x = -1;
      fresh.y = -1;
      if (!op.fence.empty()) {
        FenceId fence = -1;
        for (FenceId f = 0; f < design.numFences(); ++f) {
          if (design.fences[f].name == op.fence) fence = f;
        }
        if (fence < 0) {
          *error = "add: unknown fence " + op.fence;
          return false;
        }
        fresh.fence = fence;
      }
      design.cells.push_back(fresh);
      return true;
    }
  }
  *error = "unknown op";
  return false;
}

ServeResponse ServeSession::applyDelta(const EcoDeltaRequest& request,
                                       const Deadline& requestDeadline) {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeResponse response;
  response.id = request.id;
  response.tenant = tenant_;
  Timer timer;

  // Transaction: ops + relegalization run on a scratch copy; only an
  // Ok/Degraded outcome is adopted.
  Design scratch = current_;
  for (const EcoOp& op : request.ops) {
    std::string error;
    if (!applyOp(scratch, op, &error)) {
      response.status = ServeStatus::Malformed;
      response.error = error;
      response.seconds = timer.seconds();
      return response;
    }
  }
  scratch.invalidateCaches();

  // The edited design must satisfy every invariant the file parser
  // enforces (a design only reachable through serve must not behave
  // differently from one reachable through a file): re-check before the
  // expensive run so a bad delta degrades to Malformed, not to undefined
  // behavior in a stage.
  std::string invalid;
  if (!scratch.check(&invalid)) {
    response.status = ServeStatus::Malformed;
    response.error = invalid;
    response.seconds = timer.seconds();
    return response;
  }

  EcoStats eco;
  ScoreBreakdown score;
  try {
    SegmentMap segments(scratch);
    PlacementState state(scratch);
    EcoConfig ecoConfig;
    ecoConfig.pipeline = config_;
    ecoConfig.requestDeadline = requestDeadline;
    eco = ecoRelegalize(state, segments, snapshot_, ecoConfig);
    score = evaluateScore(scratch, segments);
  } catch (const MclgError& e) {
    response.status = e.kind() == ErrorKind::Timeout ? ServeStatus::Rejected
                                                     : ServeStatus::Internal;
    response.error = e.what();
    response.seconds = timer.seconds();
    return response;
  } catch (const std::exception& e) {
    response.status = ServeStatus::Internal;
    response.error = e.what();
    response.seconds = timer.seconds();
    return response;
  }

  if (!score.legality.legal()) {
    response.status = ServeStatus::Infeasible;
    response.error = std::to_string(score.legality.unplacedCells) +
                     " cells unplaced or placement not legal";
    response.seconds = timer.seconds();
    return response;
  }

  // Adopt: the scratch copy becomes the (uncommitted) current placement.
  current_ = std::move(scratch);
  response.status =
      eco.usedFullRun ? ServeStatus::Degraded : ServeStatus::Ok;
  PipelineStats stats;
  stats.mgl = eco.mgl;
  stats.secondsMgl = eco.secondsIncremental;
  lastScore_ = score.score;
  lastReport_ = obs::renderRunReport(provenanceFor(current_, preset_, config_),
                                     stats, &score, /*includeMetrics=*/false,
                                     &eco);
  response.hash = placementHash(current_);
  response.score = score.score;
  response.cells = current_.numCells();
  response.seconds = timer.seconds();
  response.body = lastReport_;
  return response;
}

ServeResponse ServeSession::commit(const TenantRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeResponse response;
  response.id = request.id;
  response.tenant = tenant_;
  Timer timer;
  snapshot_ = current_;
  response.status = ServeStatus::Ok;
  response.hash = placementHash(current_);
  response.score = lastScore_;
  response.cells = current_.numCells();
  response.seconds = timer.seconds();
  return response;
}

ServeResponse ServeSession::rollback(const TenantRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeResponse response;
  response.id = request.id;
  response.tenant = tenant_;
  Timer timer;
  current_ = snapshot_;
  response.status = ServeStatus::Ok;
  response.hash = placementHash(current_);
  response.cells = current_.numCells();
  response.seconds = timer.seconds();
  return response;
}

ServeResponse ServeSession::query(const QueryRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  ServeResponse response;
  response.id = request.id;
  response.tenant = tenant_;
  Timer timer;
  response.hash = placementHash(current_);
  response.score = lastScore_;
  response.cells = current_.numCells();
  if (request.key == "report") {
    response.status = ServeStatus::Ok;
    response.body = lastReport_;
  } else if (request.key == "design") {
    response.status = ServeStatus::Ok;
    response.body = writeSimpleFormat(current_);
  } else if (request.key == "score") {
    SegmentMap segments(current_);
    const ScoreBreakdown score = evaluateScore(current_, segments);
    response.status = ServeStatus::Ok;
    response.score = score.score;
    response.body = summarize(current_, score) + "\n";
  } else {
    response.status = ServeStatus::Malformed;
    response.error = "unknown query key " + request.key;
  }
  response.seconds = timer.seconds();
  return response;
}

}  // namespace mclg
