// Payload codecs for the legalization-service request/response frames.
//
// The daemon (tools/mclg_serve, flow/serve/serve_server.hpp) speaks the
// same length-prefixed frame envelope as the batch supervisor
// (flow/worker_protocol.hpp): magic u32 LE + type u32 LE + length u32 LE +
// payload. This header defines what goes *inside* the serving frames
// (FrameType::LoadDesign .. FrameType::Response): a line-oriented
// `key=value` header, optionally followed by one `---` separator line and
// a free-form body (a .mclg design text, ECO op lines, or a run-report
// JSON document). The same forward-compatibility convention as the worker
// payloads applies — unknown keys are skipped, so older daemons read newer
// clients and vice versa — and every payload leads with
// `proto=<kServeProtocolVersion>`; a daemon rejects a higher major version
// with ServeStatus::Malformed instead of guessing.
//
// The byte-level layout, the status vocabulary, and the compatibility
// rules are documented normatively in docs/PROTOCOL.md; docs/SERVE.md
// shows the request flow end to end.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/worker_protocol.hpp"

namespace mclg {

/// Bump on any incompatible change to the serving payloads (renamed keys,
/// changed op grammar). Additive keys do NOT need a bump: parsers skip
/// unknown keys by construction.
inline constexpr int kServeProtocolVersion = 1;

/// Per-request outcome vocabulary carried in Response `status=`. The first
/// three mirror the run outcomes of the exit-code contract
/// (GuardExitCode / WorkerStatus); the rest are service-level outcomes
/// that have no process-exit analogue.
enum class ServeStatus {
  Ok,            ///< request applied; placement legal
  Degraded,      ///< applied, but ECO fell back to a full run / guard degraded
  Infeasible,    ///< legalization left unplaced cells; tenant rolled back
  ParseError,    ///< design text or op list failed to parse
  Malformed,     ///< structurally invalid request payload
  UnknownTenant, ///< request names a tenant that was never loaded
  TenantExists,  ///< LoadDesign for an already-registered tenant
  Busy,          ///< admission control: queue full, retry later
  Rejected,      ///< request-scoped budget exhausted; tenant rolled back
  Internal,      ///< unexpected exception; tenant rolled back
  Bye,           ///< acknowledged Shutdown; the connection (or daemon) ends
};

const char* serveStatusName(ServeStatus status);
/// -1 on an unknown name (forward compatibility is the caller's call).
int serveStatusFromName(const std::string& name);
/// Did the request leave the tenant with a usable placement? (Ok/Degraded.)
bool serveStatusOk(ServeStatus status);

// ---- Requests --------------------------------------------------------------

/// LoadDesign: register `tenant` and legalize the design from scratch.
/// Body: the full .mclg design text (parsers/simple_format.hpp).
struct LoadDesignRequest {
  std::uint64_t id = 0;        ///< client-chosen, echoed in the Response
  std::string tenant;
  std::string preset = "contest";  ///< "contest" or "totaldisp"
  int threads = 1;
  std::string designText;
};

/// One ECO edit. The grammar is one op per body line:
///   move <cell> <gpX> <gpY>     re-target a movable cell's GP position
///   resize <cell> <type>        swap a cell to another library type
///   add <type> <gpX> <gpY> [fence]   append a new movable cell
/// Cells are numeric CellIds into the tenant's design; types and fences
/// are named. gpX/gpY are in site/row units (doubles).
struct EcoOp {
  enum class Kind { Move, Resize, Add };
  Kind kind = Kind::Move;
  int cell = -1;          ///< Move/Resize
  std::string type;       ///< Resize/Add
  double gpX = 0.0;       ///< Move/Add
  double gpY = 0.0;       ///< Move/Add
  std::string fence;      ///< Add (empty = no fence)
};

/// EcoDelta: apply the ops to a scratch copy of the tenant's design and
/// ECO-relegalize it against the committed snapshot. On Ok/Degraded the
/// scratch copy becomes the tenant's current placement (still uncommitted
/// until Commit); on any failure the tenant is untouched.
struct EcoDeltaRequest {
  std::uint64_t id = 0;
  std::string tenant;
  std::vector<EcoOp> ops;
};

/// Commit / Rollback: promote the current placement to the snapshot, or
/// restore the snapshot as current. Both always succeed on a known tenant.
struct TenantRequest {
  std::uint64_t id = 0;
  std::string tenant;
};

/// Query: read-only introspection. `key` is one of
///   status  per-tenant service table (tenant may be empty: whole daemon)
///   score   tenant's current Eq. 10 score breakdown summary line
///   report  tenant's last run report (schema v6 JSON), verbatim
///   design  tenant's current design as .mclg text (byte-exact)
struct QueryRequest {
  std::uint64_t id = 0;
  std::string tenant;  ///< may be empty for key == "status"
  std::string key = "status";
};

/// Shutdown: scope "connection" ends this client's session; scope
/// "daemon" stops the whole server (only honored when the daemon was
/// started with --allow-remote-shutdown; otherwise answered Malformed).
struct ShutdownRequest {
  std::uint64_t id = 0;
  std::string scope = "connection";
};

// ---- Response --------------------------------------------------------------

/// One Response frame per request, in request order per connection.
/// `hash` is placementHash(design) after the request (0 when the request
/// did not touch or read a placement). The body carries the schema-v6 run
/// report for LoadDesign/EcoDelta (docs/OBSERVABILITY.md), and the queried
/// document for Query.
struct ServeResponse {
  std::uint64_t id = 0;
  ServeStatus status = ServeStatus::Internal;
  std::string tenant;
  std::string error;            ///< one-line detail when !serveStatusOk
  std::uint64_t hash = 0;
  double score = 0.0;
  double seconds = 0.0;         ///< daemon-side wall clock for the request
  int cells = 0;
  std::string body;             ///< report JSON / queried document; may be ""
};

// ---- Codecs ----------------------------------------------------------------
// serialize* renders the payload for writeFrame(); parse* returns false on
// malformed payloads (missing required keys, bad op lines, unsupported
// proto version) and leaves *out untouched.

std::string serializeLoadDesign(const LoadDesignRequest& request);
bool parseLoadDesign(const std::string& payload, LoadDesignRequest* out);

std::string serializeEcoDelta(const EcoDeltaRequest& request);
bool parseEcoDelta(const std::string& payload, EcoDeltaRequest* out);

/// Commit and Rollback share the TenantRequest payload; the frame type
/// carries the verb.
std::string serializeTenantRequest(const TenantRequest& request);
bool parseTenantRequest(const std::string& payload, TenantRequest* out);

std::string serializeQuery(const QueryRequest& request);
bool parseQuery(const std::string& payload, QueryRequest* out);

std::string serializeShutdown(const ShutdownRequest& request);
bool parseShutdown(const std::string& payload, ShutdownRequest* out);

std::string serializeServeResponse(const ServeResponse& response);
bool parseServeResponse(const std::string& payload, ServeResponse* out);

}  // namespace mclg
