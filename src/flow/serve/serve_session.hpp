// One resident tenant of the legalization service: a design loaded once,
// kept legal in memory, and re-legalized incrementally per EcoDelta
// request against its committed snapshot.
//
// The session is the service's transaction boundary. Every EcoDelta runs
// on a scratch copy of the current design: the ops are validated and
// applied there, ecoRelegalize() runs against the committed snapshot, and
// only an Ok/Degraded outcome is adopted as the new current placement —
// a malformed op list, an infeasible result, an exhausted request budget
// (ServeStatus::Rejected), or an escaped exception leaves the tenant
// exactly as it was. Commit promotes current -> snapshot; Rollback
// restores snapshot -> current. This mirrors the guard's stage
// transactions one level up: the guard rolls back stages inside a run,
// the session rolls back whole requests.
//
// Determinism / CLI parity: load() builds the same PipelineConfig the CLI
// does (preset + guard enabled + setThreads) and applyDelta() uses the
// CLI's --eco-from defaults, so a request stream's per-request placements
// are byte-identical to running `mclg_cli legalize --eco-from` once per
// request on the equivalent inputs (asserted in tests/test_serve.cpp).
//
// Thread safety: each public method locks the session, serializing
// requests per tenant; distinct tenants run concurrently on the executor
// (flow/serve/serve_server.hpp).
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "db/design.hpp"
#include "flow/serve/serve_protocol.hpp"
#include "legal/pipeline.hpp"
#include "util/deadline.hpp"

namespace mclg {

/// Per-session knobs resolved by the server from its own config + the
/// LoadDesign request.
struct ServeSessionConfig {
  std::string preset = "contest";  ///< "contest" or "totaldisp"
  int threads = 1;
  ExecutorRef executor;  ///< lane source for any in-run parallelism
  /// Bounds the initial full legalize (guard stages) of this load only;
  /// later requests carry their own deadline into applyDelta().
  Deadline requestDeadline;
};

class ServeSession {
 public:
  /// Parse + fully legalize the design (the expensive, once-per-tenant
  /// step). Returns nullptr — with *response explaining why — unless the
  /// run ends Ok or Degraded: a tenant is only ever registered with a
  /// usable placement.
  static std::unique_ptr<ServeSession> load(const LoadDesignRequest& request,
                                            const ServeSessionConfig& config,
                                            ServeResponse* response);

  /// Apply one EcoDelta as a transaction (see file comment). The request
  /// deadline bounds the whole run; expiry yields ServeStatus::Rejected.
  ServeResponse applyDelta(const EcoDeltaRequest& request,
                           const Deadline& requestDeadline);

  ServeResponse commit(const TenantRequest& request);
  ServeResponse rollback(const TenantRequest& request);
  ServeResponse query(const QueryRequest& request);

  const std::string& tenant() const { return tenant_; }

 private:
  ServeSession() = default;

  /// Validate + apply one op to `design`. Returns false (with *error) on
  /// an unknown cell/type/fence or an out-of-core GP target.
  static bool applyOp(Design& design, const EcoOp& op, std::string* error);

  std::string tenant_;
  std::string preset_;
  PipelineConfig config_;   // CLI-equivalent: preset, guard on, threads set
  Design current_;          // legal; may hold uncommitted ECO results
  Design snapshot_;         // last committed legal snapshot
  std::string lastReport_;  // schema-v6 run report of the last legalize/ECO
  double lastScore_ = 0.0;
  std::mutex mutex_;
};

}  // namespace mclg
