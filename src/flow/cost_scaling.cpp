// Cost-scaling min-cost flow (Goldberg & Tarjan).
//
// Phase 0 establishes a feasible flow with a Dinic max-flow from the excess
// nodes to the deficit nodes (infeasible supplies are detected here).
// Costs are then scaled by (n+1) and ε-scaling refine phases run: each
// phase saturates every negative-reduced-cost residual arc and discharges
// active nodes with push / relabel (decrement-by-ε relabeling) until the
// pseudoflow is a flow again; ε shrinks by a constant factor until ε < 1,
// at which point the flow is optimal for the original integer costs.
// Potentials for the McfSolution are recomputed exactly on the final
// residual graph with Bellman-Ford so verifyMcfOptimality accepts them.

#include <deque>
#include <queue>

#include "flow/mcf.hpp"
#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace mclg {
namespace {

using Wide = __int128;  // scaled reduced costs / potentials

struct RArc {
  int to = 0;
  int rev = 0;          // index in adj[to]
  FlowValue cap = 0;    // residual capacity
  CostValue cost = 0;   // original (unscaled) cost
  int origArc = -1;     // >= 0 forward, ~orig for backward
};

class CostScaling {
 public:
  explicit CostScaling(const McfProblem& problem) : p_(problem) {}

  McfSolution run() {
    McfSolution sol;
    const int n = p_.numNodes();
    adj_.assign(static_cast<std::size_t>(n), {});
    flow_.assign(static_cast<std::size_t>(p_.numArcs()), 0);

    // Flow-decomposition bound: no arc of some optimal solution needs more
    // than (total positive supply + total capacity of negative-cost arcs),
    // so uncapacitated arcs can be clamped — refine()'s saturation step
    // would otherwise overflow excesses with kInfiniteCap pushes.
    FlowValue bound = 1;
    for (int v = 0; v < n; ++v) {
      if (p_.supply(v) > 0) bound += p_.supply(v);
    }
    for (int a = 0; a < p_.numArcs(); ++a) {
      const auto& arc = p_.arc(a);
      if (arc.cost < 0) {
        MCLG_ASSERT(arc.cap < kInfiniteCap,
                    "cost scaling requires finite caps on negative arcs");
        bound += arc.cap;
      }
    }

    CostValue maxCost = 0;
    for (int a = 0; a < p_.numArcs(); ++a) {
      const auto& arc = p_.arc(a);
      maxCost = std::max<CostValue>(maxCost, std::llabs(arc.cost));
      addPair(arc.src, arc.dst, std::min(arc.cap, bound), arc.cost, a);
    }

    if (!establishFeasibleFlow()) {
      sol.status = McfStatus::Infeasible;
      return sol;
    }

    // ε-scaling refine phases on costs scaled by (n+1).
    pi_.assign(static_cast<std::size_t>(n), 0);
    const Wide scale = n + 1;
    Wide eps = static_cast<Wide>(maxCost) * scale;
    long long phases = 0;
    while (eps >= 1) {
      refine(eps);
      ++phases;
      if (eps == 1) break;
      eps = eps / kAlpha;
      if (eps < 1) eps = 1;
    }
    // Pushes are tallied in applyPush without atomics; flush once per solve.
    if (obs::metricsEnabled()) {
      obs::counter("mcf.cost_scaling.solves").add();
      obs::counter("mcf.cost_scaling.phases").add(phases);
      obs::counter("mcf.cost_scaling.pushes").add(pushes_);
    }

    sol.status = McfStatus::Optimal;
    sol.flow = flow_;
    sol.potential = exactPotentials();
    sol.totalCost = McfSolution::costOf(p_, sol.flow);
    return sol;
  }

 private:
  static constexpr int kAlpha = 8;

  void addPair(int u, int v, FlowValue cap, CostValue cost, int orig) {
    adj_[static_cast<std::size_t>(u)].push_back(
        {v, static_cast<int>(adj_[static_cast<std::size_t>(v)].size()), cap,
         cost, orig});
    adj_[static_cast<std::size_t>(v)].push_back(
        {u, static_cast<int>(adj_[static_cast<std::size_t>(u)].size()) - 1, 0,
         -cost, ~orig});
  }

  void applyPush(int u, RArc& arc, FlowValue delta) {
    ++pushes_;
    arc.cap -= delta;
    adj_[static_cast<std::size_t>(arc.to)][static_cast<std::size_t>(arc.rev)]
        .cap += delta;
    if (arc.origArc >= 0) {
      flow_[static_cast<std::size_t>(arc.origArc)] += delta;
    } else {
      flow_[static_cast<std::size_t>(~arc.origArc)] -= delta;
    }
    excess_[static_cast<std::size_t>(u)] -= delta;
    excess_[static_cast<std::size_t>(arc.to)] += delta;
  }

  /// Dinic max-flow from all excess nodes to all deficit nodes.
  bool establishFeasibleFlow() {
    const int n = p_.numNodes();
    excess_.assign(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) excess_[static_cast<std::size_t>(v)] = p_.supply(v);

    for (;;) {
      // BFS levels from all sources over positive-residual arcs.
      std::vector<int> level(static_cast<std::size_t>(n), -1);
      std::deque<int> queue;
      for (int v = 0; v < n; ++v) {
        if (excess_[static_cast<std::size_t>(v)] > 0) {
          level[static_cast<std::size_t>(v)] = 0;
          queue.push_back(v);
        }
      }
      bool reachedSink = false;
      while (!queue.empty()) {
        const int u = queue.front();
        queue.pop_front();
        if (excess_[static_cast<std::size_t>(u)] < 0) reachedSink = true;
        for (const auto& arc : adj_[static_cast<std::size_t>(u)]) {
          if (arc.cap > 0 && level[static_cast<std::size_t>(arc.to)] < 0) {
            level[static_cast<std::size_t>(arc.to)] =
                level[static_cast<std::size_t>(u)] + 1;
            queue.push_back(arc.to);
          }
        }
      }
      if (!reachedSink) break;

      // DFS blocking flow (iterative, with per-node arc cursors).
      std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
      for (int s = 0; s < n; ++s) {
        while (excess_[static_cast<std::size_t>(s)] > 0) {
          const FlowValue sent =
              dinicDfs(s, excess_[static_cast<std::size_t>(s)], level, cursor);
          if (sent == 0) break;
        }
      }
    }
    for (int v = 0; v < n; ++v) {
      if (excess_[static_cast<std::size_t>(v)] != 0) return false;
    }
    return true;
  }

  FlowValue dinicDfs(int u, FlowValue limit, const std::vector<int>& level,
                     std::vector<std::size_t>& cursor) {
    if (excess_[static_cast<std::size_t>(u)] < 0 && limit > 0) {
      const FlowValue absorb =
          std::min<FlowValue>(limit, -excess_[static_cast<std::size_t>(u)]);
      // Caller adjusts excesses via applyPush along the path; absorbing at a
      // deficit node is the recursion base case.
      return absorb;
    }
    for (auto& i = cursor[static_cast<std::size_t>(u)];
         i < adj_[static_cast<std::size_t>(u)].size(); ++i) {
      auto& arc = adj_[static_cast<std::size_t>(u)][i];
      if (arc.cap <= 0 ||
          level[static_cast<std::size_t>(arc.to)] !=
              level[static_cast<std::size_t>(u)] + 1) {
        continue;
      }
      const FlowValue sent = dinicDfs(
          arc.to, std::min(limit, arc.cap), level, cursor);
      if (sent > 0) {
        applyPush(u, arc, sent);
        return sent;
      }
    }
    return 0;
  }

  Wide reducedCost(int u, const RArc& arc) const {
    return static_cast<Wide>(arc.cost) * (p_.numNodes() + 1) +
           pi_[static_cast<std::size_t>(u)] -
           pi_[static_cast<std::size_t>(arc.to)];
  }

  void refine(Wide eps) {
    const int n = p_.numNodes();
    // Saturate every negative-reduced-cost residual arc.
    for (int u = 0; u < n; ++u) {
      for (auto& arc : adj_[static_cast<std::size_t>(u)]) {
        if (arc.cap > 0 && reducedCost(u, arc) < 0) {
          applyPush(u, arc, arc.cap);
        }
      }
    }
    // Discharge active nodes.
    std::deque<int> active;
    std::vector<char> inQueue(static_cast<std::size_t>(n), 0);
    for (int v = 0; v < n; ++v) {
      if (excess_[static_cast<std::size_t>(v)] > 0) {
        active.push_back(v);
        inQueue[static_cast<std::size_t>(v)] = 1;
      }
    }
    std::vector<std::size_t> cursor(static_cast<std::size_t>(n), 0);
    while (!active.empty()) {
      const int u = active.front();
      active.pop_front();
      inQueue[static_cast<std::size_t>(u)] = 0;
      while (excess_[static_cast<std::size_t>(u)] > 0) {
        if (cursor[static_cast<std::size_t>(u)] >=
            adj_[static_cast<std::size_t>(u)].size()) {
          // Relabel: lower the potential; admissible arcs may appear.
          pi_[static_cast<std::size_t>(u)] -= eps;
          cursor[static_cast<std::size_t>(u)] = 0;
          continue;
        }
        auto& arc = adj_[static_cast<std::size_t>(u)]
                        [cursor[static_cast<std::size_t>(u)]];
        if (arc.cap > 0 && reducedCost(u, arc) < 0) {
          const FlowValue delta =
              std::min(excess_[static_cast<std::size_t>(u)], arc.cap);
          applyPush(u, arc, delta);
          if (excess_[static_cast<std::size_t>(arc.to)] > 0 &&
              inQueue[static_cast<std::size_t>(arc.to)] == 0) {
            active.push_back(arc.to);
            inQueue[static_cast<std::size_t>(arc.to)] = 1;
          }
        } else {
          ++cursor[static_cast<std::size_t>(u)];
        }
      }
    }
  }

  /// Exact potentials on the final residual graph (Bellman-Ford from a
  /// virtual root connected to every node with cost 0).
  std::vector<CostValue> exactPotentials() const {
    const int n = p_.numNodes();
    std::vector<CostValue> dist(static_cast<std::size_t>(n), 0);
    for (int round = 0; round < n; ++round) {
      bool changed = false;
      for (int u = 0; u < n; ++u) {
        for (const auto& arc : adj_[static_cast<std::size_t>(u)]) {
          if (arc.cap <= 0) continue;
          const CostValue cand = dist[static_cast<std::size_t>(u)] + arc.cost;
          if (cand < dist[static_cast<std::size_t>(arc.to)]) {
            dist[static_cast<std::size_t>(arc.to)] = cand;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
    return dist;
  }

  const McfProblem& p_;
  std::vector<std::vector<RArc>> adj_;
  std::vector<FlowValue> flow_;
  std::vector<FlowValue> excess_;
  std::vector<Wide> pi_;
  long long pushes_ = 0;
};

}  // namespace

McfSolution CostScalingSolver::solve(const McfProblem& problem) {
  FlowValue total = 0;
  for (int v = 0; v < problem.numNodes(); ++v) total += problem.supply(v);
  if (total != 0) {
    McfSolution sol;
    sol.status = McfStatus::Infeasible;
    return sol;
  }
  CostScaling solver(problem);
  return solver.run();
}

}  // namespace mclg
