// Dense min-cost assignment via the O(n³) shortest-augmenting-path
// Hungarian algorithm (Jonker-Volgenant potentials form).
//
// The §3.2 matching solves sparse instances through the MCF reduction
// (flow/bipartite_matching.hpp); for *dense* groups the matrix form is
// asymptotically and practically faster. solveAssignmentDense is
// cross-validated against the MCF path in tests and benchmarked in
// bench_micro.
#pragma once

#include <vector>

#include "flow/mcf.hpp"

namespace mclg {

/// Minimize sum cost[i][j] over perfect matchings of n rows to n of the
/// numRight >= n columns. cost is row-major n × numRight. Returns
/// match[row] = column.
std::vector<int> solveAssignmentDense(int n, int numRight,
                                      const std::vector<CostValue>& cost);

}  // namespace mclg
