#include "flow/hungarian.hpp"

#include <limits>

#include "util/assert.hpp"

namespace mclg {

std::vector<int> solveAssignmentDense(int n, int numRight,
                                      const std::vector<CostValue>& cost) {
  MCLG_ASSERT(n <= numRight, "dense assignment needs n <= numRight");
  MCLG_ASSERT(static_cast<int>(cost.size()) == n * numRight,
              "cost matrix size mismatch");
  constexpr CostValue kInf = std::numeric_limits<CostValue>::max() / 4;

  // 1-indexed JV formulation: u[i] row potentials, v[j] column potentials,
  // way[j] the augmenting-path predecessor column.
  std::vector<CostValue> u(static_cast<std::size_t>(n) + 1, 0);
  std::vector<CostValue> v(static_cast<std::size_t>(numRight) + 1, 0);
  std::vector<int> matchedRow(static_cast<std::size_t>(numRight) + 1, 0);
  std::vector<int> way(static_cast<std::size_t>(numRight) + 1, 0);

  for (int i = 1; i <= n; ++i) {
    matchedRow[0] = i;
    int j0 = 0;  // virtual column the new row starts at
    std::vector<CostValue> minv(static_cast<std::size_t>(numRight) + 1, kInf);
    std::vector<char> used(static_cast<std::size_t>(numRight) + 1, 0);
    do {
      used[static_cast<std::size_t>(j0)] = 1;
      const int i0 = matchedRow[static_cast<std::size_t>(j0)];
      CostValue delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= numRight; ++j) {
        if (used[static_cast<std::size_t>(j)]) continue;
        const CostValue cur =
            cost[static_cast<std::size_t>(i0 - 1) * numRight + (j - 1)] -
            u[static_cast<std::size_t>(i0)] - v[static_cast<std::size_t>(j)];
        if (cur < minv[static_cast<std::size_t>(j)]) {
          minv[static_cast<std::size_t>(j)] = cur;
          way[static_cast<std::size_t>(j)] = j0;
        }
        if (minv[static_cast<std::size_t>(j)] < delta) {
          delta = minv[static_cast<std::size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= numRight; ++j) {
        if (used[static_cast<std::size_t>(j)]) {
          u[static_cast<std::size_t>(matchedRow[static_cast<std::size_t>(j)])] +=
              delta;
          v[static_cast<std::size_t>(j)] -= delta;
        } else {
          minv[static_cast<std::size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (matchedRow[static_cast<std::size_t>(j0)] != 0);
    // Unwind the augmenting path.
    do {
      const int j1 = way[static_cast<std::size_t>(j0)];
      matchedRow[static_cast<std::size_t>(j0)] =
          matchedRow[static_cast<std::size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> match(static_cast<std::size_t>(n), -1);
  for (int j = 1; j <= numRight; ++j) {
    if (matchedRow[static_cast<std::size_t>(j)] > 0) {
      match[static_cast<std::size_t>(matchedRow[static_cast<std::size_t>(j)]) -
            1] = j - 1;
    }
  }
  return match;
}

}  // namespace mclg
