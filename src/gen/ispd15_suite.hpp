// The 20-design modified-ISPD-2015 suite used by Table 2: 10% of the cells
// converted to double height & half width; total displacement objective,
// fences and routability constraints off.
#pragma once

#include <string>
#include <vector>

#include "gen/benchmark_gen.hpp"

namespace mclg {

struct Ispd15Entry {
  GenSpec spec;
  // Paper Table 2 total displacement (sites) per algorithm.
  double paperMll = 0.0;      // [12]-Imp
  double paperAbacus = 0.0;   // [7]
  double paperOrdered = 0.0;  // [9]
  double paperOurs = 0.0;
};

std::vector<Ispd15Entry> ispd15Suite(double scale = 1.0);

}  // namespace mclg
