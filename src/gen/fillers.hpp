// Filler-cell insertion: after legalization, fill every remaining gap with
// filler cells so each row is 100% covered (the step real flows run before
// routing; the paper's §3.4 mentions fillers in the context of edge
// spacing). Fillers are generated as dedicated fixed cells of power-of-two
// widths and never violate edge spacing (their edges are class 0).
#pragma once

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"

namespace mclg {

struct FillerStats {
  int fillersAdded = 0;
  std::int64_t sitesFilled = 0;
  std::int64_t sitesLeftUncovered = 0;  // gaps narrower than the min width
};

/// Append filler cells (single-height, widths 1..maxWidth by powers of two)
/// into every free gap of every segment. The fillers are marked fixed; call
/// removeFillers to undo. Design caches are invalidated.
FillerStats insertFillers(PlacementState& state, const SegmentMap& segments,
                          int maxWidth = 8);

/// Remove all filler cells previously added by insertFillers.
int removeFillers(Design& design);

/// True if the type id was created by insertFillers.
bool isFillerType(const Design& design, TypeId type);

}  // namespace mclg
