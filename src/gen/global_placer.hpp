// Quadratic global placement (GP-lite).
//
// The paper's legalizer consumes a GP solution; the contest distributes one
// with its benchmarks. Our synthetic designs can either sample clustered GP
// positions directly (gen/benchmark_gen.hpp) or run this small quadratic
// placer over the generated netlist for a more realistic input: alternating
// (a) wirelength relaxation — every cell moves toward the weighted centroid
// of its nets' centroids (a Jacobi step on the star-model quadratic
// program) — and (b) bin-based spreading that pushes cells out of
// overfilled density bins. Fence-assigned cells are clamped to their fence
// boxes; everything is deterministic.
#pragma once

#include <cstdint>

#include "db/design.hpp"

namespace mclg {

struct GlobalPlaceConfig {
  int iterations = 60;
  /// Blend factor of the wirelength target per iteration (0..1).
  double wirelengthStep = 0.6;
  /// Strength of the density-spreading displacement per iteration.
  double spreadingStep = 0.4;
  /// Spreading bin size in rows (bins are square in physical units).
  double binRows = 8.0;
  /// Target utilization per bin before spreading kicks in.
  double binCapacity = 0.8;
  std::uint64_t seed = 1;
};

struct GlobalPlaceStats {
  double hpwlBefore = 0.0;
  double hpwlAfter = 0.0;
  double maxBinUtilBefore = 0.0;
  double maxBinUtilAfter = 0.0;
};

/// Overwrite the GP coordinates (gpX/gpY) of all movable cells. Cells not
/// connected to any net keep their current GP (they have no wirelength
/// gradient) but still participate in spreading.
GlobalPlaceStats globalPlace(Design& design, const GlobalPlaceConfig& config);

}  // namespace mclg
