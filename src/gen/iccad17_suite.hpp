// The 16-design ICCAD-2017-style suite used by Tables 1 and 3.
//
// Cell counts per height and densities follow the published per-design
// statistics; each entry also carries the paper-reported quality numbers so
// benches can print paper-vs-measured side by side.
#pragma once

#include <string>
#include <vector>

#include "gen/benchmark_gen.hpp"

namespace mclg {

struct Iccad17Entry {
  GenSpec spec;
  // Paper Table 1 / Table 3 reference values ("ours" column).
  double paperAvgDispBefore = 0.0;  // Table 3, before post-processing
  double paperAvgDispAfter = 0.0;   // Table 3 / Table 1 "Ours"
  double paperMaxDispBefore = 0.0;
  double paperMaxDispAfter = 0.0;
};

/// All 16 designs, with cell counts scaled by `scale` (1.0 = full size).
std::vector<Iccad17Entry> iccad17Suite(double scale = 1.0);

}  // namespace mclg
