// Synthetic design generator.
//
// The paper evaluates on the ICCAD 2017 contest designs and on modified
// ISPD 2015 designs; neither tarball is redistributable here, so the suites
// in iccad17_suite/ispd15_suite regenerate designs with the *published*
// statistics (cell counts per height, density, fences, P/G grid) through
// this generator. Everything is deterministic in the seed.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "db/design.hpp"

namespace mclg {

struct GenSpec {
  std::string name = "synthetic";
  /// Movable cell counts by height (index 0 -> height 1, ... index 3 -> 4).
  std::array<int, 4> cellsPerHeight = {1000, 0, 0, 0};
  /// Target utilization: total movable cell area / free core area.
  double density = 0.5;
  int numFences = 0;        // explicit fence regions
  int numBlockages = 0;     // fixed macro obstacles
  int typesPerHeight = 4;   // cell-type variety per height class
  bool withRoutability = true;  // P/G straps, IO pins, pin shapes
  bool withNets = true;
  int numIoPins = 200;
  int numEdgeClasses = 3;   // >1 enables edge-spacing rules
  /// Fraction of cells concentrated in Gaussian hotspots (creates the
  /// overlapping clusters legalization has to resolve).
  double clusterFraction = 0.35;
  int numClusters = 6;
  /// Sigma of the hotspot Gaussians, in rows.
  double clusterSigmaRows = 12.0;
  std::uint64_t seed = 1;
};

/// Build a design from the spec. The result passes Design::validate() and
/// has all movable cells unplaced with GP coordinates inside the core.
Design generate(const GenSpec& spec);

/// Scale a spec's cell counts (and IO pins) by `factor`, keeping density and
/// structure. Used by the benches to run reduced-size suites quickly.
GenSpec scaled(GenSpec spec, double factor);

}  // namespace mclg
