#include "gen/global_placer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "eval/metrics.hpp"
#include "util/assert.hpp"
#include "util/random.hpp"

namespace mclg {
namespace {

struct BinGrid {
  int cols = 0;
  int rows = 0;
  double binW = 1.0;  // sites
  double binH = 1.0;  // rows
  std::vector<double> usage;     // cell area per bin
  std::vector<double> centX;     // area-weighted centroid
  std::vector<double> centY;
  double capacityPerBin = 0.0;   // sites*rows

  int indexOf(double x, double y) const {
    const int bx = std::clamp(static_cast<int>(x / binW), 0, cols - 1);
    const int by = std::clamp(static_cast<int>(y / binH), 0, rows - 1);
    return by * cols + bx;
  }
};

BinGrid makeGrid(const Design& design, const GlobalPlaceConfig& config) {
  BinGrid grid;
  grid.binH = config.binRows;
  grid.binW = config.binRows / design.siteWidthFactor;  // square physically
  grid.cols = std::max(
      1, static_cast<int>(std::ceil(design.numSitesX / grid.binW)));
  grid.rows = std::max(
      1, static_cast<int>(std::ceil(design.numRows / grid.binH)));
  grid.capacityPerBin = grid.binW * grid.binH * config.binCapacity;
  grid.usage.assign(static_cast<std::size_t>(grid.cols) * grid.rows, 0.0);
  grid.centX.assign(grid.usage.size(), 0.0);
  grid.centY.assign(grid.usage.size(), 0.0);
  return grid;
}

double maxUtilization(const Design& design, const GlobalPlaceConfig& config) {
  BinGrid grid = makeGrid(design, config);
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed) continue;
    const double area =
        static_cast<double>(design.widthOf(c)) * design.heightOf(c);
    grid.usage[static_cast<std::size_t>(grid.indexOf(cell.gpX, cell.gpY))] +=
        area;
  }
  double worst = 0.0;
  for (const double u : grid.usage) {
    worst = std::max(worst, u / (grid.binW * grid.binH));
  }
  return worst;
}

/// Clamp a GP position into the cell's fence (nearest fence rect) or core.
void clampToRegion(const Design& design, CellId c, double* x, double* y) {
  const auto& cell = design.cells[c];
  const double w = design.widthOf(c);
  const double h = design.heightOf(c);
  if (cell.fence != kDefaultFence) {
    const auto& rects = design.fences[static_cast<std::size_t>(cell.fence)].rects;
    double bestDist = 0.0;
    double bestX = *x, bestY = *y;
    bool first = true;
    for (const auto& rect : rects) {
      const double cx = std::clamp(*x, static_cast<double>(rect.xlo),
                                   static_cast<double>(rect.xhi) - w);
      const double cy = std::clamp(*y, static_cast<double>(rect.ylo),
                                   static_cast<double>(rect.yhi) - h);
      const double dist = std::abs(cx - *x) + std::abs(cy - *y);
      if (first || dist < bestDist) {
        bestDist = dist;
        bestX = cx;
        bestY = cy;
        first = false;
      }
    }
    *x = bestX;
    *y = bestY;
    return;
  }
  *x = std::clamp(*x, 0.0, static_cast<double>(design.numSitesX) - w);
  *y = std::clamp(*y, 0.0, static_cast<double>(design.numRows) - h);
}

}  // namespace

GlobalPlaceStats globalPlace(Design& design, const GlobalPlaceConfig& config) {
  GlobalPlaceStats stats;
  stats.hpwlBefore = hpwl(design, /*useGp=*/true);
  stats.maxBinUtilBefore = maxUtilization(design, config);

  const int n = design.numCells();
  // Net membership per cell (star model).
  std::vector<std::vector<NetId>> netsOf(static_cast<std::size_t>(n));
  for (NetId net = 0; net < static_cast<NetId>(design.nets.size()); ++net) {
    for (const auto& conn : design.nets[net].conns) {
      netsOf[static_cast<std::size_t>(conn.cell)].push_back(net);
    }
  }

  std::vector<double> netCx(design.nets.size(), 0.0);
  std::vector<double> netCy(design.nets.size(), 0.0);
  Rng rng(config.seed ^ 0xABCDEF1234567ULL);

  for (int iter = 0; iter < config.iterations; ++iter) {
    // (a) net centroids from the current GP.
    for (std::size_t net = 0; net < design.nets.size(); ++net) {
      double sx = 0.0, sy = 0.0;
      const auto& conns = design.nets[net].conns;
      for (const auto& conn : conns) {
        sx += design.cells[conn.cell].gpX;
        sy += design.cells[conn.cell].gpY;
      }
      const double inv = conns.empty() ? 0.0 : 1.0 / conns.size();
      netCx[net] = sx * inv;
      netCy[net] = sy * inv;
    }

    // (b) density bins.
    BinGrid grid = makeGrid(design, config);
    for (CellId c = 0; c < n; ++c) {
      const auto& cell = design.cells[c];
      if (cell.fixed) continue;
      const double area =
          static_cast<double>(design.widthOf(c)) * design.heightOf(c);
      const auto bin = static_cast<std::size_t>(
          grid.indexOf(cell.gpX, cell.gpY));
      grid.usage[bin] += area;
      grid.centX[bin] += area * cell.gpX;
      grid.centY[bin] += area * cell.gpY;
    }
    for (std::size_t bin = 0; bin < grid.usage.size(); ++bin) {
      if (grid.usage[bin] > 0.0) {
        grid.centX[bin] /= grid.usage[bin];
        grid.centY[bin] /= grid.usage[bin];
      }
    }

    // (c) move every movable cell.
    for (CellId c = 0; c < n; ++c) {
      auto& cell = design.cells[c];
      if (cell.fixed) continue;
      double x = cell.gpX;
      double y = cell.gpY;

      // Wirelength pull toward the mean of connected net centroids.
      const auto& myNets = netsOf[static_cast<std::size_t>(c)];
      if (!myNets.empty()) {
        double tx = 0.0, ty = 0.0;
        for (const NetId net : myNets) {
          tx += netCx[static_cast<std::size_t>(net)];
          ty += netCy[static_cast<std::size_t>(net)];
        }
        tx /= myNets.size();
        ty /= myNets.size();
        x += config.wirelengthStep * (tx - x);
        y += config.wirelengthStep * (ty - y);
      }

      // Spreading push away from the centroid of an overfilled bin. A tiny
      // deterministic jitter breaks the degenerate case of a cell exactly
      // on the centroid.
      const auto bin = static_cast<std::size_t>(grid.indexOf(cell.gpX, cell.gpY));
      const double overflow = grid.usage[bin] / grid.capacityPerBin;
      if (overflow > 1.0) {
        double dx = cell.gpX - grid.centX[bin];
        double dy = cell.gpY - grid.centY[bin];
        if (std::abs(dx) + std::abs(dy) < 1e-9) {
          dx = rng.uniformReal(-0.5, 0.5);
          dy = rng.uniformReal(-0.5, 0.5);
        }
        const double gain =
            config.spreadingStep * std::min(4.0, overflow - 1.0);
        x += gain * dx;
        y += gain * dy;
      }

      clampToRegion(design, c, &x, &y);
      cell.gpX = x;
      cell.gpY = y;
    }
  }

  stats.hpwlAfter = hpwl(design, /*useGp=*/true);
  stats.maxBinUtilAfter = maxUtilization(design, config);
  return stats;
}

}  // namespace mclg
