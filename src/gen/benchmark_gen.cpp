#include "gen/benchmark_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/random.hpp"

namespace mclg {
namespace {

constexpr std::int64_t F = Design::kFine;

void makeTypes(const GenSpec& spec, Rng& rng, Design& design) {
  const int widthLo[4] = {2, 3, 4, 6};
  const int widthHi[4] = {8, 10, 12, 14};
  for (int h = 1; h <= 4; ++h) {
    if (spec.cellsPerHeight[static_cast<std::size_t>(h - 1)] == 0) continue;
    for (int t = 0; t < spec.typesPerHeight; ++t) {
      CellType type;
      type.name = "T" + std::to_string(h) + "_" + std::to_string(t);
      type.height = h;
      type.width = static_cast<int>(
          rng.uniformInt(widthLo[h - 1], widthHi[h - 1]));
      type.parity = (h % 2 == 0) ? static_cast<int>(rng.uniformInt(0, 1)) : -1;
      if (spec.numEdgeClasses > 1) {
        // Most edges are the "plain" class 0; a minority carry classes that
        // require spacing, mirroring the contest's sparse edge-type usage.
        type.leftEdge = rng.chance(0.3)
                            ? static_cast<int>(
                                  rng.uniformInt(1, spec.numEdgeClasses - 1))
                            : 0;
        type.rightEdge = rng.chance(0.3)
                             ? static_cast<int>(
                                   rng.uniformInt(1, spec.numEdgeClasses - 1))
                             : 0;
      }
      if (spec.withRoutability) {
        const int numM1 = static_cast<int>(rng.uniformInt(1, 3));
        const std::int64_t fw = type.width * F;
        const std::int64_t fh = type.height * F;
        for (int p = 0; p < numM1; ++p) {
          PinShape pin;
          pin.layer = 1;
          const std::int64_t px = rng.uniformInt(0, fw - 2);
          const std::int64_t py = rng.uniformInt(0, fh - 3);
          pin.rect = {px, py, px + rng.uniformInt(1, 2),
                      py + rng.uniformInt(1, 3)};
          type.pins.push_back(pin);
        }
        if (rng.chance(0.6)) {
          PinShape pin;
          pin.layer = 2;
          const std::int64_t px = rng.uniformInt(0, fw - 3);
          const std::int64_t py = rng.uniformInt(1, fh - 3);
          pin.rect = {px, py, px + rng.uniformInt(2, 3),
                      py + rng.uniformInt(1, 2)};
          type.pins.push_back(pin);
        }
      } else {
        // Table-2-style runs still need a pin for HPWL; one point pin at the
        // cell center keeps net models comparable.
        PinShape pin;
        pin.layer = 1;
        pin.rect = {type.width * F / 2, type.height * F / 2,
                    type.width * F / 2 + 1, type.height * F / 2 + 1};
        type.pins.push_back(pin);
      }
      design.types.push_back(std::move(type));
    }
  }
}

void makeEdgeTable(const GenSpec& spec, Design& design) {
  design.numEdgeClasses = std::max(1, spec.numEdgeClasses);
  const int n = design.numEdgeClasses;
  design.edgeSpacingTable.assign(static_cast<std::size_t>(n) * n, 0);
  // Class 0 abuts everything; higher classes need clearance against each
  // other (symmetric, growing with the class index).
  for (int a = 1; a < n; ++a) {
    for (int b = 1; b < n; ++b) {
      design.edgeSpacingTable[static_cast<std::size_t>(a) * n + b] =
          std::max(a, b) - 0;
    }
  }
}

void sizeCore(const GenSpec& spec, const Design& design, Rng& rng,
              std::int64_t totalCellArea, Design& out) {
  (void)design;
  (void)rng;
  // Free sites needed = cellArea / density; keep the die roughly square in
  // physical units (site width = factor * row height).
  const double freeSites =
      static_cast<double>(totalCellArea) / std::max(0.05, spec.density);
  const double rows = std::sqrt(freeSites * out.siteWidthFactor);
  out.numRows = std::max<std::int64_t>(
      16, static_cast<std::int64_t>(std::lround(rows)));
  // Round rows to even so parity-constrained cells have both phases.
  if (out.numRows % 2 != 0) ++out.numRows;
  out.numSitesX = std::max<std::int64_t>(
      32, static_cast<std::int64_t>(std::lround(freeSites / out.numRows)));
}

void makeFencesAndBlockages(const GenSpec& spec, Rng& rng, Design& design) {
  // Explicit fences: disjoint rects tiled from a coarse grid so they never
  // overlap each other or the blockages.
  const int gridCols = 4, gridRows = 3;
  std::vector<int> slots(gridCols * gridRows);
  for (std::size_t i = 0; i < slots.size(); ++i) slots[i] = static_cast<int>(i);
  // Deterministic shuffle.
  for (std::size_t i = slots.size(); i > 1; --i) {
    std::swap(slots[i - 1],
              slots[static_cast<std::size_t>(rng.uniformInt(0, static_cast<std::int64_t>(i) - 1))]);
  }
  const std::int64_t cellW = design.numSitesX / gridCols;
  const std::int64_t cellH = design.numRows / gridRows;
  int used = 0;
  for (int f = 0; f < spec.numFences && used < static_cast<int>(slots.size());
       ++f) {
    const int slot = slots[static_cast<std::size_t>(used++)];
    const std::int64_t gx = (slot % gridCols) * cellW;
    const std::int64_t gy = (slot / gridCols) * cellH;
    // Fence occupies 50-85% of its grid slot, margin on all sides.
    const std::int64_t w = std::max<std::int64_t>(
        8, static_cast<std::int64_t>(cellW * rng.uniformReal(0.5, 0.85)));
    const std::int64_t h = std::max<std::int64_t>(
        4, static_cast<std::int64_t>(cellH * rng.uniformReal(0.5, 0.85)));
    const std::int64_t x = gx + rng.uniformInt(1, std::max<std::int64_t>(1, cellW - w - 1));
    const std::int64_t y = gy + rng.uniformInt(1, std::max<std::int64_t>(1, cellH - h - 1));
    Fence fence;
    fence.name = "fence_" + std::to_string(f + 1);
    fence.rects.push_back({x, y, std::min(x + w, design.numSitesX),
                           std::min(y + h, design.numRows)});
    design.fences.push_back(std::move(fence));
  }
  // Blockages as fixed cells of a dedicated macro type.
  if (spec.numBlockages > 0) {
    CellType macro;
    macro.name = "MACRO";
    macro.width = static_cast<int>(std::max<std::int64_t>(4, design.numSitesX / 16));
    macro.height = static_cast<int>(std::max<std::int64_t>(2, design.numRows / 16));
    macro.parity = macro.height % 2 == 0 ? 0 : -1;
    design.types.push_back(macro);
    const TypeId macroType = design.numTypes() - 1;
    for (int b = 0;
         b < spec.numBlockages && used < static_cast<int>(slots.size()); ++b) {
      const int slot = slots[static_cast<std::size_t>(used++)];
      const std::int64_t gx = (slot % gridCols) * cellW;
      const std::int64_t gy = (slot / gridCols) * cellH;
      Cell cell;
      cell.type = macroType;
      cell.fixed = true;
      cell.placed = true;
      cell.x = gx + std::max<std::int64_t>(1, (cellW - macro.width) / 2);
      cell.y = gy + std::max<std::int64_t>(1, (cellH - macro.height) / 2);
      cell.gpX = static_cast<double>(cell.x);
      cell.gpY = static_cast<double>(cell.y);
      design.cells.push_back(cell);
    }
  }
}

void makeRails(const GenSpec& spec, Design& design) {
  if (!spec.withRoutability) return;
  // Horizontal M2 power straps every 8 rows (row boundary ±2 fine units) and
  // vertical M3 straps every 24 sites (2 fine units wide). Layer-1 pins near
  // the cell bottom/top get *access* problems on strap rows; layer-2 pins
  // get *shorts* there and access problems on M3 strap columns.
  for (std::int64_t y = 8; y < design.numRows; y += 8) {
    design.hRails.push_back({2, y * F - 2, y * F + 2});
  }
  for (std::int64_t x = 24; x < design.numSitesX; x += 24) {
    design.vRails.push_back({3, x * F - 1, x * F + 1});
  }
}

void makeIoPins(const GenSpec& spec, Rng& rng, Design& design) {
  if (!spec.withRoutability || spec.numIoPins <= 0) return;
  for (int i = 0; i < spec.numIoPins; ++i) {
    IoPin pin;
    pin.layer = static_cast<int>(rng.uniformInt(1, 2));
    const std::int64_t px = rng.uniformInt(0, design.numSitesX * F - 5);
    const std::int64_t py = rng.uniformInt(0, design.numRows * F - 5);
    pin.rect = {px, py, px + rng.uniformInt(2, 4), py + rng.uniformInt(2, 4)};
    design.ioPins.push_back(pin);
  }
  std::sort(design.ioPins.begin(), design.ioPins.end(),
            [](const IoPin& a, const IoPin& b) { return a.rect.xlo < b.rect.xlo; });
}

bool insideAnyFence(const Design& design, double x, double y) {
  for (std::size_t f = 1; f < design.fences.size(); ++f) {
    for (const auto& rect : design.fences[f].rects) {
      if (x >= rect.xlo && x < rect.xhi && y >= rect.ylo && y < rect.yhi) {
        return true;
      }
    }
  }
  return false;
}

bool insideBlockage(const Design& design, double x, double y) {
  for (const auto& cell : design.cells) {
    if (!cell.fixed) continue;
    const auto& type = design.types[cell.type];
    if (x >= cell.x && x < cell.x + type.width && y >= cell.y &&
        y < cell.y + type.height) {
      return true;
    }
  }
  return false;
}

void makeCells(const GenSpec& spec, Rng& rng, Design& design) {
  // Cluster hotspot centers (in the default region). The sigma scales with
  // the die so hotspot *density* is size-invariant — a fixed sigma would
  // make large regenerations disproportionately congested.
  const double sigmaRows = std::max(
      spec.clusterSigmaRows, static_cast<double>(design.numRows) / 14.0);
  std::vector<std::pair<double, double>> clusters;
  for (int k = 0; k < spec.numClusters; ++k) {
    clusters.emplace_back(rng.uniformReal(0.1, 0.9) * design.numSitesX,
                          rng.uniformReal(0.1, 0.9) * design.numRows);
  }

  // Types grouped per height for weighted picking.
  std::vector<std::vector<TypeId>> typesOfHeight(5);
  for (TypeId t = 0; t < design.numTypes(); ++t) {
    if (design.types[t].name == "MACRO") continue;
    typesOfHeight[static_cast<std::size_t>(design.types[t].height)].push_back(t);
  }

  // Fence capacity tracking: keep each fence's assigned area under ~70% of
  // its free area so the fence subproblem stays solvable.
  std::vector<double> fenceArea(design.fences.size(), 0.0);
  std::vector<double> fenceUsed(design.fences.size(), 0.0);
  for (std::size_t f = 1; f < design.fences.size(); ++f) {
    for (const auto& rect : design.fences[f].rects) {
      fenceArea[f] += static_cast<double>(rect.area());
    }
  }

  for (int h = 1; h <= 4; ++h) {
    const int count = spec.cellsPerHeight[static_cast<std::size_t>(h - 1)];
    const auto& pool = typesOfHeight[static_cast<std::size_t>(h)];
    if (count == 0) continue;
    MCLG_ASSERT(!pool.empty(), "no cell types for a populated height class");
    for (int i = 0; i < count; ++i) {
      Cell cell;
      cell.type = pool[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
      const auto& type = design.types[cell.type];
      const double area = static_cast<double>(type.width) * type.height;

      // ~20% of cells try to live in an explicit fence (if capacity allows).
      FenceId fence = kDefaultFence;
      if (design.numFences() > 1 && rng.chance(0.2)) {
        const FenceId f = static_cast<FenceId>(
            rng.uniformInt(1, design.numFences() - 1));
        if (fenceUsed[static_cast<std::size_t>(f)] + area <=
            0.7 * fenceArea[static_cast<std::size_t>(f)]) {
          fence = f;
          fenceUsed[static_cast<std::size_t>(f)] += area;
        }
      }
      cell.fence = fence;

      // GP position: inside the fence for fence cells; hotspot-or-uniform in
      // the default region otherwise (rejecting fences/blockages a few times
      // to mimic a GP that mostly respects regions).
      double gx = 0.0, gy = 0.0;
      if (fence != kDefaultFence) {
        const auto& rects = design.fences[static_cast<std::size_t>(fence)].rects;
        const auto& rect = rects[static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(rects.size()) - 1))];
        gx = rng.uniformReal(static_cast<double>(rect.xlo),
                             static_cast<double>(rect.xhi - type.width));
        gy = rng.uniformReal(static_cast<double>(rect.ylo),
                             static_cast<double>(rect.yhi - type.height));
      } else {
        for (int attempt = 0; attempt < 6; ++attempt) {
          if (!clusters.empty() && rng.chance(spec.clusterFraction)) {
            const auto& c = clusters[static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(clusters.size()) - 1))];
            gx = c.first + rng.normal(0.0, sigmaRows / design.siteWidthFactor);
            gy = c.second + rng.normal(0.0, sigmaRows);
          } else {
            gx = rng.uniformReal(0.0, static_cast<double>(design.numSitesX - type.width));
            gy = rng.uniformReal(0.0, static_cast<double>(design.numRows - type.height));
          }
          gx = std::clamp(gx, 0.0, static_cast<double>(design.numSitesX - type.width));
          gy = std::clamp(gy, 0.0, static_cast<double>(design.numRows - type.height));
          if (!insideAnyFence(design, gx, gy) && !insideBlockage(design, gx, gy)) {
            break;
          }
        }
      }
      cell.gpX = gx;
      cell.gpY = gy;
      design.cells.push_back(cell);
    }
  }
}

void makeNets(const GenSpec& spec, Rng& rng, Design& design) {
  if (!spec.withNets) return;
  // Locality-aware random nets: bucket cells on a coarse grid, draw each
  // net's pins from the anchor's neighborhood.
  const int gridW = 32;
  const int gridH = 32;
  std::vector<std::vector<CellId>> buckets(
      static_cast<std::size_t>(gridW) * gridH);
  std::vector<CellId> movable;
  for (CellId c = 0; c < design.numCells(); ++c) {
    if (design.cells[c].fixed) continue;
    movable.push_back(c);
    const int bx = std::min<int>(
        gridW - 1,
        static_cast<int>(design.cells[c].gpX * gridW / design.numSitesX));
    const int by = std::min<int>(
        gridH - 1,
        static_cast<int>(design.cells[c].gpY * gridH / design.numRows));
    buckets[static_cast<std::size_t>(by) * gridW + bx].push_back(c);
  }
  if (movable.empty()) return;

  const int numNets = static_cast<int>(movable.size());
  for (int n = 0; n < numNets; ++n) {
    Net net;
    const CellId anchor = movable[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(movable.size()) - 1))];
    const int bx = std::min<int>(
        gridW - 1,
        static_cast<int>(design.cells[anchor].gpX * gridW / design.numSitesX));
    const int by = std::min<int>(
        gridH - 1,
        static_cast<int>(design.cells[anchor].gpY * gridH / design.numRows));
    const int fanout = 1 + static_cast<int>(rng.uniformInt(1, 4));
    auto addConn = [&](CellId c) {
      const int numPins =
          static_cast<int>(design.typeOf(c).pins.size());
      if (numPins == 0) return;
      net.conns.push_back(
          {c, static_cast<int>(rng.uniformInt(0, numPins - 1))});
    };
    addConn(anchor);
    for (int p = 1; p < fanout; ++p) {
      // Neighboring bucket (including the anchor's own).
      const int nx = std::clamp(bx + static_cast<int>(rng.uniformInt(-1, 1)),
                                0, gridW - 1);
      const int ny = std::clamp(by + static_cast<int>(rng.uniformInt(-1, 1)),
                                0, gridH - 1);
      const auto& bucket = buckets[static_cast<std::size_t>(ny) * gridW + nx];
      if (bucket.empty()) continue;
      addConn(bucket[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(bucket.size()) - 1))]);
    }
    if (net.conns.size() >= 2) design.nets.push_back(std::move(net));
  }
}

}  // namespace

Design generate(const GenSpec& spec) {
  Rng rng(spec.seed * 0x2545F4914F6CDD1DULL + 0x9E3779B97F4A7C15ULL);
  Design design;
  design.name = spec.name;
  design.siteWidthFactor = 0.5;

  makeTypes(spec, rng, design);
  makeEdgeTable(spec, design);

  std::int64_t totalCellArea = 0;
  {
    // Expected area: approximate by sampling the actual type distribution is
    // circular; instead compute the exact area after cells are made. For
    // sizing we use per-height mean type width.
    for (int h = 1; h <= 4; ++h) {
      double meanArea = 0.0;
      int numTypes = 0;
      for (const auto& type : design.types) {
        if (type.height == h) {
          meanArea += static_cast<double>(type.width) * type.height;
          ++numTypes;
        }
      }
      if (numTypes > 0) {
        totalCellArea += static_cast<std::int64_t>(
            meanArea / numTypes *
            spec.cellsPerHeight[static_cast<std::size_t>(h - 1)]);
      }
    }
  }
  sizeCore(spec, design, rng, totalCellArea, design);
  makeFencesAndBlockages(spec, rng, design);
  makeRails(spec, design);
  makeIoPins(spec, rng, design);
  makeCells(spec, rng, design);
  makeNets(spec, rng, design);
  design.validate();
  return design;
}

GenSpec scaled(GenSpec spec, double factor) {
  for (auto& count : spec.cellsPerHeight) {
    count = static_cast<int>(std::lround(count * factor));
  }
  spec.numIoPins = std::max(
      1, static_cast<int>(std::lround(spec.numIoPins * factor)));
  return spec;
}

}  // namespace mclg
