#include "gen/ispd15_suite.hpp"

#include <cmath>

namespace mclg {
namespace {

Ispd15Entry entry(const char* name, int numCells, double density,
                  std::uint64_t seed, double mll, double abacus,
                  double ordered, double ours) {
  Ispd15Entry e;
  e.spec.name = name;
  // 10% of cells are double height (half width), matching the paper's
  // benchmark modification.
  const int doubles = numCells / 10;
  e.spec.cellsPerHeight = {numCells - doubles, doubles, 0, 0};
  e.spec.density = density;
  e.spec.numFences = 0;
  e.spec.numBlockages = 0;
  e.spec.withRoutability = false;  // Table 2 ignores routability constraints
  e.spec.withNets = false;         // objective is pure displacement
  e.spec.numEdgeClasses = 1;
  e.spec.seed = seed;
  e.paperMll = mll;
  e.paperAbacus = abacus;
  e.paperOrdered = ordered;
  e.paperOurs = ours;
  return e;
}

}  // namespace

std::vector<Ispd15Entry> ispd15Suite(double scale) {
  // #cells, density and per-algorithm total displacement from Table 2.
  std::vector<Ispd15Entry> suite = {
      entry("des_perf_1", 112644, 0.9058, 101, 279545, 474789, 242622, 188693),
      entry("des_perf_a", 108292, 0.4290, 102, 81452, 73057, 72561, 71044),
      entry("des_perf_b", 112644, 0.4971, 103, 81540, 72429, 71888, 70917),
      entry("edit_dist_a", 127419, 0.4554, 104, 59814, 60971, 62961, 56228),
      entry("fft_1", 32281, 0.8355, 105, 54501, 53389, 46121, 38821),
      entry("fft_2", 32281, 0.4997, 106, 25697, 21018, 20979, 20368),
      entry("fft_a", 30631, 0.2509, 107, 19613, 18150, 18304, 17375),
      entry("fft_b", 30631, 0.2819, 108, 28461, 21234, 21671, 20092),
      entry("matrix_mult_1", 155325, 0.8024, 109, 80235, 73682, 71793, 62026),
      entry("matrix_mult_2", 155325, 0.7903, 110, 75810, 65959, 65876, 58214),
      entry("matrix_mult_a", 149655, 0.4195, 111, 46001, 40736, 40298, 38013),
      entry("matrix_mult_b", 146442, 0.3090, 112, 40059, 37243, 37215, 35070),
      entry("matrix_mult_c", 146442, 0.3083, 113, 42490, 40942, 40710, 37907),
      entry("pci_bridge32_a", 29521, 0.3839, 114, 27832, 26674, 26289, 25917),
      entry("pci_bridge32_b", 28920, 0.1430, 115, 27864, 26160, 26028, 26081),
      entry("superblue11_a", 927074, 0.4292, 116, 1786342, 1983090, 1742941, 1595873),
      entry("superblue12", 1287037, 0.4472, 117, 2015678, 1995140, 1963403, 1716930),
      entry("superblue14", 612583, 0.5578, 118, 1599810, 1497490, 1566966, 1331144),
      entry("superblue16_a", 680869, 0.4785, 119, 1173106, 1147530, 1135186, 1055707),
      entry("superblue19", 506383, 0.5233, 120, 806529, 808164, 781928, 705239),
  };
  if (scale != 1.0) {
    for (auto& e : suite) {
      const int total = e.spec.cellsPerHeight[0] + e.spec.cellsPerHeight[1];
      const int newTotal =
          std::max(100, static_cast<int>(std::lround(total * scale)));
      const int doubles = newTotal / 10;
      e.spec.cellsPerHeight = {newTotal - doubles, doubles, 0, 0};
    }
  }
  return suite;
}

}  // namespace mclg
