#include "gen/fillers.hpp"

#include <algorithm>
#include <string>

#include "db/free_span.hpp"
#include "util/assert.hpp"

namespace mclg {
namespace {

constexpr const char* kFillerPrefix = "FILL";

/// Get or create the filler type of the given width.
TypeId fillerType(Design& design, int width) {
  const std::string name = kFillerPrefix + std::to_string(width);
  for (TypeId t = 0; t < design.numTypes(); ++t) {
    if (design.types[static_cast<std::size_t>(t)].name == name) return t;
  }
  CellType type;
  type.name = name;
  type.width = width;
  type.height = 1;
  type.parity = -1;
  design.types.push_back(std::move(type));
  return design.numTypes() - 1;
}

}  // namespace

bool isFillerType(const Design& design, TypeId type) {
  return design.types[static_cast<std::size_t>(type)].name.rfind(
             kFillerPrefix, 0) == 0;
}

FillerStats insertFillers(PlacementState& state, const SegmentMap& segments,
                          int maxWidth) {
  auto& design = state.design();
  FillerStats stats;

  // Candidate widths: powers of two up to maxWidth, descending.
  std::vector<int> widths;
  for (int w = 1; w <= maxWidth; w *= 2) widths.push_back(w);
  std::reverse(widths.begin(), widths.end());
  std::vector<TypeId> types;
  types.reserve(widths.size());
  for (const int w : widths) types.push_back(fillerType(design, w));

  std::vector<Cell> fillers;
  for (std::int64_t y = 0; y < design.numRows; ++y) {
    for (const auto& seg : segments.row(y)) {
      const auto gaps = freeIntervalsForSpan(state, segments, y, 1, seg.fence,
                                             seg.x);
      for (const auto& gap : gaps) {
        std::int64_t x = gap.lo;
        std::int64_t remaining = gap.length();
        for (std::size_t wi = 0; wi < widths.size(); ++wi) {
          while (remaining >= widths[wi]) {
            Cell cell;
            cell.type = types[wi];
            cell.fixed = true;
            cell.placed = true;
            cell.x = x;
            cell.y = y;
            cell.gpX = static_cast<double>(x);
            cell.gpY = static_cast<double>(y);
            fillers.push_back(cell);
            x += widths[wi];
            remaining -= widths[wi];
            ++stats.fillersAdded;
            stats.sitesFilled += widths[wi];
          }
        }
        stats.sitesLeftUncovered += remaining;
      }
    }
  }
  design.cells.insert(design.cells.end(), fillers.begin(), fillers.end());
  design.invalidateCaches();
  return stats;
}

int removeFillers(Design& design) {
  // Fillers are appended after all real cells; removing a suffix keeps
  // every existing cell id (and thus all net connections) stable.
  std::size_t firstFiller = design.cells.size();
  while (firstFiller > 0 &&
         isFillerType(design, design.cells[firstFiller - 1].type)) {
    --firstFiller;
  }
  for (std::size_t c = 0; c < firstFiller; ++c) {
    MCLG_ASSERT(!isFillerType(design, design.cells[c].type),
                "non-suffix filler cell; ids would shift on removal");
  }
  const int removed = static_cast<int>(design.cells.size() - firstFiller);
  design.cells.resize(firstFiller);
  design.invalidateCaches();
  return removed;
}

}  // namespace mclg
