#include "gen/iccad17_suite.hpp"

namespace mclg {
namespace {

Iccad17Entry entry(const char* name, int h1, int h2, int h3, int h4,
                   double density, int fences, std::uint64_t seed,
                   double avgBefore, double avgAfter, double maxBefore,
                   double maxAfter) {
  Iccad17Entry e;
  e.spec.name = name;
  e.spec.cellsPerHeight = {h1, h2, h3, h4};
  e.spec.density = density;
  e.spec.numFences = fences;
  e.spec.numBlockages = 2;
  e.spec.withRoutability = true;
  e.spec.withNets = true;
  e.spec.numIoPins = 200;
  e.spec.seed = seed;
  e.paperAvgDispBefore = avgBefore;
  e.paperAvgDispAfter = avgAfter;
  e.paperMaxDispBefore = maxBefore;
  e.paperMaxDispAfter = maxAfter;
  return e;
}

}  // namespace

std::vector<Iccad17Entry> iccad17Suite(double scale) {
  // Cell counts per height and densities from Table 1; before/after
  // displacement references from Table 3.
  std::vector<Iccad17Entry> suite = {
      entry("des_perf_1", 112644, 0, 0, 0, 0.906, 0, 11, 0.931, 0.903, 8.4, 8.4),
      entry("des_perf_a_md1", 103589, 4699, 0, 0, 0.551, 4, 12, 1.131, 1.122, 60.7, 60.7),
      entry("des_perf_a_md2", 105030, 1086, 1086, 1086, 0.559, 4, 13, 1.458, 1.380, 57.0, 48.1),
      entry("des_perf_b_md1", 106782, 5862, 0, 0, 0.550, 2, 14, 0.745, 0.725, 39.5, 10.0),
      entry("des_perf_b_md2", 101908, 6781, 2260, 1695, 0.647, 2, 15, 0.720, 0.718, 27.5, 23.3),
      entry("edit_dist_1_md1", 118005, 7994, 2664, 1998, 0.674, 0, 16, 0.762, 0.752, 5.7, 5.7),
      entry("edit_dist_a_md2", 115066, 7799, 2599, 1949, 0.594, 3, 17, 0.700, 0.697, 16.4, 16.4),
      entry("edit_dist_a_md3", 119616, 2599, 2599, 2599, 0.572, 3, 18, 0.839, 0.837, 31.4, 31.4),
      entry("fft_2_md2", 28930, 2117, 705, 529, 0.827, 0, 19, 0.916, 0.905, 9.6, 7.1),
      entry("fft_a_md2", 27431, 2018, 672, 504, 0.323, 1, 20, 0.637, 0.631, 34.3, 34.3),
      entry("fft_a_md3", 28609, 672, 672, 672, 0.312, 1, 21, 0.611, 0.605, 11.3, 11.3),
      entry("pci_bridge32_a_md1", 26680, 1792, 597, 448, 0.495, 2, 22, 0.718, 0.712, 45.7, 45.9),
      entry("pci_bridge32_a_md2", 25239, 2090, 1194, 994, 0.577, 2, 23, 0.876, 0.872, 18.1, 18.1),
      entry("pci_bridge32_b_md1", 26134, 1756, 585, 439, 0.266, 3, 24, 0.862, 0.853, 51.4, 51.4),
      entry("pci_bridge32_b_md2", 28038, 292, 292, 292, 0.183, 3, 25, 0.791, 0.785, 61.7, 61.7),
      entry("pci_bridge32_b_md3", 27452, 292, 585, 585, 0.222, 3, 26, 1.046, 1.031, 49.8, 49.8),
  };
  if (scale != 1.0) {
    for (auto& e : suite) e.spec = scaled(e.spec, scale);
  }
  return suite;
}

}  // namespace mclg
