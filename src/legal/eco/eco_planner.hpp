// Dirty-region planning for incremental ECO re-legalization.
//
// The planner turns a set of dirty cells into a minimal set of dirty
// regions: one level-0 MGL window (paper §3.1) is seeded around each dirty
// cell's GP target *and* around its previous legal position (both sides of
// a move can disturb neighbors), each inflated by a halo that bounds the
// displacement spill of the incremental insertion. Coverage is tracked
// exactly on the initial-window tile grid (a bitmap, not a rect merge, so
// scattered edits never chain into a core-sized bounding box); connected
// dirty-tile components become the reported regions. Everything outside
// the dirty tiles is clean — its cells keep their snapshot positions and
// its window-epoch caches are never rebuilt — which is where the ECO
// speedup comes from.
//
// The window-grid accounting (total / dirty / reused tiles of the
// initial-window grid) feeds the run report's `eco.*` fields.
#pragma once

#include <vector>

#include "db/design.hpp"
#include "geometry/rect.hpp"
#include "legal/mgl/window.hpp"

namespace mclg {

struct EcoPlan {
  /// Tile-aligned bounding rects of the connected dirty-tile components
  /// (halo included), clipped to the core. Bounding boxes of concave
  /// components may overlap each other; the tile counts below stay exact.
  std::vector<Rect> regions;
  /// Number of connected dirty regions — the report's `eco.dirty_windows`.
  int dirtyWindows = 0;
  /// Tiles of the initial-window grid covering the core.
  long long totalTiles = 0;
  /// Tiles covered by some halo-inflated seed window (exact bitmap count).
  long long dirtyTiles = 0;
  /// Clean tiles whose caches/placement survive — `eco.reused_windows`.
  long long reusedTiles = 0;
  /// The dirty regions cover (almost) the whole core; an incremental run
  /// would do full-run work, so the driver may prefer the full pipeline.
  bool coversCore = false;
};

/// Plan the dirty regions for `dirtyCells` (ids into `current`).
/// `snapshot` supplies the previous legal positions; ids beyond its cell
/// count (ECO additions) seed a window at their GP target only.
/// \pre  DeltaTracker::diff(current, snapshot) was not structural.
/// \post regions are sorted by (ylo, xlo);
///       dirtyTiles + reusedTiles == totalTiles. Deterministic.
EcoPlan planEcoRegions(const Design& current, const Design& snapshot,
                       const std::vector<CellId>& dirtyCells,
                       const WindowParams& params, int haloSites,
                       int haloRows);

}  // namespace mclg
