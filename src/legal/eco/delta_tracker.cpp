#include "legal/eco/delta_tracker.hpp"

#include <algorithm>
#include <cmath>

namespace mclg {
namespace {

bool sameRect(const Rect& a, const Rect& b) {
  return a.xlo == b.xlo && a.xhi == b.xhi && a.ylo == b.ylo && a.yhi == b.yhi;
}

bool sameTypeTable(const Design& a, const Design& b) {
  if (a.types.size() != b.types.size()) return false;
  for (std::size_t t = 0; t < a.types.size(); ++t) {
    const CellType& ta = a.types[t];
    const CellType& tb = b.types[t];
    if (ta.width != tb.width || ta.height != tb.height ||
        ta.parity != tb.parity || ta.leftEdge != tb.leftEdge ||
        ta.rightEdge != tb.rightEdge) {
      return false;
    }
  }
  return true;
}

bool sameFences(const Design& a, const Design& b) {
  if (a.fences.size() != b.fences.size()) return false;
  for (std::size_t f = 0; f < a.fences.size(); ++f) {
    const auto& ra = a.fences[f].rects;
    const auto& rb = b.fences[f].rects;
    if (ra.size() != rb.size()) return false;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      if (!sameRect(ra[i], rb[i])) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<CellId> DeltaSet::dirtyCells() const {
  std::vector<CellId> out;
  out.reserve(moved.size() + resized.size() + added.size());
  out.insert(out.end(), moved.begin(), moved.end());
  out.insert(out.end(), resized.begin(), resized.end());
  out.insert(out.end(), added.begin(), added.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void DeltaTracker::reset(int numCells) {
  size_ = numCells;
  events_.store(0, std::memory_order_relaxed);
  if (numCells <= 0) {
    flags_.reset();
    return;
  }
  flags_ = std::make_unique<std::atomic<unsigned char>[]>(
      static_cast<std::size_t>(numCells));
  for (int i = 0; i < numCells; ++i) {
    flags_[static_cast<std::size_t>(i)].store(0, std::memory_order_relaxed);
  }
}

void DeltaTracker::mark(CellId c) {
  if (c < 0 || c >= size_) return;
  flags_[static_cast<std::size_t>(c)].store(1, std::memory_order_relaxed);
  events_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<CellId> DeltaTracker::touched() const {
  std::vector<CellId> out;
  for (int c = 0; c < size_; ++c) {
    if (flags_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed)) {
      out.push_back(c);
    }
  }
  return out;
}

bool DeltaTracker::isTouched(CellId c) const {
  if (c < 0 || c >= size_) return false;
  return flags_[static_cast<std::size_t>(c)].load(std::memory_order_relaxed) !=
         0;
}

DeltaSet DeltaTracker::diff(const Design& current, const Design& snapshot) {
  DeltaSet delta;
  auto structural = [&delta](const char* reason) {
    delta.structural = true;
    delta.structuralReason = reason;
    delta.moved.clear();
    delta.resized.clear();
    delta.added.clear();
    return delta;
  };

  if (current.numSitesX != snapshot.numSitesX ||
      current.numRows != snapshot.numRows) {
    return structural("core dimensions differ");
  }
  if (current.siteWidthFactor != snapshot.siteWidthFactor) {
    return structural("site width factor differs");
  }
  if (!sameTypeTable(current, snapshot)) {
    return structural("cell type table differs");
  }
  if (!sameFences(current, snapshot)) {
    return structural("fence regions differ");
  }
  if (current.numEdgeClasses != snapshot.numEdgeClasses ||
      current.edgeSpacingTable != snapshot.edgeSpacingTable) {
    return structural("edge-spacing table differs");
  }
  if (current.hRails.size() != snapshot.hRails.size() ||
      current.vRails.size() != snapshot.vRails.size()) {
    return structural("P/G rail set differs");
  }
  if (current.numCells() < snapshot.numCells()) {
    return structural("cells were removed");
  }

  for (CellId c = 0; c < snapshot.numCells(); ++c) {
    const Cell& cur = current.cells[c];
    const Cell& old = snapshot.cells[c];
    if (cur.fixed != old.fixed) return structural("fixed flag changed");
    if (cur.fixed) {
      if (cur.x != old.x || cur.y != old.y || cur.type != old.type) {
        return structural("fixed cell edited");
      }
      continue;
    }
    if (cur.fence != old.fence) {
      // A fence reassignment invalidates the cell's legal position but not
      // the rest of the design: treat it as a move.
      delta.moved.push_back(c);
      continue;
    }
    if (cur.type != old.type) {
      delta.resized.push_back(c);
      continue;
    }
    if (cur.gpX != old.gpX || cur.gpY != old.gpY) {
      delta.moved.push_back(c);
      continue;
    }
    // Same target, but the legal position was lost or edited directly.
    if (cur.placed != old.placed ||
        (cur.placed && (cur.x != old.x || cur.y != old.y))) {
      delta.moved.push_back(c);
    }
  }
  for (CellId c = snapshot.numCells(); c < current.numCells(); ++c) {
    if (current.cells[c].fixed) return structural("fixed cell added");
    delta.added.push_back(c);
  }
  return delta;
}

}  // namespace mclg
