#include "legal/eco/eco_planner.hpp"

#include <algorithm>
#include <vector>

namespace mclg {
namespace {

Rect inflate(const Rect& r, std::int64_t dx, std::int64_t dy,
             const Rect& core) {
  return Rect{r.xlo - dx, r.ylo - dy, r.xhi + dx, r.yhi + dy}.intersect(core);
}

}  // namespace

EcoPlan planEcoRegions(const Design& current, const Design& snapshot,
                       const std::vector<CellId>& dirtyCells,
                       const WindowParams& params, int haloSites,
                       int haloRows) {
  EcoPlan plan;
  const Rect core{0, 0, current.numSitesX, current.numRows};
  const std::int64_t tileW = std::max(1, params.initialW);
  const std::int64_t tileH = std::max(1, params.initialH);
  const std::int64_t tilesX = (current.numSitesX + tileW - 1) / tileW;
  const std::int64_t tilesY = (current.numRows + tileH - 1) / tileH;
  plan.totalTiles = tilesX * tilesY;
  if (plan.totalTiles <= 0) return plan;

  // Exact dirty coverage on the initial-window tile grid: mark the tiles
  // each halo-inflated seed window touches. A rect merge would over-cover
  // badly for scattered edit bursts (bounding boxes of far-apart windows
  // chain into one core-sized region); the bitmap stays exact.
  std::vector<char> dirty(static_cast<std::size_t>(plan.totalTiles), 0);
  const auto markWindow = [&](const Rect& window) {
    const Rect r = inflate(window, haloSites, haloRows, core);
    if (r.xlo >= r.xhi || r.ylo >= r.yhi) return;
    const std::int64_t txLo = r.xlo / tileW;
    const std::int64_t txHi = std::min((r.xhi + tileW - 1) / tileW, tilesX);
    const std::int64_t tyLo = r.ylo / tileH;
    const std::int64_t tyHi = std::min((r.yhi + tileH - 1) / tileH, tilesY);
    for (std::int64_t ty = tyLo; ty < tyHi; ++ty) {
      for (std::int64_t tx = txLo; tx < txHi; ++tx) {
        dirty[static_cast<std::size_t>(ty * tilesX + tx)] = 1;
      }
    }
  };

  for (const CellId c : dirtyCells) {
    const Cell& cell = current.cells[c];
    const CellType& type = current.typeOf(c);
    markWindow(makeWindow(current, cell.gpX, cell.gpY, type, params, 0));
    if (c < snapshot.numCells() && snapshot.cells[c].placed) {
      // The vacated old position also disturbs its neighborhood.
      const Cell& old = snapshot.cells[c];
      markWindow(makeWindow(current, static_cast<double>(old.x),
                            static_cast<double>(old.y), type, params, 0));
    }
  }

  for (const char d : dirty) plan.dirtyTiles += d;
  plan.reusedTiles = plan.totalTiles - plan.dirtyTiles;
  plan.coversCore = plan.dirtyTiles >= plan.totalTiles * 9 / 10;

  // Group the dirty tiles into 4-connected components; each component's
  // tile-aligned bounding rect (clipped to the core) is one reported dirty
  // region. Scan order makes the regions deterministic; the final sort
  // keeps the documented (ylo, xlo) order.
  std::vector<std::int64_t> stack;
  for (std::int64_t start = 0; start < plan.totalTiles; ++start) {
    if (dirty[static_cast<std::size_t>(start)] != 1) continue;
    std::int64_t txLo = tilesX, txHi = -1, tyLo = tilesY, tyHi = -1;
    stack.assign(1, start);
    dirty[static_cast<std::size_t>(start)] = 2;
    while (!stack.empty()) {
      const std::int64_t t = stack.back();
      stack.pop_back();
      const std::int64_t tx = t % tilesX, ty = t / tilesX;
      txLo = std::min(txLo, tx);
      txHi = std::max(txHi, tx);
      tyLo = std::min(tyLo, ty);
      tyHi = std::max(tyHi, ty);
      const std::int64_t neighbors[4] = {
          tx > 0 ? t - 1 : -1, tx + 1 < tilesX ? t + 1 : -1,
          ty > 0 ? t - tilesX : -1, ty + 1 < tilesY ? t + tilesX : -1};
      for (const std::int64_t n : neighbors) {
        if (n >= 0 && dirty[static_cast<std::size_t>(n)] == 1) {
          dirty[static_cast<std::size_t>(n)] = 2;
          stack.push_back(n);
        }
      }
    }
    plan.regions.push_back(Rect{txLo * tileW, tyLo * tileH,
                                (txHi + 1) * tileW, (tyHi + 1) * tileH}
                               .intersect(core));
  }
  std::sort(plan.regions.begin(), plan.regions.end(),
            [](const Rect& a, const Rect& b) {
              if (a.ylo != b.ylo) return a.ylo < b.ylo;
              return a.xlo < b.xlo;
            });
  plan.dirtyWindows = static_cast<int>(plan.regions.size());
  return plan;
}

}  // namespace mclg
