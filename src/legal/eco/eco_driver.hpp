// Incremental ECO re-legalization driver.
//
// ECO loops (timing fixes, gate sizing, buffer insertion) re-run
// legalization after editing a small fraction of the cells of an already
// legal placement. Instead of re-legalizing the whole design, the driver
//
//  1. diffs the current design against the last legal snapshot
//     (DeltaTracker::diff) — moved / resized / added cells are *dirty*;
//  2. seeds the placement: clean cells keep their snapshot positions, dirty
//     cells start unplaced (EcoPlanner bounds the affected window set and
//     feeds the eco.* report fields);
//  3. re-runs Stage 1 (MGL window insertion, §3.1) — which only processes
//     unplaced cells, i.e. exactly the dirty set — with a DeltaTracker
//     listener recording the displacement spill onto clean neighbors, then
//     Stage 2 (§3.2 matching) focused on the touched (type × fence)
//     groups, then a rip-up & re-insert pass over the worst-displaced
//     cells, so a far-flung insertion can swap with a same-type neighbor
//     or re-run its window search against the freed displacement;
//  4. re-runs Stage 3 (fixed-row/fixed-order MCF, §3.3) only on the
//     constraint-graph components containing dirty or spilled cells — each
//     trimmed to the `froChainHalo` chain neighborhood of those cells,
//     with everything beyond the trim acting as a fixed wall, so the solve
//     is delta-sized even when the component spans the netlist — in
//     `mcfPasses` passes through one persistent NetworkSimplexSolver per
//     component: pass 1 solves cold and retains the basis, later passes
//     warm-restart on the same topology with drifted costs (cold fallback
//     on validation failure is automatic and counted);
//  5. audits the result (legality + placed-count); any violation — or a
//     structural diff the delta model cannot express — degrades to a full
//     pipeline run, never to a worse-than-full result.
//
// Exactness knobs: `validate` additionally runs the full pipeline on a
// scratch copy and checks the EcoEquivalence invariant (legal + score
// within `scoreTolerance`); `exact` does the same and then *adopts* the
// full run's placement, making the output byte-identical to a full re-run
// at the same configuration (at the price of the full run's cost — useful
// for signoff, not speed). Approximations vs. the full pipeline, covered
// by the tolerance: Stage 2 runs only on the touched groups, and the
// per-component Stage 3 forces maxDispWeight = 0 (the §3.3.1 term couples
// all cells globally, so it cannot be decomposed).
//
// Determinism: for a fixed thread count the result is reproducible
// (deterministic MGL scheduler; components solved serially in a fixed
// order). With `exact` it is additionally byte-identical to what a
// from-scratch legalize() under the same PipelineConfig produces — which
// is itself thread-count invariant under the §3.5 scheduler's conditions
// (threads >= 2 with a fixed batch capacity).
#pragma once

#include <string>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "legal/pipeline.hpp"
#include "util/deadline.hpp"

namespace mclg {

struct EcoConfig {
  /// Stage configs for the incremental stages and for any full-pipeline
  /// fallback / shadow run. guard.enabled additionally wraps the fallback
  /// full run in the stage transactions.
  PipelineConfig pipeline;
  /// Halo (sites x rows) added around each dirty cell's windows to bound
  /// the displacement spill region (eco_planner.hpp).
  int haloSites = 48;
  int haloRows = 12;
  /// Stage-3 passes per dirty component. Pass 1 is cold; passes >= 2
  /// warm-restart (and are skipped once a pass moves nothing).
  int mcfPasses = 2;
  /// Stage-3 locality: before solving a dirty component, trim it to the
  /// cells within this many chain positions (per row, in row order) of a
  /// dirty or touched cell. Cells outside the trimmed subset become fixed
  /// walls — their separation clamps the boundary cells' feasible ranges
  /// (optimizeFixedRowOrderSubset) — so the solve cost is proportional to
  /// the delta rather than to the enclosing component, which on a dense
  /// design is most of the netlist. The wall approximation is covered by
  /// the same score tolerance as the other incremental shortcuts. 0 solves
  /// whole components.
  int froChainHalo = 24;
  /// Rip-up threshold (row heights) for the post-insertion recovery pass —
  /// lower than the standalone refiner's default because the incremental
  /// insertion is exactly what strands cells.
  double ripupThreshold = 3.0;
  /// Allowed relative Eq. 10 regression vs. a full re-run (validate mode).
  double scoreTolerance = 0.02;
  /// Run the full pipeline on a scratch copy and audit EcoEquivalence.
  bool validate = false;
  /// validate + adopt the full run's placement: byte-identical output.
  bool exact = false;
  /// Request-scoped wall-clock budget (serving, flow/serve/): checked at
  /// every phase boundary of the incremental path and folded into the
  /// guard's per-stage deadline for any full-run fallback. Expiry throws
  /// MclgError(Timeout) out of ecoRelegalize — callers that set a limited
  /// deadline must treat the state as dirty and roll back (the serve
  /// session runs each request on a scratch copy for exactly this reason).
  /// Unlimited by default, so CLI/batch ECO runs are unaffected.
  Deadline requestDeadline;
};

struct EcoStats {
  // Delta classification.
  int movedCells = 0;
  int resizedCells = 0;
  int addedCells = 0;
  int dirtyCells = 0;    ///< union of the above
  int spilledCells = 0;  ///< clean cells the incremental stages touched
  // Planner accounting (run-report `eco.*`).
  int dirtyWindows = 0;
  long long reusedWindows = 0;
  // Stage-2/3 and refinement activity.
  int matchedCellsMoved = 0;  ///< cells relocated by the focused matching
  int ripupImproved = 0;      ///< stranded cells the rip-up pass recovered
  int dirtySegments = 0;  ///< dirty constraint components re-optimized
  long long warmRestarts = 0;   ///< MCF re-solves that reused a basis
  long long coldFallbacks = 0;  ///< warm attempts rejected, re-solved cold
  int mcfCellsMoved = 0;
  // Outcome.
  bool usedFullRun = false;  ///< structural diff or failed audit: fell back
  std::string fallbackReason;
  bool exactVerified = false;  ///< exact/validate: hashes matched
  double scoreIncremental = -1.0;
  double scoreFull = -1.0;  ///< only measured in validate/exact mode
  MglStats mgl;
  // Timings. secondsIncremental is the cost of the incremental path alone
  // (what the speedup benchmark measures); secondsShadow is the optional
  // full shadow run of validate/exact mode.
  double secondsIncremental = 0.0;
  double secondsShadow = 0.0;
};

/// Incrementally re-legalize `state` (whose design carries the ECO edits)
/// against the last legal `snapshot` of the same design.
/// \pre  `snapshot` is a legal placement of a structurally compatible
///       design (same core, types, fences, rails, fixed cells; see
///       DeltaTracker::diff) — structural mismatch degrades to a full run.
/// \post The design behind `state` is legal (or, on an infeasible design,
///       as placed as a full run would leave it); stats.usedFullRun tells
///       which path produced it. Never aborts on a bad snapshot.
EcoStats ecoRelegalize(PlacementState& state, const SegmentMap& segments,
                       const Design& snapshot, const EcoConfig& config);

}  // namespace mclg
