#include "legal/eco/eco_driver.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "eval/checkers.hpp"
#include "eval/score.hpp"
#include "legal/eco/delta_tracker.hpp"
#include "legal/eco/eco_planner.hpp"
#include "legal/guard/invariants.hpp"
#include "legal/maxdisp/matching_opt.hpp"
#include "legal/mcfopt/fixed_row_order.hpp"
#include "legal/mgl/mgl_legalizer.hpp"
#include "legal/refine/ripup_refine.hpp"
#include "obs/obs.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace mclg {
namespace {

/// Remove every placed movable cell, returning the state to "all unplaced"
/// — the precondition of a full pipeline run.
void unplaceAllMovable(PlacementState& state) {
  const Design& design = state.design();
  for (CellId c = 0; c < design.numCells(); ++c) {
    const Cell& cell = design.cells[c];
    if (!cell.fixed && cell.placed) state.remove(c);
  }
}

/// True iff cell c of `design` can be placed at (x, y) right now: in core,
/// parity-legal, and the span is free. Mirrors the MCLG_ASSERT checks of
/// PlacementState::place so a corrupt snapshot degrades instead of aborting.
bool placeable(const PlacementState& state, CellId c, std::int64_t x,
               std::int64_t y) {
  const Design& design = state.design();
  const int h = design.heightOf(c);
  const int w = design.widthOf(c);
  if (y < 0 || y + h > design.numRows) return false;
  if (x < 0 || x + w > design.numSitesX) return false;
  if (!design.parityOk(design.cells[c].type, y)) return false;
  return state.spanEmpty(y, h, x, w);
}

void fullRun(PlacementState& state, const SegmentMap& segments,
             const EcoConfig& config, EcoStats* stats, const char* reason) {
  stats->usedFullRun = true;
  stats->fallbackReason = reason;
  MCLG_LOG_INFO() << "eco: falling back to a full run (" << reason << ")";
  unplaceAllMovable(state);
  const PipelineStats pipe = legalize(state, segments, config.pipeline);
  stats->mgl = pipe.mgl;
}

}  // namespace

EcoStats ecoRelegalize(PlacementState& state, const SegmentMap& segments,
                       const Design& snapshot, const EcoConfig& userConfig) {
  // Stage configs are copied out of config.pipeline below; propagating the
  // executor here once covers all of them (and the full-run bailout path).
  EcoConfig config = userConfig;
  config.pipeline.propagateExecutor();
  // The request-scoped budget also bounds any guarded full-run fallback or
  // shadow run: fold it into the guard's per-stage deadline.
  config.pipeline.guard.requestDeadline = Deadline::earliest(
      config.pipeline.guard.requestDeadline, config.requestDeadline);
  Design& design = state.design();
  EcoStats stats;
  Timer incrementalTimer;
  MCLG_TRACE_SCOPE("eco/relegalize");

  // 1. Classify the edits.
  const DeltaSet delta = DeltaTracker::diff(design, snapshot);
  stats.movedCells = static_cast<int>(delta.moved.size());
  stats.resizedCells = static_cast<int>(delta.resized.size());
  stats.addedCells = static_cast<int>(delta.added.size());
  const std::vector<CellId> dirty = delta.dirtyCells();
  stats.dirtyCells = static_cast<int>(dirty.size());

  if (delta.structural) {
    fullRun(state, segments, config, &stats,
            delta.structuralReason.c_str());
    stats.secondsIncremental = incrementalTimer.seconds();
    return stats;
  }

  config.requestDeadline.checkpoint("eco/diff");

  // 2. Plan the dirty regions (reporting + the covers-core bailout).
  const EcoPlan plan =
      planEcoRegions(design, snapshot, dirty, config.pipeline.mgl.window,
                     config.haloSites, config.haloRows);
  stats.dirtyWindows = plan.dirtyWindows;
  stats.reusedWindows = plan.reusedTiles;
  if (plan.coversCore) {
    fullRun(state, segments, config, &stats, "dirty region covers the core");
    stats.secondsIncremental = incrementalTimer.seconds();
    return stats;
  }

  // Seed: clean cells at their snapshot positions, dirty cells unplaced.
  std::vector<char> isDirty(static_cast<std::size_t>(design.numCells()), 0);
  for (const CellId c : dirty) isDirty[static_cast<std::size_t>(c)] = 1;
  unplaceAllMovable(state);
  for (CellId c = 0; c < snapshot.numCells(); ++c) {
    const Cell& old = snapshot.cells[c];
    if (old.fixed || !old.placed || isDirty[static_cast<std::size_t>(c)]) {
      continue;
    }
    if (placeable(state, c, old.x, old.y)) {
      state.place(c, old.x, old.y);
    } else {
      // The snapshot position is not replayable (corrupt file, overlap with
      // an edited fixed region): let MGL find this cell a spot instead.
      isDirty[static_cast<std::size_t>(c)] = 1;
      ++stats.dirtyCells;
    }
  }

  // 3. Stage 1 on the dirty set only (MGL legalizes the unplaced cells),
  // with a tracker recording the spill onto clean neighbors.
  DeltaTracker tracker(design.numCells());
  state.setListener(&tracker);
  // A request-budget checkpoint below may throw out of this function;
  // never leave the caller's state pointing at the local tracker.
  struct DetachListener {
    PlacementState& state;
    ~DetachListener() { state.setListener(nullptr); }
  } detachListener{state};
  config.requestDeadline.checkpoint("eco/stage1");
  {
    MCLG_TRACE_SCOPE("eco/stage1");
    MglLegalizer mgl(state, segments, config.pipeline.mgl);
    stats.mgl = mgl.run();
  }

  // Focus mask for the recovery passes: the dirty cells plus every clean
  // cell the incremental stages have displaced so far.
  auto touchedFocus = [&]() {
    std::vector<char> focus = isDirty;
    for (CellId c = 0; c < design.numCells(); ++c) {
      if (tracker.isTouched(c)) focus[static_cast<std::size_t>(c)] = 1;
    }
    return focus;
  };

  // 3b. Rip-up & re-insert the worst-displaced touched cells: insertion
  // into an almost-full placement strands some dirty cells far from their
  // GP target; re-running the window search with the freed displacement as
  // a cost ceiling recovers most of that tail (full-pipeline quality is the
  // reference, and the full run re-places everything from scratch). The
  // pass is focused on dirty-or-touched cells so it cannot churn clean
  // regions, and the between-pass MCF re-solve is off — Stage 3 below runs
  // warm-restarted per dirty component anyway.
  config.requestDeadline.checkpoint("eco/ripup");
  {
    MCLG_TRACE_SCOPE("eco/ripup");
    RipupConfig ripup = config.pipeline.ripup;
    ripup.insertion = config.pipeline.mgl.insertion;
    ripup.displacementThreshold = config.ripupThreshold;
    ripup.mcfResolve = false;
    // Half the standalone refiner's search window: the incremental
    // insertion already searched (and expanded) full MGL windows, so the
    // rip-up only needs to catch nearby spots that freed up since — and the
    // pass has to stay cheap relative to the dirty set for the ECO speedup
    // to survive at scale.
    ripup.windowW = config.pipeline.ripup.windowW / 2;
    ripup.windowH = config.pipeline.ripup.windowH / 2;
    const std::vector<char> focus = touchedFocus();
    stats.ripupImproved =
        ripupRefine(state, segments, ripup, &focus).improved;
  }

  // 3c. Stage 2 (§3.2 matching) focused on the still-stranded tail: the
  // touched cells whose displacement stayed above the rip-up threshold,
  // i.e. the ones the greedy re-insertion failed to recover. It runs last
  // of the two because its φ(δ) cost explodes past δ0 and therefore
  // crushes exactly the max-displacement tail — a stranded cell swaps
  // positions with a same-type clean neighbor in its group. Restricting
  // the focus to the tail (rather than everything touched) keeps the pass
  // proportional to the damage, not to the dirty-region population. The
  // listener stays attached throughout so every recovery move counts as
  // spill and its component gets the Stage-3 treatment below.
  config.requestDeadline.checkpoint("eco/stage2");
  if (config.pipeline.runMaxDisp) {
    MCLG_TRACE_SCOPE("eco/stage2");
    std::vector<char> focus = touchedFocus();
    for (CellId c = 0; c < design.numCells(); ++c) {
      if (focus[static_cast<std::size_t>(c)] != 0 &&
          design.displacement(c) <= config.ripupThreshold) {
        focus[static_cast<std::size_t>(c)] = 0;
      }
    }
    MaxDispConfig matchConfig = config.pipeline.maxDisp;
    // One locality knob for both recovery solvers: the matching, like
    // stage 3 below, only needs the delta's neighborhood, not the whole
    // chunk a stranded cell happens to share a type with.
    matchConfig.focusTrim = config.froChainHalo;
    stats.matchedCellsMoved =
        optimizeMaxDisplacementFocused(state, matchConfig, focus).cellsMoved;
  }
  state.setListener(nullptr);
  const std::vector<CellId> touched = tracker.touched();
  for (const CellId c : touched) {
    if (!isDirty[static_cast<std::size_t>(c)]) ++stats.spilledCells;
  }

  // 4. Stage 3 per dirty constraint component, warm-restarted across
  // passes. maxDispWeight couples all cells globally (§3.3.1), so the
  // per-component solves force it off — an approximation vs. the full
  // pipeline, covered by the score tolerance.
  config.requestDeadline.checkpoint("eco/stage3");
  if (config.pipeline.runFixedRowOrder) {
    MCLG_TRACE_SCOPE("eco/stage3");
    FixedRowOrderConfig froConfig = config.pipeline.fixedRowOrder;
    froConfig.maxDispWeight = 0.0;
    froConfig.numThreads = 1;
    auto isComponentDirty = [&](const std::vector<CellId>& component) {
      for (const CellId c : component) {
        if (isDirty[static_cast<std::size_t>(c)] || tracker.isTouched(c)) {
          return true;
        }
      }
      return false;
    };
    const std::vector<std::vector<CellId>> components =
        fixedRowOrderComponents(state);
    // Delta-local trimming: on a dense design the constraint components
    // span most of the netlist, so solving a whole component per request
    // would cost as much as a cold full-design stage 3. Keep only the
    // cells within froChainHalo chain positions of a dirty/touched cell;
    // everything further acts as a fixed wall (range clamp) in the solve.
    std::vector<char> keep;
    if (config.froChainHalo > 0) {
      keep.assign(static_cast<std::size_t>(design.numCells()), 0);
      const int halo = config.froChainHalo;
      std::vector<CellId> row;
      for (std::int64_t y = 0; y < design.numRows; ++y) {
        row.clear();
        for (const auto& [x, c] : state.rowCells(y)) {
          (void)x;
          row.push_back(c);
        }
        const int n = static_cast<int>(row.size());
        for (int j = 0; j < n; ++j) {
          const CellId c = row[static_cast<std::size_t>(j)];
          if (!isDirty[static_cast<std::size_t>(c)] && !tracker.isTouched(c)) {
            continue;
          }
          const int hi = std::min(n - 1, j + halo);
          for (int t = std::max(0, j - halo); t <= hi; ++t) {
            keep[static_cast<std::size_t>(row[static_cast<std::size_t>(t)])] =
                1;
          }
        }
      }
    }
    for (const auto& component : components) {
      if (!isComponentDirty(component)) continue;
      ++stats.dirtySegments;
      std::vector<CellId> subset;
      if (keep.empty()) {
        subset = component;
      } else {
        for (const CellId c : component) {
          if (keep[static_cast<std::size_t>(c)]) subset.push_back(c);
        }
      }
      FroSolverReuse reuse;
      for (int pass = 0; pass < std::max(1, config.mcfPasses); ++pass) {
        const auto froStats = optimizeFixedRowOrderSubset(
            state, segments, froConfig, subset, &reuse);
        stats.mcfCellsMoved += froStats.cellsMoved;
        if (froStats.cellsMoved == 0) break;
      }
      stats.warmRestarts += reuse.solver.stats().warmSolves;
      stats.coldFallbacks += reuse.solver.stats().warmRejected;
    }
  }

  config.requestDeadline.checkpoint("eco/audit");

  // 5. Audit: any hard violation degrades to the full pipeline.
  const LegalityReport audit = checkLegality(design, segments);
  if (audit.overlaps > 0 || audit.outOfCore > 0 ||
      audit.parityViolations > 0 || audit.fenceViolations > 0) {
    fullRun(state, segments, config, &stats, "incremental audit failed");
  }
  stats.secondsIncremental = incrementalTimer.seconds();

  // 6. Exactness: shadow full run on a scratch copy; adopt it in exact
  // mode so the output is byte-identical to a full re-run.
  if (config.exact || config.validate) {
    Timer shadowTimer;
    MCLG_TRACE_SCOPE("eco/shadow");
    Design fullDesign = design;
    for (auto& cell : fullDesign.cells) {
      if (!cell.fixed) cell.placed = false;
    }
    SegmentMap fullSegments(fullDesign);
    PlacementState fullState(fullDesign);
    legalize(fullState, fullSegments, config.pipeline);
    const InvariantResult equiv = checkEcoEquivalence(
        design, fullDesign, segments, config.scoreTolerance, config.exact);
    stats.scoreIncremental = equiv.score;
    stats.scoreFull = evaluateScore(fullDesign, fullSegments).score;
    if (config.exact) {
      // Adopt the full placement wholesale: every movable cell takes the
      // shadow run's position (or becomes unplaced where it failed).
      unplaceAllMovable(state);
      for (CellId c = 0; c < design.numCells(); ++c) {
        const Cell& full = fullDesign.cells[c];
        if (full.fixed || !full.placed) continue;
        state.place(c, full.x, full.y);
      }
      stats.exactVerified = true;
      stats.scoreIncremental = stats.scoreFull;
    } else {
      stats.exactVerified = equiv.ok;
      if (!equiv.ok) {
        MCLG_LOG_WARN() << "eco: equivalence check failed: "
                        << equiv.violation;
      }
    }
    stats.secondsShadow = shadowTimer.seconds();
  }

  if (obs::metricsEnabled()) {
    obs::counter("eco.dirty_cells").add(stats.dirtyCells);
    obs::counter("eco.spilled_cells").add(stats.spilledCells);
    obs::counter("eco.dirty_windows").add(stats.dirtyWindows);
    obs::counter("eco.warm_restarts").add(stats.warmRestarts);
    obs::counter("eco.cold_fallbacks").add(stats.coldFallbacks);
  }
  return stats;
}

}  // namespace mclg
