// Delta model of the incremental ECO re-legalization subsystem.
//
// Two complementary sources feed the dirty set:
//
//  1. DeltaTracker::diff() compares the *current* design against the last
//     known-legal snapshot (a Design loaded from `--eco-from` or kept
//     in memory by an ECO loop) and classifies each movable cell as clean,
//     moved (GP or legal position differs), resized (different cell type),
//     or added (id beyond the snapshot). Edits the delta model cannot
//     express — removed cells, changed fixed cells/fences/rails/core — are
//     reported as `structural`, which degrades the ECO driver to a full
//     re-legalization.
//
//  2. A live DeltaTracker registered as the PlacementState listener records
//     every cell the incremental stages themselves touch (displacement
//     spill: a dirty cell's insertion chain-pushes clean neighbors), so
//     stage 3 re-optimizes exactly the regions stage 1 disturbed.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "db/design.hpp"
#include "db/placement_state.hpp"

namespace mclg {

/// Classified difference between a current design and its legal snapshot.
struct DeltaSet {
  std::vector<CellId> moved;    ///< GP or legal position differs
  std::vector<CellId> resized;  ///< cell type (footprint) differs
  std::vector<CellId> added;    ///< ids beyond the snapshot's cell count
  /// The designs differ in a way the delta model cannot express (cells
  /// removed, fixed cells / fences / rails / core / type table changed).
  /// The ECO driver falls back to a full run when set.
  bool structural = false;
  std::string structuralReason;  ///< first incompatibility found

  bool empty() const {
    return moved.empty() && resized.empty() && added.empty() && !structural;
  }
  /// All dirty cell ids, ascending, deduplicated.
  std::vector<CellId> dirtyCells() const;
};

/// Thread-safe touched-cell recorder, attachable to a PlacementState.
///
/// mark() is lock-free (one relaxed atomic flag per cell), so the MGL
/// scheduler may notify from several threads; takeTouched() returns ids in
/// ascending order, making the collected set independent of thread
/// interleaving (determinism note: the *set* of touched cells is determined
/// by the deterministic scheduler, only the marking order varies).
class DeltaTracker final : public PlacementListener {
 public:
  explicit DeltaTracker(int numCells = 0) { reset(numCells); }

  /// Clear all marks and resize to `numCells` slots.
  void reset(int numCells);

  void onPlace(CellId c) override { mark(c); }
  void onRemove(CellId c) override { mark(c); }
  void onShift(CellId c) override { mark(c); }
  /// Explicit mark for edits the listener cannot observe (ECO cell adds,
  /// GP-position updates applied directly to the Design).
  void mark(CellId c);

  /// Ids marked since the last reset, ascending. Does not clear.
  std::vector<CellId> touched() const;
  bool isTouched(CellId c) const;
  /// Total notification events (marks, including re-marks) — a metrics aid.
  long long events() const { return events_.load(std::memory_order_relaxed); }

  /// Classify `current` against the legal `snapshot`. Pure function of the
  /// two designs; see DeltaSet for the categories and the structural rules.
  /// \pre  none — any pair of designs is accepted.
  /// \post result.structural implies the ECO driver must not trust the
  ///       per-cell lists (they are left empty on structural mismatch).
  static DeltaSet diff(const Design& current, const Design& snapshot);

 private:
  std::unique_ptr<std::atomic<unsigned char>[]> flags_;
  int size_ = 0;
  std::atomic<long long> events_{0};
};

}  // namespace mclg
