// Textual configuration for the pipeline: flat `key = value` lines
// (# comments), covering every tunable of every stage. Used by the CLI's
// --config and by tests that sweep configurations from data.
//
//   preset = contest            # or totaldisp (applied first)
//   mgl.threads = 4
//   mgl.window.w = 24
//   mgl.window.h = 8
//   mgl.window.expand = 1.7
//   mgl.seeds_per_row = 32
//   mgl.commit_attempts = 256
//   mgl.io_penalty = 2.0
//   mgl.routability = true
//   maxdisp.run = true
//   maxdisp.delta0 = 10
//   maxdisp.group_by_footprint = false
//   maxdisp.dense_threshold = 96
//   mcf.run = true
//   mcf.n0 = 4
//   mcf.routability = true
//   mcf.threads = 1
//   guard.run = false            # transactional stage guard (legal/guard/)
//   guard.score_tolerance = 0.05
//   guard.stage_budget = 0       # seconds per stage attempt; 0 = unlimited
//   guard.max_attempts = 2
//   guard.fault_seed = 42        # arm one deterministic injected fault
#pragma once

#include <string>

#include "legal/pipeline.hpp"

namespace mclg {

/// Apply `key = value` lines to config. Unknown keys or unparsable values
/// fail with *error set; config is modified in place (keys seen before the
/// failing line stay applied).
bool applyConfigText(const std::string& text, PipelineConfig* config,
                     std::string* error = nullptr);

/// Render the full configuration in the same syntax (round-trips through
/// applyConfigText).
std::string configToText(const PipelineConfig& config);

}  // namespace mclg
