#include "legal/guard/invariants.hpp"

#include <string>

#include "eval/checkers.hpp"
#include "eval/metrics.hpp"
#include "eval/score.hpp"

namespace mclg {

namespace {

std::string describe(const char* what, int count) {
  return std::string(what) + " (" + std::to_string(count) + ")";
}

}  // namespace

int countUnplacedMovable(const Design& design) {
  int count = 0;
  for (const auto& cell : design.cells) {
    if (!cell.fixed && !cell.placed) ++count;
  }
  return count;
}

InvariantResult checkStageInvariants(const Design& design,
                                     const SegmentMap& segments,
                                     const GuardConfig& config,
                                     PipelineStage stage, int unplacedBefore,
                                     double scoreBefore) {
  InvariantResult result;
  if (config.validateLegality) {
    const LegalityReport legality = checkLegality(design, segments);
    if (legality.overlaps > 0) {
      result.violation = describe("overlapping cell pairs", legality.overlaps);
    } else if (legality.outOfCore > 0) {
      result.violation = describe("cells outside the core", legality.outOfCore);
    } else if (legality.parityViolations > 0) {
      result.violation =
          describe("P/G parity violations", legality.parityViolations);
    } else if (legality.fenceViolations > 0) {
      result.violation =
          describe("fence violations", legality.fenceViolations);
    } else if (legality.unplacedCells > unplacedBefore) {
      result.violation = "stage unplaced cells (" +
                         std::to_string(unplacedBefore) + " -> " +
                         std::to_string(legality.unplacedCells) + ")";
    }
    if (!result.violation.empty()) {
      result.ok = false;
      return result;
    }
  }
  if (config.validateScore) {
    result.score = evaluateScore(design, segments).score;
    // Regression check only when a pre-stage score exists (post-MGL stages);
    // MGL itself turns an unscoreable GP input into a placement.
    if (stage != PipelineStage::Mgl && scoreBefore >= 0.0 &&
        result.score > scoreBefore * (1.0 + config.scoreTolerance) + 1e-9) {
      result.ok = false;
      result.violation = "Eq. 10 score regressed " +
                         std::to_string(scoreBefore) + " -> " +
                         std::to_string(result.score) + " (tolerance " +
                         std::to_string(config.scoreTolerance) + ")";
    }
  }
  return result;
}

InvariantResult checkEcoEquivalence(const Design& incremental,
                                    const Design& full,
                                    const SegmentMap& segments,
                                    double scoreTolerance, bool exact) {
  InvariantResult result;
  const LegalityReport legality = checkLegality(incremental, segments);
  if (legality.overlaps > 0 || legality.outOfCore > 0 ||
      legality.parityViolations > 0 || legality.fenceViolations > 0) {
    result.ok = false;
    result.violation = "incremental result is not legal";
    return result;
  }
  // Unplaced cells are compared against the full run (an infeasible design
  // leaves the same cells unplaced either way).
  if (legality.unplacedCells > countUnplacedMovable(full)) {
    result.ok = false;
    result.violation =
        "incremental run left " + std::to_string(legality.unplacedCells) +
        " cells unplaced vs " + std::to_string(countUnplacedMovable(full)) +
        " in the full run";
    return result;
  }
  result.score = evaluateScore(incremental, segments).score;
  if (exact) {
    if (placementHash(incremental) != placementHash(full)) {
      result.ok = false;
      result.violation = "exact mode: placements differ";
    }
    return result;
  }
  // SegmentMap depends only on fixed geometry, identical in both designs.
  const double fullScore = evaluateScore(full, segments).score;
  if (result.score > fullScore * (1.0 + scoreTolerance) + 1e-9) {
    result.ok = false;
    result.violation = "ECO score " + std::to_string(result.score) +
                       " exceeds full-run score " + std::to_string(fullScore) +
                       " beyond tolerance " + std::to_string(scoreTolerance);
  }
  return result;
}

}  // namespace mclg
