#include "legal/guard/guard.hpp"

#include "util/assert.hpp"
#include "util/table.hpp"

namespace mclg {

const char* guardExitCodeName(GuardExitCode code) {
  switch (code) {
    case GuardExitCode::Legal: return "legal";
    case GuardExitCode::Usage: return "usage";
    case GuardExitCode::Degraded: return "degraded";
    case GuardExitCode::Infeasible: return "infeasible";
    case GuardExitCode::ParseError: return "parse-error";
    case GuardExitCode::Internal: return "internal";
  }
  return "?";
}

const char* stageName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::Mgl: return "mgl";
    case PipelineStage::MaxDisp: return "maxdisp";
    case PipelineStage::FixedRowOrder: return "mcf";
    case PipelineStage::Ripup: return "ripup";
    case PipelineStage::Recovery: return "recovery";
  }
  return "?";
}

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::StageThrow: return "stage-throw";
    case FaultKind::InvariantBreak: return "invariant-break";
    case FaultKind::BudgetExhaust: return "budget-exhaust";
    case FaultKind::TaskThrow: return "task-throw";
  }
  return "?";
}

const char* stageStatusName(StageStatus status) {
  switch (status) {
    case StageStatus::NotRun: return "not-run";
    case StageStatus::Disabled: return "disabled";
    case StageStatus::Ok: return "ok";
    case StageStatus::OkAfterRetry: return "ok-after-retry";
    case StageStatus::SkippedAfterRollback: return "skipped";
    case StageStatus::FallbackApplied: return "fallback";
    case StageStatus::Failed: return "failed";
  }
  return "?";
}

void FaultPlan::add(PipelineStage stage, FaultKind kind, int attempt) {
  MCLG_ASSERT(attempt >= 0, "fault attempt must be non-negative");
  specs_.push_back({stage, kind, attempt});
}

bool FaultPlan::armed(PipelineStage stage, FaultKind kind, int attempt) const {
  for (const auto& spec : specs_) {
    if (spec.stage == stage && spec.kind == kind && spec.attempt == attempt) {
      return true;
    }
  }
  return false;
}

FaultPlan FaultPlan::fromSeed(std::uint64_t seed) {
  // SplitMix64: stable across platforms, no <random> dependency.
  auto mix = [](std::uint64_t& s) {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t s = seed;
  FaultPlan plan;
  const auto stage =
      static_cast<PipelineStage>(mix(s) % static_cast<std::uint64_t>(kNumPipelineStages));
  const auto kind =
      static_cast<FaultKind>(mix(s) % static_cast<std::uint64_t>(kNumFaultKinds));
  const int attempt = static_cast<int>(mix(s) % 2);
  plan.add(stage, kind, attempt);
  return plan;
}

GuardReport::GuardReport() {
  for (int i = 0; i < kNumPipelineStages; ++i) {
    stages[static_cast<std::size_t>(i)].stage = static_cast<PipelineStage>(i);
  }
}

StageRecord& GuardReport::at(PipelineStage stage) {
  return stages[static_cast<std::size_t>(stage)];
}

const StageRecord& GuardReport::at(PipelineStage stage) const {
  return stages[static_cast<std::size_t>(stage)];
}

std::string GuardReport::summary() const {
  Table table({"stage", "status", "attempts", "seconds", "score_in",
               "score_out", "detail"});
  for (const auto& rec : stages) {
    table.addRow({stageName(rec.stage), stageStatusName(rec.status),
                  Table::fmt(static_cast<long long>(rec.attempts)),
                  Table::fmt(rec.seconds, 3),
                  rec.scoreBefore < 0.0 ? "-" : Table::fmt(rec.scoreBefore, 4),
                  rec.scoreAfter < 0.0 ? "-" : Table::fmt(rec.scoreAfter, 4),
                  rec.detail.empty() ? "-" : rec.detail});
  }
  return table.toString();
}

}  // namespace mclg
