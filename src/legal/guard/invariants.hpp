// Inter-stage invariant validators for the pipeline guard.
//
// After a stage commits, the guard audits the whole design with the
// independent eval/ checkers (not the legalizers' incremental state), so a
// stage that silently corrupted the placement — or a fault injected to
// simulate one — is caught at the transaction boundary:
//
//  - hard legality: no overlaps, inside the core, P/G parity, fences;
//  - monotone progress: a stage must never unplace cells;
//  - Eq. 10 non-regression within a configured tolerance (post-MGL stages
//    only; the score is undefined while cells are still unplaced).
#pragma once

#include <string>

#include "db/design.hpp"
#include "db/segment_map.hpp"
#include "legal/guard/guard.hpp"

namespace mclg {

/// Movable cells without a legal position — GuardReport's infeasible count.
int countUnplacedMovable(const Design& design);

struct InvariantResult {
  bool ok = true;
  std::string violation;  // empty when ok
  double score = -1.0;    // Eq. 10 of the audited placement; -1 = not measured
};

/// Post-stage audit per GuardConfig. `unplacedBefore` is the movable
/// unplaced count entering the stage; `scoreBefore` the Eq. 10 score
/// entering it (-1 when unavailable, which disables the regression check).
InvariantResult checkStageInvariants(const Design& design,
                                     const SegmentMap& segments,
                                     const GuardConfig& config,
                                     PipelineStage stage, int unplacedBefore,
                                     double scoreBefore);

/// EcoEquivalence invariant (legal/eco/): the incremental result must be
/// fully legal, leave no movable cell unplaced that the full run placed,
/// and score (Eq. 10) within `scoreTolerance` relative of the full re-run;
/// with `exact` the two placements must additionally hash identically.
/// Returns the incremental score in `score`.
InvariantResult checkEcoEquivalence(const Design& incremental,
                                    const Design& full,
                                    const SegmentMap& segments,
                                    double scoreTolerance, bool exact);

}  // namespace mclg
