// Pipeline guard (robustness subsystem): stage transactions, invariant
// validation, deterministic fault injection, and graceful degradation.
//
// Every stage of legalize() can run as a transaction: the guard snapshots
// the PlacementState, runs the stage, audits the result (overlap / core /
// parity / fence legality, placed-count monotonicity, Eq. 10 score
// non-regression), and on any violation — thrown MclgError, exhausted
// wall-clock budget, or failed audit — rolls back to the snapshot and
// applies a degradation policy: retry with a relaxed configuration, skip an
// optional stage, or fall back to the Tetris baseline for the mandatory MGL
// stage. Every decision is recorded in a GuardReport.
//
// FaultPlan is the test harness for all of this: it deterministically arms
// synthetic faults (stage exceptions, artificial invariant breaks, budget
// exhaustion, worker-task throws) at chosen (stage, attempt) points so the
// rollback and degradation paths are exercised without relying on real
// failures.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/deadline.hpp"

namespace mclg {

/// The process exit-code contract shared by mclg_cli, mclg_batch workers,
/// and the batch supervisor's exit-code -> WorkerStatus mapping
/// (flow/worker_protocol.hpp). Documented in `mclg_cli --help` and
/// docs/ROBUSTNESS.md; the values are load-bearing wire format — never
/// renumber.
enum class GuardExitCode : int {
  Legal = 0,       ///< success; placement fully legal
  Usage = 1,       ///< usage / IO error (bad flags, unreadable files)
  Degraded = 2,    ///< legalized only after guard degradation
  Infeasible = 3,  ///< infeasible cells remain or placement not legal
  ParseError = 4,  ///< structured parse error in an input file
  Internal = 5,    ///< unrecoverable stage failure / unexpected exception
};

const char* guardExitCodeName(GuardExitCode code);

/// The five stages of legalize(), in execution order.
enum class PipelineStage { Mgl, MaxDisp, FixedRowOrder, Ripup, Recovery };
inline constexpr int kNumPipelineStages = 5;

const char* stageName(PipelineStage stage);

enum class FaultKind {
  StageThrow,      // MclgError(Injected) after the stage has mutated state
  InvariantBreak,  // corrupt the placement so the post-stage audit fails
  BudgetExhaust,   // run the stage under an already-expired Deadline
  TaskThrow,       // throw inside a thread-pool task (MGL) / stage body
};
inline constexpr int kNumFaultKinds = 4;

const char* faultKindName(FaultKind kind);

struct FaultSpec {
  PipelineStage stage = PipelineStage::Mgl;
  FaultKind kind = FaultKind::StageThrow;
  int attempt = 0;  // fires on this 0-based attempt of the stage
};

/// A deterministic set of synthetic faults. Injection is keyed on
/// (stage, kind, attempt), so a fault armed for attempt 0 does not re-fire
/// on the retry — the standard way to exercise the rollback-then-recover
/// path.
class FaultPlan {
 public:
  FaultPlan() = default;

  void add(PipelineStage stage, FaultKind kind, int attempt = 0);

  /// One pseudo-random fault derived from `seed` (SplitMix64 mixing, stable
  /// across platforms) — the fuzzing entry point: any seed must degrade
  /// gracefully, never abort.
  static FaultPlan fromSeed(std::uint64_t seed);

  bool empty() const { return specs_.empty(); }
  bool armed(PipelineStage stage, FaultKind kind, int attempt) const;
  const std::vector<FaultSpec>& specs() const { return specs_; }

 private:
  std::vector<FaultSpec> specs_;
};

enum class StageStatus {
  NotRun,               // pipeline aborted before reaching this stage
  Disabled,             // stage toggled off in PipelineConfig
  Ok,                   // clean first attempt
  OkAfterRetry,         // failed, rolled back, succeeded on a later attempt
  SkippedAfterRollback, // optional stage failed every attempt; state restored
  FallbackApplied,      // MGL failed; Tetris baseline placed the cells
  Failed,               // no recovery possible; state restored to pre-stage
};

const char* stageStatusName(StageStatus status);

/// Outcome of one stage transaction. `attempts` counts actual runs of the
/// stage body, so a report distinguishes "ran fast" (attempts = 1,
/// small seconds) from "did not run" (attempts = 0, Disabled/NotRun).
struct StageRecord {
  PipelineStage stage = PipelineStage::Mgl;
  StageStatus status = StageStatus::NotRun;
  int attempts = 0;
  double seconds = 0.0;      // wall clock across all attempts + recovery
  double scoreBefore = -1.0; // Eq. 10 entering the stage; -1 = not measured
  double scoreAfter = -1.0;  // Eq. 10 after the stage committed
  std::string detail;        // failure / recovery log, "; "-separated
};

struct GuardConfig {
  /// Off by default in the library: guarded runs re-evaluate legality and
  /// Eq. 10 at every stage boundary, which costs a full-design audit per
  /// stage. The CLI turns it on by default (--no-guard opts out).
  bool enabled = false;
  /// Audit overlap / core / parity / fence and placed-count monotonicity
  /// after each stage.
  bool validateLegality = true;
  /// Audit Eq. 10 non-regression after each post-MGL stage (before MGL the
  /// cells are unplaced, so the score is undefined).
  bool validateScore = true;
  /// Allowed relative Eq. 10 regression per stage before rollback.
  double scoreTolerance = 0.05;
  /// Wall-clock budget per stage attempt; <= 0 means unlimited. MGL
  /// cancels cooperatively at batch boundaries; the single-threaded stages
  /// are checked at the stage boundary.
  double stageBudgetSeconds = 0.0;
  /// Request-scoped budget (serving, flow/serve/): a deadline captured at
  /// request admission that bounds the *whole* run across all stages and
  /// attempts. Each stage runs under the earlier of this and its own
  /// per-attempt budget, so an over-budget request fails fast instead of
  /// burning the remaining stages' budgets. Unlimited by default — batch
  /// and CLI runs are unaffected.
  Deadline requestDeadline;
  /// Attempts per stage (1 initial + retries after rollback).
  int maxAttempts = 2;
  bool allowRetry = true;     // re-run after rollback, relaxed if possible
  bool allowSkip = true;      // optional stages may be skipped on failure
  bool allowFallback = true;  // Tetris baseline if MGL fails every attempt
  FaultPlan faults;           // test-only deterministic fault injection
};

struct GuardReport {
  GuardReport();

  std::array<StageRecord, kNumPipelineStages> stages;  // by stage order
  bool degraded = false;     // some stage needed retry / skip / fallback
  bool failed = false;       // some stage failed with no recovery
  int infeasibleCells = 0;   // movable cells left unplaced at the end

  StageRecord& at(PipelineStage stage);
  const StageRecord& at(PipelineStage stage) const;

  /// Fixed-width per-stage summary table (status, attempts, time, scores).
  std::string summary() const;
};

}  // namespace mclg
