// Guarded pipeline driver: runs every stage of legalize() as a transaction
// (snapshot -> stage -> invariant audit -> commit or rollback + degrade).
// See guard.hpp for the policy knobs and the report format.
#pragma once

#include "legal/pipeline.hpp"

namespace mclg {

/// Guarded variant of legalize(). Never throws and never aborts on a
/// recoverable stage failure: the worst outcome is a rolled-back stage
/// recorded as Failed in stats.guard, with the placement restored to the
/// last known-good state. legalize() dispatches here when
/// config.guard.enabled is set.
PipelineStats legalizeGuarded(PlacementState& state, const SegmentMap& segments,
                              const PipelineConfig& config);

}  // namespace mclg
