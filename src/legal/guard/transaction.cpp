#include "legal/guard/transaction.hpp"

#include <algorithm>
#include <array>
#include <exception>
#include <functional>
#include <iterator>
#include <string>

#include "baselines/baselines.hpp"
#include "eval/score.hpp"
#include "legal/guard/invariants.hpp"
#include "obs/obs.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace mclg {

namespace {

/// One stage of the pipeline as a transactional unit.
struct StageDriver {
  PipelineStage id = PipelineStage::Mgl;
  bool enabled = true;
  /// Optional stages may be skipped after rollback; the mandatory MGL stage
  /// degrades to the Tetris baseline instead.
  bool optional = true;
  std::function<void(const Deadline&, int attempt)> run;
  std::function<void()> relax;       // config relaxation for retries
  std::function<void()> resetStats;  // clear stage stats after final rollback
};

// Trace span names need static storage (the trace buffer keeps pointers).
const char* guardSpanName(PipelineStage stage) {
  switch (stage) {
    case PipelineStage::Mgl: return "guard/mgl";
    case PipelineStage::MaxDisp: return "guard/maxdisp";
    case PipelineStage::FixedRowOrder: return "guard/mcf";
    case PipelineStage::Ripup: return "guard/ripup";
    case PipelineStage::Recovery: return "guard/recovery";
  }
  return "guard/?";
}

void bumpGuardCounter(const char* name) {
  if (!obs::metricsEnabled()) return;
  obs::counter(name).add();
}

void appendDetail(StageRecord& rec, const std::string& text) {
  if (!rec.detail.empty()) rec.detail += "; ";
  rec.detail += text;
}

const char* errorKindTag(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::Internal: return "internal";
    case ErrorKind::Timeout: return "timeout";
    case ErrorKind::Injected: return "injected";
  }
  return "?";
}

/// Manufacture a genuine overlap via shiftX — which checks core bounds but
/// deliberately not occupancy — so the invariant audit has a real violation
/// to catch. Returns false when the placement offers no safe spot (the
/// caller then falls back to throwing an injected error).
bool corruptPlacement(PlacementState& state) {
  Design& design = state.design();
  for (std::int64_t y = 0; y < design.numRows; ++y) {
    const auto& row = state.rowCells(y);
    for (auto it = row.begin(); it != row.end(); ++it) {
      const auto next = std::next(it);
      if (next == row.end()) break;
      const CellId a = it->second;
      const CellId b = next->second;
      const int wa = design.widthOf(a);
      const int wb = design.widthOf(b);
      for (const std::int64_t newX :
           {it->first + 1, it->first + wa - 1, it->first - 1}) {
        if (newX < 0 || newX + wb > design.numSitesX) continue;
        if (newX >= it->first + wa || newX + wb <= it->first) continue;
        // The occupancy maps key cells by left x; a colliding key in any
        // row b spans would silently drop an entry and desync the index.
        bool keyFree = true;
        const auto& cb = design.cells[b];
        for (std::int64_t r = cb.y; r < cb.y + design.heightOf(b); ++r) {
          const auto& rowMap = state.rowCells(r);
          const auto found = rowMap.find(newX);
          if (found != rowMap.end() && found->second != b) {
            keyFree = false;
            break;
          }
        }
        if (!keyFree) continue;
        state.shiftX(b, newX);
        return true;
      }
    }
  }
  return false;
}

void runStage(PlacementState& state, const SegmentMap& segments,
              const GuardConfig& guard, StageDriver& driver,
              GuardReport& report) {
  StageRecord& rec = report.at(driver.id);
  if (!driver.enabled) {
    rec.status = StageStatus::Disabled;
    return;
  }

  Timer total;
  const PlacementSnapshot before = state.snapshot();
  const int unplacedBefore = countUnplacedMovable(state.design());
  double scoreBefore = -1.0;
  if (guard.validateScore && driver.id != PipelineStage::Mgl &&
      unplacedBefore == 0) {
    scoreBefore = evaluateScore(state.design(), segments).score;
  }
  rec.scoreBefore = scoreBefore;

  const int maxAttempts = std::max(1, guard.maxAttempts);
  for (int attempt = 0; attempt < maxAttempts; ++attempt) {
    ++rec.attempts;
    bumpGuardCounter("guard.attempts");
    MCLG_TRACE_SCOPE(guardSpanName(driver.id),
                     {{"attempt", static_cast<double>(attempt + 1)}});
    const Deadline deadline =
        guard.faults.armed(driver.id, FaultKind::BudgetExhaust, attempt)
            ? Deadline::expired()
            : Deadline::earliest(Deadline::after(guard.stageBudgetSeconds),
                                 guard.requestDeadline);
    std::string failure;
    try {
      driver.run(deadline, attempt);
      if (guard.faults.armed(driver.id, FaultKind::StageThrow, attempt) ||
          (driver.id != PipelineStage::Mgl &&
           guard.faults.armed(driver.id, FaultKind::TaskThrow, attempt))) {
        // Thrown *after* the stage body so the rollback is exercised on a
        // genuinely mutated placement. Single-threaded stages treat a
        // task fault as a stage fault.
        throw MclgError("injected stage fault", ErrorKind::Injected);
      }
      if (guard.faults.armed(driver.id, FaultKind::InvariantBreak, attempt) &&
          !corruptPlacement(state)) {
        throw MclgError("injected invariant break (no overlap site found)",
                        ErrorKind::Injected);
      }
      // Stages without internal checkpoints detect overage here.
      deadline.checkpoint(stageName(driver.id));
      const InvariantResult audit = checkStageInvariants(
          state.design(), segments, guard, driver.id, unplacedBefore,
          scoreBefore);
      if (audit.ok) {
        rec.scoreAfter = audit.score;
        rec.seconds = total.seconds();
        rec.status =
            attempt == 0 ? StageStatus::Ok : StageStatus::OkAfterRetry;
        if (attempt > 0) report.degraded = true;
        if (obs::metricsEnabled()) {
          const std::string base = std::string("stage.") + stageName(driver.id);
          obs::gauge(base + ".wall_seconds").set(total.seconds());
          obs::gauge(base + ".cpu_seconds").set(total.cpuSeconds());
        }
        return;
      }
      failure = "invariant violated: " + audit.violation;
    } catch (const MclgError& e) {
      failure = std::string("[") + errorKindTag(e.kind()) + "] " + e.what();
    } catch (const std::exception& e) {
      failure = std::string("[exception] ") + e.what();
    }
    state.restore(before);
    bumpGuardCounter("guard.rollbacks");
    appendDetail(rec, "attempt " + std::to_string(attempt + 1) + ": " +
                          failure + " -> rolled back");
    if (!guard.allowRetry || attempt + 1 >= maxAttempts) break;
    if (driver.relax) {
      driver.relax();
      appendDetail(rec, "retrying with relaxed config");
    }
  }

  // Every attempt failed; the placement equals the pre-stage snapshot.
  if (driver.resetStats) driver.resetStats();
  if (!driver.optional && guard.allowFallback) {
    const BaselineStats fallback = legalizeTetris(state, segments);
    const InvariantResult audit = checkStageInvariants(
        state.design(), segments, guard, driver.id, unplacedBefore,
        scoreBefore);
    if (audit.ok) {
      rec.status = StageStatus::FallbackApplied;
      report.degraded = true;
      bumpGuardCounter("guard.fallbacks");
      bumpGuardCounter("guard.degradations");
      rec.scoreAfter = audit.score;
      appendDetail(rec, "tetris fallback placed " +
                            std::to_string(fallback.placed) + " cells");
    } else {
      state.restore(before);
      rec.status = StageStatus::Failed;
      report.failed = true;
      appendDetail(rec, "tetris fallback rejected: " + audit.violation);
    }
  } else if (driver.optional && guard.allowSkip) {
    rec.status = StageStatus::SkippedAfterRollback;
    report.degraded = true;
    bumpGuardCounter("guard.degradations");
    appendDetail(rec, "stage skipped; placement restored");
  } else {
    rec.status = StageStatus::Failed;
    report.failed = true;
    appendDetail(rec, "no degradation allowed; placement restored");
  }
  rec.seconds = total.seconds();
}

}  // namespace

PipelineStats legalizeGuarded(PlacementState& state, const SegmentMap& segments,
                              const PipelineConfig& config) {
  PipelineStats stats;
  GuardReport& report = stats.guard;
  const GuardConfig& guard = config.guard;
  PipelineConfig cfg = config;  // relaxed retries edit this copy

  std::array<StageDriver, kNumPipelineStages> drivers;

  StageDriver& mgl = drivers[0];
  mgl.id = PipelineStage::Mgl;
  mgl.optional = false;
  mgl.run = [&](const Deadline& deadline, int attempt) {
    MglConfig mglCfg = cfg.mgl;
    mglCfg.checkpoint = [&deadline] { deadline.checkpoint("mgl"); };
    if (guard.faults.armed(PipelineStage::Mgl, FaultKind::TaskThrow,
                           attempt)) {
      mglCfg.taskHook = [](int task) {
        if (task == 0) {
          throw MclgError("injected worker-task fault", ErrorKind::Injected);
        }
      };
    }
    Timer timer;
    MglLegalizer legalizer(state, segments, mglCfg);
    stats.mgl = legalizer.run();
    stats.secondsMgl += timer.seconds();
  };
  mgl.relax = [&] {
    cfg.mgl.insertion.routability = false;
    cfg.mgl.insertion.respectEdgeSpacing = false;
    cfg.mgl.window.maxExpansions += 2;
  };
  mgl.resetStats = [&] { stats.mgl = {}; };

  StageDriver& maxDisp = drivers[1];
  maxDisp.id = PipelineStage::MaxDisp;
  maxDisp.enabled = cfg.runMaxDisp;
  maxDisp.run = [&](const Deadline&, int) {
    Timer timer;
    stats.maxDisp = optimizeMaxDisplacement(state, cfg.maxDisp);
    stats.secondsMaxDisp += timer.seconds();
  };
  maxDisp.resetStats = [&] { stats.maxDisp = {}; };

  StageDriver& mcf = drivers[2];
  mcf.id = PipelineStage::FixedRowOrder;
  mcf.enabled = cfg.runFixedRowOrder;
  mcf.run = [&](const Deadline&, int) {
    Timer timer;
    stats.fixedRowOrder =
        optimizeFixedRowOrder(state, segments, cfg.fixedRowOrder);
    stats.secondsFixedRowOrder += timer.seconds();
  };
  mcf.relax = [&] { cfg.fixedRowOrder.routability = false; };
  mcf.resetStats = [&] { stats.fixedRowOrder = {}; };

  StageDriver& ripup = drivers[3];
  ripup.id = PipelineStage::Ripup;
  ripup.enabled = cfg.runRipup;
  ripup.run = [&](const Deadline&, int) {
    Timer timer;
    RipupConfig ripupCfg = cfg.ripup;
    ripupCfg.insertion = cfg.mgl.insertion;  // same objective/constraints
    stats.ripup = ripupRefine(state, segments, ripupCfg);
    stats.secondsRipup += timer.seconds();
  };
  ripup.resetStats = [&] { stats.ripup = {}; };

  StageDriver& recovery = drivers[4];
  recovery.id = PipelineStage::Recovery;
  recovery.enabled = cfg.runWirelengthRecovery;
  recovery.run = [&](const Deadline&, int) {
    Timer timer;
    stats.recovery = recoverWirelength(state, segments, cfg.recovery);
    stats.secondsRecovery += timer.seconds();
  };
  recovery.resetStats = [&] { stats.recovery = {}; };

  for (auto& driver : drivers) {
    runStage(state, segments, guard, driver, report);
    if (driver.id == PipelineStage::Mgl &&
        report.at(driver.id).status == StageStatus::Failed) {
      // Rolled back to the (unplaced) GP input with no fallback: the later
      // stages have nothing to refine. They stay NotRun.
      break;
    }
  }
  report.infeasibleCells = countUnplacedMovable(state.design());
  return stats;
}

}  // namespace mclg
