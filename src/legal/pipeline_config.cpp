#include "legal/pipeline_config.hpp"

#include <cstdlib>
#include <sstream>

namespace mclg {
namespace {

bool parseBool(const std::string& value, bool* out) {
  if (value == "true" || value == "1" || value == "yes") {
    *out = true;
    return true;
  }
  if (value == "false" || value == "0" || value == "no") {
    *out = false;
    return true;
  }
  return false;
}

bool parseDouble(const std::string& value, double* out) {
  char* end = nullptr;
  *out = std::strtod(value.c_str(), &end);
  return end != value.c_str() && *end == '\0';
}

bool parseInt(const std::string& value, int* out) {
  char* end = nullptr;
  const long v = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') return false;
  *out = static_cast<int>(v);
  return true;
}

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  return s.substr(begin, s.find_last_not_of(" \t\r") - begin + 1);
}

}  // namespace

bool applyConfigText(const std::string& text, PipelineConfig* config,
                     std::string* error) {
  std::istringstream in(text);
  std::string line;
  int lineNo = 0;
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(lineNo) + ": " + what;
    }
    return false;
  };

  while (std::getline(in, line)) {
    ++lineNo;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) return fail("expected key = value");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));

    bool okBool = false;
    double okDouble = 0.0;
    int okInt = 0;
    if (key == "preset") {
      if (value == "contest") {
        *config = PipelineConfig::contest();
      } else if (value == "totaldisp") {
        *config = PipelineConfig::totalDisplacement();
      } else {
        return fail("unknown preset '" + value + "'");
      }
    } else if (key == "mgl.threads" && parseInt(value, &okInt)) {
      config->mgl.numThreads = okInt;
    } else if (key == "mgl.batch_cap" && parseInt(value, &okInt)) {
      config->mgl.batchCap = okInt;
    } else if (key == "mgl.window.w" && parseInt(value, &okInt)) {
      config->mgl.window.initialW = okInt;
    } else if (key == "mgl.window.h" && parseInt(value, &okInt)) {
      config->mgl.window.initialH = okInt;
    } else if (key == "mgl.window.expand" && parseDouble(value, &okDouble)) {
      config->mgl.window.expandFactor = okDouble;
    } else if (key == "mgl.window.max_expansions" && parseInt(value, &okInt)) {
      config->mgl.window.maxExpansions = okInt;
    } else if (key == "mgl.seeds_per_row" && parseInt(value, &okInt)) {
      config->mgl.insertion.maxSeedsPerRow = okInt;
    } else if (key == "mgl.commit_attempts" && parseInt(value, &okInt)) {
      config->mgl.insertion.maxCommitAttempts = okInt;
    } else if (key == "mgl.io_penalty" && parseDouble(value, &okDouble)) {
      config->mgl.insertion.ioPenalty = okDouble;
    } else if (key == "mgl.routability" && parseBool(value, &okBool)) {
      config->mgl.insertion.routability = okBool;
    } else if (key == "mgl.gp_objective" && parseBool(value, &okBool)) {
      config->mgl.insertion.gpObjective = okBool;
    } else if (key == "mgl.contest_weights" && parseBool(value, &okBool)) {
      config->mgl.insertion.contestWeights = okBool;
    } else if (key == "mgl.edge_spacing" && parseBool(value, &okBool)) {
      config->mgl.insertion.respectEdgeSpacing = okBool;
    } else if (key == "maxdisp.run" && parseBool(value, &okBool)) {
      config->runMaxDisp = okBool;
    } else if (key == "maxdisp.delta0" && parseDouble(value, &okDouble)) {
      config->maxDisp.delta0 = okDouble;
    } else if (key == "maxdisp.max_group" && parseInt(value, &okInt)) {
      config->maxDisp.maxGroupSize = okInt;
    } else if (key == "maxdisp.candidates" && parseInt(value, &okInt)) {
      config->maxDisp.candidatesPerCell = okInt;
    } else if (key == "maxdisp.dense_threshold" && parseInt(value, &okInt)) {
      config->maxDisp.denseSolverThreshold = okInt;
    } else if (key == "maxdisp.threads" && parseInt(value, &okInt)) {
      config->maxDisp.numThreads = okInt;
    } else if (key == "maxdisp.group_by_footprint" &&
               parseBool(value, &okBool)) {
      config->maxDisp.groupByFootprint = okBool;
    } else if (key == "mcf.run" && parseBool(value, &okBool)) {
      config->runFixedRowOrder = okBool;
    } else if (key == "mcf.n0" && parseDouble(value, &okDouble)) {
      config->fixedRowOrder.maxDispWeight = okDouble;
    } else if (key == "mcf.routability" && parseBool(value, &okBool)) {
      config->fixedRowOrder.routability = okBool;
    } else if (key == "mcf.contest_weights" && parseBool(value, &okBool)) {
      config->fixedRowOrder.contestWeights = okBool;
    } else if (key == "mcf.edge_spacing" && parseBool(value, &okBool)) {
      config->fixedRowOrder.respectEdgeSpacing = okBool;
    } else if (key == "mcf.mrdp_network" && parseBool(value, &okBool)) {
      config->fixedRowOrder.mrdpStyleNetwork = okBool;
    } else if (key == "mcf.threads" && parseInt(value, &okInt)) {
      config->fixedRowOrder.numThreads = okInt;
    } else if (key == "ripup.run" && parseBool(value, &okBool)) {
      config->runRipup = okBool;
    } else if (key == "ripup.threshold" && parseDouble(value, &okDouble)) {
      config->ripup.displacementThreshold = okDouble;
    } else if (key == "ripup.passes" && parseInt(value, &okInt)) {
      config->ripup.passes = okInt;
    } else if (key == "recovery.run" && parseBool(value, &okBool)) {
      config->runWirelengthRecovery = okBool;
    } else if (key == "recovery.budget" && parseDouble(value, &okDouble)) {
      config->recovery.maxAddedDisplacement = okDouble;
    } else if (key == "recovery.passes" && parseInt(value, &okInt)) {
      config->recovery.passes = okInt;
    } else if (key == "guard.run" && parseBool(value, &okBool)) {
      config->guard.enabled = okBool;
    } else if (key == "guard.validate_legality" && parseBool(value, &okBool)) {
      config->guard.validateLegality = okBool;
    } else if (key == "guard.validate_score" && parseBool(value, &okBool)) {
      config->guard.validateScore = okBool;
    } else if (key == "guard.score_tolerance" && parseDouble(value, &okDouble)) {
      config->guard.scoreTolerance = okDouble;
    } else if (key == "guard.stage_budget" && parseDouble(value, &okDouble)) {
      config->guard.stageBudgetSeconds = okDouble;
    } else if (key == "guard.max_attempts" && parseInt(value, &okInt)) {
      config->guard.maxAttempts = okInt;
    } else if (key == "guard.allow_retry" && parseBool(value, &okBool)) {
      config->guard.allowRetry = okBool;
    } else if (key == "guard.allow_skip" && parseBool(value, &okBool)) {
      config->guard.allowSkip = okBool;
    } else if (key == "guard.allow_fallback" && parseBool(value, &okBool)) {
      config->guard.allowFallback = okBool;
    } else if (key == "guard.fault_seed" && parseInt(value, &okInt)) {
      // Deterministic fault fuzzing hook: arm one pseudo-random fault.
      config->guard.faults =
          FaultPlan::fromSeed(static_cast<std::uint64_t>(okInt));
    } else {
      return fail("unknown key or bad value: '" + key + "' = '" + value +
                  "'");
    }
  }
  return true;
}

std::string configToText(const PipelineConfig& config) {
  std::ostringstream out;
  auto b = [](bool v) { return v ? "true" : "false"; };
  out << "mgl.threads = " << config.mgl.numThreads << "\n";
  out << "mgl.batch_cap = " << config.mgl.batchCap << "\n";
  out << "mgl.window.w = " << config.mgl.window.initialW << "\n";
  out << "mgl.window.h = " << config.mgl.window.initialH << "\n";
  out << "mgl.window.expand = " << config.mgl.window.expandFactor << "\n";
  out << "mgl.window.max_expansions = " << config.mgl.window.maxExpansions
      << "\n";
  out << "mgl.seeds_per_row = " << config.mgl.insertion.maxSeedsPerRow << "\n";
  out << "mgl.commit_attempts = " << config.mgl.insertion.maxCommitAttempts
      << "\n";
  out << "mgl.io_penalty = " << config.mgl.insertion.ioPenalty << "\n";
  out << "mgl.routability = " << b(config.mgl.insertion.routability) << "\n";
  out << "mgl.gp_objective = " << b(config.mgl.insertion.gpObjective) << "\n";
  out << "mgl.contest_weights = " << b(config.mgl.insertion.contestWeights)
      << "\n";
  out << "mgl.edge_spacing = " << b(config.mgl.insertion.respectEdgeSpacing)
      << "\n";
  out << "maxdisp.run = " << b(config.runMaxDisp) << "\n";
  out << "maxdisp.delta0 = " << config.maxDisp.delta0 << "\n";
  out << "maxdisp.max_group = " << config.maxDisp.maxGroupSize << "\n";
  out << "maxdisp.candidates = " << config.maxDisp.candidatesPerCell << "\n";
  out << "maxdisp.dense_threshold = " << config.maxDisp.denseSolverThreshold
      << "\n";
  out << "maxdisp.threads = " << config.maxDisp.numThreads << "\n";
  out << "maxdisp.group_by_footprint = " << b(config.maxDisp.groupByFootprint)
      << "\n";
  out << "mcf.run = " << b(config.runFixedRowOrder) << "\n";
  out << "mcf.n0 = " << config.fixedRowOrder.maxDispWeight << "\n";
  out << "mcf.routability = " << b(config.fixedRowOrder.routability) << "\n";
  out << "mcf.contest_weights = " << b(config.fixedRowOrder.contestWeights)
      << "\n";
  out << "mcf.edge_spacing = " << b(config.fixedRowOrder.respectEdgeSpacing)
      << "\n";
  out << "mcf.mrdp_network = " << b(config.fixedRowOrder.mrdpStyleNetwork)
      << "\n";
  out << "mcf.threads = " << config.fixedRowOrder.numThreads << "\n";
  out << "ripup.run = " << b(config.runRipup) << "\n";
  out << "ripup.threshold = " << config.ripup.displacementThreshold << "\n";
  out << "ripup.passes = " << config.ripup.passes << "\n";
  out << "recovery.run = " << b(config.runWirelengthRecovery) << "\n";
  out << "recovery.budget = " << config.recovery.maxAddedDisplacement << "\n";
  out << "recovery.passes = " << config.recovery.passes << "\n";
  out << "guard.run = " << b(config.guard.enabled) << "\n";
  out << "guard.validate_legality = " << b(config.guard.validateLegality)
      << "\n";
  out << "guard.validate_score = " << b(config.guard.validateScore) << "\n";
  out << "guard.score_tolerance = " << config.guard.scoreTolerance << "\n";
  out << "guard.stage_budget = " << config.guard.stageBudgetSeconds << "\n";
  out << "guard.max_attempts = " << config.guard.maxAttempts << "\n";
  out << "guard.allow_retry = " << b(config.guard.allowRetry) << "\n";
  out << "guard.allow_skip = " << b(config.guard.allowSkip) << "\n";
  out << "guard.allow_fallback = " << b(config.guard.allowFallback) << "\n";
  return out.str();
}

}  // namespace mclg
