#include "legal/mgl/window.hpp"

#include <algorithm>
#include <cmath>

namespace mclg {

Rect makeWindow(const Design& design, double gpX, double gpY,
                const CellType& type, const WindowParams& params, int level) {
  if (level >= params.maxExpansions) {
    return {0, 0, design.numSitesX, design.numRows};
  }
  const double factor = std::pow(params.expandFactor, level);
  const std::int64_t halfW = std::max<std::int64_t>(
      type.width + 1,
      static_cast<std::int64_t>(std::lround(params.initialW * factor / 2)));
  const std::int64_t halfH = std::max<std::int64_t>(
      type.height + 1,
      static_cast<std::int64_t>(std::lround(params.initialH * factor / 2)));
  const auto cx = static_cast<std::int64_t>(std::lround(gpX));
  const auto cy = static_cast<std::int64_t>(std::lround(gpY));
  Rect window{cx - halfW, cy - halfH, cx + halfW, cy + halfH};
  window.xlo = std::max<std::int64_t>(0, window.xlo);
  window.ylo = std::max<std::int64_t>(0, window.ylo);
  window.xhi = std::min(design.numSitesX, window.xhi);
  window.yhi = std::min(design.numRows, window.yhi);
  return window;
}

}  // namespace mclg
