// MGL — multi-row global legalization (paper §3.1, Algorithm 1, §3.5).
//
// Cells are legalized sequentially (tallest/widest first so the hard cells
// get first pick of the space); each cell is inserted into a window around
// its GP position, the window expanding geometrically on failure. With
// numThreads > 1, a deterministic scheduler processes batches of cells
// whose windows occupy disjoint row ranges in parallel (§3.5).
//
// The same engine runs the MLL baseline [12]: set
// config.insertion.gpObjective = false so displacement is measured from the
// cells' current positions instead of their GP positions.
#pragma once

#include <functional>
#include <vector>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "legal/mgl/insertion.hpp"
#include "legal/mgl/window.hpp"
#include "util/executor/executor.hpp"

namespace mclg {

struct MglConfig {
  WindowParams window;
  InsertionConfig insertion;
  int numThreads = 1;
  /// Max windows per parallel batch (0 = 2 * numThreads).
  int batchCap = 0;
  /// Where batch tasks run when numThreads > 1. Defaults to the process-wide
  /// work-stealing executor; the batch driver and tests can inject one.
  ExecutorRef executor{};
  /// Cooperative-cancellation hook, called serially between batches. The
  /// pipeline guard installs a Deadline checkpoint here; a throw unwinds
  /// the scheduler and is caught at the transaction boundary.
  std::function<void()> checkpoint;
  /// Test hook called at the start of every insertion task with its
  /// batch-local index — the guard's fault-injection point for exercising
  /// exception propagation out of the thread pool.
  std::function<void(int)> taskHook;
};

struct MglStats {
  int placed = 0;
  int fallbackPlaced = 0;  // needed the routability-relaxed full-core pass
  int failed = 0;          // could not be placed at all
  long long windowExpansions = 0;
};

class MglLegalizer {
 public:
  MglLegalizer(PlacementState& state, const SegmentMap& segments,
               const MglConfig& config)
      : state_(state), segments_(segments), config_(config) {}

  /// Legalize every unplaced movable cell. Returns per-run statistics;
  /// stats.failed == 0 means a fully legal placement (modulo soft
  /// routability constraints, which are optimized, not guaranteed).
  MglStats run();

  /// Processing order used by run(): taller, then wider, then leftmost GP.
  std::vector<CellId> orderCells() const;

 private:
  friend class MglScheduler;

  /// Full-core, routability-relaxed last resort for a cell no window could
  /// take. Returns false only when the design genuinely has no room.
  bool placeFallback(CellId c);

  PlacementState& state_;
  const SegmentMap& segments_;
  MglConfig config_;
};

}  // namespace mclg
