// Deterministic multi-threaded window scheduler for MGL (paper §3.5).
//
// The scheduler walks the global cell order, assembling batches of pending
// cells whose current windows occupy pairwise-disjoint row ranges; each
// batch runs in parallel and is followed by a barrier. Row-disjointness is
// slightly stronger than the paper's window-disjointness, and is what makes
// concurrent commits safe with the shared per-row occupancy maps. Failed
// cells get their windows expanded and re-enter the queue, mirroring the
// paper's waiting list L_w. Results are independent of the thread count
// because batch composition depends only on the (deterministic) queue
// state, and windows in a batch commute.
#pragma once

#include "legal/mgl/mgl_legalizer.hpp"

namespace mclg {

class MglScheduler {
 public:
  MglScheduler(MglLegalizer& legalizer, int numThreads, int batchCap)
      : legalizer_(legalizer),
        numThreads_(numThreads),
        batchCap_(batchCap > 0 ? batchCap : 2 * numThreads) {}

  MglStats run();

 private:
  MglLegalizer& legalizer_;
  int numThreads_;
  int batchCap_;
};

}  // namespace mclg
