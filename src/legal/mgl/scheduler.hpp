// Deterministic multi-threaded window scheduler for MGL (paper §3.5).
//
// The scheduler walks the global cell order, assembling batches of pending
// cells whose current windows occupy pairwise-disjoint row ranges; each
// batch runs in parallel and is followed by a barrier. Row-disjointness is
// slightly stronger than the paper's window-disjointness, and is what makes
// concurrent commits safe with the shared per-row occupancy maps. Failed
// cells get their windows expanded and re-enter the queue, mirroring the
// paper's waiting list L_w. Results are independent of the thread count
// because batch composition depends only on the (deterministic) queue
// state, and windows in a batch commute.
#pragma once

#include "legal/mgl/mgl_legalizer.hpp"

namespace mclg {

class MglScheduler {
 public:
  /// \param legalizer  the single-threaded MGL engine whose queue this
  ///                   scheduler drives; must outlive the scheduler.
  /// \param numThreads lane budget per batch. MglLegalizer::run only routes
  ///                   here for >= 2 (its serial path has a different visit
  ///                   order); 1 is still valid — batches run inline, with
  ///                   results identical to any lane count at the same cap.
  /// \param batchCap   max cells per parallel batch; 0 picks
  ///                   2 * numThreads. Results depend on the cap (batch
  ///                   composition changes), so comparisons across thread
  ///                   counts must pin it explicitly.
  MglScheduler(MglLegalizer& legalizer, int numThreads, int batchCap)
      : legalizer_(legalizer),
        numThreads_(numThreads),
        batchCap_(batchCap > 0 ? batchCap : 2 * numThreads) {}

  /// Legalize every unplaced movable cell (same contract as
  /// MglLegalizer::run). \post results are byte-identical for any thread
  /// count >= 1 at a fixed batch cap.
  MglStats run();

 private:
  MglLegalizer& legalizer_;
  int numThreads_;
  int batchCap_;
};

}  // namespace mclg
