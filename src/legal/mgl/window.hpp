// Search windows for MGL (paper §3.1): a rectangle around the target
// cell's GP position, expanded geometrically when insertion fails.
#pragma once

#include <cstdint>

#include "db/design.hpp"
#include "geometry/rect.hpp"

namespace mclg {

struct WindowParams {
  int initialW = 24;        // sites
  int initialH = 8;         // rows
  double expandFactor = 1.7;
  /// Give up on window growth after this many expansions and hand the cell
  /// to the (cheap, gap-first) fallback. Quality saturates around 6 on the
  /// suite designs while each further level roughly doubles the cost of
  /// every hard cell — see bench_ablation_window.
  int maxExpansions = 6;
};

/// Window centered on (gpX, gpY), clipped to the core, after `level`
/// geometric expansions. Always large enough to hold a cell of the given
/// type. At maxExpansions the window covers the whole core.
Rect makeWindow(const Design& design, double gpX, double gpY,
                const CellType& type, const WindowParams& params, int level);

}  // namespace mclg
