#include "legal/mgl/insertion.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "eval/checkers.hpp"
#include "geometry/disp_curve.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"

namespace mclg {
namespace {

// Disabled cost is the single relaxed load in metricsEnabled(); the registry
// lookup only happens when metrics are on.
inline void bumpReject(const char* name) {
  if (!obs::metricsEnabled()) return;
  obs::counter(name).add();
}

}  // namespace

int InsertionSearcher::edgeSpacing(int rightEdgeClass,
                                   int leftEdgeClass) const {
  return config_.respectEdgeSpacing
             ? state_.design().edgeSpacing(rightEdgeClass, leftEdgeClass)
             : 0;
}

int InsertionSearcher::spacingBetween(CellId left, CellId right) const {
  return config_.respectEdgeSpacing
             ? state_.design().spacingBetween(left, right)
             : 0;
}

bool InsertionSearcher::isLocal(CellId c, const Rect& window) const {
  const auto& design = state_.design();
  const auto& cell = design.cells[c];
  if (cell.fixed || !cell.placed) return false;
  const Rect box{cell.x, cell.y, cell.x + design.widthOf(c),
                 cell.y + design.heightOf(c)};
  return window.containsRect(box);
}

void InsertionSearcher::beginWindow() {
  ++windowEpoch_;
  const auto& design = state_.design();
  if (rowSnaps_.size() < static_cast<std::size_t>(design.numRows)) {
    rowSnaps_.resize(static_cast<std::size_t>(design.numRows));
  }
  if (cellCurve_.size() < static_cast<std::size_t>(design.numCells())) {
    cellCurve_.resize(static_cast<std::size_t>(design.numCells()));
  }
  dupSkipped_ = 0;
}

const InsertionSearcher::RowSnap& InsertionSearcher::rowSnap(
    std::int64_t r, const Rect& window) const {
  RowSnap& snap = rowSnaps_[static_cast<std::size_t>(r)];
  if (snap.epoch == windowEpoch_) return snap;
  snap.epoch = windowEpoch_;
  snap.winBegin = 0;
  snap.x.clear();
  snap.center.clear();
  snap.cell.clear();
  snap.width.clear();
  snap.local.clear();
  const auto& design = state_.design();
  const auto& rowMap = state_.rowCells(r);
  // Cells left of the window are never local, so a left chain stops at the
  // first one: keep a single wall candidate below window.xlo, everything in
  // [window.xlo, window.xhi), and a single wall candidate at/after
  // window.xhi (same argument on the right).
  auto it = rowMap.lower_bound(window.xlo);
  if (it != rowMap.begin()) {
    --it;
    snap.winBegin = 1;
  }
  for (; it != rowMap.end(); ++it) {
    const CellId j = it->second;
    const int wj = design.widthOf(j);
    snap.x.push_back(it->first);
    snap.cell.push_back(j);
    snap.width.push_back(wj);
    snap.center.push_back(static_cast<double>(it->first) + wj * 0.5);
    snap.local.push_back(isLocal(j, window) ? 1 : 0);
    if (it->first >= window.xhi) break;
  }
  return snap;
}

const InsertionSearcher::CellCurveData& InsertionSearcher::curveData(
    CellId j) const {
  CellCurveData& d = cellCurve_[static_cast<std::size_t>(j)];
  if (d.epoch == windowEpoch_) {
    ++curveHits_;
    return d;
  }
  ++curveMisses_;
  d.epoch = windowEpoch_;
  const auto& design = state_.design();
  const auto& cell = design.cells[j];
  d.cur = static_cast<double>(cell.x);
  d.gp = config_.gpObjective ? cell.gpX : d.cur;
  d.scale = design.siteWidthFactor *
            (config_.contestWeights ? design.metricWeight(j) : 1.0);
  return d;
}

bool InsertionSearcher::evaluateSeed(CellId c, const Rect& window,
                                     std::int64_t y, std::int64_t seed,
                                     Candidate& out) const {
  const auto& design = state_.design();
  const auto& target = design.cells[c];
  const auto& type = design.typeOf(c);
  const int h = type.height;
  const int w = type.width;

  std::int64_t lo = window.xlo;
  std::int64_t hi = window.xhi - w;

  // Chain entries, deduplicated across rows for multi-row local cells (the
  // most constraining row's offset wins). Scratch reused across calls.
  auto& entries = entryScratch_;
  auto& entryIndex = entryIndexScratch_;
  entries.clear();
  entryIndex.clear();
  auto addEntry = [&](CellId j, std::int64_t off, bool left) {
    auto [it, inserted] = entryIndex.emplace(j, entries.size());
    if (inserted) {
      entries.push_back({j, off, left});
    } else if (off > entries[it->second].off) {
      entries[it->second].off = off;
    }
  };

  for (std::int64_t r = y; r < y + h; ++r) {
    const RowCtx& rc = rowCtxScratch_[static_cast<std::size_t>(r - y)];
    const Segment* seg = rc.seg;
    if (seg == nullptr || seg->fence != target.fence) {
      bumpReject("mgl.insert.reject.fence");
      return false;
    }
    const std::int64_t rowLo = std::max(seg->x.lo, window.xlo);
    const std::int64_t rowHi = std::min(seg->x.hi, window.xhi);
    const RowSnap& snap = *rc.snap;

    // Left chain: cells with center <= seedCenter (snapshot indices below
    // the partition boundary), walked right-to-left.
    {
      std::int64_t acc = 0;
      TypeId prevType = target.type;
      bool wallFound = false;
      for (std::int32_t i = rc.boundary - 1; i >= 0; --i) {
        if (snap.x[i] < seg->x.lo) break;  // outside the segment
        const CellId j = snap.cell[i];
        const int sp = edgeSpacing(design.typeOf(j).rightEdge,
                                          design.types[prevType].leftEdge);
        if (snap.local[i]) {
          const std::int64_t off = acc + sp + snap.width[i];
          addEntry(j, off, /*left=*/true);
          acc = off;
          prevType = design.cells[j].type;
        } else {
          lo = std::max(lo, snap.x[i] + snap.width[i] + sp + acc);
          wallFound = true;
          break;
        }
      }
      if (!wallFound) lo = std::max(lo, rowLo + acc);
    }
    // Right chain: cells with center > seedCenter (snapshot indices from the
    // boundary up), walked left-to-right.
    {
      std::int64_t acc = w;
      TypeId prevType = target.type;
      bool wallFound = false;
      const auto n = static_cast<std::int32_t>(snap.x.size());
      for (std::int32_t i = rc.boundary; i < n && snap.x[i] < seg->x.hi; ++i) {
        const CellId j = snap.cell[i];
        const int sp = edgeSpacing(design.types[prevType].rightEdge,
                                          design.typeOf(j).leftEdge);
        if (snap.local[i]) {
          const std::int64_t off = acc + sp;
          addEntry(j, off, /*left=*/false);
          acc = off + snap.width[i];
          prevType = design.cells[j].type;
        } else {
          // Chain must fit left of the wall: x + acc + sp <= j.x.
          hi = std::min(hi, snap.x[i] - sp - acc);
          wallFound = true;
          break;
        }
      }
      if (!wallFound) hi = std::min(hi, rowHi - acc);
    }
    if (lo > hi) return false;
  }

  // Displacement curves (Fig. 4) summed over the target and local cells.
  // Per-cell curve parameters come from the window-epoch arena.
  const double swf = design.siteWidthFactor;
  CurveSum& sum = sumScratch_;
  sum.clear();
  const double wT =
      config_.contestWeights ? design.metricWeight(c) : 1.0;
  sum.add(DispCurve::targetV(target.gpX).scaled(swf * wT));
  sum.add(DispCurve::constant(
      std::abs(static_cast<double>(y) - target.gpY) * wT));
  // Local-cell curves measure absolute displacement from GP; subtracting
  // each cell's *current* displacement turns the total into the change in
  // regional displacement caused by this insertion, which is comparable
  // across insertion points with different local-cell sets (and is exactly
  // zero-based in MLL mode, where gp == cur).
  double baseline = 0.0;
  for (const auto& entry : entries) {
    const CellCurveData& cd = curveData(entry.cell);
    baseline += cd.scale * std::abs(cd.cur - cd.gp);
    sum.add(entry.left
                ? DispCurve::leftPush(cd.cur, cd.gp,
                                      static_cast<double>(entry.off))
                      .scaled(cd.scale)
                : DispCurve::rightPush(cd.cur, cd.gp,
                                       static_cast<double>(entry.off))
                      .scaled(cd.scale));
  }
  if (obs::metricsEnabled()) {
    obs::counter("mgl.disp_curve.breakpoints").add(sum.totalBreakpoints());
    obs::counter("mgl.disp_curve.minimized").add();
  }
  auto best = sum.minimizeOnSites(lo, hi);
  if (!best.feasible) return false;
  best.value -= baseline;

  if (config_.routability) {
    // Dodge vertical-rail conflicts: move to the nearest clean site. The
    // forbidden intervals depend only on (type, row), so they are computed
    // once per row per window and reused across seeds.
    if (forbiddenEpoch_ != windowEpoch_ || forbiddenY_ != y) {
      forbiddenScratch_ = verticalRailForbiddenX(design, target.type, y);
      forbiddenEpoch_ = windowEpoch_;
      forbiddenY_ = y;
    }
    const auto& forbidden = forbiddenScratch_;
    auto inForbidden = [&](std::int64_t x) -> const Interval* {
      for (const auto& iv : forbidden) {
        if (iv.contains(x)) return &iv;
      }
      return nullptr;
    };
    if (const Interval* iv = inForbidden(best.x)) {
      const std::int64_t leftAlt = iv->lo - 1;
      const std::int64_t rightAlt = iv->hi;
      double bestVal = 0.0;
      std::int64_t bestX = 0;
      bool found = false;
      if (leftAlt >= lo && inForbidden(leftAlt) == nullptr) {
        bestVal = sum.value(static_cast<double>(leftAlt));
        bestX = leftAlt;
        found = true;
      }
      if (rightAlt <= hi && inForbidden(rightAlt) == nullptr) {
        const double v = sum.value(static_cast<double>(rightAlt));
        if (!found || v < bestVal) {
          bestVal = v;
          bestX = rightAlt;
          found = true;
        }
      }
      if (!found) return false;
      best.x = bestX;
      best.value = bestVal - baseline;
    }
    // IO-pin overlap penalty (§3.4: penalties, not hard rejections).
    const int ioOverlaps =
        countIoOverlaps(design, target.type, best.x, y);
    best.value += ioOverlaps * config_.ioPenalty * wT;
  }

  out.x = best.x;
  out.y = y;
  out.cost = best.value;
  out.seed = seed;
  return true;
}

void InsertionSearcher::evaluateRow(CellId c, const Rect& window,
                                    std::int64_t y,
                                    std::vector<Candidate>& out) const {
  const auto& design = state_.design();
  const auto& target = design.cells[c];
  const auto& type = design.typeOf(c);
  if (!design.parityOk(target.type, y)) {
    bumpReject("mgl.insert.reject.parity");
    return;
  }
  if (y < window.ylo || y + type.height > window.yhi) return;
  if (config_.routability &&
      hasHorizontalRailConflict(design, target.type, y)) {
    bumpReject("mgl.insert.reject.pin_access");
    return;
  }

  // Candidate seeds: the GP x plus the gap edges of every cell crossing the
  // row span, plus segment boundaries. Cell edges come from the row
  // snapshots, not the ordered maps.
  auto& seeds = seedScratch_;
  seeds.clear();
  const auto gpSeed = static_cast<std::int64_t>(std::lround(target.gpX));
  seeds.push_back(std::clamp(gpSeed, window.xlo, window.xhi - type.width));
  for (std::int64_t r = y; r < y + type.height; ++r) {
    for (const auto& seg : segments_.row(r)) {
      if (seg.fence != target.fence) continue;
      if (seg.x.hi <= window.xlo || seg.x.lo >= window.xhi) continue;
      seeds.push_back(std::max(seg.x.lo, window.xlo));
      seeds.push_back(std::min(seg.x.hi, window.xhi) - type.width);
    }
    const RowSnap& snap = rowSnap(r, window);
    const auto n = static_cast<std::int32_t>(snap.x.size());
    for (std::int32_t i = snap.winBegin; i < n && snap.x[i] < window.xhi;
         ++i) {
      seeds.push_back(snap.x[i] + snap.width[i]);  // right after the cell
      seeds.push_back(snap.x[i] - type.width);     // right before the cell
    }
  }
  for (auto& seed : seeds) {
    seed = std::clamp(seed, window.xlo, window.xhi - type.width);
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  if (static_cast<int>(seeds.size()) > config_.maxSeedsPerRow) {
    // Keep the seeds nearest the GP x; ties resolve left-first so the kept
    // set never depends on library internals.
    std::nth_element(
        seeds.begin(), seeds.begin() + config_.maxSeedsPerRow, seeds.end(),
        [&](std::int64_t a, std::int64_t b) {
          const std::int64_t da = std::abs(a - gpSeed);
          const std::int64_t db = std::abs(b - gpSeed);
          if (da != db) return da < db;
          return a < b;
        });
    seeds.resize(static_cast<std::size_t>(config_.maxSeedsPerRow));
    std::sort(seeds.begin(), seeds.end());
  }

  // Per-seed partition contexts. Adjacent seeds that induce the same
  // (segment, boundary) on every row of the span yield bit-identical
  // evaluations, so only the first of each run is evaluated; skipped
  // successes still count toward the window's candidate total (dupSkipped_)
  // so the expansion early-break sees the same numbers as before.
  const int h = type.height;
  auto& ctx = rowCtxScratch_;
  auto& prev = prevRowCtxScratch_;
  prev.clear();
  bool prevOk = false;
  for (const auto seed : seeds) {
    const double seedCenter = static_cast<double>(seed) + type.width * 0.5;
    ctx.clear();
    for (std::int64_t r = y; r < y + h; ++r) {
      RowCtx rc;
      rc.snap = &rowSnap(r, window);
      rc.seg = segments_.find(r, seed);
      rc.boundary = static_cast<std::int32_t>(
          std::upper_bound(rc.snap->center.begin(), rc.snap->center.end(),
                           seedCenter) -
          rc.snap->center.begin());
      ctx.push_back(rc);
    }
    bool same = prev.size() == ctx.size();
    for (std::size_t i = 0; same && i < ctx.size(); ++i) {
      same = ctx[i].seg == prev[i].seg && ctx[i].boundary == prev[i].boundary;
    }
    if (same) {
      if (prevOk) ++dupSkipped_;
      continue;
    }
    Candidate cand;
    prevOk = evaluateSeed(c, window, y, seed, cand);
    if (prevOk) out.push_back(cand);
    std::swap(ctx, prev);
  }
}

bool InsertionSearcher::tryInsert(CellId c, const Rect& window) {
  const auto& design = state_.design();
  const auto& target = design.cells[c];
  MCLG_ASSERT(!target.placed && !target.fixed, "target must be unplaced");
  bumpReject("mgl.insert.attempted");
  const int h = design.heightOf(c);
  beginWindow();

  auto& candidates = candidateScratch_;
  candidates.clear();
  const std::int64_t yLo = std::max<std::int64_t>(0, window.ylo);
  const std::int64_t yHi = std::min(window.yhi - h, design.numRows - h);
  // Visit rows by distance from the GP row. Large (expanded) windows can
  // cover hundreds of rows; distant rows pay their y-distance in every
  // candidate, so once enough candidates exist AND the y-cost of the next
  // row alone exceeds the best found cost (plus a margin for the rare
  // negative pull of type C/D curves), further rows cannot win. Skipped
  // duplicate seeds count toward the candidate total.
  const auto gpRow = static_cast<std::int64_t>(std::lround(target.gpY));
  const double wT =
      config_.contestWeights ? design.metricWeight(c) : 1.0;
  double bestCost = std::numeric_limits<double>::infinity();
  for (std::int64_t dy = 0;; ++dy) {
    const std::int64_t below = gpRow - dy;
    const std::int64_t above = gpRow + dy;
    if (below < yLo && above > yHi) break;
    const std::size_t sizeBefore = candidates.size();
    if (below >= yLo && below <= yHi) evaluateRow(c, window, below, candidates);
    if (dy > 0 && above >= yLo && above <= yHi) {
      evaluateRow(c, window, above, candidates);
    }
    for (std::size_t i = sizeBefore; i < candidates.size(); ++i) {
      bestCost = std::min(bestCost, candidates[i].cost);
    }
    if (static_cast<int>(candidates.size() + dupSkipped_) >=
            config_.maxCommitAttempts &&
        wT * static_cast<double>(dy + 1) > bestCost + 2.0 * wT) {
      break;
    }
  }
  if (obs::metricsEnabled()) {
    obs::counter("mgl.insert.seed_dedup").add(dupSkipped_);
    obs::counter("mgl.curve_cache.hit").add(curveHits_);
    obs::counter("mgl.curve_cache.miss").add(curveMisses_);
    obs::histogram("mgl.window.candidates")
        .observe(static_cast<double>(candidates.size() + dupSkipped_));
  }
  curveHits_ = 0;
  curveMisses_ = 0;
  if (candidates.empty()) {
    bumpReject("mgl.insert.window_failed");
    return false;
  }

  // Total-order comparator (cost, |y - gpY|, y, x, seed): every key chain is
  // unique, so the selected order never depends on the sort implementation.
  const double gpY = target.gpY;
  const auto cheaper = [gpY](const Candidate& a, const Candidate& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    const double dya = std::abs(static_cast<double>(a.y) - gpY);
    const double dyb = std::abs(static_cast<double>(b.y) - gpY);
    if (dya != dyb) return dya < dyb;
    if (a.y != b.y) return a.y < b.y;
    if (a.x != b.x) return a.x < b.x;
    return a.seed < b.seed;
  };
  // Lazy bounded selection: most windows commit the first candidate, so
  // sorting the whole vector is wasted work. partial_sort the cheapest
  // prefix and extend it (doubling) only when the commit loop outruns it;
  // the visited sequence is identical to a full sort.
  std::size_t sorted = 0;
  std::size_t chunk = 16;
  auto ensureSorted = [&](std::size_t upTo) {
    upTo = std::min(upTo, candidates.size());
    if (upTo <= sorted) return;
    std::partial_sort(candidates.begin() + static_cast<std::ptrdiff_t>(sorted),
                      candidates.begin() + static_cast<std::ptrdiff_t>(upTo),
                      candidates.end(), cheaper);
    sorted = upTo;
  };
  // Attempt commits in cost order, skipping duplicate (x, y) targets
  // (different partitions can coincide on the same position).
  auto& seen = seenScratch_;
  seen.clear();
  int attempts = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i >= sorted) {
      ensureSorted(i + chunk);
      chunk *= 2;
    }
    const Candidate& cand = candidates[i];
    if (cand.cost >= config_.costCeiling) break;  // sorted ascending
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cand.x)) << 32) |
        static_cast<std::uint32_t>(cand.y);
    if (!seen.insert(key).second) continue;
    if (commit(c, cand, window)) {
      lastCommit_.x = cand.x;
      lastCommit_.y = cand.y;
      lastCommit_.estimatedCost = cand.cost;
      bumpReject("mgl.insert.committed");
      return true;
    }
    if (++attempts >= config_.maxCommitAttempts) break;
  }
  bumpReject("mgl.insert.window_failed");
  return false;
}

bool InsertionSearcher::commit(CellId c, const Candidate& cand,
                               const Rect& window) {
  auto& design = state_.design();
  const auto& type = design.typeOf(c);
  const int h = type.height;
  const int w = type.width;
  const double seedCenter = static_cast<double>(cand.seed) + w * 0.5;
  const std::int64_t x = cand.x;
  const std::int64_t y = cand.y;

  auto& newX = newXScratch_;
  newX.clear();
  auto curX = [&](CellId j) {
    auto it = newX.find(j);
    return it != newX.end() ? it->second : design.cells[j].x;
  };

  // Two vector-backed FIFO work lists (head index instead of pop_front).
  auto& leftQ = queueScratch_;
  auto& rightQ = rightQueueScratch_;
  leftQ.clear();
  rightQ.clear();

  // Seed the push requirements from the target's row span.
  for (std::int64_t r = y; r < y + h; ++r) {
    const auto& rowMap = state_.rowCells(r);
    // Immediate left neighbor: rightmost cell with center <= seedCenter.
    for (auto it = rowMap.lower_bound(cand.seed + w + 1); it != rowMap.begin();) {
      --it;
      const CellId j = it->second;
      const double center =
          static_cast<double>(it->first) + design.widthOf(j) * 0.5;
      if (center <= seedCenter) {
        const int sp = spacingBetween(j, c);
        leftQ.push_back({j, x - sp - design.widthOf(j)});
        break;
      }
    }
    // Immediate right neighbor: leftmost cell with center > seedCenter
    // (such a cell has x > seedCenter - maxCellWidth/2).
    for (auto it = rowMap.lower_bound(cand.seed - design.maxCellWidth());
         it != rowMap.end(); ++it) {
      const CellId j = it->second;
      const double center =
          static_cast<double>(it->first) + design.widthOf(j) * 0.5;
      if (center > seedCenter) {
        const int sp = spacingBetween(c, j);
        rightQ.push_back({j, x + w + sp});
        break;
      }
    }
  }

  auto& leftShifts = leftShiftScratch_;
  auto& rightShifts = rightShiftScratch_;
  leftShifts.clear();
  rightShifts.clear();

  // Left pushes: bound is the max allowed left edge.
  for (std::size_t head = 0; head < leftQ.size();) {
    const PushReq req = leftQ[head++];
    if (curX(req.cell) <= req.bound) continue;
    if (!isLocal(req.cell, window)) return false;
    const auto& cell = design.cells[req.cell];
    const int hj = design.heightOf(req.cell);
    const int wj = design.widthOf(req.cell);
    const Interval range =
        segments_.slideRange(cell.y, hj, cell.x, wj, cell.fence);
    if (req.bound < range.lo) return false;
    newX[req.cell] = req.bound;
    for (std::int64_t r = cell.y; r < cell.y + hj; ++r) {
      const auto& rowMap = state_.rowCells(r);
      auto it = rowMap.find(cell.x);
      MCLG_ASSERT(it != rowMap.end() && it->second == req.cell,
                  "occupancy out of sync in commit");
      if (it == rowMap.begin()) continue;
      --it;
      const CellId n = it->second;
      const int sp = spacingBetween(n, req.cell);
      leftQ.push_back({n, req.bound - sp - design.widthOf(n)});
    }
  }
  // Right pushes: bound is the min allowed left edge.
  for (std::size_t head = 0; head < rightQ.size();) {
    const PushReq req = rightQ[head++];
    if (curX(req.cell) >= req.bound) continue;
    if (!isLocal(req.cell, window)) return false;
    const auto& cell = design.cells[req.cell];
    const int hj = design.heightOf(req.cell);
    const int wj = design.widthOf(req.cell);
    const Interval range =
        segments_.slideRange(cell.y, hj, cell.x, wj, cell.fence);
    if (req.bound + wj > range.hi) return false;
    newX[req.cell] = req.bound;
    for (std::int64_t r = cell.y; r < cell.y + hj; ++r) {
      const auto& rowMap = state_.rowCells(r);
      auto it = rowMap.find(cell.x);
      MCLG_ASSERT(it != rowMap.end() && it->second == req.cell,
                  "occupancy out of sync in commit");
      ++it;
      if (it == rowMap.end()) continue;
      const CellId n = it->second;
      const int sp = spacingBetween(req.cell, n);
      rightQ.push_back({n, req.bound + wj + sp});
    }
  }

  // Split the accepted moves by direction; (position, cell id) keys make
  // the application order a total order, independent of map iteration.
  for (const auto& [j, nx] : newX) {
    if (nx < design.cells[j].x) {
      leftShifts.emplace_back(j, nx);
    } else if (nx > design.cells[j].x) {
      rightShifts.emplace_back(j, nx);
    }
  }
  std::sort(leftShifts.begin(), leftShifts.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  std::sort(rightShifts.begin(), rightShifts.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  // Exactly measured weighted regional delta, and the undo record.
  const double swf = design.siteWidthFactor;
  auto weightOf = [&](CellId j) {
    return config_.contestWeights ? design.metricWeight(j) : 1.0;
  };
  const auto& target = design.cells[c];
  double measured = weightOf(c) *
                    (swf * std::abs(static_cast<double>(x) - target.gpX) +
                     std::abs(static_cast<double>(y) - target.gpY));
  lastCommit_.shifts.clear();
  auto applyShift = [&](CellId j, std::int64_t nx) {
    const auto& cell = design.cells[j];
    const double gp = config_.gpObjective ? cell.gpX
                                          : static_cast<double>(cell.x);
    measured += weightOf(j) * swf *
                (std::abs(static_cast<double>(nx) - gp) -
                 std::abs(static_cast<double>(cell.x) - gp));
    lastCommit_.shifts.emplace_back(j, cell.x);
    state_.shiftX(j, nx);
  };
  for (const auto& [j, nx] : leftShifts) applyShift(j, nx);
  for (const auto& [j, nx] : rightShifts) applyShift(j, nx);
  state_.place(c, x, y);
  lastCommit_.measuredCost = measured;
  return true;
}

void InsertionSearcher::undoLastCommit(CellId c) {
  state_.remove(c);
  // Restore in reverse application order so transient key collisions in the
  // per-row maps cannot occur.
  for (auto it = lastCommit_.shifts.rbegin(); it != lastCommit_.shifts.rend();
       ++it) {
    state_.shiftX(it->first, it->second);
  }
  lastCommit_ = {};
}

}  // namespace mclg
