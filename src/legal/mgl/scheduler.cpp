#include "legal/mgl/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "obs/obs.hpp"
#include "util/executor/executor.hpp"

namespace mclg {

MglStats MglScheduler::run() {
  auto& state = legalizer_.state_;
  auto& design = state.design();
  const auto& config = legalizer_.config_;

  struct Pending {
    CellId cell;
    int level = 0;
  };
  std::deque<Pending> queue;
  for (const CellId c : legalizer_.orderCells()) queue.push_back({c, 0});

  MglStats stats;
  // Batches borrow lanes from the shared executor (config.executor) instead
  // of owning a pool; numThreads_ stays the lane budget per batch.

  // One searcher per batch slot, reused across batches: the searchers carry
  // window-epoch caches and scratch arenas that are expensive to rebuild.
  // A slot runs at most one task per batch, so this stays data-race-free.
  std::vector<std::unique_ptr<InsertionSearcher>> searchers(
      static_cast<std::size_t>(batchCap_));

  std::vector<Pending> batch;
  std::vector<Rect> windows;
  std::vector<char> success;
  std::vector<Pending> skipped;
  while (!queue.empty()) {
    // Safe cancellation point: no batch in flight, state consistent.
    if (config.checkpoint) config.checkpoint();
    // Assemble a batch of row-disjoint windows, preserving queue order.
    batch.clear();
    windows.clear();
    skipped.clear();
    while (!queue.empty() && static_cast<int>(batch.size()) < batchCap_) {
      const Pending p = queue.front();
      queue.pop_front();
      const auto& cell = design.cells[p.cell];
      const Rect window =
          makeWindow(design, cell.gpX, cell.gpY, design.typeOf(p.cell),
                     config.window, p.level);
      bool disjoint = true;
      for (const auto& other : windows) {
        if (window.ySpan().overlaps(other.ySpan())) {
          disjoint = false;
          break;
        }
      }
      if (disjoint) {
        batch.push_back(p);
        windows.push_back(window);
      } else {
        skipped.push_back(p);
      }
    }
    // Skipped cells go back to the *front*, keeping global order stable.
    for (auto it = skipped.rbegin(); it != skipped.rend(); ++it) {
      queue.push_front(*it);
    }

    if (batch.empty()) break;  // defensive; cannot happen with batchCap >= 1

    // Process the batch in parallel; windows are row-disjoint so commits
    // cannot touch the same occupancy maps.
    success.assign(batch.size(), 0);
    MCLG_TRACE_SCOPE("mgl/batch",
                     {{"windows", static_cast<double>(batch.size())}});
    config.executor.parallelForBatch(
        static_cast<int>(batch.size()), numThreads_, [&](int i) {
          // Recorded from the worker thread so the trace shows the window
          // tasks on their own thread tracks.
          MCLG_TRACE_SCOPE(
              "mgl/window",
              {{"cell", static_cast<double>(
                    batch[static_cast<std::size_t>(i)].cell)},
               {"level", static_cast<double>(
                    batch[static_cast<std::size_t>(i)].level)}});
          if (config.taskHook) config.taskHook(i);
          auto& searcher = searchers[static_cast<std::size_t>(i)];
          if (!searcher) {
            searcher = std::make_unique<InsertionSearcher>(
                state, legalizer_.segments_, config.insertion);
          }
          success[static_cast<std::size_t>(i)] =
              searcher->tryInsert(batch[static_cast<std::size_t>(i)].cell,
                                  windows[static_cast<std::size_t>(i)])
                  ? 1
                  : 0;
        });

    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (success[i] != 0) {
        ++stats.placed;
        continue;
      }
      ++stats.windowExpansions;
      Pending p = batch[i];
      ++p.level;
      const Rect fullCore{0, 0, design.numSitesX, design.numRows};
      if (p.level <= config.window.maxExpansions &&
          windows[i] != fullCore) {
        // Expanded windows wait at the back (the paper's L_w list).
        queue.push_back(p);
      } else if (legalizer_.placeFallback(p.cell)) {
        ++stats.placed;
        ++stats.fallbackPlaced;
        if (obs::metricsEnabled()) obs::counter("mgl.fallback_placed").add();
      } else {
        ++stats.failed;
      }
    }
  }
  return stats;
}

}  // namespace mclg
