// Insertion-point search and commit for one target cell in one window —
// the inner loop of MGL (paper §3.1, Algorithm 1) and, in current-location
// mode, of the MLL baseline [12].
//
// For every parity-legal, rail-clean bottom row of the window, candidate
// insertion points are seeded from the gap edges of the cells crossing the
// target's row span. Each insertion point fixes, per row, which cells stay
// left and which go right of the target; the cells that can move (the
// *local* cells, fully inside the window) contribute displacement curves
// (geometry/disp_curve.hpp) and the sum is minimized over the feasible
// x-interval. Routability (§3.4) enters as: horizontal-rail conflicts kill
// whole rows, vertical-rail conflicts shift the x optimum to the nearest
// clean site, IO-pin overlaps add a cost penalty.
//
// Committing re-simulates the pushes exactly (with full multi-row chain
// propagation) before mutating the placement, so a candidate whose
// estimated chains interact across rows is safely discarded instead of
// producing an illegal placement.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "geometry/disp_curve.hpp"
#include "geometry/rect.hpp"

namespace mclg {

struct InsertionConfig {
  /// true: displacement measured from GP positions (MGL); false: from the
  /// cells' current positions (the MLL baseline's objective).
  bool gpObjective = true;
  /// true: weight each cell by Eq. 2 (contest metric); false: unit weights
  /// (total-displacement objective, Table 2 mode).
  bool contestWeights = true;
  /// Enable §3.4 routability handling (rails, IO pins).
  bool routability = true;
  /// Honor the edge-spacing table between abutting cells. The champion
  /// proxy baseline disables this (and pays the Table 1 violations).
  bool respectEdgeSpacing = true;
  /// Cost penalty per IO-pin violation at the chosen position (row heights).
  double ioPenalty = 2.0;
  /// Cap on candidate seeds per row span (nearest to the GP x are kept).
  int maxSeedsPerRow = 32;
  /// How many best-cost insertion points to attempt committing before
  /// giving up on the window. Commits are much cheaper than evaluations, so
  /// a high cap pays for itself: chains that interact across rows make
  /// individual commits fail, and falling through to window expansion is
  /// far more expensive than trying the next candidate.
  int maxCommitAttempts = 256;
  /// Only commit candidates with estimated cost strictly below this bound
  /// (weighted regional displacement delta). The rip-up refinement uses it
  /// to re-insert a cell only where it is a net win.
  double costCeiling = std::numeric_limits<double>::infinity();
};

class InsertionSearcher {
 public:
  InsertionSearcher(PlacementState& state, const SegmentMap& segments,
                    const InsertionConfig& config)
      : state_(state), segments_(segments), config_(config) {}

  /// Search the window for the cheapest legal insertion of cell c and commit
  /// it (placing c and shifting local cells). Returns false if no candidate
  /// in this window could be committed.
  bool tryInsert(CellId c, const Rect& window);

  /// Diagnostics of the last successful commit: position, the curve
  /// model's estimated cost, the exactly measured cost (both are weighted
  /// regional displacement deltas; they agree unless multi-row chains
  /// interacted), and the applied shifts (enough to undo the commit).
  struct CommitInfo {
    std::int64_t x = 0;
    std::int64_t y = 0;
    double estimatedCost = 0.0;
    double measuredCost = 0.0;
    std::vector<std::pair<CellId, std::int64_t>> shifts;  // (cell, oldX)
  };
  const CommitInfo& lastCommit() const { return lastCommit_; }

  /// Revert the last successful commit (remove the target, restore every
  /// shifted cell). Must be called before any further mutation.
  void undoLastCommit(CellId c);

 private:
  struct Candidate {
    std::int64_t x = 0;  // target left edge
    std::int64_t y = 0;  // target bottom row
    double cost = 0.0;
    std::int64_t seed = 0;  // partition seed (for the commit re-derivation)
  };

  /// Evaluate all insertion points with bottom row y; append candidates.
  void evaluateRow(CellId c, const Rect& window, std::int64_t y,
                   std::vector<Candidate>& out) const;

  /// Evaluate the single insertion point defined by `seed` on row span
  /// [y, y+h). Returns false if infeasible.
  bool evaluateSeed(CellId c, const Rect& window, std::int64_t y,
                    std::int64_t seed, Candidate& out) const;

  /// Exact push simulation + mutation. Returns false (placement untouched)
  /// if some required push hits a non-local cell or a segment boundary.
  bool commit(CellId c, const Candidate& cand, const Rect& window);

  bool isLocal(CellId c, const Rect& window) const;

  int edgeSpacing(int rightEdgeClass, int leftEdgeClass) const;
  int spacingBetween(CellId left, CellId right) const;

  PlacementState& state_;
  const SegmentMap& segments_;
  InsertionConfig config_;
  CommitInfo lastCommit_;

  // Reused scratch buffers — the search runs millions of evaluations and
  // commit attempts, and per-call container construction dominated the
  // profile. A searcher is therefore NOT thread-safe; the scheduler uses
  // one searcher per task.
  struct ChainEntry {
    CellId cell = kInvalidCell;
    std::int64_t off = 0;
    bool left = false;
  };
  struct PushReq {
    CellId cell;
    std::int64_t bound;
  };
  mutable std::vector<ChainEntry> entryScratch_;
  mutable std::unordered_map<CellId, std::size_t> entryIndexScratch_;
  mutable CurveSum sumScratch_;
  mutable std::vector<std::int64_t> seedScratch_;
  std::vector<Candidate> candidateScratch_;
  std::unordered_map<CellId, std::int64_t> newXScratch_;
  std::vector<PushReq> queueScratch_;
  std::vector<std::pair<CellId, std::int64_t>> leftShiftScratch_;
  std::vector<std::pair<CellId, std::int64_t>> rightShiftScratch_;
};

}  // namespace mclg
