// Insertion-point search and commit for one target cell in one window —
// the inner loop of MGL (paper §3.1, Algorithm 1) and, in current-location
// mode, of the MLL baseline [12].
//
// For every parity-legal, rail-clean bottom row of the window, candidate
// insertion points are seeded from the gap edges of the cells crossing the
// target's row span. Each insertion point fixes, per row, which cells stay
// left and which go right of the target; the cells that can move (the
// *local* cells, fully inside the window) contribute displacement curves
// (geometry/disp_curve.hpp) and the sum is minimized over the feasible
// x-interval. Routability (§3.4) enters as: horizontal-rail conflicts kill
// whole rows, vertical-rail conflicts shift the x optimum to the nearest
// clean site, IO-pin overlaps add a cost penalty.
//
// Committing re-simulates the pushes exactly (with full multi-row chain
// propagation) before mutating the placement, so a candidate whose
// estimated chains interact across rows is safely discarded instead of
// producing an illegal placement.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "geometry/disp_curve.hpp"
#include "geometry/rect.hpp"

namespace mclg {

struct InsertionConfig {
  /// true: displacement measured from GP positions (MGL); false: from the
  /// cells' current positions (the MLL baseline's objective).
  bool gpObjective = true;
  /// true: weight each cell by Eq. 2 (contest metric); false: unit weights
  /// (total-displacement objective, Table 2 mode).
  bool contestWeights = true;
  /// Enable §3.4 routability handling (rails, IO pins).
  bool routability = true;
  /// Honor the edge-spacing table between abutting cells. The champion
  /// proxy baseline disables this (and pays the Table 1 violations).
  bool respectEdgeSpacing = true;
  /// Cost penalty per IO-pin violation at the chosen position (row heights).
  double ioPenalty = 2.0;
  /// Cap on candidate seeds per row span (nearest to the GP x are kept).
  int maxSeedsPerRow = 32;
  /// How many best-cost insertion points to attempt committing before
  /// giving up on the window. Commits are much cheaper than evaluations, so
  /// a high cap pays for itself: chains that interact across rows make
  /// individual commits fail, and falling through to window expansion is
  /// far more expensive than trying the next candidate.
  int maxCommitAttempts = 256;
  /// Only commit candidates with estimated cost strictly below this bound
  /// (weighted regional displacement delta). The rip-up refinement uses it
  /// to re-insert a cell only where it is a net win.
  double costCeiling = std::numeric_limits<double>::infinity();
};

class InsertionSearcher {
 public:
  InsertionSearcher(PlacementState& state, const SegmentMap& segments,
                    const InsertionConfig& config)
      : state_(state), segments_(segments), config_(config) {}

  /// Search the window for the cheapest legal insertion of cell c and commit
  /// it (placing c and shifting local cells). Returns false if no candidate
  /// in this window could be committed.
  bool tryInsert(CellId c, const Rect& window);

  /// Adjust the commit gate between searches; lets callers that vary the
  /// ceiling per cell (rip-up refinement) reuse one searcher and its caches.
  void setCostCeiling(double ceiling) { config_.costCeiling = ceiling; }

  /// Diagnostics of the last successful commit: position, the curve
  /// model's estimated cost, the exactly measured cost (both are weighted
  /// regional displacement deltas; they agree unless multi-row chains
  /// interacted), and the applied shifts (enough to undo the commit).
  struct CommitInfo {
    std::int64_t x = 0;
    std::int64_t y = 0;
    double estimatedCost = 0.0;
    double measuredCost = 0.0;
    std::vector<std::pair<CellId, std::int64_t>> shifts;  // (cell, oldX)
  };
  const CommitInfo& lastCommit() const { return lastCommit_; }

  /// Revert the last successful commit (remove the target, restore every
  /// shifted cell). Must be called before any further mutation.
  void undoLastCommit(CellId c);

 private:
  struct Candidate {
    std::int64_t x = 0;  // target left edge
    std::int64_t y = 0;  // target bottom row
    double cost = 0.0;
    std::int64_t seed = 0;  // partition seed (for the commit re-derivation)
  };

  /// Evaluate all insertion points with bottom row y; append candidates.
  void evaluateRow(CellId c, const Rect& window, std::int64_t y,
                   std::vector<Candidate>& out) const;

  /// Evaluate the single insertion point defined by `seed` on row span
  /// [y, y+h). Returns false if infeasible.
  bool evaluateSeed(CellId c, const Rect& window, std::int64_t y,
                    std::int64_t seed, Candidate& out) const;

  /// Exact push simulation + mutation. Returns false (placement untouched)
  /// if some required push hits a non-local cell or a segment boundary.
  bool commit(CellId c, const Candidate& cand, const Rect& window);

  bool isLocal(CellId c, const Rect& window) const;

  int edgeSpacing(int rightEdgeClass, int leftEdgeClass) const;
  int spacingBetween(CellId left, CellId right) const;

  // --- Window-epoch caches -------------------------------------------------
  //
  // One search window is fixed for the whole of a tryInsert call and the
  // placement does not mutate until the final commit, so everything derived
  // from (occupancy, window) can be computed once per (row, window) and
  // reused by every seed evaluation. The epoch counter is bumped at the top
  // of tryInsert; stale cache slots are detected by epoch mismatch, never
  // cleared eagerly.

  /// Flattened occupancy of one row, restricted to the cells a chain walk
  /// can reach: everything with x in [window.xlo, window.xhi) plus at most
  /// one wall candidate on each side (cells outside the window are never
  /// local, so chains stop at the first one).
  struct RowSnap {
    std::uint64_t epoch = 0;
    std::int32_t winBegin = 0;  // index of first cell with x >= window.xlo
    std::vector<std::int64_t> x;       // left edges, ascending
    std::vector<double> center;        // x + width/2, ascending
    std::vector<CellId> cell;
    std::vector<std::int32_t> width;
    std::vector<unsigned char> local;  // isLocal(cell, window)
  };

  /// Per-(row, seed) context: the segment under the seed and the partition
  /// boundary (first snapshot index whose center exceeds the seed center).
  /// Two seeds with identical contexts on every row of the span produce
  /// bit-identical candidates, so evaluateRow skips the duplicates.
  struct RowCtx {
    const RowSnap* snap = nullptr;
    const Segment* seg = nullptr;
    std::int32_t boundary = 0;
  };

  /// Cached displacement-curve parameters of one local cell (Fig. 4 inputs);
  /// valid for one window epoch.
  struct CellCurveData {
    std::uint64_t epoch = 0;
    double cur = 0.0;    // current x
    double gp = 0.0;     // objective anchor (gpX, or cur in MLL mode)
    double scale = 0.0;  // siteWidthFactor * metric weight
  };

  /// Build (or fetch) the snapshot of row r for the current epoch.
  const RowSnap& rowSnap(std::int64_t r, const Rect& window) const;

  /// Fetch the curve parameters of cell j, filling the arena slot on miss.
  const CellCurveData& curveData(CellId j) const;

  /// Bump the epoch and lazily size the arenas; called on tryInsert entry.
  void beginWindow();

  PlacementState& state_;
  const SegmentMap& segments_;
  InsertionConfig config_;
  CommitInfo lastCommit_;

  mutable std::uint64_t windowEpoch_ = 0;
  mutable std::vector<RowSnap> rowSnaps_;        // indexed by row
  mutable std::vector<CellCurveData> cellCurve_;  // indexed by cell
  mutable std::vector<RowCtx> rowCtxScratch_;     // current seed's contexts
  mutable std::vector<RowCtx> prevRowCtxScratch_;  // previous seed's contexts
  // verticalRailForbiddenX cache, keyed by (epoch, row).
  mutable std::vector<Interval> forbiddenScratch_;
  mutable std::uint64_t forbiddenEpoch_ = 0;
  mutable std::int64_t forbiddenY_ = 0;
  // Aggregated locally, flushed to the metrics registry once per window.
  mutable std::size_t dupSkipped_ = 0;
  mutable std::size_t curveHits_ = 0;
  mutable std::size_t curveMisses_ = 0;

  // Reused scratch buffers — the search runs millions of evaluations and
  // commit attempts, and per-call container construction dominated the
  // profile. A searcher is therefore NOT thread-safe; the scheduler uses
  // one searcher per task.
  struct ChainEntry {
    CellId cell = kInvalidCell;
    std::int64_t off = 0;
    bool left = false;
  };
  struct PushReq {
    CellId cell;
    std::int64_t bound;
  };
  mutable std::vector<ChainEntry> entryScratch_;
  mutable std::unordered_map<CellId, std::size_t> entryIndexScratch_;
  mutable CurveSum sumScratch_;
  mutable std::vector<std::int64_t> seedScratch_;
  std::vector<Candidate> candidateScratch_;
  std::unordered_set<std::uint64_t> seenScratch_;
  std::unordered_map<CellId, std::int64_t> newXScratch_;
  std::vector<PushReq> queueScratch_;
  std::vector<PushReq> rightQueueScratch_;
  std::vector<std::pair<CellId, std::int64_t>> leftShiftScratch_;
  std::vector<std::pair<CellId, std::int64_t>> rightShiftScratch_;
};

}  // namespace mclg
