#include "legal/mgl/mgl_legalizer.hpp"

#include <algorithm>
#include <cmath>

#include "db/free_span.hpp"
#include "legal/mgl/scheduler.hpp"
#include "obs/obs.hpp"
#include "util/logging.hpp"

namespace mclg {

std::vector<CellId> MglLegalizer::orderCells() const {
  const auto& design = state_.design();
  std::vector<CellId> order;
  order.reserve(static_cast<std::size_t>(design.numCells()));
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (!cell.fixed && !cell.placed) order.push_back(c);
  }
  std::sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    const auto& ta = design.typeOf(a);
    const auto& tb = design.typeOf(b);
    if (ta.height != tb.height) return ta.height > tb.height;
    if (ta.width != tb.width) return ta.width > tb.width;
    const auto& ca = design.cells[a];
    const auto& cb = design.cells[b];
    if (ca.gpX != cb.gpX) return ca.gpX < cb.gpX;
    return a < b;
  });
  return order;
}

bool MglLegalizer::placeFallback(CellId c) {
  // Last resort, gap-first (full-core push searches are far too expensive
  // on dense designs). (1) Rank the existing free gaps by displacement;
  // (2) try a spacing-aware local insertion around each of the best few;
  // (3) drop into the best gap directly, paying an edge-spacing *soft*
  // violation if needed (§2); (4) only when no gap exists at all, run one
  // routability-relaxed full-core push insertion.
  auto& design = state_.design();
  const auto& cell = design.cells[c];
  const int h = design.heightOf(c);
  const int w = design.widthOf(c);
  const double swf = design.siteWidthFactor;

  struct Gap {
    double cost;
    std::int64_t x, y;
  };
  std::vector<Gap> gaps;
  const auto gy = static_cast<std::int64_t>(std::lround(cell.gpY));
  double bestCost = std::numeric_limits<double>::infinity();
  for (std::int64_t dy = 0; dy < design.numRows; ++dy) {
    // Gaps further away in y than the current best + slack cannot improve.
    if (!gaps.empty() && static_cast<double>(dy) - 1.0 > bestCost + 4.0) break;
    for (const std::int64_t y : {gy - dy, gy + dy}) {
      if (dy == 0 && y != gy) continue;
      if (y < 0 || y + h > design.numRows) continue;
      if (!design.parityOk(cell.type, y)) continue;
      const auto free = freeIntervalsForSpan(state_, segments_, y, h,
                                             cell.fence,
                                             {0, design.numSitesX});
      for (const auto& iv : free) {
        if (iv.length() < w) continue;
        const std::int64_t x = std::clamp(
            static_cast<std::int64_t>(std::lround(cell.gpX)), iv.lo,
            iv.hi - w);
        const double cost = swf * std::abs(static_cast<double>(x) - cell.gpX) +
                            std::abs(static_cast<double>(y) - cell.gpY);
        gaps.push_back({cost, x, y});
        bestCost = std::min(bestCost, cost);
      }
    }
  }
  std::sort(gaps.begin(), gaps.end(), [](const Gap& a, const Gap& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    if (a.y != b.y) return a.y < b.y;
    return a.x < b.x;
  });

  if (!gaps.empty() && config_.insertion.respectEdgeSpacing) {
    InsertionConfig direct = config_.insertion;
    direct.routability = false;
    InsertionSearcher searcher(state_, segments_, direct);
    const int tries = std::min<std::size_t>(gaps.size(), 5);
    for (int g = 0; g < tries; ++g) {
      const Rect around =
          Rect{gaps[static_cast<std::size_t>(g)].x - 2 * design.maxCellWidth(),
               gaps[static_cast<std::size_t>(g)].y - h,
               gaps[static_cast<std::size_t>(g)].x + w +
                   2 * design.maxCellWidth(),
               gaps[static_cast<std::size_t>(g)].y + 2 * h}
              .intersect({0, 0, design.numSitesX, design.numRows});
      if (searcher.tryInsert(c, around)) return true;
    }
  }
  if (!gaps.empty()) {
    state_.place(c, gaps[0].x, gaps[0].y);
    return true;
  }

  // No free gap anywhere: push-based full-core insertion (rare).
  InsertionConfig relaxed = config_.insertion;
  relaxed.routability = false;
  relaxed.maxSeedsPerRow = std::max(relaxed.maxSeedsPerRow, 64);
  InsertionSearcher searcher(state_, segments_, relaxed);
  const Rect fullCore{0, 0, state_.design().numSitesX,
                      state_.design().numRows};
  return searcher.tryInsert(c, fullCore);
}

MglStats MglLegalizer::run() {
  auto& design = state_.design();
  // Pre-warm the lazily cached design statistics so parallel readers never
  // race on them.
  design.maxCellHeight();
  design.cellsPerHeight();
  design.maxCellWidth();
  design.maxIoPinWidthFine();

  if (config_.numThreads > 1) {
    MglScheduler scheduler(*this, config_.numThreads, config_.batchCap);
    return scheduler.run();
  }

  MglStats stats;
  const Rect fullCore{0, 0, design.numSitesX, design.numRows};
  InsertionSearcher searcher(state_, segments_, config_.insertion);
  int taskIndex = 0;
  for (const CellId c : orderCells()) {
    // Same cancellation/fault-injection points as the parallel scheduler.
    if (config_.checkpoint) config_.checkpoint();
    if (config_.taskHook) config_.taskHook(taskIndex++);
    const auto& cell = design.cells[c];
    bool done = false;
    Rect prevWindow{0, 0, 0, 0};
    for (int level = 0; level <= config_.window.maxExpansions; ++level) {
      const Rect window = makeWindow(design, cell.gpX, cell.gpY,
                                     design.typeOf(c), config_.window, level);
      if (window == prevWindow) continue;  // clamped at the core boundary
      prevWindow = window;
      MCLG_TRACE_SCOPE("mgl/window", {{"cell", static_cast<double>(c)},
                                      {"level", static_cast<double>(level)}});
      if (searcher.tryInsert(c, window)) {
        done = true;
        break;
      }
      ++stats.windowExpansions;
      if (window == fullCore) break;  // nothing bigger to try
    }
    if (done) {
      ++stats.placed;
    } else if (placeFallback(c)) {
      ++stats.placed;
      ++stats.fallbackPlaced;
      if (obs::metricsEnabled()) obs::counter("mgl.fallback_placed").add();
    } else {
      ++stats.failed;
      MCLG_LOG_WARN() << "MGL: no room for cell " << c << " ("
                      << design.typeOf(c).name << ")";
    }
  }
  return stats;
}

}  // namespace mclg
