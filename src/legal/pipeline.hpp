// The full legalization flow of the paper (Fig. 2):
//
//   GP solution -> MGL (§3.1) -> max-displacement matching (§3.2)
//               -> fixed-row-&-order MCF (§3.3) -> legal placement
//
// with routability handled inside MGL and via feasible ranges (§3.4).
// This is the library's primary entry point.
#pragma once

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "legal/guard/guard.hpp"
#include "legal/maxdisp/matching_opt.hpp"
#include "legal/mcfopt/fixed_row_order.hpp"
#include "legal/mgl/mgl_legalizer.hpp"
#include "legal/refine/ripup_refine.hpp"
#include "legal/refine/wirelength_recovery.hpp"

namespace mclg {

struct PipelineConfig {
  MglConfig mgl;
  MaxDispConfig maxDisp;
  FixedRowOrderConfig fixedRowOrder;
  RipupConfig ripup;
  WirelengthRecoveryConfig recovery;
  bool runMaxDisp = true;        // stage 2 toggle (Table 3 ablation)
  bool runFixedRowOrder = true;  // stage 3 toggle (Table 3 ablation)
  // Extension stages beyond the paper's flow, off by default.
  bool runRipup = false;             // rip-up & re-insert (stage 4)
  bool runWirelengthRecovery = false;  // budgeted HPWL recovery (stage 5)
  /// Transactional stage guard (legal/guard/): snapshot / validate /
  /// rollback / degrade. Off by default in the library; the CLI enables it.
  GuardConfig guard;
  /// Executor all stage parallelism borrows lanes from. Authoritative for
  /// the whole flow: legalize() (and ecoRelegalize) copy it into every
  /// stage config at entry, so the batch driver and tests redirect a run to
  /// a private executor by setting just this field. Defaults to the
  /// process-wide work-stealing executor.
  ExecutorRef executor{};

  /// Set every stage's thread budget the way the CLI's --threads does:
  /// MGL and maxdisp always; the MCF only while its §3.3.1 coupling term is
  /// off (maxDispWeight == 0 — component decomposition is only exact then),
  /// so call this *before* changing maxDispWeight.
  void setThreads(int numThreads);

  /// Copy `executor` into the per-stage configs (mgl/maxDisp/fixedRowOrder/
  /// ripup). legalize() does this on its local copy; only callers invoking
  /// stages directly from a PipelineConfig need to call it themselves.
  void propagateExecutor();

  /// Contest setup (Table 1): Eq. 2 weights, routability on.
  static PipelineConfig contest();
  /// Total-displacement setup (Table 2): unit weights, fences present but
  /// routability constraints ignored, no max-displacement weighting.
  static PipelineConfig totalDisplacement();
};

struct PipelineStats {
  MglStats mgl;
  MaxDispStats maxDisp;
  FixedRowOrderStats fixedRowOrder;
  RipupStats ripup;
  WirelengthRecoveryStats recovery;
  double secondsMgl = 0.0;
  double secondsMaxDisp = 0.0;
  double secondsFixedRowOrder = 0.0;
  double secondsRipup = 0.0;
  double secondsRecovery = 0.0;
  /// Per-stage transaction records. Populated on every run — including
  /// unguarded ones, where each executed stage shows one Ok attempt — so a
  /// report always distinguishes "ran" from "disabled" / "never reached".
  GuardReport guard;

  double secondsTotal() const {
    return secondsMgl + secondsMaxDisp + secondsFixedRowOrder + secondsRipup +
           secondsRecovery;
  }
};

/// Legalize all unplaced movable cells of the design behind `state`.
/// \pre  every placed cell (fixed or previously legalized) is overlap-free;
///       unplaced movable cells carry their GP targets in gpX/gpY.
/// \post all movable cells are placed and legal unless the design is
///       infeasible (stats.mgl.failed > 0, or guard degradation when
///       config.guard.enabled). Deterministic for a fixed config; thread-
///       count invariant for numThreads >= 2 at a fixed mgl.batchCap.
PipelineStats legalize(PlacementState& state, const SegmentMap& segments,
                       const PipelineConfig& config);

}  // namespace mclg
