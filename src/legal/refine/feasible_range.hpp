// Feasible x-ranges for cells under routability constraints (paper §3.4).
//
// During the fixed-row-&-order optimization, each cell may only slide
// within the intersection of (a) its row segment (fence + blockages) and
// (b) the largest vertical-rail-clean interval around its current x, so the
// optimization cannot introduce new pin shorts or pin access violations.
// The paper encodes this by making every cell left- and right-bounded
// (C_L = C_R = C).
#pragma once

#include "db/design.hpp"
#include "db/segment_map.hpp"
#include "geometry/interval.hpp"

namespace mclg {

/// Allowed left-edge interval [lo, hi] (inclusive on both ends) for cell c
/// at its current rows. `routability` false limits only to the segment.
/// Returns an interval containing the current x (the placement is assumed
/// legal; if the cell currently sits on a rail conflict, the range degrades
/// to the single current position rather than legalizing the conflict).
Interval feasibleRange(const Design& design, const SegmentMap& segments,
                       CellId c, bool routability);

}  // namespace mclg
