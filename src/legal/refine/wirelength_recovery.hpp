// Optional HPWL recovery pass (x-only, rows and order fixed).
//
// The paper argues (§1, discussing MrDP) that optimizing HPWL during
// legalization "may disturb some other metrics optimized in GP", and
// therefore keeps displacement as its objective. This module makes that
// trade-off measurable: after the displacement-driven pipeline, each cell
// may slide within its neighbor gap (and §3.4 feasible range) toward its
// nets' optimal region — the classic detailed-placement median move —
// subject to a per-cell displacement budget. bench_ablation_hpwl sweeps the
// budget and reproduces the trade-off curve.
#pragma once

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"

namespace mclg {

struct WirelengthRecoveryConfig {
  /// Number of sweeps over all cells.
  int passes = 2;
  /// Per-cell cap on *added* displacement, in row heights (0 = unlimited
  /// within the gap).
  double maxAddedDisplacement = 2.0;
  /// Respect §3.4 pin-clean ranges while sliding.
  bool routability = true;
};

struct WirelengthRecoveryStats {
  int cellsMoved = 0;
  double hpwlBefore = 0.0;
  double hpwlAfter = 0.0;
  double avgDispBefore = 0.0;  // Eq. 2 average
  double avgDispAfter = 0.0;
};

/// Run the recovery on a legal placement. Never degrades legality; HPWL is
/// non-increasing (moves are only taken when they strictly help).
WirelengthRecoveryStats recoverWirelength(
    PlacementState& state, const SegmentMap& segments,
    const WirelengthRecoveryConfig& config);

}  // namespace mclg
