// Rip-up & re-insert refinement (an extension beyond the paper's three
// stages).
//
// MGL's sequential nature means early cells never see later arrivals; the
// §3.2 matching fixes some of that within same-type groups, but a cell can
// still be stranded far from its GP next to space that opened up later.
// This pass takes the most-displaced cells, removes each one, and runs the
// window insertion again with a cost ceiling equal to the displacement the
// removal freed — the cell is re-committed only where the *regional*
// weighted displacement strictly improves, otherwise it goes back to its
// old spot. Legality is preserved unconditionally.
#pragma once

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "legal/mgl/insertion.hpp"
#include "util/executor/executor.hpp"

namespace mclg {

struct RipupConfig {
  /// Only rip up cells displaced more than this (row heights).
  double displacementThreshold = 5.0;
  /// Cap on ripped-up cells per pass (most displaced first; 0 = all).
  int maxCellsPerPass = 0;
  int passes = 2;
  /// Minimum improvement (weighted cost) to accept a move.
  double minGain = 1e-9;
  /// Search window half-extents around the GP (sites × rows).
  int windowW = 64;
  int windowH = 24;
  InsertionConfig insertion;  // objective/routability flags
  /// Re-run the fixed-row/fixed-order MCF after each improving pass: the
  /// rip-ups shift cells inside their rows, perturbing the network's clamped
  /// separations (costs) while the topology usually survives, so the
  /// re-solves run through one persistent NetworkSimplexSolver — cold the
  /// first time, warm-restarted afterwards (automatic cold fallback on
  /// topology change).
  bool mcfResolve = true;
  /// Handed to the internal MCF re-solve config (the pass itself is serial;
  /// the re-solves run single-threaded today, so this is plumbing for
  /// consistency with the other stage configs).
  ExecutorRef executor{};
};

struct RipupStats {
  int attempted = 0;
  int improved = 0;
  /// Total weighted displacement removed (same units as the MGL objective).
  double gain = 0.0;
  /// Between-pass MCF re-solve activity (zero when mcfResolve is off).
  int mcfResolves = 0;
  int mcfCellsMoved = 0;
  double mcfGain = 0.0;
  long long warmSolves = 0;    ///< re-solves that reused the retained basis
  long long coldFallbacks = 0; ///< warm attempts rejected (topology changed)
};

/// Refine a legal placement by ripping up the most-displaced cells. When
/// `focus` is non-null (size >= numCells), only cells with `(*focus)[c]`
/// set are rip-up candidates — the incremental ECO driver (docs/ECO.md)
/// uses this to confine the pass to the dirty neighborhoods.
/// \pre  state is legal; \post legality preserved, weighted displacement
/// never increases (every accepted move is measured, not estimated).
/// Determinism: single-threaded, fixed candidate order — bit-reproducible.
RipupStats ripupRefine(PlacementState& state, const SegmentMap& segments,
                       const RipupConfig& config,
                       const std::vector<char>* focus = nullptr);

}  // namespace mclg
