#include "legal/refine/wirelength_recovery.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "eval/metrics.hpp"
#include "legal/refine/feasible_range.hpp"

namespace mclg {
namespace {

/// Pin-center x offset (site units) of a connection, relative to the cell's
/// left edge. Orientation-invariant (vertical flips keep x extents).
double pinOffsetX(const Design& design, const Net::Conn& conn) {
  const auto& pin =
      design.typeOf(conn.cell).pins[static_cast<std::size_t>(conn.pin)];
  return static_cast<double>(pin.rect.xlo + pin.rect.xhi) /
         (2.0 * Design::kFine);
}

/// Current pin-center x of a connection (legal position).
double pinX(const Design& design, const Net::Conn& conn) {
  return static_cast<double>(design.cells[conn.cell].x) +
         pinOffsetX(design, conn);
}

}  // namespace

WirelengthRecoveryStats recoverWirelength(
    PlacementState& state, const SegmentMap& segments,
    const WirelengthRecoveryConfig& config) {
  auto& design = state.design();
  WirelengthRecoveryStats stats;
  stats.hpwlBefore = hpwl(design, /*useGp=*/false);
  stats.avgDispBefore = displacementStats(design).average;

  // Net membership with per-connection offsets.
  std::vector<std::vector<std::pair<NetId, double>>> connsOf(
      static_cast<std::size_t>(design.numCells()));
  for (NetId net = 0; net < static_cast<NetId>(design.nets.size()); ++net) {
    for (const auto& conn : design.nets[net].conns) {
      if (design.cells[conn.cell].fixed) continue;
      connsOf[static_cast<std::size_t>(conn.cell)].emplace_back(
          net, pinOffsetX(design, conn));
    }
  }

  // Budget anchor: the x-displacement each cell had *entering* recovery
  // (recomputing from the live position would let the budget ratchet up
  // pass after pass).
  std::vector<double> initialAbsDx(static_cast<std::size_t>(design.numCells()),
                                   0.0);
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (!cell.fixed && cell.placed) {
      initialAbsDx[static_cast<std::size_t>(c)] =
          std::abs(static_cast<double>(cell.x) - cell.gpX);
    }
  }

  for (int pass = 0; pass < config.passes; ++pass) {
    int movedThisPass = 0;
    for (CellId c = 0; c < design.numCells(); ++c) {
      const auto& cell = design.cells[c];
      if (cell.fixed || !cell.placed) continue;
      const auto& myConns = connsOf[static_cast<std::size_t>(c)];
      if (myConns.empty()) continue;
      const int w = design.widthOf(c);
      const int h = design.heightOf(c);

      // Allowed left-edge interval: §3.4 range ∩ neighbor gaps ∩ budget.
      Interval range = feasibleRange(design, segments, c, config.routability);
      std::int64_t lo = range.lo;
      std::int64_t hi = range.hi - 1;
      for (std::int64_t r = cell.y; r < cell.y + h; ++r) {
        const auto& rowMap = state.rowCells(r);
        auto it = rowMap.find(cell.x);
        if (it != rowMap.begin()) {
          auto prev = std::prev(it);
          lo = std::max(lo, prev->first + design.widthOf(prev->second) +
                                design.spacingBetween(prev->second, c));
        }
        auto next = std::next(it);
        if (next != rowMap.end()) {
          hi = std::min(hi, next->first - design.spacingBetween(c, next->second) -
                                w);
        }
      }
      if (config.maxAddedDisplacement > 0.0) {
        const double budgetSites =
            initialAbsDx[static_cast<std::size_t>(c)] +
            config.maxAddedDisplacement / design.siteWidthFactor;
        lo = std::max(lo, static_cast<std::int64_t>(
                              std::ceil(cell.gpX - budgetSites)));
        hi = std::min(hi, static_cast<std::int64_t>(
                              std::floor(cell.gpX + budgetSites)));
      }
      if (lo > hi) continue;

      // Per-net x-span of the *other* pins, as bounds on this cell's left
      // edge; breakpoints of the piecewise-linear HPWL term.
      struct NetBound {
        double lo, hi;  // left-edge coordinates where the pin is interior
        bool valid;
      };
      std::vector<NetBound> bounds;
      std::vector<std::int64_t> candidates{lo, hi, cell.x};
      for (const auto& [net, offset] : myConns) {
        double otherLo = std::numeric_limits<double>::infinity();
        double otherHi = -otherLo;
        int others = 0;
        for (const auto& conn : design.nets[static_cast<std::size_t>(net)].conns) {
          if (conn.cell == c) continue;
          const auto& other = design.cells[conn.cell];
          if (!other.placed && !other.fixed) continue;
          const double px = pinX(design, conn);
          otherLo = std::min(otherLo, px);
          otherHi = std::max(otherHi, px);
          ++others;
        }
        if (others == 0) {
          bounds.push_back({0, 0, false});
          continue;
        }
        bounds.push_back({otherLo - offset, otherHi - offset, true});
        for (const double b : {otherLo - offset, otherHi - offset}) {
          const auto fl = static_cast<std::int64_t>(std::floor(b));
          const auto ce = static_cast<std::int64_t>(std::ceil(b));
          if (fl >= lo && fl <= hi) candidates.push_back(fl);
          if (ce >= lo && ce <= hi) candidates.push_back(ce);
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());

      auto costAt = [&](std::int64_t x) {
        double total = 0.0;
        for (const auto& nb : bounds) {
          if (!nb.valid) continue;
          const double p = static_cast<double>(x);
          total += std::max(0.0, p - nb.hi) + std::max(0.0, nb.lo - p);
        }
        return total;
      };

      const double curCost = costAt(cell.x);
      double bestCost = curCost;
      std::int64_t bestX = cell.x;
      for (const std::int64_t x : candidates) {
        const double cost = costAt(x);
        if (cost < bestCost - 1e-9 ||
            (cost < bestCost + 1e-9 &&
             std::abs(static_cast<double>(x) - cell.gpX) <
                 std::abs(static_cast<double>(bestX) - cell.gpX) - 1e-9)) {
          bestCost = cost;
          bestX = x;
        }
      }
      if (bestX != cell.x && bestCost < curCost - 1e-9) {
        state.shiftX(c, bestX);
        ++movedThisPass;
      }
    }
    stats.cellsMoved += movedThisPass;
    if (movedThisPass == 0) break;
  }

  stats.hpwlAfter = hpwl(design, /*useGp=*/false);
  stats.avgDispAfter = displacementStats(design).average;
  return stats;
}

}  // namespace mclg
