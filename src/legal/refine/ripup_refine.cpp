#include "legal/refine/ripup_refine.hpp"

#include <algorithm>
#include <cmath>

#include "legal/mcfopt/fixed_row_order.hpp"
#include "util/assert.hpp"

namespace mclg {
namespace {

double weightedDisplacement(const Design& design, CellId c,
                            bool contestWeights) {
  const double w = contestWeights ? design.metricWeight(c) : 1.0;
  return w * design.displacement(c);
}

}  // namespace

RipupStats ripupRefine(PlacementState& state, const SegmentMap& segments,
                       const RipupConfig& config,
                       const std::vector<char>* focus) {
  auto& design = state.design();
  RipupStats stats;
  // One searcher for all passes; the per-cell commit gate is set through
  // setCostCeiling so the searcher's caches and scratch survive.
  InsertionSearcher searcher(state, segments, config.insertion);

  // One persistent simplex instance for the between-pass MCF re-solves: the
  // rip-ups only perturb arc costs when the cell set and row order survive a
  // pass, so the second and later re-solves warm-restart from the retained
  // basis (solveWarm validates and falls back cold on a topology change).
  FroSolverReuse mcfReuse;
  FixedRowOrderConfig mcfConfig;
  mcfConfig.contestWeights = config.insertion.contestWeights;
  mcfConfig.routability = config.insertion.routability;
  mcfConfig.respectEdgeSpacing = config.insertion.respectEdgeSpacing;
  mcfConfig.maxDispWeight = 0.0;  // pure displacement, matching stats.gain
  mcfConfig.numThreads = 1;
  mcfConfig.executor = config.executor;

  for (int pass = 0; pass < config.passes; ++pass) {
    // Candidates: most displaced first.
    std::vector<std::pair<double, CellId>> worst;
    for (CellId c = 0; c < design.numCells(); ++c) {
      const auto& cell = design.cells[c];
      if (cell.fixed || !cell.placed) continue;
      if (focus != nullptr && (*focus)[static_cast<std::size_t>(c)] == 0) {
        continue;
      }
      const double disp = design.displacement(c);
      if (disp > config.displacementThreshold) worst.emplace_back(disp, c);
    }
    std::sort(worst.begin(), worst.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    if (config.maxCellsPerPass > 0 &&
        static_cast<int>(worst.size()) > config.maxCellsPerPass) {
      worst.resize(static_cast<std::size_t>(config.maxCellsPerPass));
    }

    int improvedThisPass = 0;
    for (const auto& [disp, c] : worst) {
      (void)disp;
      const auto& cell = design.cells[c];
      const std::int64_t oldX = cell.x;
      const std::int64_t oldY = cell.y;
      const double freed =
          weightedDisplacement(design, c, config.insertion.contestWeights);

      state.remove(c);
      searcher.setCostCeiling(freed - config.minGain);
      const Rect window =
          Rect{static_cast<std::int64_t>(std::llround(cell.gpX)) -
                   config.windowW,
               static_cast<std::int64_t>(std::llround(cell.gpY)) -
                   config.windowH,
               static_cast<std::int64_t>(std::llround(cell.gpX)) +
                   config.windowW,
               static_cast<std::int64_t>(std::llround(cell.gpY)) +
                   config.windowH}
              .intersect({0, 0, design.numSitesX, design.numRows});
      ++stats.attempted;
      if (searcher.tryInsert(c, window)) {
        // The estimate gated the commit; the measured delta decides. When
        // multi-row chains interacted and the realized cost is not a strict
        // win, revert exactly.
        const double measured = searcher.lastCommit().measuredCost;
        if (measured < freed - config.minGain) {
          ++improvedThisPass;
          stats.gain += freed - measured;
        } else {
          searcher.undoLastCommit(c);
          state.place(c, oldX, oldY);
        }
      } else {
        // Nothing strictly better: the old spot is still free.
        state.place(c, oldX, oldY);
      }
    }
    stats.improved += improvedThisPass;
    if (improvedThisPass == 0) break;

    if (config.mcfResolve) {
      // The accepted re-insertions shifted neighbors; re-optimize every
      // cell's x under the fixed rows and order before the next pass ranks
      // candidates by displacement.
      std::vector<CellId> all;
      for (CellId c = 0; c < design.numCells(); ++c) {
        const auto& cell = design.cells[c];
        if (!cell.fixed && cell.placed) all.push_back(c);
      }
      const auto solverBefore = mcfReuse.solver.stats();
      const auto froStats = optimizeFixedRowOrderSubset(
          state, segments, mcfConfig, std::move(all), &mcfReuse);
      const auto solverAfter = mcfReuse.solver.stats();
      ++stats.mcfResolves;
      stats.mcfCellsMoved += froStats.cellsMoved;
      stats.mcfGain += froStats.objectiveBefore - froStats.objectiveAfter;
      stats.warmSolves += solverAfter.warmSolves - solverBefore.warmSolves;
      stats.coldFallbacks +=
          solverAfter.warmRejected - solverBefore.warmRejected;
    }
  }
  return stats;
}

}  // namespace mclg
