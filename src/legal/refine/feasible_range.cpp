#include "legal/refine/feasible_range.hpp"

#include <algorithm>

#include "eval/checkers.hpp"
#include "util/assert.hpp"

namespace mclg {

Interval feasibleRange(const Design& design, const SegmentMap& segments,
                       CellId c, bool routability) {
  const auto& cell = design.cells[c];
  MCLG_ASSERT(cell.placed && !cell.fixed, "feasibleRange needs a placed cell");
  const int h = design.heightOf(c);
  const int w = design.widthOf(c);
  const Interval seg =
      segments.slideRange(cell.y, h, cell.x, w, cell.fence);
  // Left-edge bounds from the segment (inclusive hi).
  std::int64_t lo = seg.lo;
  std::int64_t hi = seg.hi - w;
  if (hi < lo) return {cell.x, cell.x + 1};  // degenerate; stay put

  if (routability) {
    // §3.4: the movement range is the largest interval around the current x
    // that is clean of vertical-rail *and* IO-pin conflicts.
    for (const auto& forbidden :
         {verticalRailForbiddenX(design, cell.type, cell.y),
          ioPinForbiddenX(design, cell.type, cell.y)}) {
      for (const auto& iv : forbidden) {
        if (iv.hi <= cell.x) {
          lo = std::max(lo, iv.hi);
        } else if (iv.lo > cell.x) {
          hi = std::min(hi, iv.lo - 1);
          break;  // intervals are sorted
        } else {
          // Current position already conflicts; freeze the cell.
          return {cell.x, cell.x + 1};
        }
      }
    }
  }
  lo = std::min(lo, cell.x);
  hi = std::max(hi, cell.x);
  return {lo, hi + 1};  // half-open like the rest of the library
}

}  // namespace mclg
