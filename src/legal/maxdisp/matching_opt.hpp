// Maximum-displacement optimization by same-type position matching
// (paper §3.2).
//
// Within each (cell type × fence region) group, cells may freely exchange
// their current positions: every position in the group is legal for every
// cell of the group (same footprint, same parity, same edge classes, and a
// position's pin-violation status does not depend on which same-type cell
// occupies it). A min-cost perfect matching between cells and the group's
// positions therefore cannot create any violation, and with the convexified
// cost
//
//   φ(δ) = δ           for δ <= δ0,
//          δ^5 / δ0^4  otherwise                     (Eq. 3)
//
// it trades (almost) no average displacement for large reductions of the
// tail — the paper's Table 3 effect.
#pragma once

#include <vector>

#include "db/placement_state.hpp"
#include "util/executor/executor.hpp"

namespace mclg {

struct MaxDispConfig {
  /// Tolerable displacement threshold δ0 of Eq. 3, in row heights.
  double delta0 = 10.0;
  /// Groups larger than this are split into spatially coherent chunks to
  /// bound the matching size (the paper's groups are naturally small; our
  /// synthetic suites can produce bigger ones).
  int maxGroupSize = 600;
  /// Sparsification: per cell, keep the own position plus this many nearest
  /// candidate positions.
  int candidatesPerCell = 16;
  /// Fixed-point scale for converting φ to integer MCF costs.
  double costScale = 1024.0;
  /// φ is clamped at this value to keep scaled costs inside int64.
  double phiClamp = 1e12;
  /// Groups are independent; their assignment problems solve in parallel
  /// (moves are applied serially, so results are thread-count invariant).
  int numThreads = 1;
  /// Lanes come from this executor when numThreads > 1 (default: the
  /// process-wide work-stealing executor).
  ExecutorRef executor{};
  /// Groups up to this size solve with the dense O(n³) Hungarian algorithm
  /// (full cost matrix); larger groups use the sparse MCF reduction with
  /// nearest-candidate edges. Both are exact on their respective edge sets.
  int denseSolverThreshold = 96;
  /// Group by footprint (width × height × parity × edge classes) instead of
  /// cell type. Strictly more exchange opportunities; only valid when pin
  /// geometry does not matter (no-routability mode — different types have
  /// different pins, so a swap could change the pin-violation count).
  bool groupByFootprint = false;
  /// Focused-mode locality (optimizeMaxDisplacementFocused only): trim each
  /// surviving chunk to its focused cells plus this many spatially nearest
  /// group-mates on each side (in row-major order) before matching, so a
  /// request-sized focus solves a request-sized assignment instead of a
  /// whole maxGroupSize chunk. The matching still only permutes existing
  /// positions within the trimmed subset, so legality is unaffected. 0
  /// solves whole surviving chunks. Set by the ECO driver; the full
  /// pipeline never reads it.
  int focusTrim = 0;
};

struct MaxDispStats {
  int groups = 0;
  int cellsConsidered = 0;
  int cellsMoved = 0;
};

/// φ of Eq. 3 (exposed for tests and the φ-threshold ablation bench).
double phiCost(double delta, double delta0);

/// Run the optimization on a legal placement.
/// \pre  `state` holds a legal placement (the matching only permutes cells
///       over their group's existing positions, so it cannot repair — nor
///       create — violations).
/// \post Legality is never degraded; moves are applied in deterministic
///       group order, so results are thread-count invariant.
MaxDispStats optimizeMaxDisplacement(PlacementState& state,
                                     const MaxDispConfig& config);

/// Focused variant for incremental ECO re-legalization (docs/ECO.md): only
/// the matching chunks containing at least one cell with `focus[c] != 0`
/// are re-solved; all other groups keep their placement untouched.
/// \pre  `focus.size() >= state.design().numCells()`; same legality
///       precondition as above.
/// \post Same guarantees as optimizeMaxDisplacement, restricted to the
///       focused chunks (stats count only those).
MaxDispStats optimizeMaxDisplacementFocused(PlacementState& state,
                                            const MaxDispConfig& config,
                                            const std::vector<char>& focus);

}  // namespace mclg
