#include "legal/maxdisp/matching_opt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "flow/bipartite_matching.hpp"
#include "flow/hungarian.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/executor/executor.hpp"

namespace mclg {

double phiCost(double delta, double delta0) {
  if (delta <= delta0) return delta;
  const double r = delta / delta0;
  return delta0 * r * r * r * r * r;  // δ^5 / δ0^4
}

namespace {

struct Position {
  std::int64_t x;
  std::int64_t y;
};

/// Displacement (row heights) of `cell` if moved to position p.
double dispAt(const Design& design, CellId cell, const Position& p) {
  const auto& c = design.cells[cell];
  return design.siteWidthFactor * std::abs(static_cast<double>(p.x) - c.gpX) +
         std::abs(static_cast<double>(p.y) - c.gpY);
}

/// Compute the optimal permutation moves for one group of same-type,
/// same-fence cells (read-only; application happens serially).
/// Per-thread buffers reused across chunks: the stage solves dozens to
/// hundreds of assignment problems back to back and the per-chunk container
/// churn was a measurable share of its runtime. Every field is fully
/// rebuilt per chunk, so reuse cannot leak state between chunks.
struct GroupScratch {
  std::vector<Position> positions;
  std::vector<CostValue> denseCost;
  std::vector<double> posX, posY;  // position coords, flat doubles
  std::vector<int> orderX;         // position indices sorted by (x, index)
  std::vector<double> sortedX;     // posX permuted by orderX
  std::vector<std::pair<double, int>> ranked;
  std::vector<AssignmentEdge> edges;
};

std::vector<std::pair<CellId, Position>> computeGroupMoves(
    const Design& design, const MaxDispConfig& config,
    const std::vector<CellId>& group) {
  thread_local GroupScratch scratch;
  const int n = static_cast<int>(group.size());
  auto& positions = scratch.positions;
  positions.clear();
  positions.reserve(group.size());
  for (const CellId c : group) {
    positions.push_back({design.cells[c].x, design.cells[c].y});
  }

  auto phiOf = [&](int i, int j) {
    const double phi = std::min(
        config.phiClamp,
        phiCost(dispAt(design, group[static_cast<std::size_t>(i)],
                       positions[static_cast<std::size_t>(j)]),
                config.delta0));
    return static_cast<CostValue>(std::llround(phi * config.costScale));
  };

  // Small groups: exact dense Hungarian over the full matrix.
  if (n <= config.denseSolverThreshold) {
    auto& cost = scratch.denseCost;
    cost.assign(static_cast<std::size_t>(n) * n, 0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        cost[static_cast<std::size_t>(i) * n + j] = phiOf(i, j);
      }
    }
    const auto match = solveAssignmentDense(n, n, cost);
    std::vector<std::pair<CellId, Position>> moves;
    for (int i = 0; i < n; ++i) {
      const int j = match[static_cast<std::size_t>(i)];
      if (j == i) continue;
      moves.emplace_back(group[static_cast<std::size_t>(i)],
                         positions[static_cast<std::size_t>(j)]);
    }
    return moves;
  }

  // Sparse candidate edges: own position (guarantees a perfect matching
  // exists) plus the nearest K positions per cell.
  auto& edges = scratch.edges;
  edges.clear();
  edges.reserve(static_cast<std::size_t>(n) *
                static_cast<std::size_t>(config.candidatesPerCell + 1));
  // Flat coordinate arrays plus an x-sorted view of the chunk's positions.
  // The x-term of the displacement alone lower-bounds the full weighted-L1
  // distance, so expanding outward from a cell's global-placement x lets the
  // nearest-K search stop as soon as that bound exceeds the current K-th
  // best — exact, but examining only a small x-neighborhood instead of all
  // n positions (the stage's former n² hot loop).
  auto& posX = scratch.posX;
  auto& posY = scratch.posY;
  posX.resize(positions.size());
  posY.resize(positions.size());
  for (int j = 0; j < n; ++j) {
    posX[static_cast<std::size_t>(j)] =
        static_cast<double>(positions[static_cast<std::size_t>(j)].x);
    posY[static_cast<std::size_t>(j)] =
        static_cast<double>(positions[static_cast<std::size_t>(j)].y);
  }
  auto& orderX = scratch.orderX;
  orderX.resize(positions.size());
  for (int j = 0; j < n; ++j) orderX[static_cast<std::size_t>(j)] = j;
  std::sort(orderX.begin(), orderX.end(), [&](int a, int b) {
    const double xa = posX[static_cast<std::size_t>(a)];
    const double xb = posX[static_cast<std::size_t>(b)];
    if (xa != xb) return xa < xb;
    return a < b;
  });
  auto& sortedX = scratch.sortedX;
  sortedX.resize(positions.size());
  for (int t = 0; t < n; ++t) {
    sortedX[static_cast<std::size_t>(t)] =
        posX[static_cast<std::size_t>(orderX[static_cast<std::size_t>(t)])];
  }
  auto& ranked = scratch.ranked;
  const double swf = design.siteWidthFactor;
  const double kInf = std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    const auto& ci = design.cells[group[static_cast<std::size_t>(i)]];
    const double gx = ci.gpX;
    const double gy = ci.gpY;
    const int keep = std::min(n, config.candidatesPerCell);
    // Bounded insertion selection over (distance, index) pairs: pairs are
    // all distinct (the index breaks distance ties), so the kept set is
    // exactly the prefix a partial_sort over all pairs would produce,
    // regardless of visit order.
    ranked.clear();
    auto consider = [&](int t) {
      const int j = orderX[static_cast<std::size_t>(t)];
      const double d = swf * std::abs(posX[static_cast<std::size_t>(j)] - gx) +
                       std::abs(posY[static_cast<std::size_t>(j)] - gy);
      const std::pair<double, int> e{d, j};
      if (static_cast<int>(ranked.size()) == keep) {
        if (!(e < ranked.back())) return;
        ranked.pop_back();
      }
      ranked.insert(std::upper_bound(ranked.begin(), ranked.end(), e), e);
    };
    if (keep > 0) {
      int hi = static_cast<int>(
          std::lower_bound(sortedX.begin(), sortedX.begin() + n, gx) -
          sortedX.begin());
      int lo = hi - 1;
      while (lo >= 0 || hi < n) {
        // swf*|x - gx| <= full distance (rounding is monotone and the y-term
        // is non-negative), so once both frontiers exceed the current K-th
        // best, no unvisited position can displace a kept pair — even on a
        // distance tie, since the bound comparison is strict.
        const double lbLo =
            lo >= 0 ? swf * (gx - sortedX[static_cast<std::size_t>(lo)]) : kInf;
        const double lbHi =
            hi < n ? swf * (sortedX[static_cast<std::size_t>(hi)] - gx) : kInf;
        if (static_cast<int>(ranked.size()) == keep &&
            std::min(lbLo, lbHi) > ranked.back().first) {
          break;
        }
        if (lbLo <= lbHi) {
          consider(lo);
          --lo;
        } else {
          consider(hi);
          ++hi;
        }
      }
    }
    bool ownIncluded = false;
    for (const auto& [d, j] : ranked) {
      if (j == i) ownIncluded = true;
      const double phi = std::min(config.phiClamp, phiCost(d, config.delta0));
      edges.push_back(
          {i, j, static_cast<CostValue>(std::llround(phi * config.costScale))});
    }
    if (!ownIncluded) {
      const double phi = std::min(
          config.phiClamp,
          phiCost(dispAt(design, group[static_cast<std::size_t>(i)],
                         positions[static_cast<std::size_t>(i)]),
                  config.delta0));
      edges.push_back(
          {i, i, static_cast<CostValue>(std::llround(phi * config.costScale))});
    }
  }

  const auto match = solveAssignment(n, n, edges);
  MCLG_ASSERT(match.has_value(),
              "identity edges guarantee a perfect matching");

  std::vector<std::pair<CellId, Position>> moves;
  for (int i = 0; i < n; ++i) {
    const int j = (*match)[static_cast<std::size_t>(i)];
    if (j == i) continue;
    moves.emplace_back(group[static_cast<std::size_t>(i)],
                       positions[static_cast<std::size_t>(j)]);
  }
  return moves;
}

/// Apply a group's permutation: remove all moved cells first, then
/// re-place (positions are a permutation, so this never collides).
void applyMoves(PlacementState& state,
                const std::vector<std::pair<CellId, Position>>& moves) {
  for (const auto& [cell, pos] : moves) {
    (void)pos;
    state.remove(cell);
  }
  for (const auto& [cell, pos] : moves) {
    state.place(cell, pos.x, pos.y);
  }
}

}  // namespace

namespace {

/// Shared body of the full and focused entry points: when `focus` is
/// non-null, chunks without a focused cell are dropped after grouping (and
/// the stats count only the surviving chunks).
MaxDispStats optimizeMaxDisplacementImpl(PlacementState& state,
                                         const MaxDispConfig& config,
                                         const std::vector<char>* focus) {
  auto& design = state.design();
  MaxDispStats stats;

  // Group movable placed cells by (type, fence) — or by interchangeable
  // footprint when pin geometry is irrelevant.
  std::map<std::pair<std::int64_t, FenceId>, std::vector<CellId>> groups;
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (cell.fixed || !cell.placed) continue;
    std::int64_t key = cell.type;
    if (config.groupByFootprint) {
      const auto& type = design.typeOf(c);
      key = (((static_cast<std::int64_t>(type.width) * 64 + type.height) * 4 +
              (type.parity + 1)) *
                 64 +
             type.leftEdge) *
                64 +
            type.rightEdge;
    }
    groups[{key, cell.fence}].push_back(c);
  }

  // Flatten into chunks (oversized groups split into spatially coherent
  // pieces sorted by current row, then x).
  std::vector<std::vector<CellId>> chunks;
  for (auto& [key, cells] : groups) {
    (void)key;
    if (cells.size() < 2) continue;
    stats.cellsConsidered += static_cast<int>(cells.size());
    if (static_cast<int>(cells.size()) <= config.maxGroupSize) {
      chunks.push_back(std::move(cells));
      continue;
    }
    std::sort(cells.begin(), cells.end(), [&](CellId a, CellId b) {
      const auto& ca = design.cells[a];
      const auto& cb = design.cells[b];
      if (ca.y != cb.y) return ca.y < cb.y;
      if (ca.x != cb.x) return ca.x < cb.x;
      return a < b;
    });
    for (std::size_t start = 0; start < cells.size();
         start += static_cast<std::size_t>(config.maxGroupSize)) {
      const std::size_t end = std::min(
          cells.size(), start + static_cast<std::size_t>(config.maxGroupSize));
      if (end - start < 2) break;
      chunks.emplace_back(cells.begin() + static_cast<std::ptrdiff_t>(start),
                          cells.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  if (focus != nullptr) {
    std::erase_if(chunks, [&](const std::vector<CellId>& chunk) {
      return std::none_of(chunk.begin(), chunk.end(), [&](CellId c) {
        return (*focus)[static_cast<std::size_t>(c)] != 0;
      });
    });
    if (config.focusTrim > 0) {
      // Delta-local matching: one stranded cell in a chunk of hundreds
      // should not re-solve the whole chunk. Keep each focused cell plus
      // its focusTrim row-major-nearest group-mates on either side — the
      // candidates a recovery swap could plausibly use — and drop the
      // rest. A sub-chunk matching is still a permutation of existing
      // positions, so legality is preserved.
      for (auto& chunk : chunks) {
        std::sort(chunk.begin(), chunk.end(), [&](CellId a, CellId b) {
          const auto& ca = design.cells[a];
          const auto& cb = design.cells[b];
          if (ca.y != cb.y) return ca.y < cb.y;
          if (ca.x != cb.x) return ca.x < cb.x;
          return a < b;
        });
        const int n = static_cast<int>(chunk.size());
        std::vector<char> keep(static_cast<std::size_t>(n), 0);
        for (int j = 0; j < n; ++j) {
          if ((*focus)[static_cast<std::size_t>(
                  chunk[static_cast<std::size_t>(j)])] == 0) {
            continue;
          }
          const int hi = std::min(n - 1, j + config.focusTrim);
          for (int t = std::max(0, j - config.focusTrim); t <= hi; ++t) {
            keep[static_cast<std::size_t>(t)] = 1;
          }
        }
        std::vector<CellId> trimmed;
        for (int j = 0; j < n; ++j) {
          if (keep[static_cast<std::size_t>(j)]) {
            trimmed.push_back(chunk[static_cast<std::size_t>(j)]);
          }
        }
        chunk = std::move(trimmed);
      }
      std::erase_if(chunks, [](const std::vector<CellId>& chunk) {
        return chunk.size() < 2;
      });
    }
    stats.cellsConsidered = 0;
    for (const auto& chunk : chunks) {
      stats.cellsConsidered += static_cast<int>(chunk.size());
    }
  }
  stats.groups = static_cast<int>(chunks.size());

  // Assignment problems are independent and read-only: solve in parallel,
  // apply serially in chunk order (thread-count invariant results).
  std::vector<std::vector<std::pair<CellId, Position>>> allMoves(
      chunks.size());
  config.executor.parallelForBatch(
      static_cast<int>(chunks.size()), config.numThreads, [&](int i) {
    // Spans land on the solving worker's thread track.
    MCLG_TRACE_SCOPE(
        "maxdisp/group",
        {{"cells", static_cast<double>(
              chunks[static_cast<std::size_t>(i)].size())}});
    allMoves[static_cast<std::size_t>(i)] = computeGroupMoves(
        design, config, chunks[static_cast<std::size_t>(i)]);
  });
  for (const auto& moves : allMoves) {
    applyMoves(state, moves);
    stats.cellsMoved += static_cast<int>(moves.size());
  }
  if (obs::metricsEnabled()) {
    obs::counter("maxdisp.groups").add(stats.groups);
    obs::counter("maxdisp.cells_moved").add(stats.cellsMoved);
  }
  return stats;
}

}  // namespace

MaxDispStats optimizeMaxDisplacement(PlacementState& state,
                                     const MaxDispConfig& config) {
  return optimizeMaxDisplacementImpl(state, config, nullptr);
}

MaxDispStats optimizeMaxDisplacementFocused(PlacementState& state,
                                            const MaxDispConfig& config,
                                            const std::vector<char>& focus) {
  return optimizeMaxDisplacementImpl(state, config, &focus);
}

}  // namespace mclg
