#include "legal/pipeline.hpp"

#include "legal/guard/invariants.hpp"
#include "legal/guard/transaction.hpp"
#include "obs/obs.hpp"
#include "util/timer.hpp"

namespace mclg {
namespace {

// Per-stage wall/CPU gauges for the run report, e.g. stage.mgl.wall_seconds.
void recordStageTime(PipelineStage stage, const Timer& timer) {
  if (!obs::metricsEnabled()) return;
  const std::string base = std::string("stage.") + stageName(stage);
  obs::gauge(base + ".wall_seconds").set(timer.seconds());
  obs::gauge(base + ".cpu_seconds").set(timer.cpuSeconds());
}

}  // namespace

PipelineConfig PipelineConfig::contest() {
  PipelineConfig config;
  config.mgl.insertion.gpObjective = true;
  config.mgl.insertion.contestWeights = true;
  config.mgl.insertion.routability = true;
  config.fixedRowOrder.contestWeights = true;
  config.fixedRowOrder.routability = true;
  config.fixedRowOrder.maxDispWeight = 4.0;
  return config;
}

PipelineConfig PipelineConfig::totalDisplacement() {
  PipelineConfig config;
  config.mgl.insertion.gpObjective = true;
  config.mgl.insertion.contestWeights = false;
  config.mgl.insertion.routability = false;
  // In the linear region φ(δ) = δ, the §3.2 matching minimizes the *total*
  // displacement over same-type permutations — exactly the Table 2 metric —
  // so run it with an effectively infinite threshold.
  config.runMaxDisp = true;
  config.maxDisp.delta0 = 1e9;
  // Without routability, any equal-footprint cells can exchange positions,
  // not just same-type ones.
  config.maxDisp.groupByFootprint = true;
  config.fixedRowOrder.contestWeights = false;
  config.fixedRowOrder.routability = false;
  config.fixedRowOrder.maxDispWeight = 0.0;
  return config;
}

void PipelineConfig::setThreads(int numThreads) {
  mgl.numThreads = numThreads;
  maxDisp.numThreads = numThreads;
  if (fixedRowOrder.maxDispWeight == 0.0) {
    fixedRowOrder.numThreads = numThreads;
  }
}

void PipelineConfig::propagateExecutor() {
  mgl.executor = executor;
  maxDisp.executor = executor;
  fixedRowOrder.executor = executor;
  ripup.executor = executor;
}

PipelineStats legalize(PlacementState& state, const SegmentMap& segments,
                       const PipelineConfig& userConfig) {
  PipelineConfig config = userConfig;
  config.propagateExecutor();
  if (config.guard.enabled) return legalizeGuarded(state, segments, config);

  PipelineStats stats;
  // Even unguarded, record one Ok attempt per executed stage (and Disabled
  // for toggled-off ones) so reports distinguish "ran fast" from "not run".
  auto record = [&stats](PipelineStage stage, bool ran, double seconds) {
    StageRecord& rec = stats.guard.at(stage);
    if (!ran) {
      rec.status = StageStatus::Disabled;
      return;
    }
    rec.status = StageStatus::Ok;
    rec.attempts = 1;
    rec.seconds = seconds;
  };
  {
    MCLG_TRACE_SCOPE("pipeline/mgl");
    Timer timer;
    MglLegalizer mgl(state, segments, config.mgl);
    stats.mgl = mgl.run();
    stats.secondsMgl = timer.seconds();
    recordStageTime(PipelineStage::Mgl, timer);
    record(PipelineStage::Mgl, true, stats.secondsMgl);
  }
  if (config.runMaxDisp) {
    MCLG_TRACE_SCOPE("pipeline/maxdisp");
    Timer timer;
    stats.maxDisp = optimizeMaxDisplacement(state, config.maxDisp);
    stats.secondsMaxDisp = timer.seconds();
    recordStageTime(PipelineStage::MaxDisp, timer);
  }
  record(PipelineStage::MaxDisp, config.runMaxDisp, stats.secondsMaxDisp);
  if (config.runFixedRowOrder) {
    MCLG_TRACE_SCOPE("pipeline/mcf");
    Timer timer;
    stats.fixedRowOrder =
        optimizeFixedRowOrder(state, segments, config.fixedRowOrder);
    stats.secondsFixedRowOrder = timer.seconds();
    recordStageTime(PipelineStage::FixedRowOrder, timer);
  }
  record(PipelineStage::FixedRowOrder, config.runFixedRowOrder,
         stats.secondsFixedRowOrder);
  if (config.runRipup) {
    MCLG_TRACE_SCOPE("pipeline/ripup");
    Timer timer;
    RipupConfig ripup = config.ripup;
    ripup.insertion = config.mgl.insertion;  // same objective/constraints
    stats.ripup = ripupRefine(state, segments, ripup);
    stats.secondsRipup = timer.seconds();
    recordStageTime(PipelineStage::Ripup, timer);
  }
  record(PipelineStage::Ripup, config.runRipup, stats.secondsRipup);
  if (config.runWirelengthRecovery) {
    MCLG_TRACE_SCOPE("pipeline/recovery");
    Timer timer;
    stats.recovery = recoverWirelength(state, segments, config.recovery);
    stats.secondsRecovery = timer.seconds();
    recordStageTime(PipelineStage::Recovery, timer);
  }
  record(PipelineStage::Recovery, config.runWirelengthRecovery,
         stats.secondsRecovery);
  stats.guard.infeasibleCells = countUnplacedMovable(state.design());
  return stats;
}

}  // namespace mclg
