#include "legal/pipeline.hpp"

#include "util/timer.hpp"

namespace mclg {

PipelineConfig PipelineConfig::contest() {
  PipelineConfig config;
  config.mgl.insertion.gpObjective = true;
  config.mgl.insertion.contestWeights = true;
  config.mgl.insertion.routability = true;
  config.fixedRowOrder.contestWeights = true;
  config.fixedRowOrder.routability = true;
  config.fixedRowOrder.maxDispWeight = 4.0;
  return config;
}

PipelineConfig PipelineConfig::totalDisplacement() {
  PipelineConfig config;
  config.mgl.insertion.gpObjective = true;
  config.mgl.insertion.contestWeights = false;
  config.mgl.insertion.routability = false;
  // In the linear region φ(δ) = δ, the §3.2 matching minimizes the *total*
  // displacement over same-type permutations — exactly the Table 2 metric —
  // so run it with an effectively infinite threshold.
  config.runMaxDisp = true;
  config.maxDisp.delta0 = 1e9;
  // Without routability, any equal-footprint cells can exchange positions,
  // not just same-type ones.
  config.maxDisp.groupByFootprint = true;
  config.fixedRowOrder.contestWeights = false;
  config.fixedRowOrder.routability = false;
  config.fixedRowOrder.maxDispWeight = 0.0;
  return config;
}

PipelineStats legalize(PlacementState& state, const SegmentMap& segments,
                       const PipelineConfig& config) {
  PipelineStats stats;
  {
    Timer timer;
    MglLegalizer mgl(state, segments, config.mgl);
    stats.mgl = mgl.run();
    stats.secondsMgl = timer.seconds();
  }
  if (config.runMaxDisp) {
    Timer timer;
    stats.maxDisp = optimizeMaxDisplacement(state, config.maxDisp);
    stats.secondsMaxDisp = timer.seconds();
  }
  if (config.runFixedRowOrder) {
    Timer timer;
    stats.fixedRowOrder =
        optimizeFixedRowOrder(state, segments, config.fixedRowOrder);
    stats.secondsFixedRowOrder = timer.seconds();
  }
  if (config.runRipup) {
    Timer timer;
    RipupConfig ripup = config.ripup;
    ripup.insertion = config.mgl.insertion;  // same objective/constraints
    stats.ripup = ripupRefine(state, segments, ripup);
    stats.secondsRipup = timer.seconds();
  }
  if (config.runWirelengthRecovery) {
    Timer timer;
    stats.recovery = recoverWirelength(state, segments, config.recovery);
    stats.secondsRecovery = timer.seconds();
  }
  return stats;
}

}  // namespace mclg
