// Fixed-row & fixed-order post-optimization (paper §3.3).
//
// Keeping row assignments and per-row cell order, the optimal x positions
// under the weighted-displacement objective are the solution of LP (4),
// solved through its dual min-cost flow (6): one node per cell plus one
// auxiliary node v_z, arcs
//
//   v_i -> v_z   cap n_i, cost +x'_i        (the |x_i - x'_i| pair ...)
//   v_z -> v_i   cap n_i, cost -x'_i        (... after aux-node elimination)
//   v_z -> v_i   cap inf, cost -l_i         (left feasible bound)
//   v_i -> v_z   cap inf, cost +r_i         (right feasible bound)
//   v_i -> v_j   cap inf, cost -(w_i+s_ij)  (left-neighbor constraints E)
//
// which is the m+1-node / 2m+|C_L|+|C_R|+|E|-arc network the paper compares
// against MrDP's larger formulation. The §3.3.1 extension adds nodes
// v_p, v_n and weight n_0 so a weighted max-displacement term is optimized
// simultaneously (Eqs. 8-9). Optimal positions are read back from the node
// potentials: x_i = pi(v_z) - pi(v_i).
//
// Feasible ranges [l_i, r_i] come from legal/refine/feasible_range.hpp, so
// with routability on the step cannot create pin or fence violations
// (C_L = C_R = C, §3.4).
#pragma once

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "flow/mcf.hpp"
#include "geometry/interval.hpp"
#include "util/executor/executor.hpp"

namespace mclg {

struct FixedRowOrderConfig {
  /// true: weight n_i per Eq. 2 (contest metric); false: n_i = 1 (total
  /// displacement, Table 2 mode).
  bool contestWeights = true;
  /// Relative weight n_0 of the max-displacement term; 0 disables the
  /// §3.3.1 extension. Expressed as a multiple of the mean cell weight.
  double maxDispWeight = 4.0;
  /// Restrict movements to pin-clean ranges (§3.4).
  bool routability = true;
  /// Include the edge-spacing table in the neighbor separations. Must be
  /// false when refining a placement produced by a spacing-oblivious
  /// legalizer (the LP would be infeasible otherwise).
  bool respectEdgeSpacing = true;
  /// Fixed-point scale turning fractional Eq. 2 weights into integer caps.
  std::int64_t weightScale = 1'000'000;
  /// Build the MrDP-style expanded network (3m+2 nodes, 6m+|E| arcs: the
  /// per-cell |x| auxiliary vertices are kept instead of eliminated) rather
  /// than the paper's compact m+1-node network. Same optimum; exists to
  /// reproduce the paper's formulation-size comparison (§3.3 point (1)).
  bool mrdpStyleNetwork = false;
  /// With > 1, the constraint graph's connected components (cells linked by
  /// neighbor constraints) are solved as independent MCFs in parallel.
  /// Exact same optimum — the LP separates over components — and
  /// thread-count invariant (moves apply serially in component order).
  int numThreads = 1;
  /// Lanes come from this executor when numThreads > 1 (default: the
  /// process-wide work-stealing executor).
  ExecutorRef executor{};
};

struct FixedRowOrderStats {
  int cellsMoved = 0;
  /// Weighted x-displacement objective (row heights) before/after, for the
  /// improvement assertions in tests.
  double objectiveBefore = 0.0;
  double objectiveAfter = 0.0;
};

/// Run the optimization on a legal placement.
/// \pre  state holds a legal placement (no overlaps; MCLG_ASSERT-enforced).
/// \post Legality is preserved; the weighted objective never increases
///       (modulo integer-rounding noise, which is logged).
/// Determinism: output is invariant under config.numThreads (component
/// solves are independent and applied in a fixed order).
FixedRowOrderStats optimizeFixedRowOrder(PlacementState& state,
                                         const SegmentMap& segments,
                                         const FixedRowOrderConfig& config);

/// Persistent network-simplex state for iterated re-solves of one component
/// whose costs drift between passes (ECO stage-3 passes, ripup refine
/// re-solves). First use is a cold solve that retains the basis; later uses
/// go through NetworkSimplexSolver::solveWarm, which validates the topology
/// and silently falls back to a cold solve when it changed. Read
/// solver.stats() for the warm/cold/rejected counters.
struct FroSolverReuse {
  NetworkSimplexSolver solver;
  bool hasBasis = false;
};

/// Connected components of the neighbor-constraint graph over the placed
/// movable cells (cells linked by a same-row adjacency, transitively).
/// Deterministic: components ordered by their lowest-id cell's first
/// appearance in ascending cell-id order; cells ascend within a component's
/// discovery order.
std::vector<std::vector<CellId>> fixedRowOrderComponents(
    const PlacementState& state);

/// Run the optimization on `subset` only, optionally through a persistent
/// warm-startable solver. The subset may be *any* selection of placed
/// movable cells: a neighbor pair with one endpoint outside the subset
/// contributes no arc, but the inside endpoint's feasible range is clamped
/// against the outside cell's current position (a fixed wall), so the
/// result never overlaps a cell outside the subset. Subsets closed under
/// the neighbor relation (fixedRowOrderComponents entries, or all placed
/// movable cells) see no clamping and solve the exact component optimum;
/// smaller subsets trade optimality at the walls for a solve whose cost is
/// proportional to the subset — the ECO driver's delta-local stage 3.
/// \pre  With a reuse whose basis was retained on a previous call, the
///       subset and its row order must be unchanged (only GP targets /
///       clamped separations, i.e. arc costs, may differ); a mismatch is
///       safe — solveWarm detects it and re-solves cold.
/// \post Same guarantees as optimizeFixedRowOrder, restricted to `subset`.
FixedRowOrderStats optimizeFixedRowOrderSubset(PlacementState& state,
                                               const SegmentMap& segments,
                                               const FixedRowOrderConfig& config,
                                               std::vector<CellId> subset,
                                               FroSolverReuse* reuse = nullptr);

/// The flow network of the optimization, exposed for the formulation-size
/// comparison and for tests that check both structures reach one optimum.
struct FroNetwork {
  McfProblem problem;
  std::vector<CellId> cells;      // row-indexed movable cells
  std::vector<int> cellNode;      // node id of each cell's v_i
  int zNode = -1;
  std::vector<Interval> ranges;   // feasible left-edge ranges (half-open)
};

FroNetwork buildFixedRowOrderNetwork(const PlacementState& state,
                                     const SegmentMap& segments,
                                     const FixedRowOrderConfig& config);

}  // namespace mclg
