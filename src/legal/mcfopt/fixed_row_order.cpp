#include "legal/mcfopt/fixed_row_order.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "legal/refine/feasible_range.hpp"
#include "obs/obs.hpp"
#include "util/assert.hpp"
#include "util/executor/executor.hpp"
#include "util/logging.hpp"

namespace mclg {
namespace {

double weightedObjective(const Design& design,
                         const std::vector<CellId>& cells,
                         bool contestWeights) {
  double total = 0.0;
  for (const CellId c : cells) {
    const auto& cell = design.cells[c];
    const double w = contestWeights ? design.metricWeight(c) : 1.0;
    total += w * design.siteWidthFactor *
             std::abs(static_cast<double>(cell.x) - cell.gpX);
  }
  return total;
}

}  // namespace

namespace {

std::vector<CellId> placedMovableCells(const Design& design) {
  std::vector<CellId> cells;
  for (CellId c = 0; c < design.numCells(); ++c) {
    const auto& cell = design.cells[c];
    if (!cell.fixed && cell.placed) cells.push_back(c);
  }
  return cells;
}

/// Build the network for a subset of cells (a connected component of the
/// constraint graph, all placed movable cells, or any smaller selection).
/// Neighbor pairs with exactly one endpoint inside the subset get no arc;
/// instead the inside endpoint's feasible range is clamped against the
/// outside cell's current position, so the outside cell acts as a fixed
/// wall and the solve stays overlap-free for arbitrary subsets. For true
/// components no such pairs exist and the network is unchanged.
FroNetwork buildNetworkForCells(const PlacementState& state,
                                const SegmentMap& segments,
                                const FixedRowOrderConfig& config,
                                std::vector<CellId> subset) {
  const auto& design = state.design();
  FroNetwork net;
  net.cells = std::move(subset);
  std::vector<int> indexOf(static_cast<std::size_t>(design.numCells()), -1);
  for (std::size_t i = 0; i < net.cells.size(); ++i) {
    indexOf[static_cast<std::size_t>(net.cells[i])] = static_cast<int>(i);
  }
  const int m = static_cast<int>(net.cells.size());
  if (m == 0) return net;

  // Integer weights n_i (caps of the +- arcs).
  std::vector<FlowValue> weight(static_cast<std::size_t>(m), 1);
  long double weightSum = 0.0L;
  for (int i = 0; i < m; ++i) {
    if (config.contestWeights) {
      weight[static_cast<std::size_t>(i)] = std::max<FlowValue>(
          1,
          std::llround(design.metricWeight(net.cells[static_cast<std::size_t>(i)]) *
                       static_cast<double>(config.weightScale)));
    }
    weightSum += static_cast<long double>(weight[static_cast<std::size_t>(i)]);
  }
  const FlowValue n0 =
      config.maxDispWeight > 0.0
          ? std::max<FlowValue>(
                1, std::llround(config.maxDispWeight *
                                static_cast<double>(weightSum) / m))
          : 0;

  auto& problem = net.problem;
  const int base = problem.addNodes(m);
  net.zNode = problem.addNode();
  const int z = net.zNode;
  const int p = n0 > 0 ? problem.addNode() : -1;
  const int nNode = n0 > 0 ? problem.addNode() : -1;
  net.cellNode.resize(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) net.cellNode[static_cast<std::size_t>(i)] = base + i;

  std::vector<CostValue> gpX(static_cast<std::size_t>(m), 0);
  net.ranges.resize(static_cast<std::size_t>(m));
  CostValue maxDy = 0;
  std::vector<CostValue> dy(static_cast<std::size_t>(m), 0);
  for (int i = 0; i < m; ++i) {
    const CellId c = net.cells[static_cast<std::size_t>(i)];
    const auto& cell = design.cells[c];
    gpX[static_cast<std::size_t>(i)] = std::llround(cell.gpX);
    net.ranges[static_cast<std::size_t>(i)] =
        feasibleRange(design, segments, c, config.routability);
    // y displacement in site units so all costs share one unit.
    dy[static_cast<std::size_t>(i)] = std::llround(
        std::abs(static_cast<double>(cell.y) - cell.gpY) /
        design.siteWidthFactor);
    maxDy = std::max(maxDy, dy[static_cast<std::size_t>(i)]);
  }

  // Wall clamping for partial subsets: a subset cell abutting a cell
  // outside the subset must keep the pair's separation even though no arc
  // links them. The outside cell will not move during this solve, so
  // narrowing the inside cell's range to the gap beside the neighbor's
  // current x is exact. Runs before the range arcs below so li / ri pick
  // up the clamp; for component/full subsets no pair qualifies and the
  // ranges (and thus the arc sequence) are untouched.
  for (std::int64_t y = 0; y < design.numRows; ++y) {
    const auto& rowMap = state.rowCells(y);
    CellId prev = kInvalidCell;
    std::int64_t prevX = 0;
    for (const auto& [x, c] : rowMap) {
      if (prev != kInvalidCell) {
        const int inPrev = indexOf[static_cast<std::size_t>(prev)];
        const int inC = indexOf[static_cast<std::size_t>(c)];
        if ((inPrev >= 0) != (inC >= 0)) {
          CostValue sep =
              design.widthOf(prev) +
              (config.respectEdgeSpacing ? design.spacingBetween(prev, c) : 0);
          sep = std::min<CostValue>(sep, x - prevX);
          if (inC >= 0) {
            // `prev` is a wall on the left: x_c >= prevX + sep.
            auto& r = net.ranges[static_cast<std::size_t>(inC)];
            r.lo = std::max<std::int64_t>(r.lo, prevX + sep);
          } else {
            // `c` is a wall on the right: x_prev <= x - sep.
            auto& r = net.ranges[static_cast<std::size_t>(inPrev)];
            r.hi = std::min<std::int64_t>(r.hi, x - sep + 1);
          }
        }
      }
      prev = c;
      prevX = x;
    }
  }

  for (int i = 0; i < m; ++i) {
    const FlowValue ni = weight[static_cast<std::size_t>(i)];
    const CostValue xi = gpX[static_cast<std::size_t>(i)];
    const CostValue li = net.ranges[static_cast<std::size_t>(i)].lo;
    const CostValue ri = net.ranges[static_cast<std::size_t>(i)].hi - 1;
    if (config.mrdpStyleNetwork) {
      // MrDP-style expanded structure (§3.3 point (1)): keep the |x| aux
      // vertices v_i^+ / v_i^- in series with the cost arcs instead of
      // eliminating them — same flows, same optimum, 3m+2 nodes, 6m+|E|
      // arcs.
      const int plus = problem.addNode();
      const int minus = problem.addNode();
      problem.addArc(base + i, plus, ni, 0);
      problem.addArc(plus, z, ni, xi);            // f_i^+ via v_i^+
      problem.addArc(z, minus, ni, -xi);          // f_i^- via v_i^-
      problem.addArc(minus, base + i, ni, 0);
      problem.addArc(z, base + i, kInfiniteCap, -li);  // f_i^l
      problem.addArc(base + i, z, kInfiniteCap, ri);   // f_i^r
    } else {
      problem.addArc(base + i, z, ni, xi);             // f_i^+
      problem.addArc(z, base + i, ni, -xi);            // f_i^-
      problem.addArc(z, base + i, kInfiniteCap, -li);  // f_i^l
      problem.addArc(base + i, z, kInfiniteCap, ri);   // f_i^r
    }
    if (n0 > 0) {
      problem.addArc(base + i, p, kInfiniteCap,
                     xi - dy[static_cast<std::size_t>(i)]);  // f_i^p
      problem.addArc(nNode, base + i, kInfiniteCap,
                     -xi - dy[static_cast<std::size_t>(i)]);  // f_i^n
    }
  }
  if (n0 > 0) {
    problem.addArc(p, z, n0, maxDy);      // f^p
    problem.addArc(z, nNode, n0, maxDy);  // f^n
  }

  // Neighbor constraints E: consecutive movable cells in each row, deduped
  // (a pair abutting in several rows yields one constraint; the spacing is
  // identical in each row since it depends only on the two types).
  std::unordered_set<std::uint64_t> seenPairs;
  for (std::int64_t y = 0; y < design.numRows; ++y) {
    const auto& rowMap = state.rowCells(y);
    CellId prev = kInvalidCell;
    std::int64_t prevX = 0;
    for (const auto& [x, c] : rowMap) {
      if (prev != kInvalidCell) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(prev))
             << 32) |
            static_cast<std::uint32_t>(c);
        if (indexOf[static_cast<std::size_t>(prev)] >= 0 &&
            indexOf[static_cast<std::size_t>(c)] >= 0 &&
            seenPairs.insert(key).second) {
          CostValue sep =
              design.widthOf(prev) +
              (config.respectEdgeSpacing ? design.spacingBetween(prev, c) : 0);
          // A last-resort placement may already violate the (soft) spacing
          // rule; clamping to the existing separation keeps the LP feasible
          // without letting any pair get closer than it already is.
          sep = std::min<CostValue>(sep, x - prevX);
          problem.addArc(base + indexOf[static_cast<std::size_t>(prev)],
                         base + indexOf[static_cast<std::size_t>(c)],
                         kInfiniteCap, -sep);
        }
      }
      prev = c;
      prevX = x;
    }
  }
  return net;
}

}  // namespace

FroNetwork buildFixedRowOrderNetwork(const PlacementState& state,
                                     const SegmentMap& segments,
                                     const FixedRowOrderConfig& config) {
  return buildNetworkForCells(state, segments, config,
                              placedMovableCells(state.design()));
}

namespace {

/// Solve one subset's network and append its moves. With `reuse`, the solve
/// goes through the persistent solver (cold on first use, warm after).
void solveSubset(const PlacementState& state, const SegmentMap& segments,
                 const FixedRowOrderConfig& config, std::vector<CellId> subset,
                 std::vector<std::pair<CellId, std::int64_t>>* moves,
                 FroSolverReuse* reuse = nullptr) {
  const auto& design = state.design();
  MCLG_TRACE_SCOPE("mcfopt/component",
                   {{"cells", static_cast<double>(subset.size())}});
  const FroNetwork net =
      buildNetworkForCells(state, segments, config, std::move(subset));
  if (net.cells.empty()) return;
  if (obs::metricsEnabled()) {
    obs::counter("mcfopt.components").add();
    obs::counter("mcfopt.nodes").add(net.problem.numNodes());
    obs::counter("mcfopt.arcs").add(net.problem.numArcs());
  }
  McfSolution sol;
  if (reuse != nullptr) {
    sol = reuse->hasBasis ? reuse->solver.solveWarm(net.problem)
                          : reuse->solver.solve(net.problem);
    reuse->hasBasis = true;
  } else {
    sol = NetworkSimplex::solve(net.problem);
  }
  MCLG_ASSERT(sol.status == McfStatus::Optimal,
              "fixed-row-order MCF must be optimal (zero flow is feasible)");
  // Read positions back from the potentials: x_i = pi(v_z) - pi(v_i).
  const CostValue piZ = sol.potential[static_cast<std::size_t>(net.zNode)];
  for (std::size_t i = 0; i < net.cells.size(); ++i) {
    const CellId c = net.cells[i];
    std::int64_t x = piZ - sol.potential[static_cast<std::size_t>(net.cellNode[i])];
    const auto& r = net.ranges[i];
    MCLG_ASSERT(x >= r.lo && x <= r.hi - 1,
                "MCF potentials violate a feasible range");
    x = std::clamp<std::int64_t>(x, r.lo, r.hi - 1);
    if (x != design.cells[c].x) moves->emplace_back(c, x);
  }
}

/// Apply moves transactionally: remove every moved cell first, then
/// re-place left-to-right (the MCF respects the separations, so sorted
/// placement never collides).
void applyMoves(PlacementState& state,
                std::vector<std::pair<CellId, std::int64_t>>& moves) {
  const auto& design = state.design();
  for (const auto& [c, x] : moves) {
    (void)x;
    state.remove(c);
  }
  std::sort(moves.begin(), moves.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [c, x] : moves) {
    state.place(c, x, design.cells[c].y);
  }
}

void finishStats(const Design& design, const std::vector<CellId>& cells,
                 const FixedRowOrderConfig& config, int moved,
                 FixedRowOrderStats* stats) {
  stats->cellsMoved = moved;
  if (obs::metricsEnabled()) {
    obs::counter("mcfopt.cells_moved").add(moved);
  }
  stats->objectiveAfter =
      weightedObjective(design, cells, config.contestWeights);
  if (stats->objectiveAfter > stats->objectiveBefore + 1e-6) {
    // Only possible through the integer rounding of GP positions and
    // weights; should stay within rounding noise.
    MCLG_LOG_WARN() << "fixed-row-order objective regressed: "
                    << stats->objectiveBefore << " -> "
                    << stats->objectiveAfter;
  }
}

}  // namespace

std::vector<std::vector<CellId>> fixedRowOrderComponents(
    const PlacementState& state) {
  const auto& design = state.design();
  // Union-find over the neighbor constraint graph.
  std::vector<CellId> parent(static_cast<std::size_t>(design.numCells()));
  for (CellId c = 0; c < design.numCells(); ++c) parent[static_cast<std::size_t>(c)] = c;
  std::function<CellId(CellId)> find = [&](CellId c) {
    while (parent[static_cast<std::size_t>(c)] != c) {
      parent[static_cast<std::size_t>(c)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(c)])];
      c = parent[static_cast<std::size_t>(c)];
    }
    return c;
  };
  for (std::int64_t y = 0; y < design.numRows; ++y) {
    CellId prev = kInvalidCell;
    for (const auto& [x, c] : state.rowCells(y)) {
      (void)x;
      if (prev != kInvalidCell) {
        parent[static_cast<std::size_t>(find(prev))] = find(c);
      }
      prev = c;
    }
  }
  std::unordered_map<CellId, std::size_t> componentIndex;
  std::vector<std::vector<CellId>> components;
  for (const CellId c : placedMovableCells(design)) {
    const CellId root = find(c);
    auto [it, inserted] = componentIndex.emplace(root, components.size());
    if (inserted) components.emplace_back();
    components[it->second].push_back(c);
  }
  return components;
}

FixedRowOrderStats optimizeFixedRowOrder(PlacementState& state,
                                         const SegmentMap& segments,
                                         const FixedRowOrderConfig& config) {
  auto& design = state.design();
  FixedRowOrderStats stats;

  const std::vector<CellId> all = placedMovableCells(design);
  const int m = static_cast<int>(all.size());
  if (m == 0) return stats;
  stats.objectiveBefore = weightedObjective(design, all, config.contestWeights);

  std::vector<std::pair<CellId, std::int64_t>> moves;
  // The §3.3.1 max-displacement term couples every cell, so component
  // decomposition is only exact for the plain objective.
  if (config.numThreads > 1 && config.maxDispWeight == 0.0) {
    const std::vector<std::vector<CellId>> components =
        fixedRowOrderComponents(state);
    std::vector<std::vector<std::pair<CellId, std::int64_t>>> perComponent(
        components.size());
    config.executor.parallelForBatch(
        static_cast<int>(components.size()), config.numThreads, [&](int i) {
          solveSubset(state, segments, config,
                      components[static_cast<std::size_t>(i)],
                      &perComponent[static_cast<std::size_t>(i)]);
        });
    for (auto& part : perComponent) {
      moves.insert(moves.end(), part.begin(), part.end());
    }
  } else {
    solveSubset(state, segments, config, all, &moves);
  }

  applyMoves(state, moves);
  finishStats(design, all, config, static_cast<int>(moves.size()), &stats);
  return stats;
}

FixedRowOrderStats optimizeFixedRowOrderSubset(
    PlacementState& state, const SegmentMap& segments,
    const FixedRowOrderConfig& config, std::vector<CellId> subset,
    FroSolverReuse* reuse) {
  auto& design = state.design();
  FixedRowOrderStats stats;
  if (subset.empty()) return stats;
  stats.objectiveBefore =
      weightedObjective(design, subset, config.contestWeights);

  std::vector<std::pair<CellId, std::int64_t>> moves;
  const std::vector<CellId> cells = subset;  // keep a copy for the stats
  solveSubset(state, segments, config, std::move(subset), &moves, reuse);

  applyMoves(state, moves);
  finishStats(design, cells, config, static_cast<int>(moves.size()), &stats);
  return stats;
}

}  // namespace mclg
