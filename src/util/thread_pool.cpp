#include "util/thread_pool.hpp"

#include "util/executor/executor.hpp"

namespace mclg {

ThreadPool::ThreadPool(int numThreads)
    : numThreads_(numThreads < 1 ? 1 : numThreads) {
  if (numThreads_ > 1) {
    // The caller participates in every batch, so n-1 workers give the same
    // n concurrent lanes as the old n-worker pool.
    executor_ = std::make_unique<Executor>(numThreads_ - 1);
  }
}

ThreadPool::~ThreadPool() = default;

void ThreadPool::parallelForBatch(int count,
                                  const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (executor_ == nullptr) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  executor_->parallelForBatch(count, numThreads_,
                              [&fn](int i) { fn(i); });
}

}  // namespace mclg
