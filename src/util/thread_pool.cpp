#include "util/thread_pool.hpp"

#include "util/assert.hpp"

namespace mclg {

ThreadPool::ThreadPool(int numThreads) : numThreads_(numThreads < 1 ? 1 : numThreads) {
  if (numThreads_ > 1) {
    workers_.reserve(numThreads_);
    for (int i = 0; i < numThreads_; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wakeWorkers_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallelForBatch(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (workers_.empty()) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  MCLG_ASSERT(batchFn_ == nullptr, "nested parallelForBatch is not supported");
  batchFn_ = &fn;
  batchError_ = nullptr;
  batchCount_ = count;
  nextIndex_ = 0;
  remaining_ = count;
  wakeWorkers_.notify_all();
  batchDone_.wait(lock, [this] { return remaining_ == 0; });
  batchFn_ = nullptr;
  if (batchError_ != nullptr) {
    std::exception_ptr error = batchError_;
    batchError_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wakeWorkers_.wait(lock, [this] {
      return shutdown_ || (batchFn_ != nullptr && nextIndex_ < batchCount_);
    });
    if (shutdown_) return;
    while (batchFn_ != nullptr && nextIndex_ < batchCount_) {
      const int index = nextIndex_++;
      const auto* fn = batchFn_;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*fn)(index);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error != nullptr && batchError_ == nullptr) batchError_ = error;
      if (--remaining_ == 0) batchDone_.notify_all();
    }
  }
}

}  // namespace mclg
