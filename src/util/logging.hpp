// Minimal leveled logging used across the library.
//
// Levels are filtered at runtime via setLogLevel(); output goes to stderr so
// that benchmark tables on stdout stay machine-readable. Each log statement
// is flushed as ONE write under a mutex, so lines from concurrent MGL
// workers never interleave mid-line. setLogFormat(LogFormat::Json) switches
// the same sink to one JSON object per line ({"ts","level","tid","msg"}) for
// log collectors; the CLI exposes it as --log-json.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace mclg {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Silent = 4 };
enum class LogFormat { Text = 0, Json = 1 };

/// Set the global minimum level that is actually emitted.
void setLogLevel(LogLevel level);
LogLevel logLevel();

void setLogFormat(LogFormat format);
LogFormat logFormat();

/// Redirect fully formatted lines (no trailing newline) away from stderr —
/// used by tests to assert on atomicity and JSON shape. The sink runs under
/// the emit mutex; pass nullptr to restore stderr.
void setLogSink(std::function<void(const std::string&)> sink);

namespace detail {
void logEmit(LogLevel level, const std::string& msg);
}

/// Streaming log statement: collects the message and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { detail::logEmit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace mclg

#define MCLG_LOG_DEBUG() ::mclg::LogLine(::mclg::LogLevel::Debug)
#define MCLG_LOG_INFO() ::mclg::LogLine(::mclg::LogLevel::Info)
#define MCLG_LOG_WARN() ::mclg::LogLine(::mclg::LogLevel::Warn)
#define MCLG_LOG_ERROR() ::mclg::LogLine(::mclg::LogLevel::Error)
