// Wall-clock + CPU-time timer used for the runtime columns of the
// benchmark tables and the per-stage time gauges of the run report.
//
// The timer is an accumulating stopwatch: it starts running on
// construction, pause()/resume() exclude intervals from the total, and
// seconds()/cpuSeconds() read the accumulated running time at any point.
// CPU time is the calling thread's CLOCK_THREAD_CPUTIME_ID where
// available (POSIX), falling back to process std::clock() otherwise —
// reading it from a different thread than the one being measured gives
// that reader's clock, so keep a Timer on the thread it times.
#pragma once

#include <chrono>
#include <ctime>

namespace mclg {

class Timer {
 public:
  Timer() { reset(); }

  /// Restart from zero, running.
  void reset() {
    accumulatedWall_ = 0.0;
    accumulatedCpu_ = 0.0;
    running_ = true;
    start_ = Clock::now();
    cpuStart_ = threadCpuSeconds();
  }

  /// Stop accumulating; idempotent.
  void pause() {
    if (!running_) return;
    accumulatedWall_ += std::chrono::duration<double>(Clock::now() - start_)
                            .count();
    accumulatedCpu_ += threadCpuSeconds() - cpuStart_;
    running_ = false;
  }

  /// Continue accumulating after pause(); idempotent.
  void resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
    cpuStart_ = threadCpuSeconds();
  }

  bool running() const { return running_; }

  /// Accumulated wall-clock seconds (excluding paused intervals).
  double seconds() const {
    double total = accumulatedWall_;
    if (running_) {
      total +=
          std::chrono::duration<double>(Clock::now() - start_).count();
    }
    return total;
  }

  /// Accumulated CPU seconds of the calling thread over the running
  /// intervals (see the header note on cross-thread reads).
  double cpuSeconds() const {
    double total = accumulatedCpu_;
    if (running_) total += threadCpuSeconds() - cpuStart_;
    return total;
  }

  /// Absolute CPU time of the calling thread, for ad-hoc deltas.
  static double threadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double cpuStart_ = 0.0;
  double accumulatedWall_ = 0.0;
  double accumulatedCpu_ = 0.0;
  bool running_ = true;
};

}  // namespace mclg
