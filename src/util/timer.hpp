// Wall-clock timer used for the runtime columns of the benchmark tables.
#pragma once

#include <chrono>

namespace mclg {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mclg
