// Small fixed-size thread pool with a parallel-for-batch primitive.
//
// The MGL scheduler (§3.5 of the paper) runs batches of non-overlapping
// windows in parallel and synchronizes between batches; parallelForBatch()
// is exactly that barrier-style primitive, so determinism is preserved as
// long as the batch contents are deterministic.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mclg {

class ThreadPool {
 public:
  /// numThreads <= 1 degenerates to inline execution (no worker threads).
  explicit ThreadPool(int numThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int numThreads() const { return numThreads_; }

  /// Run fn(i) for i in [0, count) across the pool and wait for all of them.
  /// A task that throws does not take the process down: the batch still
  /// drains (remaining tasks run), and the first exception is rethrown
  /// here, in the calling thread — so stage transactions observe worker
  /// failures as ordinary exceptions they can roll back from.
  void parallelForBatch(int count, const std::function<void(int)>& fn);

 private:
  void workerLoop();

  int numThreads_;
  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wakeWorkers_;
  std::condition_variable batchDone_;
  const std::function<void(int)>* batchFn_ = nullptr;
  std::exception_ptr batchError_;
  int batchCount_ = 0;
  int nextIndex_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace mclg
