// Legacy fixed-size thread pool, now a thin shim over the work-stealing
// executor (util/executor/). Kept so tests and out-of-tree callers keep
// compiling; pipeline stages borrow Executor::global() through ExecutorRef
// instead of constructing pools.
//
// The contract is unchanged: parallelForBatch(count, fn) runs fn(i) once
// for every i in [0, count), acts as a barrier, drains the batch on task
// exceptions and rethrows the first one in the calling thread. What changed
// underneath is the task handout — indices are claimed in atomic chunks
// (fetch_add) from the executor instead of through the old mutex-guarded
// nextIndex_ counter.
//
// ThreadPool(n) owns a private Executor with n-1 workers; the calling
// thread participates as the n-th lane, so parallelism matches the old
// n-worker pool. numThreads <= 1 keeps the inline no-thread fast path.
#pragma once

#include <functional>
#include <memory>

namespace mclg {

class Executor;

class ThreadPool {
 public:
  /// numThreads <= 1 degenerates to inline execution (no worker threads).
  explicit ThreadPool(int numThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int numThreads() const { return numThreads_; }

  /// Run fn(i) for i in [0, count) across the pool and wait for all of them.
  /// A task that throws does not take the process down: the batch still
  /// drains (remaining tasks run), and the first exception is rethrown
  /// here, in the calling thread — so stage transactions observe worker
  /// failures as ordinary exceptions they can roll back from.
  void parallelForBatch(int count, const std::function<void(int)>& fn);

 private:
  int numThreads_;
  std::unique_ptr<Executor> executor_;  // null when numThreads_ <= 1
};

}  // namespace mclg
