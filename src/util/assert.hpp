// Library assertion macro: active in all build types (legalizers silently
// producing illegal placements are much worse than an abort).
#pragma once

#include <cstdio>
#include <cstdlib>

#define MCLG_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "[mclg ASSERT] %s:%d: %s — %s\n", __FILE__,      \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)
