#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace mclg {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_emitMutex;

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Silent: return "     ";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

namespace detail {

void logEmit(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_emitMutex);
  std::fprintf(stderr, "[mclg %s] %s\n", levelTag(level), msg.c_str());
}

}  // namespace detail
}  // namespace mclg
