#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <thread>

namespace mclg {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<LogFormat> g_format{LogFormat::Text};
std::mutex g_emitMutex;
std::function<void(const std::string&)> g_sink;  // guarded by g_emitMutex

const char* levelTag(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Silent: return "     ";
  }
  return "?";
}

const char* levelNameJson(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Silent: return "silent";
  }
  return "?";
}

// Local escaper: util must not depend on obs, and the needs here are small.
void appendEscaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::uint64_t currentTid() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

std::string formatLine(LogLevel level, const std::string& msg) {
  if (g_format.load(std::memory_order_relaxed) == LogFormat::Text) {
    std::string line = "[mclg ";
    line += levelTag(level);
    line += "] ";
    line += msg;
    return line;
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const double ts =
      std::chrono::duration<double>(now).count();
  // ts_ms is the same instant as an integer millisecond count: interleaved
  // worker logs sort with a plain integer compare, no float parsing.
  const long long tsMs =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  char head[160];
  std::snprintf(
      head, sizeof(head),
      "{\"ts\":%.6f,\"ts_ms\":%lld,\"level\":\"%s\",\"tid\":%llu,\"msg\":\"",
      ts, tsMs, levelNameJson(level),
      static_cast<unsigned long long>(currentTid()));
  std::string line = head;
  appendEscaped(line, msg);
  line += "\"}";
  return line;
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void setLogFormat(LogFormat format) { g_format.store(format); }
LogFormat logFormat() { return g_format.load(); }

void setLogSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(g_emitMutex);
  g_sink = std::move(sink);
}

namespace detail {

void logEmit(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  // Build the whole line first so the critical section is one write and
  // concurrent workers can never interleave mid-line.
  std::string line = formatLine(level, msg);
  std::lock_guard<std::mutex> lock(g_emitMutex);
  if (g_sink) {
    g_sink(line);
    return;
  }
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace detail
}  // namespace mclg
