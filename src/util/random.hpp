// Deterministic RNG (splitmix64 + xoshiro256**).
//
// Benchmarks and the synthetic design generators must be reproducible across
// platforms, so we avoid std::mt19937/std::uniform_* (whose outputs are
// implementation-defined for real distributions) and ship our own.
#pragma once

#include <cstdint>

namespace mclg {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial.
  bool chance(double p);

  /// Pick an index in [0, n) with probability proportional to weights[i].
  /// Returns n-1 on degenerate input (all-zero weights).
  int weightedIndex(const double* weights, int n);

 private:
  std::uint64_t state_[4];
};

}  // namespace mclg
