#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace mclg {
namespace {

bool looksNumeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'E' && c != '%') {
      return false;
    }
  }
  return true;
}

std::string csvEscape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> row) {
  MCLG_ASSERT(row.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(row));
}

std::string Table::toString() const {
  const int cols = static_cast<int>(header_.size());
  std::vector<std::size_t> width(cols, 0);
  for (int c = 0; c < cols; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (int c = 0; c < cols; ++c) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (int c = 0; c < cols; ++c) {
      const auto pad = width[c] - row[c].size();
      if (looksNumeric(row[c])) {
        out << std::string(pad, ' ') << row[c];
      } else {
        out << row[c] << std::string(pad, ' ');
      }
      out << (c + 1 == cols ? "\n" : "  ");
    }
  };
  emitRow(header_);
  std::size_t total = 0;
  for (int c = 0; c < cols; ++c) total += width[c] + (c + 1 == cols ? 0 : 2);
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emitRow(row);
  return out.str();
}

std::string Table::toCsv() const {
  std::ostringstream out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csvEscape(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    }
  };
  emitRow(header_);
  for (const auto& row : rows_) emitRow(row);
  return out.str();
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::fmt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

std::string Table::pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

}  // namespace mclg
