#include "util/random.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace mclg {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  MCLG_ASSERT(lo <= hi, "uniformInt with empty range");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::uniformReal(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; u1 nudged away from 0 to keep log() finite.
  const double u1 = uniform01() + 1e-18;
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::chance(double p) { return uniform01() < p; }

int Rng::weightedIndex(const double* weights, int n) {
  MCLG_ASSERT(n > 0, "weightedIndex with no entries");
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += weights[i];
  double target = uniform01() * total;
  for (int i = 0; i < n; ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return n - 1;
}

}  // namespace mclg
