// Fixed-width ASCII table printer + CSV writer.
//
// The benchmark binaries reproduce the paper's tables; this keeps the
// formatting logic out of every bench main().
#pragma once

#include <string>
#include <vector>

namespace mclg {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void addRow(std::vector<std::string> row);

  /// Number of data rows.
  int numRows() const { return static_cast<int>(rows_.size()); }

  /// Render with aligned columns (numbers right-aligned, text left-aligned).
  std::string toString() const;

  /// Render as RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string toCsv() const;

  /// Convenience formatting helpers for cells.
  static std::string fmt(double value, int precision);
  static std::string fmt(long long value);
  static std::string pct(double ratio, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mclg
