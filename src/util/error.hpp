// Recoverable-error path of the library.
//
// MCLG_ASSERT (util/assert.hpp) aborts: it guards internal invariants whose
// violation means the process state can no longer be trusted. MCLG_CHECK
// throws MclgError instead: it guards conditions a caller can recover from
// by rolling back to a known-good snapshot — the pipeline guard
// (legal/guard/) catches MclgError at stage boundaries, restores the
// pre-stage PlacementState, and applies a degradation policy.
#pragma once

#include <stdexcept>
#include <string>

namespace mclg {

/// Classification of a recoverable failure, recorded in GuardReport.
enum class ErrorKind {
  Internal,    // violated MCLG_CHECK / unexpected stage exception
  Timeout,     // stage wall-clock budget exhausted (cooperative cancel)
  Injected,    // synthetic fault from a FaultPlan (tests only)
};

class MclgError : public std::runtime_error {
 public:
  explicit MclgError(std::string message, ErrorKind kind = ErrorKind::Internal)
      : std::runtime_error(std::move(message)), kind_(kind) {}

  ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

}  // namespace mclg

/// Recoverable sibling of MCLG_ASSERT: throws MclgError so a transaction
/// boundary can catch, roll back, and degrade instead of aborting.
#define MCLG_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      throw ::mclg::MclgError(std::string(__FILE__) + ":" +                 \
                              std::to_string(__LINE__) + ": " #cond " — " + \
                              (msg));                                       \
    }                                                                       \
  } while (0)
