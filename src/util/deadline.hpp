// Wall-clock stage deadline for cooperative cancellation.
//
// A Deadline is captured at stage entry from the configured per-stage
// budget; long-running loops (the MGL scheduler) call checkpoint() at safe
// points, which throws MclgError(Timeout) once the budget is exhausted.
// The guard catches the throw at the transaction boundary and rolls the
// stage back, so "over budget" degrades gracefully instead of wedging the
// pipeline.
#pragma once

#include <chrono>

#include "util/error.hpp"

namespace mclg {

class Deadline {
 public:
  /// Unlimited deadline (never expires).
  Deadline() = default;

  /// Expires `budgetSeconds` from now; <= 0 means unlimited.
  static Deadline after(double budgetSeconds) {
    Deadline d;
    if (budgetSeconds > 0.0) {
      d.limited_ = true;
      d.expiry_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(budgetSeconds));
    }
    return d;
  }

  /// Already-expired deadline (used by fault injection to simulate budget
  /// exhaustion deterministically).
  static Deadline expired() {
    Deadline d;
    d.limited_ = true;
    d.expiry_ = Clock::now() - Clock::duration(1);
    return d;
  }

  /// The earlier-expiring of two deadlines; an unlimited deadline never
  /// wins over a limited one. Used to combine a per-stage budget with a
  /// request-scoped budget (serving: GuardConfig::requestDeadline).
  static Deadline earliest(const Deadline& a, const Deadline& b) {
    if (!a.limited_) return b;
    if (!b.limited_) return a;
    return a.expiry_ <= b.expiry_ ? a : b;
  }

  bool limited() const { return limited_; }
  bool expiredNow() const { return limited_ && Clock::now() >= expiry_; }

  /// Cancellation point: throws MclgError(Timeout) when expired.
  void checkpoint(const char* what) const {
    if (expiredNow()) {
      throw MclgError(std::string(what) + ": stage wall-clock budget exhausted",
                      ErrorKind::Timeout);
    }
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool limited_ = false;
  Clock::time_point expiry_{};
};

}  // namespace mclg
