#include "util/executor/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace mclg {
namespace {

int defaultWorkerCount() {
  if (const char* env = std::getenv("MCLG_EXECUTOR_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : static_cast<int>(hw);
}

}  // namespace

struct Executor::Impl {
  struct TaskBase {
    virtual ~TaskBase() = default;
    virtual void run() = 0;
  };

  // ---- Chase-Lev work-stealing deque (Le et al., PPoPP'13 orderings). ----
  // One per worker; the owner pushes/pops at the bottom, thieves take from
  // the top. Grown rings are retired, not freed, so a concurrent thief can
  // finish its read of the old array.
  class Deque {
   public:
    Deque() : buffer_(new Ring(kInitialCapacity)) {}
    ~Deque() { delete buffer_.load(std::memory_order_relaxed); }

    void push(TaskBase* task) {
      const std::int64_t b = bottom_.load(std::memory_order_relaxed);
      const std::int64_t t = top_.load(std::memory_order_acquire);
      Ring* ring = buffer_.load(std::memory_order_relaxed);
      if (b - t > ring->capacity - 1) ring = grow(ring, t, b);
      ring->put(b, task);
      std::atomic_thread_fence(std::memory_order_release);
      bottom_.store(b + 1, std::memory_order_relaxed);
    }

    TaskBase* pop() {
      const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
      Ring* ring = buffer_.load(std::memory_order_relaxed);
      bottom_.store(b, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      std::int64_t t = top_.load(std::memory_order_relaxed);
      TaskBase* task = nullptr;
      if (t <= b) {
        task = ring->get(b);
        if (t == b) {
          // Last element: race the thieves for it.
          if (!top_.compare_exchange_strong(t, t + 1,
                                            std::memory_order_seq_cst,
                                            std::memory_order_relaxed)) {
            task = nullptr;
          }
          bottom_.store(b + 1, std::memory_order_relaxed);
        }
      } else {
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return task;
    }

    TaskBase* steal() {
      std::int64_t t = top_.load(std::memory_order_acquire);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const std::int64_t b = bottom_.load(std::memory_order_acquire);
      if (t >= b) return nullptr;
      Ring* ring = buffer_.load(std::memory_order_acquire);
      TaskBase* task = ring->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;  // lost the race; caller treats it as empty
      }
      return task;
    }

    bool maybeNonEmpty() const {
      return bottom_.load(std::memory_order_relaxed) >
             top_.load(std::memory_order_relaxed);
    }

   private:
    static constexpr std::int64_t kInitialCapacity = 64;

    struct Ring {
      explicit Ring(std::int64_t cap)
          : capacity(cap), mask(cap - 1),
            slots(new std::atomic<TaskBase*>[static_cast<std::size_t>(cap)]) {
      }
      TaskBase* get(std::int64_t i) const {
        return slots[static_cast<std::size_t>(i & mask)].load(
            std::memory_order_relaxed);
      }
      void put(std::int64_t i, TaskBase* task) {
        slots[static_cast<std::size_t>(i & mask)].store(
            task, std::memory_order_relaxed);
      }
      const std::int64_t capacity;
      const std::int64_t mask;
      std::unique_ptr<std::atomic<TaskBase*>[]> slots;
    };

    Ring* grow(Ring* old, std::int64_t top, std::int64_t bottom) {
      Ring* next = new Ring(old->capacity * 2);
      for (std::int64_t i = top; i < bottom; ++i) next->put(i, old->get(i));
      buffer_.store(next, std::memory_order_release);
      // The old ring is *retired*, not freed: a concurrent thief that
      // loaded it before the swap may still be reading a slot. It stays
      // allocated until the deque dies (the destructor frees the live ring
      // plus this list).
      retired_.emplace_back(old);
      return next;
    }

    std::atomic<std::int64_t> top_{0};
    std::atomic<std::int64_t> bottom_{0};
    std::atomic<Ring*> buffer_;
    std::vector<std::unique_ptr<Ring>> retired_;  // owner-thread only
  };

  // ---- Batch state: one per parallelForBatch call that goes wide. ----
  // Heap-shared so helper tasks that run *after* the batch drained (their
  // claim finds next >= count) can still touch it safely; the FunctionRef
  // is only invoked for claimed indices, which all precede the caller's
  // return.
  struct BatchState {
    BatchState(FunctionRef<void(int)> f, int n, int chunkSize)
        : fn(f), count(n), chunk(chunkSize) {}
    FunctionRef<void(int)> fn;
    const int count;
    const int chunk;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;  // first failure, guarded by mutex
  };

  struct BatchTask : TaskBase {
    BatchTask(Impl* i, std::shared_ptr<BatchState> s)
        : impl(i), state(std::move(s)) {}
    void run() override { impl->runBatchChunks(*state); }
    Impl* impl;
    std::shared_ptr<BatchState> state;
  };

  struct FunctionTask : TaskBase {
    explicit FunctionTask(std::function<void()> f) : fn(std::move(f)) {}
    void run() override { fn(); }
    std::function<void()> fn;
  };

  struct Worker {
    Deque deque;
    std::uint64_t rngState = 0;  // xorshift for victim selection
  };

  explicit Impl(int numWorkers) {
    const int n = std::max(1, numWorkers);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.push_back(std::make_unique<Worker>());
      workers_.back()->rngState = 0x9e3779b97f4a7c15ULL * (i + 1) + 1;
    }
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      threads_.emplace_back([this, i] { workerLoop(i); });
    }
  }

  ~Impl() {
    shutdown_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(sleepMutex_);
    }
    sleepCv_.notify_all();
    for (auto& thread : threads_) thread.join();
    // Nothing should be queued at destruction (batches join, the batch
    // driver waits for its submissions), but drain defensively.
    for (auto& worker : workers_) {
      while (TaskBase* task = worker->deque.pop()) delete task;
    }
    for (TaskBase* task : injector_) delete task;
  }

  // Each thread remembers which executor it works for, so nested
  // parallelForBatch / submit calls from inside a task use the local deque.
  static thread_local Impl* tlsOwner;
  static thread_local int tlsWorkerIndex;

  void workerLoop(int index) {
    tlsOwner = this;
    tlsWorkerIndex = index;
    Worker& self = *workers_[static_cast<std::size_t>(index)];
    for (;;) {
      // Capture the signal BEFORE scanning: any production after this point
      // bumps it, so the park predicate cannot miss it.
      const std::uint64_t seen = signal_.load(std::memory_order_acquire);
      if (TaskBase* task = findTask(self, index)) {
        try {
          task->run();
        } catch (...) {
          // Batch tasks catch internally (the first error is rethrown in
          // the calling thread); only a submit()-ed task can land here.
          // Letting it escape would std::terminate the whole process from
          // a worker thread, taking every in-flight design down — report
          // and keep the worker alive instead. The counter surfaces the
          // drop in the run report (executor.tasks.escaped_exceptions);
          // stderr alone is invisible to report consumers.
          if (obs::metricsEnabled()) {
            static obs::Counter& c =
                obs::counter("executor.tasks.escaped_exceptions");
            c.add();
          }
          std::fprintf(
              stderr,
              "mclg: uncaught exception escaped an executor task; dropped\n");
        }
        delete task;
        continue;
      }
      if (shutdown_.load(std::memory_order_acquire)) return;
      park(seen);
    }
  }

  TaskBase* findTask(Worker& self, int index) {
    if (TaskBase* task = self.deque.pop()) return task;
    // One full round over the other workers, random starting victim.
    const int n = static_cast<int>(workers_.size());
    if (n > 1) {
      self.rngState ^= self.rngState << 13;
      self.rngState ^= self.rngState >> 7;
      self.rngState ^= self.rngState << 17;
      const int start = static_cast<int>(self.rngState % static_cast<std::uint64_t>(n));
      for (int k = 0; k < n; ++k) {
        const int victim = (start + k) % n;
        if (victim == index) continue;
        if (TaskBase* task =
                workers_[static_cast<std::size_t>(victim)]->deque.steal()) {
          steals_.fetch_add(1, std::memory_order_relaxed);
          if (obs::metricsEnabled()) {
            static obs::Counter& c = obs::counter("executor.steals");
            c.add();
          }
          return task;
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(injectorMutex_);
      if (!injector_.empty()) {
        TaskBase* task = injector_.front();
        injector_.pop_front();
        return task;
      }
    }
    return nullptr;
  }

  void park(std::uint64_t seen) {
    std::unique_lock<std::mutex> lock(sleepMutex_);
    if (shutdown_.load(std::memory_order_acquire) ||
        signal_.load(std::memory_order_seq_cst) != seen) {
      return;  // something arrived between the scan and here — rescan
    }
    ++sleepers_;
    parks_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metricsEnabled()) {
      static obs::Counter& c = obs::counter("executor.parks");
      c.add();
    }
    sleepCv_.wait(lock, [&] {
      return shutdown_.load(std::memory_order_acquire) ||
             signal_.load(std::memory_order_seq_cst) != seen;
    });
    --sleepers_;
  }

  /// Make up to `hint` parked workers rescan. Must run *after* the new work
  /// is visible in some queue.
  void wake(int hint) {
    signal_.fetch_add(1, std::memory_order_seq_cst);
    bool woke = false;
    {
      std::lock_guard<std::mutex> lock(sleepMutex_);
      if (sleepers_ > 0) {
        woke = true;
        if (hint >= sleepers_) {
          sleepCv_.notify_all();
        } else {
          for (int i = 0; i < hint; ++i) sleepCv_.notify_one();
        }
      }
    }
    if (woke) {
      unparks_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metricsEnabled()) {
        static obs::Counter& c = obs::counter("executor.unparks");
        c.add();
      }
    }
  }

  void enqueue(TaskBase* task, int wakeHint) {
    if (tlsOwner == this && tlsWorkerIndex >= 0) {
      // On one of our workers: push to the local deque (stealable).
      workers_[static_cast<std::size_t>(tlsWorkerIndex)]->deque.push(task);
    } else {
      std::lock_guard<std::mutex> lock(injectorMutex_);
      injector_.push_back(task);
      if (obs::metricsEnabled()) {
        static obs::Gauge& g = obs::gauge("executor.queue_depth");
        g.max(static_cast<double>(injector_.size()));
      }
    }
    wake(wakeHint);
  }

  void runBatchChunks(BatchState& state) {
    for (;;) {
      const int begin =
          state.next.fetch_add(state.chunk, std::memory_order_relaxed);
      if (begin >= state.count) return;
      chunkGrabs_.fetch_add(1, std::memory_order_relaxed);
      if (obs::metricsEnabled()) {
        static obs::Counter& c = obs::counter("executor.chunk_grabs");
        c.add();
      }
      const int end = std::min(begin + state.chunk, state.count);
      for (int i = begin; i < end; ++i) {
        try {
          state.fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(state.mutex);
          if (!state.error) state.error = std::current_exception();
        }
        // Per-index (not per-chunk) completion: the caller's wait predicate
        // is done == count, and acq_rel publishes the task's side effects.
        if (state.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            state.count) {
          std::lock_guard<std::mutex> lock(state.mutex);
          state.cv.notify_all();
        }
      }
    }
  }

  void runBatch(int count, int lanes, FunctionRef<void(int)> fn) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (obs::metricsEnabled()) {
      static obs::Counter& c = obs::counter("executor.batches");
      c.add();
    }
    // Chunked handout: small counts degenerate to chunk 1 (each lane takes
    // one index at a time, like the old pool), large counts amortize the
    // fetch_add over ~4 chunks per lane.
    const int chunk = std::max(1, count / (lanes * 4));
    auto state = std::make_shared<BatchState>(fn, count, chunk);
    const int helpers = lanes - 1;
    for (int h = 0; h < helpers; ++h) {
      enqueue(new BatchTask(this, state), 1);
    }
    // The caller is a lane too: by the time it waits, every index has been
    // claimed by a running thread, so completion needs no free worker.
    runBatchChunks(*state);
    {
      std::unique_lock<std::mutex> lock(state->mutex);
      state->cv.wait(lock, [&] {
        return state->done.load(std::memory_order_acquire) == state->count;
      });
    }
    if (state->error) std::rethrow_exception(state->error);
  }

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex injectorMutex_;
  std::deque<TaskBase*> injector_;  // tasks from non-worker threads

  std::mutex sleepMutex_;
  std::condition_variable sleepCv_;
  int sleepers_ = 0;  // guarded by sleepMutex_
  std::atomic<std::uint64_t> signal_{0};
  std::atomic<bool> shutdown_{false};

  std::atomic<long long> steals_{0};
  std::atomic<long long> chunkGrabs_{0};
  std::atomic<long long> parks_{0};
  std::atomic<long long> unparks_{0};
  std::atomic<long long> submitted_{0};
  std::atomic<long long> batches_{0};
};

thread_local Executor::Impl* Executor::Impl::tlsOwner = nullptr;
thread_local int Executor::Impl::tlsWorkerIndex = -1;

namespace {
std::atomic<Executor*> g_globalExecutor{nullptr};
}  // namespace

Executor& Executor::global() {
  static Executor executor(defaultWorkerCount());
  g_globalExecutor.store(&executor, std::memory_order_release);
  return executor;
}

Executor* Executor::globalIfCreated() {
  return g_globalExecutor.load(std::memory_order_acquire);
}

Executor::Executor(int numWorkers)
    : impl_(std::make_unique<Impl>(numWorkers)) {}

Executor::~Executor() = default;

int Executor::numWorkers() const {
  return static_cast<int>(impl_->workers_.size());
}

void Executor::parallelForBatch(int count, int maxParallel,
                                FunctionRef<void(int)> fn) {
  if (count <= 0) return;
  const int lanes = std::min({maxParallel, count, numWorkers() + 1});
  if (lanes <= 1 || count == 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  impl_->runBatch(count, lanes, fn);
}

void Executor::submit(std::function<void()> task) {
  impl_->submitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::metricsEnabled()) {
    static obs::Counter& c = obs::counter("executor.submitted");
    c.add();
  }
  impl_->enqueue(new Impl::FunctionTask(std::move(task)), 1);
}

std::size_t Executor::queueDepth() const {
  std::lock_guard<std::mutex> lock(impl_->injectorMutex_);
  return impl_->injector_.size();
}

int Executor::parkedWorkers() const {
  std::lock_guard<std::mutex> lock(impl_->sleepMutex_);
  return impl_->sleepers_;
}

void Executor::sampleGauges() const {
  if (!obs::metricsEnabled()) return;
  obs::gauge("executor.queue_depth").max(static_cast<double>(queueDepth()));
  obs::gauge("executor.parked_workers")
      .set(static_cast<double>(parkedWorkers()));
}

Executor::Stats Executor::stats() const {
  Stats s;
  s.steals = impl_->steals_.load(std::memory_order_relaxed);
  s.chunkGrabs = impl_->chunkGrabs_.load(std::memory_order_relaxed);
  s.parks = impl_->parks_.load(std::memory_order_relaxed);
  s.unparks = impl_->unparks_.load(std::memory_order_relaxed);
  s.submitted = impl_->submitted_.load(std::memory_order_relaxed);
  s.batches = impl_->batches_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mclg
