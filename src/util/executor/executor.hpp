// Process-wide persistent work-stealing executor.
//
// Every pipeline stage used to construct and tear down its own ThreadPool,
// and distributed task indices through one mutex-guarded counter. This
// executor replaces both costs for the whole process:
//
//  * Workers are created once (Executor::global(), lazily, hardware-sized)
//    and parked between uses — a stage invocation borrows them instead of
//    spawning threads.
//  * parallelForBatch distributes indices by *atomic chunked claiming*:
//    lanes grab [next, next+chunk) with one fetch_add, so there is no
//    mutex on the task handout path.
//  * Idle workers steal from each other's Chase-Lev deques, so whole-run
//    tasks (the batch driver's concurrent designs) and per-stage batch
//    helpers share the same worker set without partitioning it.
//
// Determinism: parallelForBatch keeps the ThreadPool contract exactly —
// fn(i) runs once for every i in [0, count), the call returns only after
// all of them finished (barrier), and results are keyed by index, never by
// executing thread. Which thread runs which index is scheduling noise the
// callers are already required to be (and tested to be) invariant to.
//
// Exceptions: a throwing task does not abort the batch — the remaining
// indices still run (drain), and the first exception is rethrown in the
// calling thread, preserving the stage-transaction rollback semantics.
//
// Blocking: a caller of parallelForBatch participates in its own batch and
// only waits after every index is claimed by some running lane, so a batch
// completes even when all workers are busy with other work (including the
// nested case: a whole-run task on a worker calling parallelForBatch).
#pragma once

#include <functional>
#include <memory>

#include "util/executor/function_ref.hpp"

namespace mclg {

class Executor {
 public:
  /// The process-global executor, created on first use with one worker per
  /// hardware thread (MCLG_EXECUTOR_THREADS overrides). Lives until exit.
  static Executor& global();

  /// The global executor if some caller already constructed it, else null.
  /// Telemetry samplers use this so observing an idle process doesn't
  /// spawn its worker threads.
  static Executor* globalIfCreated();

  /// A private executor (tests, benches). numWorkers < 1 is clamped to 1.
  explicit Executor(int numWorkers);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int numWorkers() const;

  /// Run fn(i) for i in [0, count) on up to maxParallel lanes (the calling
  /// thread plus borrowed workers) and wait for all of them.
  /// maxParallel <= 1 or count <= 1 degenerates to inline execution.
  void parallelForBatch(int count, int maxParallel, FunctionRef<void(int)> fn);

  /// Enqueue a whole-run task (runs exactly once, on some worker). The
  /// batch driver uses this for per-design pipelines; completion tracking
  /// is the caller's business. Tasks should not throw: an exception that
  /// escapes one is reported on stderr and dropped by the worker (there is
  /// no caller to rethrow into), so errors the caller cares about must be
  /// captured inside the task.
  void submit(std::function<void()> task);

  /// Monotonic activity counters (process-lifetime for global()). The same
  /// values are exported as executor.* metrics when the obs registry is
  /// enabled.
  struct Stats {
    long long steals = 0;       ///< tasks taken from another worker's deque
    long long chunkGrabs = 0;   ///< atomic [next, next+chunk) claims
    long long parks = 0;        ///< workers gone to sleep
    long long unparks = 0;      ///< producer-side wakeups issued
    long long submitted = 0;    ///< whole-run tasks accepted
    long long batches = 0;      ///< parallelForBatch calls that went wide
  };
  Stats stats() const;

  /// Point-in-time introspection for periodic telemetry sampling
  /// (obs/sampler.hpp): externally submitted tasks not yet claimed, and
  /// workers currently parked. Both take the respective internal mutex —
  /// cheap at sampling rates, not for hot loops.
  std::size_t queueDepth() const;
  int parkedWorkers() const;

  /// Refresh the executor.queue_depth (high-water) and
  /// executor.parked_workers (last-sample) gauges from the live state.
  /// No-op while the metrics registry is disabled.
  void sampleGauges() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Cheap value handle to an executor, default-bound to Executor::global().
/// Stage configs carry one so tests and the batch driver can inject a
/// private executor while production code shares the process-wide one.
/// The inline fast path lives here: numThreads <= 1 never touches (or
/// lazily constructs) the underlying executor.
class ExecutorRef {
 public:
  ExecutorRef() = default;
  explicit ExecutorRef(Executor* executor) : executor_(executor) {}

  Executor& get() const { return executor_ ? *executor_ : Executor::global(); }

  /// parallelForBatch with the legacy ThreadPool contract: numThreads is
  /// the lane budget (1 = inline, no executor involvement).
  void parallelForBatch(int count, int numThreads,
                        FunctionRef<void(int)> fn) const {
    if (count <= 0) return;
    if (numThreads <= 1 || count == 1) {
      for (int i = 0; i < count; ++i) fn(i);
      return;
    }
    get().parallelForBatch(count, numThreads, fn);
  }

 private:
  Executor* executor_ = nullptr;
};

}  // namespace mclg
