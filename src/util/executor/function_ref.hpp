// Non-owning callable reference: the executor's batch API takes
// FunctionRef<void(int)> instead of const std::function<void(int)>& so a
// capturing lambda on the caller's stack is passed as two raw pointers —
// no type-erased heap allocation per parallelForBatch call on the hot path.
//
// Lifetime contract: a FunctionRef never outlives the callable it was built
// from. The executor honors this by construction — every batch joins before
// parallelForBatch returns, and un-run helper tasks only *read through* the
// reference after checking that the batch's index space is exhausted.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace mclg {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& callable) noexcept  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        call_([](void* object, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(object))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*call_)(void*, Args...);
};

}  // namespace mclg
