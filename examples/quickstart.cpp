// Quickstart: generate a small mixed-cell-height design, legalize it with
// the full paper flow (MGL -> max-displacement matching -> fixed-row-&-order
// MCF), and print the quality metrics.
//
//   ./example_quickstart [numCells] [density]

#include <cstdio>
#include <cstdlib>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/report.hpp"
#include "eval/score.hpp"
#include "gen/benchmark_gen.hpp"
#include "legal/pipeline.hpp"

int main(int argc, char** argv) {
  const int numCells = argc > 1 ? std::atoi(argv[1]) : 5000;
  const double density = argc > 2 ? std::atof(argv[2]) : 0.6;

  // 1. Build a synthetic design: ~80% single-height cells, the rest taller,
  //    two fence regions, P/G rails and IO pins for the routability rules.
  mclg::GenSpec spec;
  spec.name = "quickstart";
  spec.cellsPerHeight = {numCells * 8 / 10, numCells * 12 / 100,
                         numCells * 5 / 100, numCells * 3 / 100};
  spec.density = density;
  spec.numFences = 2;
  spec.numBlockages = 1;
  spec.seed = 2024;
  mclg::Design design = mclg::generate(spec);
  std::printf("design %s: %d cells, %lld x %lld sites, %d fences\n",
              design.name.c_str(), design.numCells(),
              static_cast<long long>(design.numSitesX),
              static_cast<long long>(design.numRows), design.numFences() - 1);

  // 2. Legalize with the contest configuration (Eq. 2 weights + routability).
  mclg::SegmentMap segments(design);
  mclg::PlacementState state(design);
  const auto stats =
      mclg::legalize(state, segments, mclg::PipelineConfig::contest());
  std::printf(
      "MGL placed %d cells (%d via fallback, %d failed) in %.2fs; "
      "matching moved %d cells in %.2fs; MCF moved %d cells in %.2fs\n",
      stats.mgl.placed, stats.mgl.fallbackPlaced, stats.mgl.failed,
      stats.secondsMgl, stats.maxDisp.cellsMoved, stats.secondsMaxDisp,
      stats.fixedRowOrder.cellsMoved, stats.secondsFixedRowOrder);

  // 3. Evaluate: legality, displacement, routability violations, score.
  const auto score = mclg::evaluateScore(design, segments);
  std::printf("%s\n", mclg::summarize(design, score).c_str());
  return score.legality.legal() ? 0 : 1;
}
