// Fence-region scenario: build a design by hand through the public API —
// explicit fence regions holding dedicated cells whose GP positions sit far
// outside their fences — then watch the legalizer honor the fence
// constraint while minimizing displacement (paper §2, fence hard
// constraint).

#include <cstdio>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/checkers.hpp"
#include "eval/metrics.hpp"
#include "legal/pipeline.hpp"

int main() {
  using namespace mclg;

  Design design;
  design.name = "fence_demo";
  design.numSitesX = 300;
  design.numRows = 60;
  design.siteWidthFactor = 0.5;

  // A small library: singles, doubles (P/G parity 0) and triples.
  design.types.push_back({"INV", 3, 1, -1, 0, 0, {}});
  design.types.push_back({"FF2", 5, 2, 0, 0, 0, {}});
  design.types.push_back({"MUX3", 6, 3, -1, 0, 0, {}});

  // Two fence regions: a cache-control island and an IO island.
  design.fences.push_back({"cache_ctrl", {{30, 10, 90, 30}}});
  design.fences.push_back({"io_ring", {{200, 40, 280, 56}}});

  // 300 default cells clustered mid-chip.
  for (int i = 0; i < 300; ++i) {
    Cell cell;
    cell.type = i % 3;
    cell.gpX = 120.0 + (i % 40) * 1.7;
    cell.gpY = 20.0 + (i / 40) * 3.1;
    design.cells.push_back(cell);
  }
  // 40 fence-1 cells whose GP is *outside* the fence (a hard case: the
  // legalizer must pull them in).
  for (int i = 0; i < 40; ++i) {
    Cell cell;
    cell.type = i % 2;  // INV / FF2
    cell.fence = 1;
    cell.gpX = 150.0 + i;  // right of the fence
    cell.gpY = 15.0;
    design.cells.push_back(cell);
  }
  // 30 fence-2 cells with GP inside.
  for (int i = 0; i < 30; ++i) {
    Cell cell;
    cell.type = 0;
    cell.fence = 2;
    cell.gpX = 205.0 + (i % 15) * 4.5;
    cell.gpY = 42.0 + (i / 15) * 5.0;
    design.cells.push_back(cell);
  }
  design.validate();

  SegmentMap segments(design);
  PlacementState state(design);
  PipelineConfig config = PipelineConfig::contest();
  config.mgl.insertion.routability = false;  // no rails in this demo
  const auto stats = legalize(state, segments, config);

  const auto legality = checkLegality(design, segments);
  const auto disp = displacementStats(design);
  std::printf("placed=%d failed=%d legal=%s fenceViolations=%d\n",
              stats.mgl.placed, stats.mgl.failed,
              legality.legal() ? "yes" : "no", legality.fenceViolations);
  std::printf("avgDisp=%.3f rows, maxDisp=%.1f rows\n", disp.average,
              disp.maximum);

  // Show a few pulled-in fence cells.
  int shown = 0;
  for (CellId c = 0; c < design.numCells() && shown < 5; ++c) {
    const auto& cell = design.cells[c];
    if (cell.fence != 1) continue;
    std::printf("  fence cell %d: GP (%.0f, %.0f) -> legal (%lld, %lld)\n", c,
                cell.gpX, cell.gpY, static_cast<long long>(cell.x),
                static_cast<long long>(cell.y));
    ++shown;
  }
  return legality.legal() ? 0 : 1;
}
