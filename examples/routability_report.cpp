// Routability scenario: legalize the same design with §3.4 handling on and
// off, and report pin short / pin access / edge-spacing violations plus the
// contest score for both — the Table 1 story in miniature. Also dumps the
// Fig.-6-style displacement SVG for the largest cell-type group.

#include <cstdio>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/report.hpp"
#include "eval/score.hpp"
#include "gen/benchmark_gen.hpp"
#include "legal/pipeline.hpp"

namespace {

mclg::ScoreBreakdown runOnce(bool routability, mclg::Design* out) {
  mclg::GenSpec spec;
  spec.name = routability ? "routability_on" : "routability_off";
  spec.cellsPerHeight = {4000, 500, 150, 80};
  spec.density = 0.62;
  spec.numFences = 2;
  spec.seed = 77;
  *out = mclg::generate(spec);
  mclg::SegmentMap segments(*out);
  mclg::PlacementState state(*out);
  mclg::PipelineConfig config = mclg::PipelineConfig::contest();
  config.mgl.insertion.routability = routability;
  config.mgl.insertion.respectEdgeSpacing = routability;
  config.fixedRowOrder.routability = routability;
  mclg::legalize(state, segments, config);
  return mclg::evaluateScore(*out, segments);
}

}  // namespace

int main() {
  mclg::Design withR, withoutR;
  const auto on = runOnce(true, &withR);
  const auto off = runOnce(false, &withoutR);

  std::printf("%-18s %12s %12s\n", "metric", "routability", "oblivious");
  std::printf("%-18s %12.3f %12.3f\n", "avg disp (rows)",
              on.displacement.average, off.displacement.average);
  std::printf("%-18s %12.1f %12.1f\n", "max disp (rows)",
              on.displacement.maximum, off.displacement.maximum);
  std::printf("%-18s %12d %12d\n", "pin shorts", on.pins.shorts,
              off.pins.shorts);
  std::printf("%-18s %12d %12d\n", "pin access", on.pins.access,
              off.pins.access);
  std::printf("%-18s %12d %12d\n", "edge spacing", on.edgeSpacing,
              off.edgeSpacing);
  std::printf("%-18s %12.3f %12.3f\n", "score S", on.score, off.score);

  // Fig. 6 style dump: pick the most numerous movable type.
  std::vector<int> counts(static_cast<std::size_t>(withR.numTypes()), 0);
  for (const auto& cell : withR.cells) {
    if (!cell.fixed) ++counts[static_cast<std::size_t>(cell.type)];
  }
  mclg::TypeId biggest = 0;
  for (mclg::TypeId t = 1; t < withR.numTypes(); ++t) {
    if (counts[static_cast<std::size_t>(t)] >
        counts[static_cast<std::size_t>(biggest)]) {
      biggest = t;
    }
  }
  const char* path = "routability_displacement.svg";
  if (mclg::writeDisplacementSvg(withR, biggest, path)) {
    std::printf("wrote %s (displacement vectors of type %s)\n", path,
                withR.types[static_cast<std::size_t>(biggest)].name.c_str());
  }
  return on.legality.legal() && off.legality.legal() ? 0 : 1;
}
