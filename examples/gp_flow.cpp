// Full physical-design mini-flow: netlist generation -> quadratic global
// placement (GP-lite) -> the paper's three-stage legalization -> metrics,
// with per-stage reporting and an ECO epilogue (drop in late cells and
// re-legalize incrementally — MGL only touches unplaced cells, so the
// existing placement is preserved and only locally disturbed).

#include <cstdio>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/histogram.hpp"
#include "eval/report.hpp"
#include "eval/score.hpp"
#include "gen/benchmark_gen.hpp"
#include "gen/global_placer.hpp"
#include "legal/pipeline.hpp"

int main() {
  using namespace mclg;

  // 1. Netlist + floorplan.
  GenSpec spec;
  spec.name = "gp_flow";
  spec.cellsPerHeight = {6000, 700, 250, 120};
  spec.density = 0.58;
  spec.numFences = 2;
  spec.numBlockages = 2;
  spec.seed = 909;
  Design design = generate(spec);
  std::printf("netlist: %d cells, %zu nets, %lld x %lld sites\n",
              design.numCells(), design.nets.size(),
              static_cast<long long>(design.numSitesX),
              static_cast<long long>(design.numRows));

  // 2. Global placement.
  GlobalPlaceConfig gpConfig;
  gpConfig.seed = spec.seed;
  const auto gpStats = globalPlace(design, gpConfig);
  std::printf("GP-lite: HPWL %.0f -> %.0f (-%.1f%%), peak bin util %.2f -> %.2f\n",
              gpStats.hpwlBefore, gpStats.hpwlAfter,
              (1.0 - gpStats.hpwlAfter / gpStats.hpwlBefore) * 100.0,
              gpStats.maxBinUtilBefore, gpStats.maxBinUtilAfter);

  // 3. Legalization (the paper's Fig. 2 pipeline).
  SegmentMap segments(design);
  PlacementState state(design);
  const auto stats = legalize(state, segments, PipelineConfig::contest());
  auto score = evaluateScore(design, segments);
  std::printf("legalized in %.2fs (MGL %.2f / matching %.2f / MCF %.2f)\n",
              stats.secondsTotal(), stats.secondsMgl, stats.secondsMaxDisp,
              stats.secondsFixedRowOrder);
  std::printf("%s\n", summarize(design, score).c_str());
  std::printf("displacement histogram (all cells):\n%s",
              displacementHistogram(design).toString().c_str());

  // 4. ECO: 2% extra cells arrive late; legalize only them.
  const int ecoCells = design.numCells() / 50;
  const int baseCells = design.numCells();
  for (int i = 0; i < ecoCells; ++i) {
    // Sample type and position from *movable* donors (blockage macros are
    // fixed pseudo-cells, not library cells).
    auto movableDonor = [&](int start) {
      CellId donor = static_cast<CellId>(start % baseCells);
      while (design.cells[donor].fixed) donor = (donor + 1) % baseCells;
      return donor;
    };
    Cell cell;
    cell.type = design.cells[movableDonor(i * 7)].type;
    cell.gpX = design.cells[movableDonor(i * 13)].gpX;
    cell.gpY = design.cells[movableDonor(i * 13)].gpY;
    design.cells.push_back(cell);
  }
  design.invalidateCaches();
  PipelineConfig ecoConfig = PipelineConfig::contest();
  ecoConfig.runMaxDisp = false;  // keep the ECO pass minimal
  ecoConfig.runFixedRowOrder = false;
  const auto ecoStats = legalize(state, segments, ecoConfig);
  score = evaluateScore(design, segments);
  std::printf("ECO: inserted %d cells (%d placed, %d failed) in %.2fs\n",
              ecoCells, ecoStats.mgl.placed, ecoStats.mgl.failed,
              ecoStats.secondsMgl);
  std::printf("%s\n", summarize(design, score).c_str());
  return score.legality.legal() ? 0 : 1;
}
