// File-format scenario: write a generated design to LEF/DEF-lite and to the
// native .mclg format, read everything back, legalize the parsed copy, and
// re-export the legalized result — the interchange loop a downstream user
// runs against real contest data.

#include <cstdio>

#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/checkers.hpp"
#include "gen/benchmark_gen.hpp"
#include "legal/pipeline.hpp"
#include "parsers/def_parser.hpp"
#include "parsers/lef_parser.hpp"
#include "parsers/simple_format.hpp"

int main() {
  using namespace mclg;

  GenSpec spec;
  spec.name = "roundtrip";
  spec.cellsPerHeight = {2000, 250, 80, 40};
  spec.density = 0.55;
  spec.numFences = 2;
  spec.seed = 31415;
  const Design original = generate(spec);

  // LEF + DEF round trip (rails travel via the native format only).
  const std::string lefText = writeLef(original, 0.2);
  const std::string defText = writeDef(original, 0.2);
  std::string error;
  const auto lib = readLef(lefText, &error);
  if (!lib) {
    std::fprintf(stderr, "LEF parse failed: %s\n", error.c_str());
    return 1;
  }
  auto parsed = readDef(defText, *lib, &error);
  if (!parsed) {
    std::fprintf(stderr, "DEF parse failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("LEF: %zu macros; DEF: %d components, %d fences, %zu IO pins\n",
              lib->types.size(), parsed->numCells(), parsed->numFences() - 1,
              parsed->ioPins.size());

  // Rails don't fit in the DEF subset; carry them over explicitly, as a
  // real flow would read them from SPECIALNETS.
  parsed->hRails = original.hRails;
  parsed->vRails = original.vRails;

  SegmentMap segments(*parsed);
  PlacementState state(*parsed);
  const auto stats = legalize(state, segments, PipelineConfig::contest());
  const auto legality = checkLegality(*parsed, segments);
  std::printf("legalized parsed copy: placed=%d failed=%d legal=%s\n",
              stats.mgl.placed, stats.mgl.failed,
              legality.legal() ? "yes" : "no");

  // Save the legalized design in the native format.
  const char* outPath = "roundtrip_legal.mclg";
  if (!saveDesign(*parsed, outPath)) {
    std::fprintf(stderr, "cannot write %s\n", outPath);
    return 1;
  }
  const auto reloaded = loadDesign(outPath, &error);
  if (!reloaded) {
    std::fprintf(stderr, "reload failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("saved and reloaded %s (%d cells, placed coordinates kept)\n",
              outPath, reloaded->numCells());
  return legality.legal() ? 0 : 1;
}
