// Run every legalizer in the library on the same design and print a
// side-by-side comparison — the Table 2 experiment in example form, plus
// the extension stages.

#include <cstdio>

#include "baselines/baselines.hpp"
#include "db/placement_state.hpp"
#include "db/segment_map.hpp"
#include "eval/checkers.hpp"
#include "eval/metrics.hpp"
#include "gen/benchmark_gen.hpp"
#include "legal/pipeline.hpp"
#include "legal/refine/ripup_refine.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

mclg::GenSpec makeSpec() {
  mclg::GenSpec spec;
  spec.name = "comparison";
  spec.cellsPerHeight = {4500, 500, 0, 0};  // Table-2-style mix
  spec.density = 0.65;
  spec.withRoutability = false;
  spec.withNets = false;
  spec.numEdgeClasses = 1;
  spec.seed = 20240704;
  return spec;
}

template <typename Fn>
void runOne(mclg::Table& table, const char* name, Fn legalizer) {
  mclg::Design design = mclg::generate(makeSpec());
  mclg::SegmentMap segments(design);
  mclg::PlacementState state(design);
  mclg::Timer timer;
  legalizer(state, segments);
  const double seconds = timer.seconds();
  const auto disp = mclg::displacementStats(design);
  const bool legal = mclg::checkLegality(design, segments).legal();
  table.addRow({name, mclg::Table::fmt(disp.totalSites, 0),
                mclg::Table::fmt(disp.average, 3),
                mclg::Table::fmt(disp.maximum, 1),
                mclg::Table::fmt(seconds, 2), legal ? "yes" : "NO"});
}

}  // namespace

int main() {
  using namespace mclg;
  std::printf("comparing all legalizers on one %d-cell design...\n",
              makeSpec().cellsPerHeight[0] + makeSpec().cellsPerHeight[1]);
  Table table({"legalizer", "totalDisp", "avgDisp", "maxDisp", "seconds",
               "legal"});
  runOne(table, "tetris", [](PlacementState& s, const SegmentMap& m) {
    legalizeTetris(s, m);
  });
  runOne(table, "abacus-multi [7]", [](PlacementState& s, const SegmentMap& m) {
    legalizeAbacusMulti(s, m);
  });
  runOne(table, "ordered QP [9]", [](PlacementState& s, const SegmentMap& m) {
    legalizeOrderedQp(s, m);
  });
  runOne(table, "MLL [12]", [](PlacementState& s, const SegmentMap& m) {
    legalizeMll(s, m, false);
  });
  runOne(table, "ours (paper flow)", [](PlacementState& s, const SegmentMap& m) {
    legalize(s, m, PipelineConfig::totalDisplacement());
  });
  runOne(table, "ours + ripup", [](PlacementState& s, const SegmentMap& m) {
    legalize(s, m, PipelineConfig::totalDisplacement());
    RipupConfig ripup;
    ripup.displacementThreshold = 2.0;
    ripup.insertion.contestWeights = false;
    ripup.insertion.routability = false;
    ripupRefine(s, m, ripup);
  });
  std::printf("%s", table.toString().c_str());
  return 0;
}
