#!/usr/bin/env python3
"""Documentation link checker (registered as the `docs_links` ctest).

Three gates over the repository's markdown:

  1. Every intra-repo link target in every tracked .md file must exist
     (inline links and images; anchors are stripped; external schemes are
     skipped).
  2. Every file under docs/ must be reachable from README.md by following
     markdown links — no orphaned documentation.
  3. Every repo path named in an inline code span (`src/...`, `tests/...`,
     ... — see PATH_PREFIXES) must exist in the tree, so docs cannot keep
     pointing at renamed or deleted files. `{hpp,cpp}`-style brace groups
     are expanded; spans with glob/shell characters are skipped.

Usage: scripts/check_docs.py [repo-root]   (default: the repo containing
this script). Exits 0 when all gates pass, 1 otherwise.
"""

import os
import re
import sys

# Directories never scanned: build trees, VCS metadata, vendored/related
# sources, editor state.
SKIP_DIRS = (".git", ".claude", "related", "node_modules", "__pycache__")

# [text](target) and ![alt](target); target may be wrapped in <>.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?\s*(?:\"[^\"]*\")?\)")

EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

# `inline code`; spans starting with one of these top-level directories are
# treated as repo-path claims and must exist (gate 3). Anything else inside
# backticks (identifiers, flags, commands) is not a path claim.
CODE_SPAN_RE = re.compile(r"`([^`\n]+)`")
PATH_PREFIXES = ("src/", "docs/", "scripts/", "tests/", "bench/", "tools/",
                 "examples/")
BRACE_RE = re.compile(r"^(.*)\{([^{}]+)\}(.*)$")


def should_skip(dirname):
    return (dirname in SKIP_DIRS or dirname.startswith(".")
            or dirname.startswith("build"))


def markdown_files(root):
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if not should_skip(d)]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def stripped_text(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # Fenced code blocks routinely show link-like syntax and example paths
    # (scratch files, build outputs); they are not navigation or claims
    # about the tree, so neither gate checks them.
    return re.sub(r"```.*?```", "", text, flags=re.DOTALL)


def path_claims(text):
    """Repo paths asserted by inline code spans, brace groups expanded."""
    claims = []
    for span in CODE_SPAN_RE.findall(text):
        span = span.strip().rstrip(".,:;")
        if not span.startswith(PATH_PREFIXES):
            continue
        if any(ch in span for ch in " <>*?$|\"'()"):
            continue
        group = BRACE_RE.match(span)
        expanded = ([group.group(1) + alt + group.group(3)
                     for alt in group.group(2).split(",")]
                    if group else [span])
        claims.extend((span, p) for p in expanded)
    return claims


def path_exists(root, path):
    """True when the claimed path exists — exactly, or as a module stem.

    Docs name translation units by stem (`src/flow/supervisor`,
    `tools/mclg_cli`, `bench/bench_table1`); accept those when any file
    with that basename plus an extension lives in the claimed directory.
    """
    full = os.path.join(root, path.rstrip("/"))
    if os.path.exists(full):
        return True
    parent, stem = os.path.dirname(full), os.path.basename(full)
    if not stem or not os.path.isdir(parent):
        return False
    return any(name.startswith(stem + ".") for name in os.listdir(parent))


def resolve(source, target, root):
    """Intra-repo filesystem path a link points to, or None if external."""
    if target.startswith(EXTERNAL_SCHEMES) or target.startswith("#"):
        return None
    target = target.split("#", 1)[0]
    if not target:
        return None
    if target.startswith("/"):
        return os.path.normpath(os.path.join(root, target.lstrip("/")))
    return os.path.normpath(os.path.join(os.path.dirname(source), target))


def main():
    script_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(sys.argv[1]) if len(sys.argv) > 1 else script_root
    readme = os.path.join(root, "README.md")
    if not os.path.exists(readme):
        print(f"check_docs: no README.md under {root}", file=sys.stderr)
        return 1

    failures = []
    graph = {}
    checked_links = 0
    checked_paths = 0
    for md in markdown_files(root):
        rel = os.path.relpath(md, root)
        text = stripped_text(md)
        edges = set()
        for target in LINK_RE.findall(text):
            resolved = resolve(md, target, root)
            if resolved is None:
                continue
            checked_links += 1
            if not os.path.exists(resolved):
                failures.append(f"{rel}: broken link -> {target}")
                continue
            if resolved.endswith(".md"):
                edges.add(os.path.normpath(resolved))
        graph[os.path.normpath(md)] = edges
        for span, path in set(path_claims(text)):
            checked_paths += 1
            if not path_exists(root, path):
                failures.append(f"{rel}: missing path -> {span} ({path})")

    # BFS over the markdown link graph from README.md.
    reachable = set()
    frontier = [os.path.normpath(readme)]
    while frontier:
        node = frontier.pop()
        if node in reachable:
            continue
        reachable.add(node)
        frontier.extend(graph.get(node, ()))

    docs_dir = os.path.join(root, "docs")
    for md in markdown_files(docs_dir) if os.path.isdir(docs_dir) else []:
        if os.path.normpath(md) not in reachable:
            failures.append(
                f"{os.path.relpath(md, root)}: not reachable from README.md")

    if failures:
        for failure in failures:
            print(f"check_docs FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check_docs OK: {checked_links} intra-repo links, "
          f"{checked_paths} inline path claims, "
          f"{len(reachable)} markdown files reachable from README.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
