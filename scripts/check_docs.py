#!/usr/bin/env python3
"""Documentation link checker (registered as the `docs_links` ctest).

Two gates over the repository's markdown:

  1. Every intra-repo link target in every tracked .md file must exist
     (inline links and images; anchors are stripped; external schemes are
     skipped).
  2. Every file under docs/ must be reachable from README.md by following
     markdown links — no orphaned documentation.

Usage: scripts/check_docs.py [repo-root]   (default: the repo containing
this script). Exits 0 when both gates pass, 1 otherwise.
"""

import os
import re
import sys

# Directories never scanned: build trees, VCS metadata, vendored/related
# sources, editor state.
SKIP_DIRS = (".git", ".claude", "related", "node_modules", "__pycache__")

# [text](target) and ![alt](target); target may be wrapped in <>.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?\s*(?:\"[^\"]*\")?\)")

EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def should_skip(dirname):
    return (dirname in SKIP_DIRS or dirname.startswith(".")
            or dirname.startswith("build"))


def markdown_files(root):
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if not should_skip(d)]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def links_of(path):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # Fenced code blocks routinely show link-like syntax in examples; they
    # are not navigation, so they are not checked.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return LINK_RE.findall(text)


def resolve(source, target, root):
    """Intra-repo filesystem path a link points to, or None if external."""
    if target.startswith(EXTERNAL_SCHEMES) or target.startswith("#"):
        return None
    target = target.split("#", 1)[0]
    if not target:
        return None
    if target.startswith("/"):
        return os.path.normpath(os.path.join(root, target.lstrip("/")))
    return os.path.normpath(os.path.join(os.path.dirname(source), target))


def main():
    script_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    root = os.path.abspath(sys.argv[1]) if len(sys.argv) > 1 else script_root
    readme = os.path.join(root, "README.md")
    if not os.path.exists(readme):
        print(f"check_docs: no README.md under {root}", file=sys.stderr)
        return 1

    failures = []
    graph = {}
    checked_links = 0
    for md in markdown_files(root):
        rel = os.path.relpath(md, root)
        edges = set()
        for target in links_of(md):
            resolved = resolve(md, target, root)
            if resolved is None:
                continue
            checked_links += 1
            if not os.path.exists(resolved):
                failures.append(f"{rel}: broken link -> {target}")
                continue
            if resolved.endswith(".md"):
                edges.add(os.path.normpath(resolved))
        graph[os.path.normpath(md)] = edges

    # BFS over the markdown link graph from README.md.
    reachable = set()
    frontier = [os.path.normpath(readme)]
    while frontier:
        node = frontier.pop()
        if node in reachable:
            continue
        reachable.add(node)
        frontier.extend(graph.get(node, ()))

    docs_dir = os.path.join(root, "docs")
    for md in markdown_files(docs_dir) if os.path.isdir(docs_dir) else []:
        if os.path.normpath(md) not in reachable:
            failures.append(
                f"{os.path.relpath(md, root)}: not reachable from README.md")

    if failures:
        for failure in failures:
            print(f"check_docs FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check_docs OK: {checked_links} intra-repo links, "
          f"{len(reachable)} markdown files reachable from README.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
