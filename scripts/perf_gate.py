#!/usr/bin/env python3
"""Perf-regression gate for the mclg bench harness.

Two subcommands:

  merge <report-dir> -o BENCH_PR3.json [--baseline BASELINE.json]
      Collect the per-bench JSON reports that the bench binaries wrote into
      <report-dir> (bench_scaling.json / bench_threads.json via
      MCLG_BENCH_REPORT, bench_micro.json via --benchmark_out) into one
      perf-suite document. When --baseline is given, per-key speedups are
      computed and embedded.

  compare <current.json> <baseline.json> [options]
      Gate the current suite against a baseline suite:
        * placement hashes and Eq. 10 scores of the bench_scaling thread
          sweep must match the baseline exactly (quality-neutrality);
        * bench_threads determinism flags must all be 1;
        * timing keys must not regress beyond --tolerance (default 0.15);
        * --require KEY>=RATIO asserts a minimum speedup (baseline/current)
          for a timing key, e.g. --require t1.mgl_seconds>=1.5;
        * --ratio BENCH.A/B>=R asserts a ratio *within the current suite*,
          e.g. --ratio bench_eco.full_seconds/eco_seconds>=3.0 (the PR 4
          ECO speedup floor — see docs/ECO.md);
        * --ratio-max BENCH.A/B<=R asserts a ratio *ceiling* within the
          current suite, e.g. --ratio-max
          bench_supervisor.supervised_seconds/supervised_telemetry_off_seconds<=1.02
          (the PR 7 live-telemetry overhead budget).
      Exits 0 when every gate passes, 1 otherwise.

Since schema v6 reports carry p50/p95/p99 per histogram; merge surfaces
them into the suite as informational <histogram>.<quantile> keys (not
gated — pow2-bucket quantile estimates are too coarse for a regression
tolerance, but they make latency-distribution drift visible in diffs).

Both documents use the run-report envelope (docs/OBSERVABILITY.md); this
reader accepts schema_version 1 through 6.
"""

import argparse
import json
import os
import sys

ACCEPTED_SCHEMAS = (1, 2, 3, 4, 5, 6)

DEFAULT_MERGE_BENCHES = ("bench_scaling", "bench_threads")

# Keys treated as timings (gated on regression / speedup); everything else in
# the bench_scaling values block is an identity key (must match exactly).
TIMING_SUFFIXES = ("_seconds",)
IDENTITY_SUFFIXES = ("hash_lo", "hash_hi", "score")


def load_envelope(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema_version")
    if schema not in ACCEPTED_SCHEMAS:
        raise SystemExit(
            f"{path}: unsupported schema_version {schema!r} "
            f"(accepted: {ACCEPTED_SCHEMAS})")
    return doc


def load_micro(path):
    """Google-benchmark JSON -> {name: real_time in ns}."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit, 1.0)
        out[bench["name"]] = bench["real_time"] * scale
    return out


def cmd_merge(args):
    suite = {
        "schema_version": 6,
        "kind": "perf_suite",
        "generated_by": "scripts/perf_regression.sh",
        "benches": {},
    }
    for name in (args.bench or DEFAULT_MERGE_BENCHES):
        path = os.path.join(args.report_dir, name + ".json")
        if not os.path.exists(path):
            print(f"merge: missing {path}", file=sys.stderr)
            return 1
        doc = load_envelope(path)
        values = dict(doc.get("values", {}))
        for hist, entry in doc.get("metrics", {}).get("histograms",
                                                      {}).items():
            for quantile in ("p50", "p95", "p99"):
                if quantile in entry:
                    values[f"{hist}.{quantile}"] = entry[quantile]
        suite["benches"][name] = values
    micro_path = os.path.join(args.report_dir, "bench_micro.json")
    if os.path.exists(micro_path):
        suite["benches"]["bench_micro"] = load_micro(micro_path)
    else:
        print(f"merge: note: no {micro_path}, micro block omitted",
              file=sys.stderr)

    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline, "r", encoding="utf-8") as fh:
            base = json.load(fh)
        speedups = {}
        for bench, values in suite["benches"].items():
            base_values = base.get("benches", {}).get(bench, {})
            for key, value in values.items():
                if not is_timing(key):
                    continue
                ref = base_values.get(key)
                if ref and value > 0:
                    speedups[f"{bench}.{key}"] = round(ref / value, 4)
        suite["speedup_vs_baseline"] = speedups

    with open(args.output, "w", encoding="utf-8") as fh:
        json.dump(suite, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"merge: wrote {args.output}")
    return 0


def is_timing(key):
    return key.endswith(TIMING_SUFFIXES) or key.startswith("BM_")


def is_identity(key):
    return key.endswith(IDENTITY_SUFFIXES)


def cmd_compare(args):
    cur = json.load(open(args.current, encoding="utf-8"))
    base = json.load(open(args.baseline, encoding="utf-8"))
    failures = []
    checked_identity = 0
    for bench, values in base.get("benches", {}).items():
        cur_values = cur.get("benches", {}).get(bench, {})
        for key, ref in values.items():
            val = cur_values.get(key)
            if val is None:
                if key.endswith((".p50", ".p95", ".p99")):
                    continue  # informational percentiles, never gated
                failures.append(f"{bench}.{key}: missing from current suite")
                continue
            if is_identity(key):
                if val != ref:
                    failures.append(
                        f"{bench}.{key}: {val} != baseline {ref} "
                        f"(placements/quality must be identical)")
                checked_identity += 1
            elif key.endswith(".identical"):
                if val != 1:
                    failures.append(f"{bench}.{key}: thread-determinism broken")
            elif is_timing(key) and ref > 0:
                if val > ref * (1.0 + args.tolerance):
                    failures.append(
                        f"{bench}.{key}: {val:.4g} regressed past baseline "
                        f"{ref:.4g} * (1 + {args.tolerance})")

    for requirement in args.require or []:
        key, _, ratio_text = requirement.partition(">=")
        ratio = float(ratio_text)
        bench, _, sub = key.partition(".")
        ref = base.get("benches", {}).get(bench, {}).get(sub)
        val = cur.get("benches", {}).get(bench, {}).get(sub)
        if ref is None or val is None or val <= 0:
            failures.append(f"require {requirement}: key not present")
        elif ref / val < ratio:
            failures.append(
                f"require {requirement}: speedup {ref / val:.3f} < {ratio}")
        else:
            print(f"require {requirement}: ok (speedup {ref / val:.3f})")

    for assertion in args.ratio or []:
        spec, _, ratio_text = assertion.partition(">=")
        ratio = float(ratio_text)
        bench, _, keys = spec.partition(".")
        num_key, _, den_key = keys.partition("/")
        values = cur.get("benches", {}).get(bench, {})
        num, den = values.get(num_key), values.get(den_key)
        if num is None or den is None or den <= 0:
            failures.append(f"ratio {assertion}: key not present")
        elif num / den < ratio:
            failures.append(f"ratio {assertion}: {num / den:.3f} < {ratio}")
        else:
            print(f"ratio {assertion}: ok ({num / den:.3f})")

    for assertion in args.ratio_max or []:
        spec, _, ratio_text = assertion.partition("<=")
        ceiling = float(ratio_text)
        bench, _, keys = spec.partition(".")
        num_key, _, den_key = keys.partition("/")
        values = cur.get("benches", {}).get(bench, {})
        num, den = values.get(num_key), values.get(den_key)
        if num is None or den is None or den <= 0:
            failures.append(f"ratio-max {assertion}: key not present")
        elif num / den > ceiling:
            failures.append(
                f"ratio-max {assertion}: {num / den:.3f} > {ceiling}")
        else:
            print(f"ratio-max {assertion}: ok ({num / den:.3f})")

    if failures:
        for failure in failures:
            print(f"perf gate FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"perf gate OK ({checked_identity} identity keys, "
          f"tolerance {args.tolerance})")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    merge = sub.add_parser("merge")
    merge.add_argument("report_dir")
    merge.add_argument("-o", "--output", required=True)
    merge.add_argument("--baseline")
    merge.add_argument("--bench", action="append",
                       help="bench report to collect (repeatable; default: "
                            + ", ".join(DEFAULT_MERGE_BENCHES))
    merge.set_defaults(func=cmd_merge)
    compare = sub.add_parser("compare")
    compare.add_argument("current")
    compare.add_argument("baseline")
    compare.add_argument("--tolerance", type=float, default=0.15)
    compare.add_argument("--require", action="append",
                         help="KEY>=RATIO minimum speedup, repeatable")
    compare.add_argument("--ratio", action="append",
                         help="BENCH.A/B>=R within-current ratio, repeatable")
    compare.add_argument("--ratio-max", action="append",
                         help="BENCH.A/B<=R within-current ratio ceiling, "
                              "repeatable")
    compare.set_defaults(func=cmd_compare)
    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
