#!/usr/bin/env bash
# Batch supervisor torture test: hammer `mclg_batch --process-isolation`
# with workers that segfault, abort, get SIGKILLed, and hang past the
# design timeout, over many iterations, and assert the supervisor's
# contract every time:
#
#   * the batch never dies with the worker — healthy designs always finish;
#   * crash/timeout victims are retried and recover (exit 0) when the fault
#     plan stops firing, or surface as per-design failures (exit 3) when it
#     never does;
#   * shard runs partition the manifest exactly.
#
# Intended to run against an asan-ubsan preset build (build-asan/) where a
# supervisor-side lifetime bug would be fatal, but works with any build:
#
#   scripts/batch_stress.sh <mclg_batch> <mclg_cli> [iterations] [workdir]
#
# Wired as the optional `batch_stress` CTest (-DMCLG_STRESS_TESTS=ON, label
# "stress"); see docs/ROBUSTNESS.md.
set -u

BATCH=${1:?usage: batch_stress.sh <mclg_batch> <mclg_cli> [iterations] [workdir]}
CLI=${2:?usage: batch_stress.sh <mclg_batch> <mclg_cli> [iterations] [workdir]}
ITERATIONS=${3:-25}
WORKDIR=${4:-$(mktemp -d /tmp/mclg_batch_stress.XXXXXX)}

# Resolve the binaries before cd'ing into the workdir.
BATCH=$(readlink -f "$BATCH") || exit 1
CLI=$(readlink -f "$CLI") || exit 1

mkdir -p "$WORKDIR"
cd "$WORKDIR" || exit 1

fail() {
  echo "batch_stress: FAIL at iteration $iter: $*" >&2
  exit 1
}

echo "batch_stress: $ITERATIONS iterations in $WORKDIR"

# One small design set, reused across iterations (generation is the slow
# part; the supervisor behavior under test does not depend on the inputs).
for d in 0 1 2 3; do
  "$CLI" generate --cells $((300 + 60 * d)) --density 0.55 \
         --seed $((40 + d)) --out "d$d.mclg" >/dev/null \
    || { iter=setup; fail "mclg_cli generate d$d"; }
  echo "d$d.mclg d$d.out.mclg"
done > batch.txt

for ((iter = 1; iter <= ITERATIONS; ++iter)); do
  victim="d$((RANDOM % 4))"
  mode_pick=$((RANDOM % 3))

  # Recoverable fault: fails the victim's first attempt only; with retries
  # available the whole batch must come back clean.
  case $mode_pick in
    0) fault="$victim:segv:1" ;;
    1) fault="$victim:abort:1" ;;
    2) fault="$victim:kill:1" ;;
  esac
  "$BATCH" --manifest batch.txt --process-isolation \
           --inject-fault "$fault" --max-retries 2 --backoff-ms 1 \
           >out.txt 2>&1
  code=$?
  [ $code -eq 0 ] || { cat out.txt >&2; fail "recoverable $fault exit $code"; }
  grep -q "4/4 designs legalized" out.txt \
    || { cat out.txt >&2; fail "recoverable $fault: not all designs ok"; }

  # Unrecoverable fault: every attempt dies; the victim must surface as a
  # per-design failure (exit 3) while the other three designs finish.
  "$BATCH" --manifest batch.txt --process-isolation \
           --inject-fault "$victim:kill:99" --max-retries 1 --backoff-ms 1 \
           >out.txt 2>&1
  code=$?
  [ $code -eq 3 ] || { cat out.txt >&2; fail "unrecoverable exit $code (want 3)"; }
  grep -q "3/4 designs legalized" out.txt \
    || { cat out.txt >&2; fail "unrecoverable: survivors did not finish"; }
  grep -q "crashed" out.txt \
    || { cat out.txt >&2; fail "unrecoverable: no crash status reported"; }

  # Timeout escalation every few iterations (slow: SIGTERM is ignored, the
  # supervisor must wait out the grace period before SIGKILL).
  if ((iter % 5 == 0)); then
    "$BATCH" --manifest batch.txt --process-isolation \
             --inject-fault "$victim:hang:1" --design-timeout 1 \
             --max-retries 2 --backoff-ms 1 >out.txt 2>&1
    code=$?
    [ $code -eq 0 ] || { cat out.txt >&2; fail "timeout-retry exit $code"; }
  fi

  # Shard partition: the three shards together legalize each design once.
  if ((iter % 5 == 1)); then
    total=0
    for s in 0 1 2; do
      "$BATCH" --manifest batch.txt --shard $s/3 --process-isolation \
               >out.txt 2>&1 || { cat out.txt >&2; fail "shard $s/3"; }
      n=$(grep -c "hash" out.txt)
      total=$((total + n))
    done
    [ $total -eq 4 ] || fail "shard union covered $total designs (want 4)"
  fi

  echo "batch_stress: iteration $iter/$ITERATIONS ok"
done

echo "batch_stress: PASS ($ITERATIONS iterations)"
