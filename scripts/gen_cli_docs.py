#!/usr/bin/env python3
"""Generate docs/CLI.md from the built binaries' --help output.

The CLI reference is generated, not hand-written, so it cannot drift from
the code: each tool's usage text (the same bytes `--help` prints) is
captured verbatim into a fenced block. Regenerate after changing any
tool's kHelp text:

    python3 scripts/gen_cli_docs.py --bin build/tools -o docs/CLI.md

The `cli_reference_drift` ctest (label `docs`) runs this script in
--check mode against the built binaries and fails when the committed
docs/CLI.md no longer matches, printing the diff.
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import subprocess
import sys

# (binary, one-line role, companion docs) — order defines section order.
TOOLS = [
    (
        "mclg_cli",
        "single-design driver: generate, legalize (full or incremental "
        "ECO), evaluate, convert, and render designs",
        ["ECO.md", "FORMATS.md", "OBSERVABILITY.md"],
    ),
    (
        "mclg_batch",
        "multi-design batch driver: shared-executor or crash-isolated "
        "process fan-out with live telemetry",
        ["ROBUSTNESS.md", "OBSERVABILITY.md"],
    ),
    (
        "mclg_serve",
        "resident legalization daemon: designs load once, clients "
        "stream ECO requests over length-prefixed frames",
        ["SERVE.md", "PROTOCOL.md"],
    ),
]

HEADER = """\
# Command-line reference

<!-- GENERATED FILE - DO NOT EDIT.
     Regenerate with: python3 scripts/gen_cli_docs.py --bin <build>/tools -o docs/CLI.md
     The cli_reference_drift ctest (label: docs) fails when this file is stale. -->

Verbatim `--help` output of every installed tool, captured at build time
by `scripts/gen_cli_docs.py`. For the concepts behind the flags see the
companion document linked in each section.
"""


def capture_help(binary: pathlib.Path) -> str:
    proc = subprocess.run(
        [str(binary), "--help"], capture_output=True, text=True, timeout=30
    )
    out = proc.stdout if proc.stdout.strip() else proc.stderr
    if proc.returncode != 0 or not out.strip():
        raise SystemExit(
            f"error: {binary} --help exited {proc.returncode} with "
            f"{len(out)} bytes of output"
        )
    return out.rstrip("\n") + "\n"


def render(bin_dir: pathlib.Path) -> str:
    parts = [HEADER]
    for name, role, companions in TOOLS:
        links = ", ".join(f"[{c}]({c})" for c in companions)
        parts.append(f"\n## `{name}`\n\n{role.capitalize()}. See {links}.\n")
        parts.append("\n```text\n" + capture_help(bin_dir / name) + "```\n")
    return "".join(parts)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--bin", required=True, type=pathlib.Path,
        help="directory holding the built tool binaries (e.g. build/tools)",
    )
    ap.add_argument("-o", "--out", type=pathlib.Path, help="write the reference here")
    ap.add_argument(
        "--check", type=pathlib.Path,
        help="compare against this committed file; exit 1 and print a diff on drift",
    )
    args = ap.parse_args()
    if not args.out and not args.check:
        ap.error("need --out and/or --check")

    text = render(args.bin)

    if args.out:
        args.out.write_text(text)
        print(f"wrote {args.out} ({len(text)} bytes)")

    if args.check:
        committed = args.check.read_text()
        if committed != text:
            sys.stdout.writelines(
                difflib.unified_diff(
                    committed.splitlines(keepends=True),
                    text.splitlines(keepends=True),
                    fromfile=str(args.check),
                    tofile="generated from --help",
                )
            )
            print(
                f"\nerror: {args.check} is stale; regenerate with\n"
                f"  python3 scripts/gen_cli_docs.py --bin {args.bin} -o {args.check}"
            )
            return 1
        print(f"{args.check}: up to date")
    return 0


if __name__ == "__main__":
    sys.exit(main())
